(* The paper's experiments, regenerated (see DESIGN.md section 4 and
   EXPERIMENTS.md for the paper-vs-measured record).

   E1 fig3    degree of adaptiveness vs hypercube dimension (Figure 3)
   E2 fig12   Duato's incoherent example: BWG edges + cycle classification
   E3 thm4    Two-Buffer SAF mesh: Theorem 3 proof + stress simulation
   E4 thm5    EFA: Theorem 1 proof across cube sizes, with timings
   E5 thm6    relaxed EFA: deadlock witness, replay, stress simulation
   E6 matrix  proof-technique comparison across the whole catalogue
   E7 perf    latency/throughput sweep, e-cube vs Duato vs EFA *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim
module Mono = Dfr_util.Monotime

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let timed f =
  let t0 = Mono.now () in
  let r = f () in
  (r, Mono.now () -. t0)

let fmt_mean_latency s =
  match Stats.mean_latency s with
  | Some m -> Printf.sprintf "%.1f" m
  | None -> "-"

(* ------------------------------------------------------------------ E1 *)

let fig3 () =
  section "E1 (Figure 3): degree of adaptiveness, buffer-level paths";
  let algos = [ "ecube"; "duato"; "efa" ] in
  let max_n = 12 in
  let sweeps =
    List.map
      (fun a ->
        match Dfr_adaptiveness.Hypercube_adaptiveness.rule_of_name a with
        | Some r -> (a, Dfr_adaptiveness.Hypercube_adaptiveness.sweep r ~max_n)
        | None -> assert false)
      algos
  in
  Printf.printf "%-10s" "dim";
  List.iter (fun (a, _) -> Printf.printf " %10s" a) sweeps;
  print_newline ();
  for n = 2 to max_n do
    Printf.printf "%-10d" n;
    List.iter (fun (_, s) -> Printf.printf " %9.2f%%" (100.0 *. s.(n))) sweeps;
    print_newline ()
  done;
  let get name = List.assoc name sweeps in
  Printf.printf
    "paper anchors: 12-D duato ~16%% (measured %.1f%%), efa >50%% (measured %.1f%%)\n"
    (100.0 *. (get "duato").(12))
    (100.0 *. (get "efa").(12))

(* ------------------------------------------------------------------ E2 *)

let fig12 () =
  section "E2 (Figures 1-2): Duato's incoherent example";
  let net = Incoherent_example.network () in
  let algo = Incoherent_example.algo in
  let space = State_space.build net algo in
  let bwg = Bwg.build space in
  let g = Bwg.graph bwg in
  Printf.printf "BWG edges among transit buffers:\n";
  Dfr_graph.Digraph.iter_edges
    (fun q w ->
      if Buf.is_transit (Net.buffer net q) then
        Printf.printf "  %s -> %s\n" (Net.describe_buffer net q)
          (Net.describe_buffer net w))
    g;
  let cycles, _ = Bwg.cycles bwg in
  Printf.printf "cycles and classification:\n";
  List.iter
    (fun c ->
      let names = String.concat " -> " (List.map (Net.describe_buffer net) c) in
      match Cycle_class.classify bwg c with
      | Cycle_class.True_cycle packets ->
        Printf.printf "  [TRUE ] %s\n" names;
        List.iter
          (fun p -> Format.printf "          %a@." (Cycle_class.pp_packet net) p)
          packets
      | Cycle_class.False_resource_cycle { exhaustive } ->
        Printf.printf "  [FALSE] %s%s\n" names
          (if exhaustive then " (exhaustively refuted)" else " (capped)"))
    cycles;
  Format.printf "checker: %a@." (Checker.pp_verdict net) (Checker.verdict net algo)

(* ------------------------------------------------------------------ E3 *)

let thm4 () =
  section "E3 (Theorem 4): Two-Buffer store-and-forward mesh";
  List.iter
    (fun radices ->
      let topo = Topology.mesh radices in
      let net = Net.store_and_forward topo ~classes:2 in
      let (report : Checker.report), dt = timed (fun () -> Checker.check net Mesh_saf.two_buffer) in
      Format.printf "%-14s [%.3fs] %a@." (Topology.name topo) dt
        (Checker.pp_verdict net) report.Checker.verdict)
    [ [| 3; 3 |]; [| 4; 4 |]; [| 5; 5 |]; [| 3; 3; 3 |] ];
  let topo = Topology.mesh [| 4; 4 |] in
  let net = Net.store_and_forward topo ~classes:2 in
  let traffic = Traffic.batch topo ~pattern:Traffic.Uniform ~count:40 ~length:1 ~seed:11 in
  Format.printf "stress simulation (%d packets): %a@." (Traffic.count traffic)
    Saf_sim.pp_outcome
    (Saf_sim.run net Mesh_saf.two_buffer traffic);
  let net1 = Net.store_and_forward topo ~classes:1 in
  Format.printf "single-buffer control: %a@." (Checker.pp_verdict net1)
    (Checker.verdict net1 Mesh_saf.single_buffer)

(* ------------------------------------------------------------------ E4 *)

let thm5 () =
  section "E4 (Theorem 5): Enhanced Fully Adaptive hypercube routing";
  List.iter
    (fun n ->
      let net = Net.wormhole (Topology.hypercube n) ~vcs:2 in
      let (report : Checker.report), dt = timed (fun () -> Checker.check net Hypercube_wormhole.efa) in
      Format.printf "%d-cube [%.3fs] %a@." n dt (Checker.pp_verdict net)
        report.Checker.verdict)
    [ 2; 3; 4; 5 ];
  let topo = Topology.hypercube 4 in
  let net = Net.wormhole topo ~vcs:2 in
  let traffic = Traffic.batch topo ~pattern:Traffic.Uniform ~count:12 ~length:10 ~seed:4 in
  Format.printf "stress simulation: %a@." Wormhole_sim.pp_outcome
    (Wormhole_sim.run net Hypercube_wormhole.efa traffic)

(* ------------------------------------------------------------------ E5 *)

let thm6 () =
  section "E5 (Theorem 6): relaxing EFA's restriction deadlocks";
  let net = Net.wormhole (Topology.hypercube 2) ~vcs:2 in
  let space = State_space.build net Hypercube_wormhole.efa_relaxed in
  let bwg = Bwg.build space in
  let cycles, _ = Bwg.cycles bwg in
  (match
     Cycle_class.first_true_cycle bwg
       (List.sort (fun a b -> compare (List.length a) (List.length b)) cycles)
   with
  | Some (cycle, packets) ->
    Printf.printf "True Cycle (the paper's four-channel cycle):\n  %s\n"
      (String.concat " -> " (List.map (Net.describe_buffer net) cycle));
    List.iter
      (fun p -> Format.printf "  %a@." (Cycle_class.pp_packet net) p)
      packets
  | None -> Printf.printf "unexpected: no True Cycle found\n");
  (match Checker.verdict net Hypercube_wormhole.efa_relaxed with
  | Checker.Deadlock_possible failure ->
    (match Dfr_scenario.Scenario.replay net Hypercube_wormhole.efa_relaxed failure with
    | Some true -> Printf.printf "replay: deadlock confirmed in the flit simulator\n"
    | Some false -> Printf.printf "replay: NOT confirmed\n"
    | None -> Printf.printf "replay: nothing to replay\n")
  | _ -> Printf.printf "unexpected verdict\n");
  let topo3 = Topology.hypercube 3 in
  let net3 = Net.wormhole topo3 ~vcs:2 in
  let traffic = Traffic.batch topo3 ~pattern:Traffic.Uniform ~count:40 ~length:24 ~seed:3 in
  Format.printf "natural stress traffic: %a@." Wormhole_sim.pp_outcome
    (Wormhole_sim.run net3 Hypercube_wormhole.efa_relaxed traffic)

(* ------------------------------------------------------------------ E6 *)

let matrix () =
  section "E6: proof-technique comparison (verdict matrix)";
  Printf.printf "%-24s %-12s %-12s %-12s %s\n" "algorithm" "dally-seitz"
    "duato-cond" "bwg(paper)" "network";
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      let space = State_space.build net e.Registry.algo in
      let ds = if Cdg.deadlock_free space then "certified" else "-" in
      let dc = if Duato_condition.deadlock_free space then "certified" else "-" in
      let bwg =
        match Checker.verdict net e.Registry.algo with
        | Checker.Deadlock_free _ -> "certified"
        | Checker.Deadlock_possible _ -> "deadlock"
        | Checker.Unknown _ -> "unknown"
      in
      Printf.printf "%-24s %-12s %-12s %-12s %s\n" e.Registry.name ds dc bwg
        (Net.name net))
    Registry.all

(* ------------------------------------------------------------------ E7 *)

let perf () =
  section "E7: latency/throughput sweep on a 4-cube (uniform traffic)";
  let topo = Topology.hypercube 4 in
  let net = Net.wormhole topo ~vcs:2 in
  let algos =
    [
      ("ecube", Hypercube_wormhole.ecube);
      ("duato", Hypercube_wormhole.duato);
      ("efa", Hypercube_wormhole.efa);
    ]
  in
  let rates = [ 0.02; 0.04; 0.06; 0.08; 0.10; 0.12 ] in
  Printf.printf "%-7s" "rate";
  List.iter (fun (n, _) -> Printf.printf " %11s" (n ^ " lat")) algos;
  List.iter (fun (n, _) -> Printf.printf " %11s" (n ^ " dlv")) algos;
  print_newline ();
  List.iter
    (fun rate ->
      let traffic =
        Traffic.generate topo ~pattern:Traffic.Uniform ~rate ~length:8
          ~horizon:1500 ~seed:17
      in
      let outcomes =
        List.map
          (fun (_, algo) ->
            Wormhole_sim.run
              ~config:{ Wormhole_sim.default_config with max_cycles = 12_000 }
              net algo traffic)
          algos
      in
      Printf.printf "%-7.2f" rate;
      List.iter
        (fun o ->
          let s = Wormhole_sim.stats o in
          let marker =
            match o with
            | Wormhole_sim.Deadlocked _ -> "!"
            | Wormhole_sim.Timeout _ -> "~"
            | Wormhole_sim.Completed _ -> " "
          in
          Printf.printf " %10s%s" (fmt_mean_latency s) marker)
        outcomes;
      let total = float_of_int (max 1 (Traffic.count traffic)) in
      List.iter
        (fun o ->
          let s = Wormhole_sim.stats o in
          Printf.printf " %10.2f%%" (100.0 *. float_of_int s.Stats.delivered /. total))
        outcomes;
      print_newline ())
    rates;
  Printf.printf
    "(lat = mean latency of delivered packets; dlv = packets delivered;\n\
    \ '~' = still draining when the cycle budget ran out = saturated)\n"



(* ------------------------------------------------------------------ E9 *)

let ablations () =
  section "E9: ablations of the decision procedure";
  (* 1. closure off: the incoherent example is wrongly certified *)
  let net = Incoherent_example.network () in
  let space = State_space.build net Incoherent_example.algo in
  let full = Bwg.build space in
  let direct = Bwg.build ~indirect:false space in
  Printf.printf
    "wormhole closure: full BWG %s, direct-only BWG %s on the incoherent example\n"
    (if Dfr_graph.Traversal.is_acyclic (Bwg.graph full) then "acyclic (WRONG)"
     else "cyclic (correct)")
    (if Dfr_graph.Traversal.is_acyclic (Bwg.graph direct) then
       "acyclic -- closure off loses the deadlock"
     else "cyclic");
  (* 2. knot pre-check off: cost of deciding the controls by cycles alone *)
  let cube = Net.wormhole (Topology.hypercube 2) ~vcs:2 in
  let relaxed_space = State_space.build cube Hypercube_wormhole.efa_relaxed in
  let (knot, t_knot) = timed (fun () -> Deadlock_config.find relaxed_space) in
  let bwg = Bwg.build relaxed_space in
  let (cycles, t_cycles) = timed (fun () -> fst (Bwg.cycles bwg)) in
  let (_, t_classify) =
    timed (fun () ->
        Cycle_class.first_true_cycle bwg
          (List.sort (fun a b -> compare (List.length a) (List.length b)) cycles))
  in
  Printf.printf
    "knot pre-check on relaxed EFA (2-cube): %.3f ms and %s; without it:\n\
    \  enumerate %d cycles (%.1f ms) + classify (%.3f ms)\n"
    (1000.0 *. t_knot)
    (match knot with Some c -> Printf.sprintf "%d packets" (List.length c) | None -> "none")
    (List.length cycles) (1000.0 *. t_cycles) (1000.0 *. t_classify);
  (* 3. checker scaling with cube dimension *)
  Printf.printf "checker scaling (EFA, Theorem 1 path):\n";
  List.iter
    (fun n ->
      let net = Net.wormhole (Topology.hypercube n) ~vcs:2 in
      let (_, dt) = timed (fun () -> Checker.verdict net Hypercube_wormhole.efa) in
      let buffers = Net.num_buffers net in
      Printf.printf "  %d-cube: %4d buffers, %7.1f ms\n" n buffers (1000.0 *. dt))
    [ 2; 3; 4; 5; 6 ];
  (* 4. waiting-rule ablation: EFA waiting on every output still certifies,
     but through Theorem 3 instead of Theorem 1 *)
  let cube2 = Net.wormhole (Topology.hypercube 2) ~vcs:2 in
  let any_wait = Dfr_routing.Algo.wait_everywhere Hypercube_wormhole.efa in
  let (verdict, dt) = timed (fun () -> Checker.verdict cube2 any_wait) in
  Format.printf "wait-everywhere EFA (2-cube, %.1f ms): %a@." (1000.0 *. dt)
    (Checker.pp_verdict cube2) verdict



(* ------------------------------------------------------------------ E10 *)

let mesh_adaptiveness () =
  section "E10 (extension): degree of adaptiveness for mesh algorithms";
  let entries =
    [
      ("dimension-order", 1, Mesh_wormhole.dimension_order);
      ("west-first", 1, Mesh_wormhole.west_first);
      ("north-last", 1, Mesh_wormhole.north_last);
      ("negative-first", 1, Mesh_wormhole.negative_first);
      ("odd-even", 1, Mesh_wormhole.odd_even);
      ("double-y", 2, Mesh_wormhole.double_y);
      ("duato-mesh", 2, Mesh_wormhole.duato_mesh);
    ]
  in
  let sizes = [ 3; 4; 5; 6 ] in
  let rows = Dfr_adaptiveness.Mesh_adaptiveness.sweep_square entries ~sizes in
  Printf.printf "%-16s" "mesh";
  List.iter (fun k -> Printf.printf " %8dx%d" k k) sizes;
  print_newline ();
  List.iter
    (fun (name, values) ->
      Printf.printf "%-16s" name;
      List.iter (fun v -> Printf.printf " %9.2f%%" (100.0 *. v)) values;
      print_newline ())
    rows;
  Printf.printf
    "(buffer-level paths vs the all-channels baseline of the same network;\n\
    \ 2-VC algorithms are measured against a 2-VC denominator)\n"

(* ------------------------------------------------------------------ E7b *)

let perf_router () =
  section "E7b: the same sweep on the pipelined credit-based router";
  let topo = Topology.hypercube 4 in
  let net = Net.wormhole topo ~vcs:2 in
  let algos =
    [
      ("ecube", Hypercube_wormhole.ecube);
      ("duato", Hypercube_wormhole.duato);
      ("efa", Hypercube_wormhole.efa);
    ]
  in
  let rates = [ 0.02; 0.04; 0.06; 0.08 ] in
  Printf.printf "%-7s" "rate";
  List.iter (fun (n, _) -> Printf.printf " %11s" (n ^ " lat")) algos;
  print_newline ();
  List.iter
    (fun rate ->
      let traffic =
        Traffic.generate topo ~pattern:Traffic.Uniform ~rate ~length:8
          ~horizon:1200 ~seed:17
      in
      Printf.printf "%-7.2f" rate;
      List.iter
        (fun (_, algo) ->
          let o =
            Router_sim.run
              ~config:{ Router_sim.default_config with max_cycles = 20_000 }
              net algo traffic
          in
          let s = Router_sim.stats o in
          Printf.printf " %10s%s" (fmt_mean_latency s)
            (match o with
            | Router_sim.Deadlocked _ -> "!"
            | Router_sim.Timeout _ -> "~"
            | Router_sim.Completed _ -> " "))
        algos;
      print_newline ())
    rates;
  Printf.printf
    "(pipelined RC/VA/SA/ST stages and credit return add a constant factor\n\
    \ over E7's flit model; the ordering between algorithms must agree)\n"

(* ------------------------------------------------------------------ E11 *)

let turn_tables () =
  section "E11 (extension): permitted-turn matrices of the 2-D mesh algorithms";
  let net1 = Net.wormhole (Topology.mesh [| 5; 5 |]) ~vcs:1 in
  let net2 = Net.wormhole (Topology.mesh [| 5; 5 |]) ~vcs:2 in
  let turns = Turns.all_turns ~dims:2 in
  Printf.printf "%-16s" "algorithm";
  List.iter
    (fun t -> Printf.printf " %7s" (Format.asprintf "%a" Turns.pp_turn t))
    turns;
  print_newline ();
  List.iter
    (fun (name, net, algo) ->
      let space = State_space.build net algo in
      Printf.printf "%-16s" name;
      List.iter
        (fun t ->
          Printf.printf " %7s" (if Turns.permitted space t then "yes" else "-"))
        turns;
      print_newline ())
    [
      ("dimension-order", net1, Mesh_wormhole.dimension_order);
      ("west-first", net1, Mesh_wormhole.west_first);
      ("north-last", net1, Mesh_wormhole.north_last);
      ("negative-first", net1, Mesh_wormhole.negative_first);
      ("odd-even", net1, Mesh_wormhole.odd_even);
      ("double-y", net2, Mesh_wormhole.double_y);
      ("unrestricted", net1, Mesh_wormhole.unrestricted);
    ];
  Printf.printf
    "(0+ = east, 0- = west, 1+ = north, 1- = south; a '-' is a turn no\n\
    \ reachable packet ever takes.  Each cycle sense needs all four of its\n\
    \ turns, so the '-' entries are what breaks the cycles.)\n"

(* ------------------------------------------------------------------ E12 *)

let parallel_bwg () =
  section "E12 (extension): multicore BWG construction (OCaml 5 domains)";
  let cores = max 2 (Domain.recommended_domain_count ()) in
  Printf.printf
    "recommended domain count on this machine: %d (benchmarking with %d;\n\
    \ on a single-core container this measures overhead, not speedup)\n"
    (Domain.recommended_domain_count ())
    cores;
  List.iter
    (fun n ->
      let net = Net.wormhole (Topology.hypercube n) ~vcs:2 in
      let space = State_space.build net Hypercube_wormhole.efa in
      (* warm the move-graph cache so both timings measure only closure *)
      for dest = 0 to Net.num_nodes net - 1 do
        ignore (State_space.move_graph space ~dest)
      done;
      let (_, t1) = timed (fun () -> Bwg.build space) in
      let (_, tp) = timed (fun () -> Bwg.build ~domains:cores space) in
      Printf.printf "%d-cube: serial %7.1f ms, %d domains %7.1f ms, speedup %.2fx\n"
        n (1000.0 *. t1) cores (1000.0 *. tp)
        (t1 /. tp))
    [ 4; 5; 6 ]

let all () =
  fig3 ();
  fig12 ();
  thm4 ();
  thm5 ();
  thm6 ();
  matrix ();
  perf ();
  perf_router ();
  mesh_adaptiveness ();
  turn_tables ();
  parallel_bwg ();
  ablations ()
