(* Benchmark harness.

   `dune exec bench/main.exe`            -- all experiment tables + micro suite
   `dune exec bench/main.exe -- fig3`    -- one experiment
                  (fig3 fig12 thm4 thm5 thm6 matrix perf micro all)

   The experiment tables regenerate every figure of the paper (DESIGN.md
   section 4); the Bechamel micro suite is experiment E8 (cost of the
   analyses themselves). *)

open Bechamel
open Toolkit
open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

(* --------------------------- E8: micro benchmarks ------------------- *)

let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let cube4 = Net.wormhole (Topology.hypercube 4) ~vcs:2
let mesh44 = Net.store_and_forward (Topology.mesh [| 4; 4 |]) ~classes:2
let space3 = State_space.build cube3 Hypercube_wormhole.efa
let relaxed2 =
  State_space.build (Net.wormhole (Topology.hypercube 2) ~vcs:2)
    Hypercube_wormhole.efa_relaxed
let bwg_relaxed2 = Bwg.build relaxed2
let relaxed2_cycles = fst (Bwg.cycles bwg_relaxed2)

let micro_tests =
  [
    Test.make ~name:"state-space/efa-3cube"
      (Staged.stage (fun () -> State_space.build cube3 Hypercube_wormhole.efa));
    Test.make ~name:"bwg-build/efa-3cube"
      (Staged.stage (fun () -> Bwg.build space3));
    Test.make ~name:"checker/efa-3cube"
      (Staged.stage (fun () -> Checker.verdict cube3 Hypercube_wormhole.efa));
    Test.make ~name:"checker/efa-4cube"
      (Staged.stage (fun () -> Checker.verdict cube4 Hypercube_wormhole.efa));
    Test.make ~name:"checker/two-buffer-4x4"
      (Staged.stage (fun () -> Checker.verdict mesh44 Mesh_saf.two_buffer));
    Test.make ~name:"knot/efa-relaxed-2cube"
      (Staged.stage (fun () -> Deadlock_config.find relaxed2));
    Test.make ~name:"cycles/efa-relaxed-2cube"
      (Staged.stage (fun () -> Bwg.cycles bwg_relaxed2));
    Test.make ~name:"classify/efa-relaxed-2cube"
      (Staged.stage (fun () ->
           Cycle_class.first_true_cycle bwg_relaxed2 relaxed2_cycles));
    Test.make ~name:"adaptiveness/efa-sweep-10"
      (Staged.stage (fun () ->
           Dfr_adaptiveness.Hypercube_adaptiveness.sweep
             Dfr_adaptiveness.Hypercube_adaptiveness.efa_rule ~max_n:10));
  ]

(* Same-machine seed-commit (PR 0) numbers for the micro suite, measured
   on an otherwise idle machine.  The JSON emitter below compares against
   this table so a run records its speedups without needing a JSON
   parser (Dfr_util.Json only emits). *)
let baseline_pr0 =
  [
    ("dfr/adaptiveness/efa-sweep-10", 73_585_000.0);
    ("dfr/bwg-build/efa-3cube", 163_234.0);
    ("dfr/checker/efa-3cube", 479_568.2);
    ("dfr/checker/efa-4cube", 5_362_000.0);
    ("dfr/checker/two-buffer-4x4", 1_908_000.0);
    ("dfr/classify/efa-relaxed-2cube", 1_400.8);
    ("dfr/cycles/efa-relaxed-2cube", 32_364.9);
    ("dfr/knot/efa-relaxed-2cube", 5_712.0);
    ("dfr/state-space/efa-3cube", 293_803.6);
  ]

let bench_json = "BENCH_1.json"

let write_bench_json rows =
  let module J = Dfr_util.Json in
  let results = List.map (fun (name, ns) -> (name, J.Float ns)) rows in
  let baseline = List.map (fun (name, ns) -> (name, J.Float ns)) baseline_pr0 in
  let speedups =
    List.filter_map
      (fun (name, ns) ->
        match List.assoc_opt name baseline_pr0 with
        | Some b when ns > 0.0 -> Some (name, J.Float (b /. ns))
        | _ -> None)
      rows
  in
  let doc =
    J.Obj
      [
        ("suite", J.String "micro");
        ("unit", J.String "ns/run");
        ("results", J.Obj results);
        ("baseline_pr0", J.Obj baseline);
        ("speedup_vs_pr0", J.Obj speedups);
      ]
  in
  let oc = open_out bench_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" bench_json

(* ------------- observability: disabled-probe overhead + stages -------- *)

module Obs = Dfr_obs.Obs

let bench2_json = "BENCH_2.json"

let median samples =
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

(* The <2% budget is asserted against an estimate, not a differential
   timing: (disabled probes per build) x (cost of one disabled probe),
   relative to the measured build time.  A differential measurement of two
   ~160us builds is dominated by scheduling noise; the product of a
   100k-sample probe cost and a counted number of probes is stable. *)
let run_obs () =
  Printf.printf "\n=== observability: disabled-probe overhead, stage breakdown ===\n%!";
  Obs.disable ();
  let per_probe_ns =
    let batch = 100_000 in
    let timed () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do
        Obs.span "noop" (fun () -> ());
        Obs.count "noop" 1
      done;
      (* the loop body is two probes *)
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int batch /. 2.0
    in
    median (List.init 9 (fun _ -> timed ()))
  in
  (* probes per bwg-build, counted from one enabled run on a warm
     move-graph cache; counter totals over-count call sites that record
     n > 1 per call, which only makes the estimate conservative *)
  ignore (Bwg.build space3);
  Obs.enable ();
  ignore (Bwg.build space3);
  let probes =
    List.fold_left (fun acc (_, (n, _)) -> acc + n) 0 (Obs.span_totals ())
    + List.length (Obs.gauges ())
    + List.fold_left (fun acc (_, n) -> acc + n) 0 (Obs.counters ())
  in
  Obs.disable ();
  let build_ns =
    median
      (List.init 21 (fun _ ->
           let t0 = Unix.gettimeofday () in
           ignore (Bwg.build space3);
           (Unix.gettimeofday () -. t0) *. 1e9))
  in
  let overhead_pct = 100.0 *. float_of_int probes *. per_probe_ns /. build_ns in
  Printf.printf
    "disabled probe %.1f ns, %d probes/bwg-build, build %.0f ns -> overhead %.4f%%\n"
    per_probe_ns probes build_ns overhead_pct;
  if overhead_pct >= 2.0 then begin
    Printf.eprintf
      "FAIL: disabled-instrumentation overhead %.3f%% exceeds the 2%% budget\n"
      overhead_pct;
    exit 1
  end;
  (* stage breakdown of one fully traced check *)
  Obs.enable ();
  ignore (Checker.check cube3 Dfr_routing.Hypercube_wormhole.efa);
  let stages = Obs.metrics_json () in
  Obs.disable ();
  let module J = Dfr_util.Json in
  let doc =
    J.Obj
      [
        ("suite", J.String "observability");
        ("probe_ns_disabled", J.Float per_probe_ns);
        ("probes_per_bwg_build", J.Int probes);
        ("bwg_build_ns", J.Float build_ns);
        ("overhead_pct", J.Float overhead_pct);
        ("overhead_budget_pct", J.Float 2.0);
        ("check_efa_3cube", stages);
      ]
  in
  let oc = open_out bench2_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench2_json

(* ----------------- E15: serve — cold vs cached latency ---------------- *)

let bench5_json = "BENCH_5.json"

(* The serving claim (ISSUE: cached re-check >= 10x faster than cold on
   efa-3cube) is measured against the engine directly: same handle/await
   surface the stdio and TCP loops drive, no transport noise.  Cold
   samples each use a fresh engine so the cache and the digest memo start
   empty; the worker pool is already up, so spawn cost is excluded. *)
let run_serve () =
  Printf.printf "\n=== E15: serve — cold vs cached check latency ===\n%!";
  let module J = Dfr_util.Json in
  let module E = Dfr_serve.Engine in
  let line =
    J.to_string
      (J.Obj
         [
           ("op", J.String "check");
           ("algo", J.String "efa");
           ("topology", J.String "hypercube:3");
         ])
  in
  let cached resp =
    match J.member "cached" resp with Some (J.Bool b) -> b | _ -> false
  in
  let ok resp = match J.member "ok" resp with Some (J.Bool b) -> b | _ -> false in
  let request engine =
    let t0 = Unix.gettimeofday () in
    let resp = E.await engine (E.handle_line engine line) in
    ((Unix.gettimeofday () -. t0) *. 1e9, resp)
  in
  let cold_ns =
    median
      (List.init 7 (fun _ ->
           let e = E.create E.default_config in
           let dt, resp = request e in
           if not (ok resp) || cached resp then begin
             Printf.eprintf "FAIL: cold serve request did not check: %s\n"
               (J.to_string resp);
             exit 1
           end;
           E.shutdown e;
           dt))
  in
  let engine = E.create E.default_config in
  let _warmup = request engine in
  let warm_ns =
    median
      (List.init 501 (fun _ ->
           let dt, resp = request engine in
           if not (cached resp) then begin
             Printf.eprintf "FAIL: warm serve request missed the cache\n";
             exit 1
           end;
           dt))
  in
  let reqs = 5_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reqs do
    ignore (E.await engine (E.handle_line engine line))
  done;
  let rps = float_of_int reqs /. (Unix.gettimeofday () -. t0) in
  E.shutdown engine;
  let speedup = cold_ns /. warm_ns in
  Printf.printf
    "cold %.0f ns, cached %.0f ns -> %.1fx; %.0f cached requests/s\n" cold_ns
    warm_ns speedup rps;
  if speedup < 10.0 then begin
    Printf.eprintf
      "FAIL: cached re-check only %.1fx faster than cold (budget 10x)\n" speedup;
    exit 1
  end;
  let doc =
    J.Obj
      [
        ("suite", J.String "serve");
        ("problem", J.String "efa@hypercube:3");
        ("cold_ns", J.Float cold_ns);
        ("warm_ns", J.Float warm_ns);
        ("speedup_warm_vs_cold", J.Float speedup);
        ("speedup_budget", J.Float 10.0);
        ("cached_requests_per_sec", J.Float rps);
        ("throughput_requests", J.Int reqs);
      ]
  in
  let oc = open_out bench5_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench5_json

let run_micro () =
  Printf.printf "\n=== E8: micro benchmarks (Bechamel, monotonic clock) ===\n%!";
  let test = Test.make_grouped ~name:"dfr" ~fmt:"%s/%s" micro_tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let estimated =
    List.filter_map
      (fun (name, r) ->
        match Analyze.OLS.estimates r with
        | Some [ ns ] -> Some (name, ns)
        | _ -> None)
      (List.sort compare rows)
  in
  List.iter
    (fun (name, ns) ->
      if ns > 1e6 then Printf.printf "%-40s %12.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-40s %12.1f ns/run\n" name ns)
    estimated;
  write_bench_json estimated;
  run_obs ()

(* --------------------------------------------------------------------- *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "fig3" -> Experiments.fig3 ()
  | "fig12" -> Experiments.fig12 ()
  | "thm4" -> Experiments.thm4 ()
  | "thm5" -> Experiments.thm5 ()
  | "thm6" -> Experiments.thm6 ()
  | "matrix" -> Experiments.matrix ()
  | "perf" -> Experiments.perf ()
  | "ablations" -> Experiments.ablations ()
  | "perf-router" -> Experiments.perf_router ()
  | "mesh-adaptiveness" -> Experiments.mesh_adaptiveness ()
  | "turns" -> Experiments.turn_tables ()
  | "parallel" -> Experiments.parallel_bwg ()
  | "micro" -> run_micro ()
  | "serve" -> run_serve ()
  | "all" ->
    Experiments.all ();
    run_micro ();
    run_serve ()
  | other ->
    Printf.eprintf
      "unknown experiment %S (fig3 fig12 thm4 thm5 thm6 matrix perf ablations micro serve all)\n"
      other;
    exit 1
