(* Benchmark harness.

   `dune exec bench/main.exe`            -- all experiment tables + micro suite
   `dune exec bench/main.exe -- fig3`    -- one experiment
                  (fig3 fig12 thm4 thm5 thm6 matrix perf micro all)

   The experiment tables regenerate every figure of the paper (DESIGN.md
   section 4); the Bechamel micro suite is experiment E8 (cost of the
   analyses themselves). *)

open Bechamel
open Toolkit
open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

(* all wall-time measurements use the monotonic clock: an NTP step
   mid-bench must not corrupt a published BENCH_*.json figure *)
module Mono = Dfr_util.Monotime

(* --------------------------- E8: micro benchmarks ------------------- *)

let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let cube4 = Net.wormhole (Topology.hypercube 4) ~vcs:2
let mesh44 = Net.store_and_forward (Topology.mesh [| 4; 4 |]) ~classes:2
let space3 = State_space.build cube3 Hypercube_wormhole.efa
let relaxed2 =
  State_space.build (Net.wormhole (Topology.hypercube 2) ~vcs:2)
    Hypercube_wormhole.efa_relaxed
let bwg_relaxed2 = Bwg.build relaxed2
let relaxed2_cycles = fst (Bwg.cycles bwg_relaxed2)

let micro_tests =
  [
    Test.make ~name:"state-space/efa-3cube"
      (Staged.stage (fun () -> State_space.build cube3 Hypercube_wormhole.efa));
    Test.make ~name:"bwg-build/efa-3cube"
      (Staged.stage (fun () -> Bwg.build space3));
    Test.make ~name:"checker/efa-3cube"
      (Staged.stage (fun () -> Checker.verdict cube3 Hypercube_wormhole.efa));
    Test.make ~name:"checker/efa-4cube"
      (Staged.stage (fun () -> Checker.verdict cube4 Hypercube_wormhole.efa));
    Test.make ~name:"checker/two-buffer-4x4"
      (Staged.stage (fun () -> Checker.verdict mesh44 Mesh_saf.two_buffer));
    Test.make ~name:"knot/efa-relaxed-2cube"
      (Staged.stage (fun () -> Deadlock_config.find relaxed2));
    Test.make ~name:"cycles/efa-relaxed-2cube"
      (Staged.stage (fun () -> Bwg.cycles bwg_relaxed2));
    Test.make ~name:"classify/efa-relaxed-2cube"
      (Staged.stage (fun () ->
           Cycle_class.first_true_cycle bwg_relaxed2 relaxed2_cycles));
    Test.make ~name:"adaptiveness/efa-sweep-10"
      (Staged.stage (fun () ->
           Dfr_adaptiveness.Hypercube_adaptiveness.sweep
             Dfr_adaptiveness.Hypercube_adaptiveness.efa_rule ~max_n:10));
  ]

(* Same-machine seed-commit (PR 0) numbers for the micro suite, measured
   on an otherwise idle machine.  The JSON emitter below compares against
   this table so a run records its speedups without needing a JSON
   parser (Dfr_util.Json only emits). *)
let baseline_pr0 =
  [
    ("dfr/adaptiveness/efa-sweep-10", 73_585_000.0);
    ("dfr/bwg-build/efa-3cube", 163_234.0);
    ("dfr/checker/efa-3cube", 479_568.2);
    ("dfr/checker/efa-4cube", 5_362_000.0);
    ("dfr/checker/two-buffer-4x4", 1_908_000.0);
    ("dfr/classify/efa-relaxed-2cube", 1_400.8);
    ("dfr/cycles/efa-relaxed-2cube", 32_364.9);
    ("dfr/knot/efa-relaxed-2cube", 5_712.0);
    ("dfr/state-space/efa-3cube", 293_803.6);
  ]

let bench_json = "BENCH_1.json"

let write_bench_json rows =
  let module J = Dfr_util.Json in
  let results = List.map (fun (name, ns) -> (name, J.Float ns)) rows in
  let baseline = List.map (fun (name, ns) -> (name, J.Float ns)) baseline_pr0 in
  let speedups =
    List.filter_map
      (fun (name, ns) ->
        match List.assoc_opt name baseline_pr0 with
        | Some b when ns > 0.0 -> Some (name, J.Float (b /. ns))
        | _ -> None)
      rows
  in
  let doc =
    J.Obj
      [
        ("suite", J.String "micro");
        ("unit", J.String "ns/run");
        ("results", J.Obj results);
        ("baseline_pr0", J.Obj baseline);
        ("speedup_vs_pr0", J.Obj speedups);
      ]
  in
  let oc = open_out bench_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" bench_json

(* ------------- observability: disabled-probe overhead + stages -------- *)

module Obs = Dfr_obs.Obs

let bench2_json = "BENCH_2.json"

let median samples =
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

(* The <2% budget is asserted against an estimate, not a differential
   timing: (disabled probes per build) x (cost of one disabled probe),
   relative to the measured build time.  A differential measurement of two
   ~160us builds is dominated by scheduling noise; the product of a
   100k-sample probe cost and a counted number of probes is stable. *)
let run_obs () =
  Printf.printf "\n=== observability: disabled-probe overhead, stage breakdown ===\n%!";
  Obs.disable ();
  let per_probe_ns =
    let batch = 100_000 in
    let timed () =
      let t0 = Mono.now () in
      for _ = 1 to batch do
        Obs.span "noop" (fun () -> ());
        Obs.count "noop" 1
      done;
      (* the loop body is two probes *)
      (Mono.now () -. t0) *. 1e9 /. float_of_int batch /. 2.0
    in
    median (List.init 9 (fun _ -> timed ()))
  in
  (* probes per bwg-build, counted from one enabled run on a warm
     move-graph cache; counters are tallied by call (a magnitude-valued
     counter like bwg.closure.words is one probe per record, not one per
     accumulated word) *)
  ignore (Bwg.build space3);
  Obs.enable ();
  ignore (Bwg.build space3);
  let probes =
    List.fold_left (fun acc (_, (n, _)) -> acc + n) 0 (Obs.span_totals ())
    + List.length (Obs.gauges ())
    + List.fold_left (fun acc (_, n) -> acc + n) 0 (Obs.counter_calls ())
  in
  Obs.disable ();
  let build_ns =
    median
      (List.init 21 (fun _ ->
           let t0 = Mono.now () in
           ignore (Bwg.build space3);
           (Mono.now () -. t0) *. 1e9))
  in
  let overhead_pct = 100.0 *. float_of_int probes *. per_probe_ns /. build_ns in
  Printf.printf
    "disabled probe %.1f ns, %d probes/bwg-build, build %.0f ns -> overhead %.4f%%\n"
    per_probe_ns probes build_ns overhead_pct;
  if overhead_pct >= 2.0 then begin
    Printf.eprintf
      "FAIL: disabled-instrumentation overhead %.3f%% exceeds the 2%% budget\n"
      overhead_pct;
    exit 1
  end;
  (* stage breakdown of one fully traced check *)
  Obs.enable ();
  ignore (Checker.check cube3 Dfr_routing.Hypercube_wormhole.efa);
  let stages = Obs.metrics_json () in
  Obs.disable ();
  let module J = Dfr_util.Json in
  let doc =
    J.Obj
      [
        ("suite", J.String "observability");
        ("probe_ns_disabled", J.Float per_probe_ns);
        ("probes_per_bwg_build", J.Int probes);
        ("bwg_build_ns", J.Float build_ns);
        ("overhead_pct", J.Float overhead_pct);
        ("overhead_budget_pct", J.Float 2.0);
        ("check_efa_3cube", stages);
      ]
  in
  let oc = open_out bench2_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench2_json

(* ----------------- E15: serve — cold vs cached latency ---------------- *)

let bench5_json = "BENCH_5.json"

(* The serving claim (ISSUE: cached re-check >= 10x faster than cold on
   efa-3cube) is measured against the engine directly: same handle/await
   surface the stdio and TCP loops drive, no transport noise.  Cold
   samples each use a fresh engine so the cache and the digest memo start
   empty; the worker pool is already up, so spawn cost is excluded. *)
let run_serve () =
  Printf.printf "\n=== E15: serve — cold vs cached check latency ===\n%!";
  let module J = Dfr_util.Json in
  let module E = Dfr_serve.Engine in
  let line =
    J.to_string
      (J.Obj
         [
           ("op", J.String "check");
           ("algo", J.String "efa");
           ("topology", J.String "hypercube:3");
         ])
  in
  let cached resp =
    match J.member "cached" resp with Some (J.Bool b) -> b | _ -> false
  in
  let ok resp = match J.member "ok" resp with Some (J.Bool b) -> b | _ -> false in
  let request engine =
    let t0 = Mono.now () in
    let resp = E.await engine (E.handle_line engine line) in
    ((Mono.now () -. t0) *. 1e9, resp)
  in
  let cold_ns =
    median
      (List.init 7 (fun _ ->
           let e = E.create E.default_config in
           let dt, resp = request e in
           if not (ok resp) || cached resp then begin
             Printf.eprintf "FAIL: cold serve request did not check: %s\n"
               (J.to_string resp);
             exit 1
           end;
           E.shutdown e;
           dt))
  in
  let engine = E.create E.default_config in
  let _warmup = request engine in
  let warm_ns =
    median
      (List.init 501 (fun _ ->
           let dt, resp = request engine in
           if not (cached resp) then begin
             Printf.eprintf "FAIL: warm serve request missed the cache\n";
             exit 1
           end;
           dt))
  in
  let reqs = 5_000 in
  let t0 = Mono.now () in
  for _ = 1 to reqs do
    ignore (E.await engine (E.handle_line engine line))
  done;
  let rps = float_of_int reqs /. (Mono.now () -. t0) in
  E.shutdown engine;
  let speedup = cold_ns /. warm_ns in
  Printf.printf
    "cold %.0f ns, cached %.0f ns -> %.1fx; %.0f cached requests/s\n" cold_ns
    warm_ns speedup rps;
  if speedup < 10.0 then begin
    Printf.eprintf
      "FAIL: cached re-check only %.1fx faster than cold (budget 10x)\n" speedup;
    exit 1
  end;
  let doc =
    J.Obj
      [
        ("suite", J.String "serve");
        ("problem", J.String "efa@hypercube:3");
        ("cold_ns", J.Float cold_ns);
        ("warm_ns", J.Float warm_ns);
        ("speedup_warm_vs_cold", J.Float speedup);
        ("speedup_budget", J.Float 10.0);
        ("cached_requests_per_sec", J.Float rps);
        ("throughput_requests", J.Int reqs);
      ]
  in
  let oc = open_out bench5_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench5_json

(* ------------- E16: scale — 10k-100k-buffer instances ----------------- *)

let bench6_json = "BENCH_6.json"

(* Every instance is checked end to end (state space, BWG, certificate)
   with wall time, peak RSS and major-heap allocation recorded.  The
   kernel's VmHWM watermark is reset before each instance, so peaks are
   per-instance, not cumulative; Gc.compact between instances returns
   free pages so one instance's heap does not inflate the next one's
   RSS floor. *)
let scale_instances =
  [
    (* the fullmesh and dragonfly instances are >= 10^4 buffers and the
       fullmesh:320 headline >= 10^5; kntree:4x3 is small and rides along
       for topology-family coverage (kntree:8x3 checks fine but takes
       over a minute, too slow to re-run on every bench invocation) *)
    ("fullmesh:104", "fullmesh-direct", 3);
    ("dragonfly:10x4x41", "dragonfly-minimal", 3);
    ("kntree:4x3", "kntree-updown", 3);
    ("fullmesh:224", "fullmesh-direct", 1);
    ("fullmesh:320", "fullmesh-direct", 1);
  ]

let resolve_instance (topo_s, algo_s, repeats) =
  let entry =
    match Registry.find algo_s with
    | Some e -> e
    | None -> failwith ("scale: unknown algorithm " ^ algo_s)
  in
  let topo =
    match Topology.of_string topo_s with
    | Ok t -> t
    | Error msg -> failwith ("scale: bad topology " ^ topo_s ^ ": " ^ msg)
  in
  (topo_s, entry, Registry.network_for entry (Some topo), repeats)

let counter_of name snapshot = Option.value (List.assoc_opt name snapshot) ~default:0

let verdict_name = function
  | Checker.Deadlock_free _ -> "deadlock-free"
  | Checker.Deadlock_possible _ -> "deadlock-possible"
  | Checker.Unknown _ -> "unknown"

let run_scale () =
  Printf.printf "\n=== E16: scale — large instances, time and memory ===\n%!";
  let module J = Dfr_util.Json in
  let rss_resets = Obs.reset_peak_rss () in
  if not rss_resets then
    Printf.printf "(VmHWM reset unavailable; peak RSS is cumulative)\n%!";
  let instance_row (name, entry, net, repeats) =
    Gc.compact ();
    ignore (Obs.reset_peak_rss ());
    Obs.enable ();
    let before = Obs.counters () in
    let gc0 = Gc.quick_stat () in
    let t0 = Mono.now () in
    let verdict = Checker.verdict net entry.Registry.algo in
    let first_ns = (Mono.now () -. t0) *. 1e9 in
    let gc1 = Gc.quick_stat () in
    let after = Obs.counters () in
    Obs.disable ();
    let best_ns =
      List.fold_left
        (fun best _ ->
          let t0 = Mono.now () in
          ignore (Checker.verdict net entry.Registry.algo : Checker.verdict);
          min best ((Mono.now () -. t0) *. 1e9))
        first_ns
        (List.init (repeats - 1) Fun.id)
    in
    let delta n = counter_of n after - counter_of n before in
    let buffers = Net.num_buffers net and nodes = Net.num_nodes net in
    let peak_kb = Option.value (Obs.peak_rss_kb ()) ~default:0 in
    Printf.printf
      "%-20s %8d bufs  %-13s  %8.2f s  peak %6d MB  closure %9d words (%d dense rows)\n%!"
      name buffers (verdict_name verdict) (best_ns /. 1e9) (peak_kb / 1024)
      (delta "bwg.closure.words") (delta "bwg.closure.dense-rows");
    (match verdict with
    | Checker.Deadlock_free _ -> ()
    | v ->
      Printf.eprintf "FAIL: %s unexpectedly not deadlock-free: %s\n" name
        (Format.asprintf "%a" (Checker.pp_verdict net) v);
      exit 1);
    ( name,
      J.Obj
        [
          ("algorithm", J.String entry.Registry.name);
          ("buffers", J.Int buffers);
          ("nodes", J.Int nodes);
          ("states", J.Int (delta "space.states"));
          (* the `Auto policy: flat tables above ~4M entries go sparse *)
          ("sparse_state_table", J.Bool (buffers * nodes > 1 lsl 22));
          ("verdict", J.String (verdict_name verdict));
          ("runs", J.Int repeats);
          ("ns_per_run", J.Float best_ns);
          ("first_run_ns", J.Float first_ns);
          ("peak_rss_kb", J.Int peak_kb);
          ("major_words_allocated", J.Float (gc1.Gc.major_words -. gc0.Gc.major_words));
          ("closure_words_hybrid", J.Int (delta "bwg.closure.words"));
          ("closure_dense_rows", J.Int (delta "bwg.closure.dense-rows"));
        ] )
  in
  let rows = List.map instance_row (List.map resolve_instance scale_instances) in
  (* hybrid vs forced-dense closures on the sparsest instance: same state
     space, two BWG builds, closure storage and peak RSS side by side *)
  let _, entry, net, _ = resolve_instance ("dragonfly:10x4x41", "dragonfly-minimal", 1) in
  let space = State_space.build net entry.Registry.algo in
  State_space.materialize_move_graphs space;
  let build_with dense =
    Gc.compact ();
    ignore (Obs.reset_peak_rss ());
    Obs.enable ();
    let before = Obs.counters () in
    let t0 = Mono.now () in
    let bwg = Bwg.build ~dense_closures:dense space in
    let ns = (Mono.now () -. t0) *. 1e9 in
    let after = Obs.counters () in
    Obs.disable ();
    let words = counter_of "bwg.closure.words" after - counter_of "bwg.closure.words" before in
    let peak_kb = Option.value (Obs.peak_rss_kb ()) ~default:0 in
    (bwg, words, peak_kb, ns)
  in
  let bwg_h, words_h, rss_h, ns_h = build_with false in
  let bwg_d, words_d, rss_d, ns_d = build_with true in
  let identical = Bwg.is_acyclic bwg_h = Bwg.is_acyclic bwg_d in
  let ratio = float_of_int words_h /. float_of_int (max 1 words_d) in
  Printf.printf
    "hybrid vs dense closures (dragonfly:10x4x41): %d vs %d words (%.3fx), \
     peak %d vs %d MB\n%!"
    words_h words_d ratio (rss_h / 1024) (rss_d / 1024);
  if ratio > 0.5 then begin
    Printf.eprintf
      "FAIL: hybrid closure storage %.3fx of forced-dense exceeds the 0.5x budget\n"
      ratio;
    exit 1
  end;
  if not identical then begin
    Printf.eprintf "FAIL: hybrid and dense closures disagree on acyclicity\n";
    exit 1
  end;
  (* --domains sweep on the same instance: verdicts must match bit for bit *)
  let sweep =
    List.map
      (fun domains ->
        Gc.compact ();
        let t0 = Mono.now () in
        let v = Checker.verdict ~domains net entry.Registry.algo in
        let ns = (Mono.now () -. t0) *. 1e9 in
        (domains, v, ns))
      [ 1; 2; 4 ]
  in
  let render v = Format.asprintf "%a" (Checker.pp_verdict net) v in
  let reference = match sweep with (_, v, _) :: _ -> render v | [] -> "" in
  let identical_sweep = List.for_all (fun (_, v, _) -> render v = reference) sweep in
  List.iter
    (fun (d, _, ns) -> Printf.printf "domains=%d  %8.2f s\n%!" d (ns /. 1e9))
    sweep;
  if not identical_sweep then begin
    Printf.eprintf "FAIL: verdict differs across --domains\n";
    exit 1
  end;
  let doc =
    J.Obj
      [
        ("suite", J.String "scale");
        ("unit", J.String "ns/run");
        ("instances", J.Obj rows);
        ( "hybrid_vs_dense",
          J.Obj
            [
              ("instance", J.String "dragonfly:10x4x41");
              ("closure_words_hybrid", J.Int words_h);
              ("closure_words_dense", J.Int words_d);
              ("ratio", J.Float ratio);
              ("ratio_budget", J.Float 0.5);
              ("peak_rss_kb_hybrid", J.Int rss_h);
              ("peak_rss_kb_dense", J.Int rss_d);
              ("bwg_build_ns_hybrid", J.Float ns_h);
              ("bwg_build_ns_dense", J.Float ns_d);
              ("verdicts_identical", J.Bool identical);
            ] );
        ( "domains_sweep",
          J.Obj
            [
              ("instance", J.String "dragonfly:10x4x41");
              ("verdicts_identical", J.Bool identical_sweep);
              ( "runs",
                J.List
                  (List.map
                     (fun (d, _, ns) ->
                       J.Obj [ ("domains", J.Int d); ("ns", J.Float ns) ])
                     sweep) );
            ] );
        ("peak_rss_is_per_instance", J.Bool rss_resets);
      ]
  in
  let oc = open_out bench6_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench6_json

(* ------------------- E19: --domains end-to-end speedup ----------------- *)

let bench9_json = "BENCH_9.json"

(* Full checks (validate + state space + BWG + classification) of the
   largest catalogue instance across --domains 1/2/4.  Two gates:

   - the JSON reports must be byte-identical across domain counts —
     the determinism contract of Domain_pool, end to end;
   - a hardware-aware performance gate.  On >= 4 cores the parallel
     phases must deliver >= 1.6x end-to-end at --domains 4.  On
     smaller machines a speedup cannot physically exist, so the gate
     degrades to bounded overhead: --domains 4 may cost at most 1.25x
     serial (the pool's concurrency cap makes oversubscription run the
     same chunks sequentially).  The JSON records the core count and
     which gate applied, so a CI log can never pass silently for the
     wrong reason. *)
let run_domains () =
  Printf.printf "\n=== E19: --domains end-to-end, dragonfly:10x4x41 ===\n%!";
  let module J = Dfr_util.Json in
  let _, entry, net, _ =
    resolve_instance ("dragonfly:10x4x41", "dragonfly-minimal", 1)
  in
  let algo = entry.Registry.algo in
  let run domains =
    (* best of two: the first run also warms the page cache and the
       major heap, so a single timing would overcharge domains=1 *)
    let once () =
      Gc.compact ();
      let t0 = Mono.now () in
      let r = Checker.check ~domains net algo in
      (Mono.now () -. t0, Report_json.to_string net algo r)
    in
    let s1, report = once () in
    let s2, report' = once () in
    if report <> report' then begin
      Printf.eprintf "FAIL: domains=%d is not deterministic across runs\n"
        domains;
      exit 1
    end;
    (domains, report, Float.min s1 s2)
  in
  let runs = List.map run [ 1; 2; 4 ] in
  let reference = match runs with (_, r, _) :: _ -> r | [] -> "" in
  let identical = List.for_all (fun (_, r, _) -> r = reference) runs in
  List.iter (fun (d, _, s) -> Printf.printf "domains=%d  %6.2f s\n%!" d s) runs;
  if not identical then begin
    Printf.eprintf "FAIL: reports differ across --domains\n";
    exit 1
  end;
  let time d =
    match List.find_opt (fun (d', _, _) -> d' = d) runs with
    | Some (_, _, s) -> s
    | None -> assert false
  in
  let t1 = time 1 and t4 = time 4 in
  let speedup = t1 /. t4 in
  let cores = Domain.recommended_domain_count () in
  let gate, pass =
    if cores >= 4 then ("speedup_ge_1.6", speedup >= 1.6)
    else ("overhead_le_1.25", t4 <= t1 *. 1.25)
  in
  Printf.printf "cores=%d  speedup(1->4)=%.2fx  gate=%s  %s\n%!" cores speedup
    gate
    (if pass then "ok" else "FAIL");
  let doc =
    J.Obj
      [
        ("suite", J.String "domains");
        ("instance", J.String "dragonfly:10x4x41");
        ("cores", J.Int cores);
        ("pool_cap", J.Int (Dfr_util.Domain_pool.cap ()));
        ("pool_workers_spawned", J.Int (Dfr_util.Domain_pool.spawned ()));
        ("reports_identical", J.Bool identical);
        ( "runs",
          J.List
            (List.map
               (fun (d, _, s) ->
                 J.Obj [ ("domains", J.Int d); ("seconds", J.Float s) ])
               runs) );
        ("speedup_1_to_4", J.Float speedup);
        ("gate", J.String gate);
        ("gate_passed", J.Bool pass);
      ]
  in
  let oc = open_out bench9_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench9_json;
  if not pass then begin
    Printf.eprintf "FAIL: --domains gate %s did not hold (speedup %.2fx)\n" gate
      speedup;
    exit 1
  end

(* ------------------- E17: synthesis and repair costs ------------------ *)

let bench7_json = "BENCH_7.json"

(* Time-to-first-BWG', clause-learning counters, and repair minimality.
   Everything here is deterministic (no randomized search), so a single
   timed run per row suffices; the interesting numbers are the search
   statistics, not nanosecond jitter. *)
let run_synth () =
  Printf.printf "\n=== E17: synthesis — time to BWG', learning, repair ===\n%!";
  let module J = Dfr_util.Json in
  let module Synth = Dfr_synth.Synth in
  let entry name =
    match Registry.find name with
    | Some e -> e
    | None -> failwith ("synth bench: unknown registry entry " ^ name)
  in
  let timed f =
    let t0 = Mono.now () in
    let r = f () in
    (r, (Mono.now () -. t0) *. 1e9)
  in
  let stats_json (s : Synth.stats) =
    J.Obj
      [
        ("rebuilds", J.Int s.Synth.rebuilds);
        ("decisions", J.Int s.Synth.decisions);
        ("conflicts", J.Int s.Synth.conflicts);
        ("clauses_learned", J.Int s.Synth.learned);
        ("pruned", J.Int s.Synth.pruned);
        ("restored", J.Int s.Synth.restored);
      ]
  in
  (* Row 1: Theorem-3 forward synthesis on every multi-wait catalogue
     algorithm the checker accepts — time to the first BWG' plus the
     search counters. *)
  let bwg_rows =
    List.filter_map
      (fun (name, minimize) ->
        let e = entry name in
        let net = Registry.network_for e None in
        let space = State_space.build net e.Registry.algo in
        let outcome, ns =
          timed (fun () -> Synth.synthesize ~minimize space)
        in
        match outcome with
        | Synth.Synthesized s ->
          Printf.printf "  bwg %-24s %8.2f ms  removed %3d  %s\n%!" name
            (ns /. 1e6) (List.length s.Synth.removed)
            (Printf.sprintf "rebuilds %d, clauses %d" s.Synth.stats.Synth.rebuilds
               s.Synth.stats.Synth.learned);
          Some
            ( name,
              J.Obj
                [
                  ("time_to_bwg_prime_ns", J.Float ns);
                  ("minimized", J.Bool minimize);
                  ("removed", J.Int (List.length s.Synth.removed));
                  ("stats", stats_json s.Synth.stats);
                ] )
        | _ ->
          Printf.printf "  bwg %-24s did not synthesize (skipped row)\n%!" name;
          None)
      [ ("two-buffer", true); ("two-buffer-vct", true); ("duato", false) ]
  in
  (* Row 2: honest Unsat — Theorem 3's necessity direction on a
     deadlocking control.  The cost of concluding "no BWG' exists". *)
  let unsat_row =
    let e = entry "single-buffer" in
    let net = Registry.network_for e None in
    let space = State_space.build net e.Registry.algo in
    let outcome, ns = timed (fun () -> Synth.synthesize space) in
    let verdict =
      match outcome with
      | Synth.Unsat _ -> "unsat"
      | Synth.Synthesized _ -> "synthesized"
      | Synth.Already_free _ -> "already-free"
      | Synth.Gave_up _ -> "gave-up"
    in
    Printf.printf "  unsat %-22s %8.2f ms  verdict %s\n%!" "single-buffer"
      (ns /. 1e6) verdict;
    J.Obj
      [
        ("algorithm", J.String "single-buffer");
        ("time_ns", J.Float ns);
        ("verdict", J.String verdict);
      ]
  in
  (* Row 3: repair minimality on the dragonfly control — how many route
     entries the virtual-copy widening adds, how many the search removes,
     and how many the greedy re-admission pass hands back. *)
  let repair_row =
    let e = entry "dragonfly-minimal-1vc" in
    let net = Registry.network_for e None in
    let outcome, ns = timed (fun () -> Synth.repair net e.Registry.algo) in
    match outcome with
    | Synth.Synthesized s ->
      let removed = List.length s.Synth.removed in
      Printf.printf
        "  repair %-21s %8.2f ms  widened %d, removed %d, restored %d\n%!"
        "dragonfly-minimal-1vc" (ns /. 1e6) s.Synth.widened removed
        s.Synth.stats.Synth.restored;
      J.Obj
        [
          ("algorithm", J.String "dragonfly-minimal-1vc");
          ("time_ns", J.Float ns);
          ("widened", J.Int s.Synth.widened);
          ("removed", J.Int removed);
          ("kept_of_widened", J.Int (s.Synth.widened - removed));
          ("stats", stats_json s.Synth.stats);
        ]
    | _ ->
      Printf.printf "  repair dragonfly-minimal-1vc FAILED\n%!";
      J.Obj [ ("error", J.String "repair did not synthesize") ]
  in
  (* Row 4: the same repair under Obs, for the per-phase span breakdown
     (solve vs attempt probes vs minimization). *)
  let obs_metrics =
    Obs.enable ();
    let e = entry "dragonfly-minimal-1vc" in
    let net = Registry.network_for e None in
    (match Synth.repair net e.Registry.algo with
    | Synth.Synthesized _ -> ()
    | _ -> Printf.printf "  obs repair run did not synthesize\n%!");
    let spans =
      List.map
        (fun (name, (calls, us)) ->
          ( name,
            J.Obj [ ("calls", J.Int calls); ("total_us", J.Float us) ] ))
        (List.sort compare (Obs.span_totals ()))
    in
    let metrics = Obs.metrics_json () in
    Obs.disable ();
    List.iter
      (fun (name, j) ->
        match j with
        | J.Obj [ _; ("total_us", J.Float us) ] ->
          Printf.printf "  span %-28s %10.2f ms\n%!" name (us /. 1e3)
        | _ -> ())
      spans;
    J.Obj [ ("spans", J.Obj spans); ("metrics", metrics) ]
  in
  let doc =
    J.Obj
      [
        ("suite", J.String "synth");
        ("unit", J.String "ns");
        ("synthesize", J.Obj bwg_rows);
        ("unsat", unsat_row);
        ("repair", repair_row);
        ("repair_obs", obs_metrics);
      ]
  in
  let oc = open_out bench7_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench7_json

let run_micro () =
  Printf.printf "\n=== E8: micro benchmarks (Bechamel, monotonic clock) ===\n%!";
  let test = Test.make_grouped ~name:"dfr" ~fmt:"%s/%s" micro_tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let estimated =
    List.filter_map
      (fun (name, r) ->
        match Analyze.OLS.estimates r with
        | Some [ ns ] -> Some (name, ns)
        | _ -> None)
      (List.sort compare rows)
  in
  List.iter
    (fun (name, ns) ->
      if ns > 1e6 then Printf.printf "%-40s %12.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-40s %12.1f ns/run\n" name ns)
    estimated;
  write_bench_json estimated;
  run_obs ()

(* ------------- E18: incremental re-checking --------------------------- *)

let bench8_json = "BENCH_8.json"

(* Single-clause edits on the 11k-buffer dragonfly (the E16 headline
   instance), re-verdicted through an incremental session instead of a
   cold check.  The minimal routing is deterministic, so the measured
   route edit is a real one: widening one destination's final local hop
   to either virtual channel.  vc1 channels never route back to vc0, so
   the BWG stays acyclic and every re-verdict rides the fast path — but
   each widen adds rank-backward edges, so it also exercises the lazy
   rank recompute.  The wait-layer edits measure the O(cached emissions)
   patch path.  The ISSUE gate is the 10x speedup over cold; the 100 us
   target is reported, not gated, since the route edit pays a full
   certificate recompute. *)
let run_incr () =
  Printf.printf "\n=== E18: incremental re-checking — dragonfly:10x4x41 ===\n%!";
  let module J = Dfr_util.Json in
  let entry =
    match Registry.find "dragonfly-minimal" with
    | Some e -> e
    | None -> failwith "incr: dragonfly-minimal not registered"
  in
  let topo =
    match Topology.of_string "dragonfly:10x4x41" with
    | Ok t -> t
    | Error m -> failwith ("incr: " ^ m)
  in
  let net = Registry.network_for entry (Some topo) in
  let algo = { entry.Registry.algo with Algo.reduced_waits = None } in
  let a =
    match Topology.dragonfly_params topo with
    | Some (a, _, _) -> a
    | None -> failwith "incr: not a dragonfly"
  in
  (* widen destination [d]'s final local hop to both vcs; every other
     destination routes exactly as before, so the frontier is [d] *)
  let widen d =
    Algo.with_relation algo ~name:algo.Algo.name (fun net b ~dest ->
        let base = algo.Algo.route net b ~dest in
        let head = Buf.head_node b in
        if dest = d && head / a = d / a && head <> d then
          let port = ((d mod a) - (head mod a) - 1 + a) mod a in
          let vc1 =
            Buf.id (Net.channel net ~src:head ~dim:port ~dir:Topology.Plus ~vc:1)
          in
          if List.mem vc1 base then base else base @ [ vc1 ]
        else base)
  in
  let time f =
    let t0 = Mono.now () in
    let r = f () in
    ((Mono.now () -. t0) *. 1e9, r)
  in
  let cold_ns, cold_report =
    time (fun () ->
        let report = Checker.check net algo in
        J.to_string (Report_json.of_outcome net algo report))
  in
  Printf.printf "cold check: %.2f s\n%!" (cold_ns /. 1e9);
  let create_ns, (session, r0) = time (fun () -> Incr.create net algo) in
  if J.to_string r0.Incr.report <> cold_report then begin
    Printf.eprintf "FAIL: incremental baseline differs from the cold report\n";
    exit 1
  end;
  let nn = State_space.num_nodes (Incr.space session) in
  let require_fast (r : Incr.result) =
    if r.Incr.path <> Incr.Fast then begin
      Printf.eprintf "FAIL: single-clause edit left the fast path\n";
      exit 1
    end
  in
  let edits = 20 in
  (* route-layer: widen a destination, then restore it — both are real
     single-destination changes re-deriving 1/nn of the instance *)
  let route_samples =
    List.concat
      (List.init edits (fun i ->
           let d = (i * 97 + 1) mod nn in
           let dt1, r1 = time (fun () -> Incr.update session (widen d) ~dirty:[ d ]) in
           let dt2, r2 = time (fun () -> Incr.update session algo ~dirty:[ d ]) in
           require_fast r1;
           require_fast r2;
           if J.to_string r2.Incr.report <> cold_report then begin
             Printf.eprintf "FAIL: restored instance differs from the cold report\n";
             exit 1
           end;
           [ dt1; dt2 ]))
  in
  (* wait-layer: a rewrapped waiting rule with unchanged values rides the
     quick patch path (this instance is deterministic, so there is
     nothing to narrow — the patch machinery itself is what's timed) *)
  let wait_samples =
    List.init edits (fun i ->
        let d = (i * 53 + 7) mod nn in
        let algo' =
          Algo.with_waits algo ~name:algo.Algo.name (fun net b ~dest ->
              algo.Algo.waits net b ~dest)
        in
        let dt, r = time (fun () -> Incr.update session algo' ~dirty:[ d ]) in
        require_fast r;
        dt)
  in
  let route_ns = median route_samples in
  let wait_ns = median wait_samples in
  let c = Incr.counters session in
  if c.Incr.patched_dests < edits then begin
    Printf.eprintf "FAIL: wait edits did not ride the patch path (%d patched)\n"
      c.Incr.patched_dests;
    exit 1
  end;
  let speedup = cold_ns /. route_ns in
  Printf.printf
    "cold %.0f ms, create %.0f ms; re-verdict: route edit %.0f us, wait edit \
     %.1f us -> %.0fx vs cold\n"
    (cold_ns /. 1e6) (create_ns /. 1e6) (route_ns /. 1e3) (wait_ns /. 1e3)
    speedup;
  if speedup < 10.0 then begin
    Printf.eprintf
      "FAIL: incremental re-verdict only %.1fx faster than cold (budget 10x)\n"
      speedup;
    exit 1
  end;
  let doc =
    J.Obj
      [
        ("suite", J.String "incr");
        ("problem", J.String "dragonfly-minimal@dragonfly:10x4x41");
        ("destinations", J.Int nn);
        ("edits", J.Int (List.length route_samples + List.length wait_samples));
        ("cold_ns", J.Float cold_ns);
        ("create_ns", J.Float create_ns);
        ("delta_route_edit_ns", J.Float route_ns);
        ("delta_wait_edit_ns", J.Float wait_ns);
        ("speedup_vs_cold", J.Float speedup);
        ("speedup_budget", J.Float 10.0);
        ("target_us", J.Int 100);
        ("route_edit_meets_target", J.Bool (route_ns <= 100_000.0));
        ("wait_edit_meets_target", J.Bool (wait_ns <= 100_000.0));
        ("verified_bit_for_bit", J.Bool true);
        ( "counters",
          J.Obj
            [
              ("updates", J.Int c.Incr.updates);
              ("fast_verdicts", J.Int c.Incr.fast_verdicts);
              ("replays", J.Int c.Incr.replays);
              ("patched_dests", J.Int c.Incr.patched_dests);
              ("reemitted_dests", J.Int c.Incr.reemitted_dests);
            ] );
      ]
  in
  let oc = open_out bench8_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench8_json

(* --------------------------------------------------------------------- *)

let bench10_json = "BENCH_10.json"

(* E20, two gates:

   (a) a 50-fault storm sweep on the 11k-buffer dragonfly rides ONE
   incremental session, so the whole campaign must beat 50 cold checks
   by >= 10x.  Cold cost is sampled (3 faults re-checked from scratch),
   not paid 50 times — the sampled reports double as a bit-for-bit check
   of the incremental path.

   (b) the analytic worst-case latency bounds are sound: on every
   catalogue wormhole instance where both sides are defined (bounds
   exist and the simulated workload drains), analytic p100 >= the
   simulator's observed p100. *)
let run_scenario () =
  Printf.printf "\n=== E20: fault campaigns + latency bounds ===\n%!";
  let module J = Dfr_util.Json in
  let module Fault = Dfr_scenario.Fault in
  let module Degrade = Dfr_scenario.Degrade in
  let module Scenario = Dfr_scenario.Scenario in
  let module Latency = Dfr_scenario.Latency in
  let module Traffic = Dfr_sim.Traffic in
  let module Wormhole_sim = Dfr_sim.Wormhole_sim in
  let module Stats = Dfr_sim.Stats in
  let time f =
    let t0 = Mono.now () in
    let r = f () in
    ((Mono.now () -. t0) *. 1e9, r)
  in
  (* ---- (a) the storm sweep ---------------------------------------- *)
  let entry =
    match Registry.find "dragonfly-minimal" with
    | Some e -> e
    | None -> failwith "scenario: dragonfly-minimal not registered"
  in
  let topo =
    match Topology.of_string "dragonfly:10x4x41" with
    | Ok t -> t
    | Error m -> failwith ("scenario: " ^ m)
  in
  let net = Registry.network_for entry (Some topo) in
  let algo = entry.Registry.algo in
  let faults = 50 in
  let plan =
    {
      Fault.name = Some "bench-storm";
      seed = 8088;
      steps = [ { Fault.at = 0; fault = Fault.Storm { count = faults; seed = None } } ];
    }
  in
  let incr_ns, campaign =
    time (fun () ->
        match Scenario.campaign ~mode:`Sweep net algo plan with
        | Ok c -> c
        | Error m -> failwith ("scenario: campaign: " ^ m))
  in
  let outcomes = Array.of_list campaign.Scenario.outcomes in
  if Array.length outcomes <> faults then begin
    Printf.eprintf "FAIL: expected %d outcomes, got %d\n" faults
      (Array.length outcomes);
    exit 1
  end;
  Printf.printf "incremental sweep: %d faults in %.2f s (%d buffers)\n%!" faults
    (incr_ns /. 1e9)
    (Net.num_buffers net);
  let steps =
    match Fault.expand plan net with
    | Ok s -> Array.of_list s
    | Error m -> failwith ("scenario: expand: " ^ m)
  in
  let sampled = [ 0; faults / 2; faults - 1 ] in
  let cold_samples =
    List.map
      (fun i ->
        let step = steps.(i) in
        let algo' =
          match Degrade.apply campaign.Scenario.space [ step.Fault.fault ] with
          | Ok (Degrade.Filtered { algo = a; _ }) -> a
          | Ok (Degrade.Rebuilt _) ->
            failwith "scenario: a storm kill rebuilt the skeleton"
          | Error m -> failwith ("scenario: degrade: " ^ m)
        in
        let ns, cold_report =
          time (fun () ->
              let r = Checker.check net algo' in
              J.to_string (Report_json.of_outcome net algo' r))
        in
        if J.to_string outcomes.(i).Scenario.report <> cold_report then begin
          Printf.eprintf
            "FAIL: fault %d: incremental report differs from cold bytes\n" i;
          exit 1
        end;
        Printf.printf "  cold fault %-2d: %.2f s (bytes match)\n%!" i (ns /. 1e9);
        ns)
      sampled
  in
  let cold_per_fault = median cold_samples in
  let est_cold_ns = cold_per_fault *. float_of_int faults in
  let speedup = est_cold_ns /. incr_ns in
  Printf.printf
    "cold per fault %.2f s (median of %d) -> est. cold sweep %.0f s; \
     speedup %.1fx (budget 10x)\n%!"
    (cold_per_fault /. 1e9) (List.length cold_samples) (est_cold_ns /. 1e9)
    speedup;
  if speedup < 10.0 then begin
    Printf.eprintf
      "FAIL: incremental fault sweep only %.1fx faster than cold (budget 10x)\n"
      speedup;
    exit 1
  end;
  (* ---- (b) latency soundness over the catalogue -------------------- *)
  let latency_rows =
    List.filter_map
      (fun (e : Registry.entry) ->
        if e.Registry.expected_deadlock_free <> Some true then None
        else
          let net = Registry.network_for e None in
          match (Net.switching net, Net.topology net) with
          | Net.Wormhole, Some t -> (
            let traffic =
              Traffic.bursty t ~pattern:Traffic.Uniform ~burst:4 ~rate:0.02
                ~length:4 ~horizon:400 ~seed:11
            in
            if traffic = [] then None
            else
              let report = Checker.check net e.Registry.algo in
              match report.Checker.verdict with
              | Checker.Deadlock_free _ -> (
                let bounds =
                  Latency.analyze report.Checker.space report.Checker.bwg traffic
                in
                let observed =
                  match Wormhole_sim.run net e.Registry.algo traffic with
                  | Wormhole_sim.Completed stats ->
                    Some (Stats.percentile_latency stats 1.0)
                  | _ -> None
                in
                match (bounds.Latency.defined, observed) with
                | true, Some obs ->
                  let sound = bounds.Latency.p100 >= obs in
                  Printf.printf "  %-22s bound p100 %6d, observed %4d  %s\n%!"
                    e.Registry.name bounds.Latency.p100 obs
                    (if sound then "sound" else "VIOLATED");
                  Some
                    ( J.Obj
                        [
                          ("instance", J.String e.Registry.name);
                          ("packets", J.Int (Traffic.count traffic));
                          ("bound_p50", J.Int bounds.Latency.p50);
                          ("bound_p100", J.Int bounds.Latency.p100);
                          ("observed_p100", J.Int obs);
                          ("sound", J.Bool sound);
                        ],
                      sound )
                | _ -> None)
              | _ -> None)
          | _ -> None)
      Registry.all
  in
  if latency_rows = [] then begin
    Printf.eprintf "FAIL: no catalogue instance produced comparable bounds\n";
    exit 1
  end;
  if List.exists (fun (_, sound) -> not sound) latency_rows then begin
    Printf.eprintf "FAIL: an analytic latency bound fell below the observed p100\n";
    exit 1
  end;
  let doc =
    J.Obj
      [
        ("suite", J.String "scenario");
        ("problem", J.String "dragonfly-minimal@dragonfly:10x4x41");
        ("buffers", J.Int (Net.num_buffers net));
        ("faults", J.Int faults);
        ("sweep_ns", J.Float incr_ns);
        ("cold_per_fault_ns", J.Float cold_per_fault);
        ("est_cold_sweep_ns", J.Float est_cold_ns);
        ("speedup_vs_cold", J.Float speedup);
        ("speedup_budget", J.Float 10.0);
        ("verified_bit_for_bit", J.Bool true);
        ("latency_soundness", J.List (List.map fst latency_rows));
      ]
  in
  let oc = open_out bench10_json in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" bench10_json

(* --------------------------------------------------------------------- *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "fig3" -> Experiments.fig3 ()
  | "fig12" -> Experiments.fig12 ()
  | "thm4" -> Experiments.thm4 ()
  | "thm5" -> Experiments.thm5 ()
  | "thm6" -> Experiments.thm6 ()
  | "matrix" -> Experiments.matrix ()
  | "perf" -> Experiments.perf ()
  | "ablations" -> Experiments.ablations ()
  | "perf-router" -> Experiments.perf_router ()
  | "mesh-adaptiveness" -> Experiments.mesh_adaptiveness ()
  | "turns" -> Experiments.turn_tables ()
  | "parallel" -> Experiments.parallel_bwg ()
  | "micro" -> run_micro ()
  | "serve" -> run_serve ()
  | "scale" -> run_scale ()
  | "domains" -> run_domains ()
  | "synth" -> run_synth ()
  | "incr" -> run_incr ()
  | "scenario" -> run_scenario ()
  | "all" ->
    Experiments.all ();
    run_micro ();
    run_serve ();
    run_scale ();
    run_domains ();
    run_synth ();
    run_incr ();
    run_scenario ()
  | other ->
    Printf.eprintf
      "unknown experiment %S (fig3 fig12 thm4 thm5 thm6 matrix perf ablations micro serve scale domains synth incr scenario all)\n"
      other;
    exit 1
