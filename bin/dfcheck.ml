(* dfcheck: command-line front end for the buffer-waiting-graph toolkit.

   Subcommands:
     list          catalogue of routing algorithms
     check         deadlock-freedom verdict for an algorithm on a network
     bwg           export the buffer waiting graph as Graphviz DOT
     adaptiveness  Figure 3: degree of adaptiveness vs hypercube dimension
     matrix        verdict matrix: algorithms x proof techniques (E6)
     simulate      flit-level simulation with a synthetic workload *)

open Cmdliner
open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

(* ------------------------------------------------------------------ *)
(* shared argument parsing                                             *)

let parse_topology s =
  (* shared with the spec language's `topology' clause *)
  match Topology.of_string s with
  | Ok t -> Ok t
  | Error msg -> Error (`Msg msg)

let topology_conv =
  Arg.conv ((fun s -> parse_topology s), fun fmt t -> Format.fprintf fmt "%s" (Topology.name t))

let topo_arg =
  let doc =
    "Topology: hypercube:N, mesh:AxBx..., torus:AxBx... or ring:N.  Defaults \
     to a small topology fitting the algorithm."
  in
  Arg.(value & opt (some topology_conv) None & info [ "t"; "topology" ] ~doc)

let algo_arg =
  let doc = "Routing algorithm (see `dfcheck list')." in
  Arg.(required & opt (some string) None & info [ "a"; "algorithm" ] ~doc)

let lookup name =
  match Registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown algorithm %S; known: %s" name
         (String.concat ", " (Registry.names ())))

(* Exit codes (kept machine-checkable, see test/cli_exit_codes.sh):
     0  deadlock-free / success
     1  deadlock found (or, for audit, a catalogue mismatch)
     2  usage error: unknown algorithm, malformed spec, bad command line
     3  verdict Unknown (a cap or budget was hit)                       *)
let exit_of_verdict = function
  | Checker.Deadlock_free _ -> 0
  | Checker.Deadlock_possible _ -> 1
  | Checker.Unknown _ -> 3

(* ------------------------------------------------------------------ *)
(* observability: --trace / --metrics on the checking subcommands      *)

module Obs = Dfr_obs.Obs

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event timeline of this run to $(docv) \
           (open in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect counters and gauges; JSON reports gain a $(b,metrics) \
           field, text output is followed by a metrics block.")

let obs_setup ~trace ~metrics = if trace <> None || metrics then Obs.enable ()

let obs_teardown ~trace =
  match trace with
  | Some file ->
    Obs.write_trace file;
    Printf.eprintf "wrote trace %s\n%!" file
  | None -> ()

(* the report parser ignores unknown fields, so appending is compatible *)
let with_metrics ~metrics doc =
  match (metrics, doc) with
  | true, Dfr_util.Json.Obj fields ->
    Dfr_util.Json.Obj (fields @ [ ("metrics", Obs.metrics_json ()) ])
  | _ -> doc

let print_text_metrics ~metrics =
  if metrics then
    Printf.printf "metrics:\n%s\n"
      (Dfr_util.Json.to_string_pretty (Obs.metrics_json ()))

(* ------------------------------------------------------------------ *)
(* list                                                                *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Printf.printf "%-24s %-10s %s\n" e.Registry.name
          (match e.Registry.expected_deadlock_free with
          | Some true -> "[free]"
          | Some false -> "[deadlock]"
          | None -> "[?]")
          e.Registry.description)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the routing algorithms in the catalogue")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_run name topo replay certificate json domains trace metrics =
  match lookup name with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok e ->
    obs_setup ~trace ~metrics;
    let net = Registry.network_for e topo in
    let report = Checker.check ~domains net e.Registry.algo in
    if json then
      print_endline
        (Dfr_util.Json.to_string_pretty
           (with_metrics ~metrics (Report_json.of_report net e.Registry.algo report)))
    else if certificate then Certificate.print net e.Registry.algo report
    else begin
      Format.printf "%s on %s:@.  %a@." e.Registry.name (Net.name net)
        (Checker.pp_verdict net) report.Checker.verdict;
      print_text_metrics ~metrics
    end;
    (match report.Checker.verdict with
    | Checker.Deadlock_possible failure when replay ->
      (match Scenario.replay net e.Registry.algo failure with
      | Some true -> Format.printf "  replay: deadlock confirmed in simulation@."
      | Some false -> Format.printf "  replay: configuration drained (not confirmed)@."
      | None -> Format.printf "  replay: nothing to replay for this failure@.")
    | _ -> ());
    obs_teardown ~trace;
    exit_of_verdict report.Checker.verdict

let check_cmd =
  let replay =
    Arg.(value & flag & info [ "replay" ] ~doc:"Replay a deadlock verdict in the simulator.")
  in
  let certificate =
    Arg.(value & flag
         & info [ "certificate" ] ~doc:"Print a full proof certificate.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:
               "Build the BWG and classify its cycles in parallel with this \
                many OCaml domains.")
  in
  Cmd.v (Cmd.info "check" ~doc:"Decide deadlock freedom with the BWG checker")
    Term.(const check_run $ algo_arg $ topo_arg $ replay $ certificate $ json
          $ domains $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* bwg: DOT export                                                     *)

let bwg_run name topo output =
  match lookup name with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok e ->
    let net = Registry.network_for e topo in
    let space = State_space.build net e.Registry.algo in
    let bwg = Bwg.build space in
    let dot = Bwg.to_dot bwg in
    (match output with
    | None -> print_string dot
    | Some file ->
      let oc = open_out file in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s (%d vertices, %d edges)\n" file
        (Dfr_graph.Digraph.num_vertices (Bwg.graph bwg))
        (Dfr_graph.Digraph.num_edges (Bwg.graph bwg)));
    0

let bwg_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output DOT file.")
  in
  Cmd.v (Cmd.info "bwg" ~doc:"Export the buffer waiting graph as Graphviz DOT")
    Term.(const bwg_run $ algo_arg $ topo_arg $ output)

(* ------------------------------------------------------------------ *)
(* adaptiveness (Figure 3)                                             *)

let adaptiveness_run max_n =
  let algos = [ "ecube"; "duato"; "efa" ] in
  Printf.printf "# Degree of adaptiveness (Figure 3), buffer-level paths\n";
  Printf.printf "%-12s" "dimension";
  List.iter (fun a -> Printf.printf " %12s" a) algos;
  print_newline ();
  let sweeps =
    List.map
      (fun a ->
        match Dfr_adaptiveness.Hypercube_adaptiveness.rule_of_name a with
        | Some r -> Dfr_adaptiveness.Hypercube_adaptiveness.sweep r ~max_n
        | None -> assert false)
      algos
  in
  for n = 2 to max_n do
    Printf.printf "%-12d" n;
    List.iter (fun s -> Printf.printf " %11.2f%%" (100.0 *. s.(n))) sweeps;
    print_newline ()
  done;
  0

let adaptiveness_cmd =
  let max_n =
    Arg.(value & opt int 12 & info [ "max-dim" ] ~doc:"Largest hypercube dimension.")
  in
  Cmd.v
    (Cmd.info "adaptiveness" ~doc:"Reproduce Figure 3 (degree of adaptiveness)")
    Term.(const adaptiveness_run $ max_n)

(* ------------------------------------------------------------------ *)
(* matrix: proof techniques side by side (E6)                          *)

let matrix_run topo =
  Printf.printf "%-24s %-12s %-14s %-12s %s\n" "algorithm" "dally-seitz"
    "duato-cond" "bwg(paper)" "network";
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e topo in
      let space = State_space.build net e.Registry.algo in
      let ds = if Cdg.deadlock_free space then "certified" else "-" in
      let dc = if Duato_condition.deadlock_free space then "certified" else "-" in
      let bwg =
        match Checker.verdict net e.Registry.algo with
        | Checker.Deadlock_free _ -> "certified"
        | Checker.Deadlock_possible _ -> "deadlock"
        | Checker.Unknown _ -> "unknown"
      in
      Printf.printf "%-24s %-12s %-14s %-12s %s\n" e.Registry.name ds dc bwg
        (Net.name net))
    Registry.all;
  0

let matrix_cmd =
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Verdict matrix: every algorithm under three proof techniques")
    Term.(const matrix_run $ topo_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let parse_pattern = function
  | "uniform" -> Ok Traffic.Uniform
  | "transpose" -> Ok Traffic.Transpose
  | "complement" -> Ok Traffic.Bit_complement
  | "shuffle" -> Ok Traffic.Shuffle
  | s when String.length s > 8 && String.sub s 0 8 = "hotspot:" -> (
    match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
    | Some h -> Ok (Traffic.Hotspot h)
    | None -> Error (`Msg "hotspot:N"))
  | _ -> Error (`Msg "expected uniform|transpose|complement|shuffle|hotspot:N")

let pattern_conv = Arg.conv (parse_pattern, fun fmt _ -> Format.fprintf fmt "<pattern>")

let simulate_run name topo pattern rate length horizon seed router json trace
    metrics =
  match lookup name with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok e -> (
    let net = Registry.network_for e topo in
    let nodes = Net.num_nodes net in
    (* user-supplied hotspot nodes are range-checked here so a bad value
       is a usage error (exit 2), not an out-of-bounds injection *)
    match pattern with
    | Traffic.Hotspot h when h < 0 || h >= nodes ->
      Printf.eprintf "hotspot node %d out of range 0..%d for %s\n" h (nodes - 1)
        (Net.name net);
      2
    | _ ->
    obs_setup ~trace ~metrics;
    let t =
      match Net.topology net with
      | Some t -> t
      | None -> failwith "simulate: custom networks not supported"
    in
    let traffic = Traffic.generate t ~pattern ~rate ~length ~horizon ~seed in
    if not json then
      Printf.printf "workload: %d packets over %d cycles\n" (Traffic.count traffic)
        horizon;
    let deadlocked, doc =
      match Net.switching net with
      | Net.Wormhole when router ->
        let o = Router_sim.run net e.Registry.algo traffic in
        if not json then Format.printf "%a@." Router_sim.pp_outcome o;
        (Router_sim.is_deadlocked o, Sim_report.router o ~nodes)
      | Net.Wormhole ->
        let o = Wormhole_sim.run net e.Registry.algo traffic in
        if not json then Format.printf "%a@." Wormhole_sim.pp_outcome o;
        (Wormhole_sim.is_deadlocked o, Sim_report.wormhole o ~nodes)
      | Net.Store_and_forward | Net.Virtual_cut_through ->
        let o = Saf_sim.run net e.Registry.algo traffic in
        if not json then Format.printf "%a@." Saf_sim.pp_outcome o;
        (Saf_sim.is_deadlocked o, Sim_report.saf o ~nodes)
    in
    if json then
      print_endline (Dfr_util.Json.to_string_pretty (with_metrics ~metrics doc))
    else print_text_metrics ~metrics;
    obs_teardown ~trace;
    if deadlocked then 1 else 0)

let simulate_cmd =
  let pattern =
    Arg.(value & opt pattern_conv Traffic.Uniform & info [ "p"; "pattern" ] ~doc:"Traffic pattern.")
  in
  let rate =
    Arg.(value & opt float 0.05 & info [ "r"; "rate" ] ~doc:"Packets per node per cycle.")
  in
  let length = Arg.(value & opt int 8 & info [ "l"; "length" ] ~doc:"Packet length in flits.") in
  let horizon =
    Arg.(value & opt int 2000 & info [ "horizon" ] ~doc:"Injection horizon in cycles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let router =
    Arg.(value & flag
         & info [ "router" ]
             ~doc:"Use the pipelined credit-based router model instead of \
                   the plain flit simulator.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the outcome as JSON.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the flit-level simulator on a workload")
    Term.(const simulate_run $ algo_arg $ topo_arg $ pattern $ rate $ length
          $ horizon $ seed $ router $ json $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* spec: user-supplied .dfr networks, no recompilation needed          *)

let spec_file_arg =
  let doc = "Network/routing specification (.dfr file; see DESIGN.md for the grammar)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let with_spec file k =
  match Dfr_spec.Spec.load_file file with
  | Error e ->
    prerr_endline (Dfr_spec.Spec.error_to_string ~file e);
    2
  | Ok spec -> k spec

let spec_check_run file replay certificate json domains trace metrics =
  with_spec file (fun spec ->
      obs_setup ~trace ~metrics;
      let net = spec.Dfr_spec.Spec.net and algo = spec.Dfr_spec.Spec.algo in
      let report = Checker.check ~domains net algo in
      if json then
        print_endline
          (Dfr_util.Json.to_string_pretty
             (with_metrics ~metrics (Report_json.of_report net algo report)))
      else if certificate then Certificate.print net algo report
      else begin
        Format.printf "%s on %s:@.  %a@." algo.Algo.name (Net.name net)
          (Checker.pp_verdict net) report.Checker.verdict;
        print_text_metrics ~metrics
      end;
      (match report.Checker.verdict with
      | Checker.Deadlock_possible failure when replay ->
        (match Scenario.replay net algo failure with
        | Some true -> Format.printf "  replay: deadlock confirmed in simulation@."
        | Some false -> Format.printf "  replay: configuration drained (not confirmed)@."
        | None -> Format.printf "  replay: nothing to replay for this failure@.")
      | _ -> ());
      obs_teardown ~trace;
      exit_of_verdict report.Checker.verdict)

let spec_check_cmd =
  let replay =
    Arg.(value & flag & info [ "replay" ] ~doc:"Replay a deadlock verdict in the simulator.")
  in
  let certificate =
    Arg.(value & flag & info [ "certificate" ] ~doc:"Print a full proof certificate.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.") in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Build the BWG and classify its cycles in parallel with this many OCaml domains.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide deadlock freedom for a spec-defined network")
    Term.(const spec_check_run $ spec_file_arg $ replay $ certificate $ json
          $ domains $ trace_arg $ metrics_arg)

let write_or_print output what content =
  match output with
  | None -> print_string content
  | Some file ->
    let oc = open_out file in
    output_string oc content;
    close_out oc;
    Printf.printf "wrote %s (%s)\n" file what

let spec_bwg_run file output =
  with_spec file (fun spec ->
      let net = spec.Dfr_spec.Spec.net and algo = spec.Dfr_spec.Spec.algo in
      let space = State_space.build net algo in
      let bwg = Bwg.build space in
      let g = Bwg.graph bwg in
      write_or_print output
        (Printf.sprintf "%d vertices, %d edges" (Dfr_graph.Digraph.num_vertices g)
           (Dfr_graph.Digraph.num_edges g))
        (Bwg.to_dot bwg);
      0)

let spec_bwg_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output DOT file.")
  in
  Cmd.v
    (Cmd.info "bwg" ~doc:"Export a spec-defined network's buffer waiting graph as DOT")
    Term.(const spec_bwg_run $ spec_file_arg $ output)

let spec_dot_run file output =
  with_spec file (fun spec ->
      write_or_print output
        (Printf.sprintf "%d nodes" (Net.num_nodes spec.Dfr_spec.Spec.net))
        (Dfr_spec.Spec.to_dot spec);
      0)

let spec_dot_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output DOT file.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a spec-defined network's channel graph as DOT")
    Term.(const spec_dot_run $ spec_file_arg $ output)

let spec_cmd =
  Cmd.group
    (Cmd.info "spec"
       ~doc:
         "Verify user-supplied networks: parse a .dfr specification and run the unchanged \
          checker pipeline on it")
    [ spec_check_cmd; spec_bwg_cmd; spec_dot_cmd ]

(* ------------------------------------------------------------------ *)
(* audit: the whole catalogue, optionally as JSON                      *)

let audit_run json domains trace metrics =
  obs_setup ~trace ~metrics;
  let reports =
    List.map
      (fun (e : Registry.entry) ->
        let net = Registry.network_for e None in
        (e, net, Checker.check ~domains net e.Registry.algo))
      Registry.all
  in
  if json then begin
    let items =
      List.map
        (fun ((e : Registry.entry), net, report) ->
          Dfr_util.Json.Obj
            [
              ("name", Dfr_util.Json.String e.Registry.name);
              ( "expected",
                match e.Registry.expected_deadlock_free with
                | Some b -> Dfr_util.Json.Bool b
                | None -> Dfr_util.Json.Null );
              ("report", Report_json.of_report net e.Registry.algo report);
            ])
        reports
    in
    let doc =
      (* --metrics changes the top level from a list to an object so the
         aggregate counters have somewhere to live *)
      if metrics then
        Dfr_util.Json.Obj
          [ ("audit", Dfr_util.Json.List items);
            ("metrics", Obs.metrics_json ()) ]
      else Dfr_util.Json.List items
    in
    print_endline (Dfr_util.Json.to_string_pretty doc)
  end
  else
    List.iter
      (fun ((e : Registry.entry), net, report) ->
        let ok =
          match (e.Registry.expected_deadlock_free, report.Checker.verdict) with
          | Some true, Checker.Deadlock_free _ -> "ok"
          | Some false, Checker.Deadlock_possible _ -> "ok"
          | None, _ -> "?"
          | _ -> "MISMATCH"
        in
        Format.printf "%-10s %-24s %a@." ok e.Registry.name
          (Checker.pp_verdict net) report.Checker.verdict)
      reports;
  if not json then print_text_metrics ~metrics;
  obs_teardown ~trace;
  let mismatches =
    List.filter
      (fun ((e : Registry.entry), _, report) ->
        match (e.Registry.expected_deadlock_free, report.Checker.verdict) with
        | Some true, Checker.Deadlock_free _ | Some false, Checker.Deadlock_possible _
        | None, _ ->
          false
        | _ -> true)
      reports
  in
  if mismatches = [] then 0 else 1

let audit_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the audit as JSON.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:"Run each check in parallel with this many OCaml domains.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Check the entire catalogue against its expected verdicts")
    Term.(const audit_run $ json $ domains $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* fuzz: differential campaign of checker vs. simulators               *)

let fuzz_run trials seed max_nodes domains out_dir trace metrics =
  obs_setup ~trace ~metrics;
  let summary =
    Dfr_fuzz.Fuzz.run
      {
        Dfr_fuzz.Fuzz.default_config with
        trials;
        seed;
        max_nodes;
        domains;
      }
  in
  Format.printf "fuzz: %d trials, seed %d, max-nodes %d@." trials seed max_nodes;
  Format.printf "%a" Dfr_fuzz.Fuzz.pp_summary summary;
  (match out_dir with
  | Some dir when summary.Dfr_fuzz.Fuzz.findings <> [] ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (f : Dfr_fuzz.Fuzz.finding) ->
        match f.Dfr_fuzz.Fuzz.spec with
        | Ok text ->
          let path =
            Filename.concat dir
              (Printf.sprintf "fuzz-s%d-t%d.dfr" seed f.Dfr_fuzz.Fuzz.trial)
          in
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.printf "wrote %s\n" path
        | Error _ -> ())
      summary.Dfr_fuzz.Fuzz.findings
  | _ -> ());
  print_text_metrics ~metrics;
  obs_teardown ~trace;
  if summary.Dfr_fuzz.Fuzz.findings = [] then 0 else 1

let fuzz_cmd =
  let trials =
    Arg.(value & opt int 200
         & info [ "trials" ] ~doc:"Number of random cases to confront.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:
               "Campaign seed; the whole campaign is a pure function of \
                (seed, trials, max-nodes), independent of --domains.")
  in
  let max_nodes =
    Arg.(value & opt int 9
         & info [ "max-nodes" ]
             ~doc:"Largest generated network, in nodes (>= 4).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:"Spread trials over this many OCaml domains.")
  in
  let out_dir =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write each shrunk disagreement as a .dfr spec into $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random routing relations, checker verdicts \
          confronted with adversarial simulator schedules and witness replay; \
          disagreements are shrunk and printed as .dfr specs")
    Term.(
      const fuzz_run $ trials $ seed $ max_nodes $ domains $ out_dir $ trace_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "dfcheck" ~version:"1.0.0"
      ~doc:"Deadlock-freedom analysis of interconnection-network routing"
  in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           list_cmd;
           check_cmd;
           bwg_cmd;
           adaptiveness_cmd;
           matrix_cmd;
           simulate_cmd;
           audit_cmd;
           spec_cmd;
           fuzz_cmd;
         ])
  in
  (* fold cmdliner's usage-error code into the documented "2 = usage error" *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
