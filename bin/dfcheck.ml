(* dfcheck: command-line front end for the buffer-waiting-graph toolkit.

   Subcommands:
     list          catalogue of routing algorithms
     check         deadlock-freedom verdict for an algorithm on a network
     bwg           export the buffer waiting graph as Graphviz DOT
     adaptiveness  Figure 3: degree of adaptiveness vs hypercube dimension
     matrix        verdict matrix: algorithms x proof techniques (E6)
     simulate      flit-level simulation with a synthetic workload
     scenario      fault-plan campaigns, adversarial traffic, latency bounds
     serve         batched NDJSON checking service (stdio or TCP)
     client        one-shot scripting client for a TCP serve instance *)

open Cmdliner
open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim
open Dfr_serve

(* ------------------------------------------------------------------ *)
(* shared argument parsing                                             *)

let parse_topology s =
  (* shared with the spec language's `topology' clause *)
  match Topology.of_string s with
  | Ok t -> Ok t
  | Error msg -> Error (`Msg msg)

let topology_conv =
  Arg.conv ((fun s -> parse_topology s), fun fmt t -> Format.fprintf fmt "%s" (Topology.name t))

let topo_arg =
  let doc =
    "Topology: hypercube:N, mesh:AxBx..., torus:AxBx... or ring:N.  Defaults \
     to a small topology fitting the algorithm."
  in
  Arg.(value & opt (some topology_conv) None & info [ "t"; "topology" ] ~doc)

let algo_arg =
  let doc = "Routing algorithm (see `dfcheck list')." in
  Arg.(required & opt (some string) None & info [ "a"; "algorithm" ] ~doc)

let lookup name =
  match Registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown algorithm %S; known: %s" name
         (String.concat ", " (Registry.names ())))

(* Exit codes (kept machine-checkable, see test/cli_exit_codes.sh):
     0  deadlock-free / success
     1  deadlock found (or, for audit, a catalogue mismatch)
     2  usage error: unknown algorithm, malformed spec, bad command line
     3  verdict Unknown (a cap or budget was hit)
   The verdict->code mapping itself lives in Report_json.exit_code so the
   serve protocol reports the same numbers. *)

(* ------------------------------------------------------------------ *)
(* observability: --trace / --metrics on the checking subcommands      *)

module Obs = Dfr_obs.Obs

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event timeline of this run to $(docv) \
           (open in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect counters and gauges; JSON reports gain a $(b,metrics) \
           field, text output is followed by a metrics block.")

let obs_setup ~trace ~metrics = if trace <> None || metrics then Obs.enable ()

let obs_teardown ~trace =
  match trace with
  | Some file ->
    Obs.write_trace file;
    Printf.eprintf "wrote trace %s\n%!" file
  | None -> ()

(* the report parser ignores unknown fields, so appending is compatible *)
let with_metrics ~metrics doc =
  match (metrics, doc) with
  | true, Dfr_util.Json.Obj fields ->
    Dfr_util.Json.Obj (fields @ [ ("metrics", Obs.metrics_json ()) ])
  | _ -> doc

let print_text_metrics ~metrics =
  if metrics then
    Printf.printf "metrics:\n%s\n"
      (Dfr_util.Json.to_string_pretty (Obs.metrics_json ()))

(* The one place a report becomes terminal output: `check', `spec check'
   and (through Report_json.of_outcome directly) the serve engine all
   agree on the JSON shape and the exit code. *)
let run_check_report ~name ~replay ~certificate ~json ~domains ~trace ~metrics
    net algo =
  obs_setup ~trace ~metrics;
  let report = Checker.check ~domains net algo in
  if json then
    print_endline
      (Dfr_util.Json.to_string_pretty
         (Report_json.of_outcome
            ?metrics:(if metrics then Some (Obs.metrics_json ()) else None)
            net algo report))
  else if certificate then Certificate.print net algo report
  else begin
    Format.printf "%s on %s:@.  %a@." name (Net.name net)
      (Checker.pp_verdict net) report.Checker.verdict;
    print_text_metrics ~metrics
  end;
  (match report.Checker.verdict with
  | Checker.Deadlock_possible failure when replay ->
    (match Dfr_scenario.Scenario.replay net algo failure with
    | Some true -> Format.printf "  replay: deadlock confirmed in simulation@."
    | Some false -> Format.printf "  replay: configuration drained (not confirmed)@."
    | None -> Format.printf "  replay: nothing to replay for this failure@.")
  | _ -> ());
  obs_teardown ~trace;
  Report_json.exit_code report.Checker.verdict

(* ------------------------------------------------------------------ *)
(* list                                                                *)

let list_cmd =
  let run json =
    if json then
      print_endline (Dfr_util.Json.to_string_pretty (Protocol.catalogue_json ()))
    else
      List.iter
        (fun (e : Registry.entry) ->
          Printf.printf "%-24s %-10s %s\n" e.Registry.name
            (match e.Registry.expected_deadlock_free with
            | Some true -> "[free]"
            | Some false -> "[deadlock]"
            | None -> "[?]")
            e.Registry.description)
        Registry.all;
    0
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:
               "Print the catalogue as JSON (the same document a serve \
                instance returns for op $(b,catalogue)).")
  in
  Cmd.v (Cmd.info "list" ~doc:"List the routing algorithms in the catalogue")
    Term.(const run $ json)

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_run name topo replay certificate json domains trace metrics =
  match lookup name with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok e ->
    let net = Registry.network_for e topo in
    run_check_report ~name:e.Registry.name ~replay ~certificate ~json ~domains
      ~trace ~metrics net e.Registry.algo

let check_cmd =
  let replay =
    Arg.(value & flag & info [ "replay" ] ~doc:"Replay a deadlock verdict in the simulator.")
  in
  let certificate =
    Arg.(value & flag
         & info [ "certificate" ] ~doc:"Print a full proof certificate.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:
               "Build the BWG and classify its cycles in parallel with this \
                many OCaml domains.")
  in
  Cmd.v (Cmd.info "check" ~doc:"Decide deadlock freedom with the BWG checker")
    Term.(const check_run $ algo_arg $ topo_arg $ replay $ certificate $ json
          $ domains $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* bwg: DOT export                                                     *)

let bwg_run name topo output =
  match lookup name with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok e ->
    let net = Registry.network_for e topo in
    let space = State_space.build net e.Registry.algo in
    let bwg = Bwg.build space in
    let dot = Bwg.to_dot bwg in
    (match output with
    | None -> print_string dot
    | Some file ->
      let oc = open_out file in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s (%d vertices, %d edges)\n" file
        (Dfr_graph.Digraph.num_vertices (Bwg.graph bwg))
        (Dfr_graph.Digraph.num_edges (Bwg.graph bwg)));
    0

let bwg_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output DOT file.")
  in
  Cmd.v (Cmd.info "bwg" ~doc:"Export the buffer waiting graph as Graphviz DOT")
    Term.(const bwg_run $ algo_arg $ topo_arg $ output)

(* ------------------------------------------------------------------ *)
(* adaptiveness (Figure 3)                                             *)

let adaptiveness_run max_n =
  let algos = [ "ecube"; "duato"; "efa" ] in
  Printf.printf "# Degree of adaptiveness (Figure 3), buffer-level paths\n";
  Printf.printf "%-12s" "dimension";
  List.iter (fun a -> Printf.printf " %12s" a) algos;
  print_newline ();
  let sweeps =
    List.map
      (fun a ->
        match Dfr_adaptiveness.Hypercube_adaptiveness.rule_of_name a with
        | Some r -> Dfr_adaptiveness.Hypercube_adaptiveness.sweep r ~max_n
        | None -> assert false)
      algos
  in
  for n = 2 to max_n do
    Printf.printf "%-12d" n;
    List.iter (fun s -> Printf.printf " %11.2f%%" (100.0 *. s.(n))) sweeps;
    print_newline ()
  done;
  0

let adaptiveness_cmd =
  let max_n =
    Arg.(value & opt int 12 & info [ "max-dim" ] ~doc:"Largest hypercube dimension.")
  in
  Cmd.v
    (Cmd.info "adaptiveness" ~doc:"Reproduce Figure 3 (degree of adaptiveness)")
    Term.(const adaptiveness_run $ max_n)

(* ------------------------------------------------------------------ *)
(* matrix: proof techniques side by side (E6)                          *)

let matrix_run topo =
  Printf.printf "%-24s %-12s %-14s %-12s %s\n" "algorithm" "dally-seitz"
    "duato-cond" "bwg(paper)" "network";
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e topo in
      let space = State_space.build net e.Registry.algo in
      let ds = if Cdg.deadlock_free space then "certified" else "-" in
      let dc = if Duato_condition.deadlock_free space then "certified" else "-" in
      let bwg =
        match Checker.verdict net e.Registry.algo with
        | Checker.Deadlock_free _ -> "certified"
        | Checker.Deadlock_possible _ -> "deadlock"
        | Checker.Unknown _ -> "unknown"
      in
      Printf.printf "%-24s %-12s %-14s %-12s %s\n" e.Registry.name ds dc bwg
        (Net.name net))
    Registry.all;
  0

let matrix_cmd =
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Verdict matrix: every algorithm under three proof techniques")
    Term.(const matrix_run $ topo_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let parse_pattern = function
  | "uniform" -> Ok Traffic.Uniform
  | "transpose" -> Ok Traffic.Transpose
  | "complement" -> Ok Traffic.Bit_complement
  | "shuffle" -> Ok Traffic.Shuffle
  | s when String.length s > 8 && String.sub s 0 8 = "hotspot:" -> (
    match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
    | Some h -> Ok (Traffic.Hotspot h)
    | None -> Error (`Msg "hotspot:N"))
  | _ -> Error (`Msg "expected uniform|transpose|complement|shuffle|hotspot:N")

let pattern_conv = Arg.conv (parse_pattern, fun fmt _ -> Format.fprintf fmt "<pattern>")

let simulate_run name topo pattern rate length horizon seed router json trace
    metrics =
  match lookup name with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok e -> (
    let net = Registry.network_for e topo in
    let nodes = Net.num_nodes net in
    (* user-supplied hotspot nodes are range-checked here so a bad value
       is a usage error (exit 2), not an out-of-bounds injection *)
    match pattern with
    | Traffic.Hotspot h when h < 0 || h >= nodes ->
      Printf.eprintf "hotspot node %d out of range 0..%d for %s\n" h (nodes - 1)
        (Net.name net);
      2
    | _ ->
    obs_setup ~trace ~metrics;
    let t =
      match Net.topology net with
      | Some t -> t
      | None -> failwith "simulate: custom networks not supported"
    in
    let traffic = Traffic.generate t ~pattern ~rate ~length ~horizon ~seed in
    if not json then
      Printf.printf "workload: %d packets over %d cycles\n" (Traffic.count traffic)
        horizon;
    let deadlocked, doc =
      match Net.switching net with
      | Net.Wormhole when router ->
        let o = Router_sim.run net e.Registry.algo traffic in
        if not json then Format.printf "%a@." Router_sim.pp_outcome o;
        (Router_sim.is_deadlocked o, Sim_report.router o ~nodes)
      | Net.Wormhole ->
        let o = Wormhole_sim.run net e.Registry.algo traffic in
        if not json then Format.printf "%a@." Wormhole_sim.pp_outcome o;
        (Wormhole_sim.is_deadlocked o, Sim_report.wormhole o ~nodes)
      | Net.Store_and_forward | Net.Virtual_cut_through ->
        let o = Saf_sim.run net e.Registry.algo traffic in
        if not json then Format.printf "%a@." Saf_sim.pp_outcome o;
        (Saf_sim.is_deadlocked o, Sim_report.saf o ~nodes)
    in
    if json then
      print_endline (Dfr_util.Json.to_string_pretty (with_metrics ~metrics doc))
    else print_text_metrics ~metrics;
    obs_teardown ~trace;
    if deadlocked then 1 else 0)

let simulate_cmd =
  let pattern =
    Arg.(value & opt pattern_conv Traffic.Uniform & info [ "p"; "pattern" ] ~doc:"Traffic pattern.")
  in
  let rate =
    Arg.(value & opt float 0.05 & info [ "r"; "rate" ] ~doc:"Packets per node per cycle.")
  in
  let length = Arg.(value & opt int 8 & info [ "l"; "length" ] ~doc:"Packet length in flits.") in
  let horizon =
    Arg.(value & opt int 2000 & info [ "horizon" ] ~doc:"Injection horizon in cycles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let router =
    Arg.(value & flag
         & info [ "router" ]
             ~doc:"Use the pipelined credit-based router model instead of \
                   the plain flit simulator.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the outcome as JSON.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the flit-level simulator on a workload")
    Term.(const simulate_run $ algo_arg $ topo_arg $ pattern $ rate $ length
          $ horizon $ seed $ router $ json $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* scenario: fault campaigns, adversarial traffic, latency bounds      *)

(* also the spec section's loader, hoisted here because scenario shares it *)
let with_spec file k =
  match Dfr_spec.Spec.load_file file with
  | Error e ->
    prerr_endline (Dfr_spec.Spec.error_to_string ~file e);
    2
  | Ok spec -> k spec

module Fault = Dfr_scenario.Fault
module Degrade = Dfr_scenario.Degrade
module Latency = Dfr_scenario.Latency
module Scenario = Dfr_scenario.Scenario

type scenario_traffic =
  | T_none
  | T_pattern of Traffic.pattern  (** open-loop Bernoulli arrivals *)
  | T_bursty of int  (** leaky-bucket bursts of this depth, uniform dests *)
  | T_storm of int list  (** multi-hotspot storm at these destinations *)
  | T_permutation
  | T_seeking  (** scripted packets aimed at the final verdict's witness *)

let parse_scenario_traffic s =
  let ints csv =
    let parts = String.split_on_char ',' csv in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest -> (
        match int_of_string_opt p with
        | Some n -> go (n :: acc) rest
        | None -> None)
    in
    go [] parts
  in
  match s with
  | "none" -> Ok T_none
  | "permutation" -> Ok T_permutation
  | "seeking" -> Ok T_seeking
  | s when String.length s > 7 && String.sub s 0 7 = "bursty:" -> (
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some b -> Ok (T_bursty b)
    | None -> Error (`Msg "bursty:BURST"))
  | s when String.length s > 6 && String.sub s 0 6 = "storm:" -> (
    match ints (String.sub s 6 (String.length s - 6)) with
    | Some ds -> Ok (T_storm ds)
    | None -> Error (`Msg "storm:D1,D2,..."))
  | s -> (
    match parse_pattern s with
    | Ok p -> Ok (T_pattern p)
    | Error _ ->
      Error
        (`Msg
           "expected none|uniform|transpose|complement|shuffle|hotspot:N|\
            bursty:B|storm:D1,D2,...|permutation|seeking"))

let scenario_traffic_conv =
  Arg.conv (parse_scenario_traffic, fun fmt _ -> Format.fprintf fmt "<traffic>")

let pp_classification fmt = function
  | Scenario.Still_free -> Format.fprintf fmt "free"
  | Scenario.Deadlocked { kind; _ } -> Format.fprintf fmt "deadlock (%s)" kind
  | Scenario.Disconnected pairs ->
    Format.fprintf fmt "disconnected (%d destination%s cut)" (List.length pairs)
      (if List.length pairs = 1 then "" else "s")
  | Scenario.Undetermined reason -> Format.fprintf fmt "unknown (%s)" reason

let print_campaign_text (c : Scenario.campaign) =
  Format.printf "plan %s on %s / %s: baseline exit %d@."
    (Option.value c.Scenario.plan_name ~default:"<unnamed>")
    c.Scenario.network c.Scenario.algorithm c.Scenario.baseline_exit;
  List.iter
    (fun (o : Scenario.outcome) ->
      Format.printf "  at %-3d %s: %a (exit %d)@." o.Scenario.at
        o.Scenario.label pp_classification o.Scenario.classification
        o.Scenario.exit_code)
    c.Scenario.outcomes;
  Format.printf "overall exit %d@." c.Scenario.exit_code

(* The degraded instance left standing after the whole plan — what the
   traffic and latency stages run against. *)
let final_instance (c : Scenario.campaign) net algo plan =
  match Fault.expand plan net with
  | Error msg -> Error msg
  | Ok steps -> (
    match steps with
    | [] -> Ok (net, algo)
    | _ -> (
      match
        Degrade.apply c.Scenario.space
          (List.map (fun (s : Fault.step) -> s.Fault.fault) steps)
      with
      | Error msg -> Error msg
      | Ok (Degrade.Filtered { algo = algo'; _ }) -> Ok (net, algo')
      | Ok (Degrade.Rebuilt { net = net'; algo = algo'; _ }) -> Ok (net', algo')))

(* Build the requested workload against the (possibly degraded) final
   instance.  Generator validation errors (zero-length packets, an empty
   or out-of-range storm destination set) raise [Invalid_argument], which
   the caller maps to a usage error — exit 2, pinned by
   test/cli_exit_codes.sh. *)
let scenario_workload ~traffic ~rate ~length ~horizon ~seed ~report fnet =
  let topo () =
    match Net.topology fnet with
    | Some t -> t
    | None ->
      invalid_arg
        "this traffic kind needs a topology-backed network (the plan's node \
         kills rebuild a custom network)"
  in
  match traffic with
  | T_none -> None
  | T_pattern p ->
    Some (Traffic.generate (topo ()) ~pattern:p ~rate ~length ~horizon ~seed)
  | T_bursty burst ->
    Some
      (Traffic.bursty (topo ()) ~pattern:Traffic.Uniform ~burst ~rate ~length
         ~horizon ~seed)
  | T_storm dests ->
    Some (Traffic.storm (topo ()) ~dests ~rate ~length ~horizon ~seed)
  | T_permutation -> Some (Traffic.permutation (topo ()) ~count:1 ~length ~seed)
  | T_seeking -> (
    let report = Lazy.force report in
    match report.Checker.verdict with
    | Checker.Deadlock_possible failure -> (
      match
        Scenario.seeking_traffic report.Checker.space ~length failure
      with
      | Some t -> Some t
      | None ->
        invalid_arg
          "the final verdict's failure carries no packet configuration to \
           aim traffic at")
    | _ ->
      invalid_arg
        "--traffic seeking needs a deadlock verdict on the final degraded \
         instance")

let scenario_exec ~mode ~plan_file ~spec_file ~algo_name ~topo ~cold ~domains
    ~traffic ~rate ~length ~horizon ~seed ~latency ~json ~trace ~metrics =
  let with_instance k =
    match (spec_file, algo_name) with
    | Some file, None ->
      with_spec file (fun spec ->
          k spec.Dfr_spec.Spec.net spec.Dfr_spec.Spec.algo)
    | None, Some name -> (
      match lookup name with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok e -> k (Registry.network_for e topo) e.Registry.algo)
    | _ ->
      prerr_endline
        "dfcheck scenario: give exactly one of --spec FILE or -a NAME";
      2
  in
  if domains < 1 then begin
    prerr_endline "dfcheck scenario: --domains must be >= 1";
    2
  end
  else
    with_instance (fun net algo ->
        match Fault.load_file plan_file with
        | Error msg ->
          prerr_endline ("dfcheck scenario: " ^ msg);
          2
        | Ok plan -> (
          obs_setup ~trace ~metrics;
          let finish code =
            obs_teardown ~trace;
            code
          in
          match Scenario.campaign ~domains ~cold ~mode net algo plan with
          | exception Invalid_argument msg ->
            prerr_endline ("dfcheck scenario: " ^ msg);
            finish 2
          | Error msg ->
            prerr_endline ("dfcheck scenario: " ^ msg);
            finish 2
          | Ok c ->
            let extras () =
              if traffic = T_none && not latency then
                Ok ([], c.Scenario.exit_code)
              else
                match final_instance c net algo plan with
                | Error msg -> Error msg
                | Ok (fnet, falgo) -> (
                  (* one cold check of the final instance feeds the
                     seeking workload and the latency analyzer *)
                  let freport = lazy (Checker.check ~domains fnet falgo) in
                  match
                    scenario_workload ~traffic ~rate ~length ~horizon ~seed
                      ~report:freport fnet
                  with
                  | exception Invalid_argument msg -> Error msg
                  | workload ->
                    let sim =
                      Option.map
                        (fun w ->
                          match Net.switching fnet with
                          | Net.Wormhole -> (
                            let o = Wormhole_sim.run fnet falgo w in
                            ( Wormhole_sim.is_deadlocked o,
                              Sim_report.wormhole o ~nodes:(Net.num_nodes fnet),
                              match o with
                              | Wormhole_sim.Completed stats ->
                                Some (Stats.percentile_latency stats 1.0)
                              | _ -> None ))
                          | Net.Store_and_forward | Net.Virtual_cut_through ->
                            let o = Saf_sim.run fnet falgo w in
                            ( Saf_sim.is_deadlocked o,
                              Sim_report.saf o ~nodes:(Net.num_nodes fnet),
                              None ))
                        workload
                    in
                    let lat =
                      if not latency then None
                      else begin
                        let report = Lazy.force freport in
                        let bounds =
                          match report.Checker.verdict with
                          | Checker.Deadlock_free _ ->
                            Latency.analyze report.Checker.space
                              report.Checker.bwg
                              (Option.value workload ~default:[])
                          | _ ->
                            {
                              Latency.defined = false;
                              reason =
                                Some
                                  "the final degraded instance is not \
                                   deadlock-free";
                              packets = 0;
                              components = 0;
                              largest_component = 0;
                              p50 = 0;
                              p99 = 0;
                              p100 = 0;
                            }
                        in
                        Some bounds
                      end
                    in
                    let fields =
                      (match sim with
                      | None -> []
                      | Some (_, doc, _) -> [ ("traffic", doc) ])
                      @
                      match (lat, sim) with
                      | None, _ -> []
                      | Some b, Some (_, _, Some observed) ->
                        [
                          ( "latency",
                            Dfr_util.Json.Obj
                              ((match Latency.to_json b with
                               | Dfr_util.Json.Obj fs -> fs
                               | j -> [ ("bounds", j) ])
                              @ [
                                  ("observed_p100", Dfr_util.Json.Int observed);
                                  ( "sound",
                                    Dfr_util.Json.Bool
                                      ((not b.Latency.defined)
                                      || b.Latency.p100 >= observed) );
                                ]) );
                        ]
                      | Some b, _ -> [ ("latency", Latency.to_json b) ]
                    in
                    let sim_exit =
                      match sim with Some (true, _, _) -> 1 | _ -> 0
                    in
                    Ok (fields, max c.Scenario.exit_code sim_exit))
            in
            (match extras () with
            | Error msg ->
              prerr_endline ("dfcheck scenario: " ^ msg);
              finish 2
            | Ok (extra, exit_code) ->
              (if json then
                 let doc =
                   match Scenario.campaign_to_json c with
                   | Dfr_util.Json.Obj fields ->
                     Dfr_util.Json.Obj (fields @ extra)
                   | j -> j
                 in
                 print_endline
                   (Dfr_util.Json.to_string_pretty (with_metrics ~metrics doc))
               else begin
                 print_campaign_text c;
                 List.iter
                   (fun (k, v) ->
                     Format.printf "%s:@.%s@." k
                       (Dfr_util.Json.to_string_pretty v))
                   extra;
                 print_text_metrics ~metrics
               end);
              finish exit_code)))

let scenario_cmd =
  let plan_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "plan" ] ~docv:"FILE" ~doc:"Fault plan (.plan file).")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Instance from a .dfr spec instead of the catalogue.")
  in
  let algo_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "a"; "algorithm" ] ~doc:"Catalogue algorithm (see `dfcheck list').")
  in
  let cold =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Re-check every fault from scratch instead of riding one \
             incremental session.  Same bytes, k times the cost — the \
             determinism tests diff the two.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~doc:"Checker parallelism, as in `check'.")
  in
  let traffic =
    Arg.(
      value
      & opt scenario_traffic_conv T_none
      & info [ "traffic" ] ~docv:"KIND"
          ~doc:
            "Workload to simulate on the final degraded instance: \
             $(b,uniform)|$(b,transpose)|$(b,complement)|$(b,shuffle)|\
             $(b,hotspot:N)|$(b,bursty:B)|$(b,storm:D1,D2,...)|\
             $(b,permutation)|$(b,seeking)|$(b,none).")
  in
  let rate =
    Arg.(
      value & opt float 0.05
      & info [ "r"; "rate" ] ~doc:"Packets per node per cycle.")
  in
  let length =
    Arg.(value & opt int 8 & info [ "l"; "length" ] ~doc:"Packet length in flits.")
  in
  let horizon =
    Arg.(
      value & opt int 2000 & info [ "horizon" ] ~doc:"Injection horizon in cycles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let latency =
    Arg.(
      value & flag
      & info [ "latency" ]
          ~doc:
            "Analytic worst-case latency bounds for the workload on the \
             final degraded instance, cross-checked against the simulated \
             p100 when both exist.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the campaign as JSON.")
  in
  let run mode plan_file spec_file algo_name topo cold domains traffic rate
      length horizon seed latency json trace metrics =
    scenario_exec ~mode ~plan_file ~spec_file ~algo_name ~topo ~cold ~domains
      ~traffic ~rate ~length ~horizon ~seed ~latency ~json ~trace ~metrics
  in
  let term mode =
    Term.(
      const (run mode) $ plan_arg $ spec_arg $ algo_name $ topo_arg $ cold
      $ domains $ traffic $ rate $ length $ horizon $ seed $ latency $ json
      $ trace_arg $ metrics_arg)
  in
  Cmd.group
    (Cmd.info "scenario"
       ~doc:
         "Fault campaigns: degrade a checked instance along a fault plan, \
          re-check each step (incrementally where the buffer skeleton \
          survives), classify the outcomes, and optionally stress the \
          degraded network with adversarial traffic and worst-case latency \
          bounds.")
    [
      Cmd.v
        (Cmd.info "sweep"
           ~doc:
             "Check every fault of the plan independently against the \
              baseline (k faults, one incremental session).")
        (term `Sweep);
      Cmd.v
        (Cmd.info "run"
           ~doc:
             "Replay the plan's timeline: faults accumulate, one re-check \
              per tick, then traffic/latency against the end state.")
        (term `Sequence);
    ]

(* ------------------------------------------------------------------ *)
(* spec: user-supplied .dfr networks, no recompilation needed          *)

let spec_file_arg =
  let doc = "Network/routing specification (.dfr file; see DESIGN.md for the grammar)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

(* `spec check --base OLD.dfr NEW.dfr`: build an incremental session on
   the base, re-derive only the destinations the edit touched, and print
   the JSON report — byte-identical to a cold `spec check --json` of the
   edited file (Incr's contract).  The delta summary goes to stderr so
   stdout stays a parseable report either way. *)
let spec_check_delta ~base_file ~file ~domains ~trace ~metrics =
  with_spec base_file (fun bspec ->
      with_spec file (fun spec ->
          obs_setup ~trace ~metrics;
          let finish code =
            obs_teardown ~trace;
            code
          in
          let cold reason =
            Printf.eprintf "delta: %s; checking cold\n%!" reason;
            let report =
              Checker.check ~domains spec.Dfr_spec.Spec.net spec.Dfr_spec.Spec.algo
            in
            print_endline
              (Dfr_util.Json.to_string_pretty
                 (Report_json.of_outcome spec.Dfr_spec.Spec.net
                    spec.Dfr_spec.Spec.algo report));
            finish (Report_json.exit_code report.Checker.verdict)
          in
          let bval = bspec.Dfr_spec.Spec.elaborated.Dfr_spec.Elaborate.spec in
          let eval = spec.Dfr_spec.Spec.elaborated.Dfr_spec.Elaborate.spec in
          match Dfr_spec.Diff.diff bval eval with
          | Dfr_spec.Diff.Incompatible reason -> cold ("base incompatible: " ^ reason)
          | Dfr_spec.Diff.Frontier f ->
            let session, _ =
              Incr.create ~domains bspec.Dfr_spec.Spec.net bspec.Dfr_spec.Spec.algo
            in
            (match Incr.update session spec.Dfr_spec.Spec.algo ~dirty:f.Dfr_spec.Diff.dirty with
            | exception Invalid_argument msg -> cold msg
            | res ->
              Printf.eprintf "delta: %s, %d/%d destinations re-derived\n%!"
                (match res.Incr.path with
                | Incr.Fast -> "fast path"
                | Incr.Replay -> "replay path")
                res.Incr.dirty_dests
                (res.Incr.dirty_dests + res.Incr.reused_dests);
              print_endline (Dfr_util.Json.to_string_pretty res.Incr.report);
              finish res.Incr.exit_code)))

let spec_check_run file base replay certificate json domains trace metrics =
  match base with
  | Some base_file -> spec_check_delta ~base_file ~file ~domains ~trace ~metrics
  | None ->
    with_spec file (fun spec ->
        let net = spec.Dfr_spec.Spec.net and algo = spec.Dfr_spec.Spec.algo in
        run_check_report ~name:algo.Algo.name ~replay ~certificate ~json ~domains
          ~trace ~metrics net algo)

let spec_check_cmd =
  let replay =
    Arg.(value & flag & info [ "replay" ] ~doc:"Replay a deadlock verdict in the simulator.")
  in
  let certificate =
    Arg.(value & flag & info [ "certificate" ] ~doc:"Print a full proof certificate.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.") in
  let base =
    Arg.(value & opt (some file) None
         & info [ "base" ] ~docv:"BASE"
             ~doc:
               "Check incrementally against $(docv), an earlier version of \
                the spec: only destinations whose routing the edit touched \
                are re-derived.  Prints the JSON report (bit-identical to a \
                cold $(b,--json) check) on stdout and a delta summary on \
                stderr; $(b,--replay) and $(b,--certificate) are ignored.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Build the BWG and classify its cycles in parallel with this many OCaml domains.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide deadlock freedom for a spec-defined network")
    Term.(const spec_check_run $ spec_file_arg $ base $ replay $ certificate $ json
          $ domains $ trace_arg $ metrics_arg)

let write_or_print output what content =
  match output with
  | None -> print_string content
  | Some file ->
    let oc = open_out file in
    output_string oc content;
    close_out oc;
    Printf.printf "wrote %s (%s)\n" file what

let spec_bwg_run file output =
  with_spec file (fun spec ->
      let net = spec.Dfr_spec.Spec.net and algo = spec.Dfr_spec.Spec.algo in
      let space = State_space.build net algo in
      let bwg = Bwg.build space in
      let g = Bwg.graph bwg in
      write_or_print output
        (Printf.sprintf "%d vertices, %d edges" (Dfr_graph.Digraph.num_vertices g)
           (Dfr_graph.Digraph.num_edges g))
        (Bwg.to_dot bwg);
      0)

let spec_bwg_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output DOT file.")
  in
  Cmd.v
    (Cmd.info "bwg" ~doc:"Export a spec-defined network's buffer waiting graph as DOT")
    Term.(const spec_bwg_run $ spec_file_arg $ output)

let spec_dot_run file bwg_prime output =
  with_spec file (fun spec ->
      if bwg_prime then begin
        (* the overlay needs a synthesized BWG': full BWG with the kept
           wait edges solid and the removed ones dashed *)
        let net = spec.Dfr_spec.Spec.net and algo = spec.Dfr_spec.Spec.algo in
        let space = State_space.build net algo in
        match Dfr_synth.Synth.synthesize space with
        | Dfr_synth.Synth.Synthesized s ->
          write_or_print output
            (Printf.sprintf "BWG' overlay, %d wait entries removed"
               (List.length s.Dfr_synth.Synth.removed))
            (Dfr_synth.Synth.bwg_prime_dot s);
          0
        | Dfr_synth.Synth.Already_free _ -> assert false
        | Dfr_synth.Synth.Unsat msg ->
          Printf.eprintf "no BWG' exists: %s\n" msg;
          1
        | Dfr_synth.Synth.Gave_up msg ->
          Printf.eprintf "synthesis gave up: %s\n" msg;
          3
      end
      else begin
        write_or_print output
          (Printf.sprintf "%d nodes" (Net.num_nodes spec.Dfr_spec.Spec.net))
          (Dfr_spec.Spec.to_dot spec);
        0
      end)

let spec_dot_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output DOT file.")
  in
  let bwg_prime =
    Arg.(value & flag
         & info [ "bwg-prime" ]
             ~doc:
               "Instead of the channel graph, render the buffer waiting \
                graph with a synthesized BWG' overlaid: kept wait edges \
                solid, removed ones dashed (exit 1 when no BWG' exists, 3 \
                when synthesis gives up).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a spec-defined network's channel graph as DOT")
    Term.(const spec_dot_run $ spec_file_arg $ bwg_prime $ output)

let spec_cmd =
  Cmd.group
    (Cmd.info "spec"
       ~doc:
         "Verify user-supplied networks: parse a .dfr specification and run the unchanged \
          checker pipeline on it")
    [ spec_check_cmd; spec_bwg_cmd; spec_dot_cmd ]

(* ------------------------------------------------------------------ *)
(* audit: the whole catalogue, optionally as JSON                      *)

let audit_run json domains trace metrics =
  obs_setup ~trace ~metrics;
  let reports =
    List.map
      (fun (e : Registry.entry) ->
        let net = Registry.network_for e None in
        (e, net, Checker.check ~domains net e.Registry.algo))
      Registry.all
  in
  if json then begin
    let items =
      List.map
        (fun ((e : Registry.entry), net, report) ->
          Dfr_util.Json.Obj
            [
              ("name", Dfr_util.Json.String e.Registry.name);
              ( "expected",
                match e.Registry.expected_deadlock_free with
                | Some b -> Dfr_util.Json.Bool b
                | None -> Dfr_util.Json.Null );
              ("report", Report_json.of_report net e.Registry.algo report);
            ])
        reports
    in
    let doc =
      (* --metrics changes the top level from a list to an object so the
         aggregate counters have somewhere to live *)
      if metrics then
        Dfr_util.Json.Obj
          [ ("audit", Dfr_util.Json.List items);
            ("metrics", Obs.metrics_json ()) ]
      else Dfr_util.Json.List items
    in
    print_endline (Dfr_util.Json.to_string_pretty doc)
  end
  else
    List.iter
      (fun ((e : Registry.entry), net, report) ->
        let ok =
          match (e.Registry.expected_deadlock_free, report.Checker.verdict) with
          | Some true, Checker.Deadlock_free _ -> "ok"
          | Some false, Checker.Deadlock_possible _ -> "ok"
          | None, _ -> "?"
          | _ -> "MISMATCH"
        in
        Format.printf "%-10s %-24s %a@." ok e.Registry.name
          (Checker.pp_verdict net) report.Checker.verdict)
      reports;
  if not json then print_text_metrics ~metrics;
  obs_teardown ~trace;
  let mismatches =
    List.filter
      (fun ((e : Registry.entry), _, report) ->
        match (e.Registry.expected_deadlock_free, report.Checker.verdict) with
        | Some true, Checker.Deadlock_free _ | Some false, Checker.Deadlock_possible _
        | None, _ ->
          false
        | _ -> true)
      reports
  in
  if mismatches = [] then 0 else 1

let audit_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the audit as JSON.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:"Run each check in parallel with this many OCaml domains.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Check the entire catalogue against its expected verdicts")
    Term.(const audit_run $ json $ domains $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* fuzz: differential campaign of checker vs. simulators               *)

let fuzz_run trials seed max_nodes domains out_dir trace metrics =
  obs_setup ~trace ~metrics;
  let summary =
    Dfr_fuzz.Fuzz.run
      {
        Dfr_fuzz.Fuzz.default_config with
        trials;
        seed;
        max_nodes;
        domains;
      }
  in
  Format.printf "fuzz: %d trials, seed %d, max-nodes %d@." trials seed max_nodes;
  Format.printf "%a" Dfr_fuzz.Fuzz.pp_summary summary;
  (match out_dir with
  | Some dir when summary.Dfr_fuzz.Fuzz.findings <> [] ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (f : Dfr_fuzz.Fuzz.finding) ->
        match f.Dfr_fuzz.Fuzz.spec with
        | Ok text ->
          let path =
            Filename.concat dir
              (Printf.sprintf "fuzz-s%d-t%d.dfr" seed f.Dfr_fuzz.Fuzz.trial)
          in
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.printf "wrote %s\n" path
        | Error _ -> ())
      summary.Dfr_fuzz.Fuzz.findings
  | _ -> ());
  print_text_metrics ~metrics;
  obs_teardown ~trace;
  if summary.Dfr_fuzz.Fuzz.findings = [] then 0 else 1

let fuzz_cmd =
  let trials =
    Arg.(value & opt int 200
         & info [ "trials" ] ~doc:"Number of random cases to confront.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:
               "Campaign seed; the whole campaign is a pure function of \
                (seed, trials, max-nodes), independent of --domains.")
  in
  let max_nodes =
    Arg.(value & opt int 9
         & info [ "max-nodes" ]
             ~doc:"Largest generated network, in nodes (>= 4).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:"Spread trials over this many OCaml domains.")
  in
  let out_dir =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write each shrunk disagreement as a .dfr spec into $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random routing relations, checker verdicts \
          confronted with adversarial simulator schedules and witness replay; \
          disagreements are shrunk and printed as .dfr specs")
    Term.(
      const fuzz_run $ trials $ seed $ max_nodes $ domains $ out_dir $ trace_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* synth: BWG' synthesis, restriction repair, optimality certificates  *)

module Synth = Dfr_synth.Synth

let synth_entry_json net (e : Synth.entry) =
  let module J = Dfr_util.Json in
  J.Obj
    [
      ("head", J.Int e.Synth.head);
      ("dest", J.Int e.Synth.dest);
      ("target", J.Int e.Synth.target);
      ("text", J.String (Synth.describe_entry net e));
    ]

let synth_stats_json (s : Synth.stats) =
  let module J = Dfr_util.Json in
  J.Obj
    [
      ("rebuilds", J.Int s.Synth.rebuilds);
      ("decisions", J.Int s.Synth.decisions);
      ("conflicts", J.Int s.Synth.conflicts);
      ("learned", J.Int s.Synth.learned);
      ("pruned", J.Int s.Synth.pruned);
      ("restored", J.Int s.Synth.restored);
    ]

let print_removed net removed =
  let n = List.length removed in
  Printf.printf "  removed (%d):\n" n;
  List.iteri
    (fun i e ->
      if i < 16 then Printf.printf "    %s\n" (Synth.describe_entry net e)
      else if i = 16 then Printf.printf "    ... and %d more\n" (n - 16))
    removed

(* One problem's worth of output; returns the exit code.  [certify] is
   the optimal mode: prove the (minimized) removed set maximal and replay
   every per-entry witness certificate through the classifier. *)
let synth_report ~label ~mode ~certify ~json ~output ~metrics net
    (outcome : Synth.outcome) =
  let module J = Dfr_util.Json in
  let finish doc code =
    if json then
      print_endline (J.to_string_pretty (with_metrics ~metrics doc))
    else print_text_metrics ~metrics;
    code
  in
  let base verdict rest =
    J.Obj
      (("problem", J.String label)
      :: ("mode", J.String mode)
      :: ("verdict", J.String verdict)
      :: rest)
  in
  match outcome with
  | Synth.Already_free _ ->
    if not json then
      Printf.printf "synth %s: %s\n  already deadlock-free; nothing to repair\n"
        mode label;
    finish (base "already_free" []) 0
  | Synth.Unsat msg ->
    if not json then Printf.printf "synth %s: %s\n  unsatisfiable: %s\n" mode label msg;
    finish (base "unsat" [ ("reason", J.String msg) ]) 1
  | Synth.Gave_up msg ->
    if not json then Printf.printf "synth %s: %s\n  gave up: %s\n" mode label msg;
    finish (base "gave_up" [ ("reason", J.String msg) ]) 3
  | Synth.Synthesized s -> (
    let st = s.Synth.stats in
    if not json then begin
      Printf.printf "synth %s: %s\n" mode label;
      Printf.printf
        "  synthesized: %d entries removed%s; %d rebuilds, %d decisions, %d \
         conflicts, %d clauses learned, %d pruned, %d restored by \
         minimization\n"
        (List.length s.Synth.removed)
        (if s.Synth.widened > 0 then
           Printf.sprintf " (relation first widened by %d entries)"
             s.Synth.widened
         else "")
        st.Synth.rebuilds st.Synth.decisions st.Synth.conflicts
        st.Synth.learned st.Synth.pruned st.Synth.restored;
      if s.Synth.removed <> [] then print_removed net s.Synth.removed
    end;
    let spec_field, spec_code =
      match s.Synth.spec with
      | Ok text ->
        if not json then begin
          match output with
          | Some file ->
            let oc = open_out file in
            output_string oc text;
            close_out oc;
            Printf.printf "  wrote %s (checkable with `dfcheck spec check')\n"
              file
          | None -> Printf.printf "  spec:\n%s" text
        end
        else
          Option.iter
            (fun file ->
              let oc = open_out file in
              output_string oc text;
              close_out oc)
            output;
        ([ ("spec", J.String text) ], 0)
      | Error msg ->
        if not json then
          Printf.printf "  (result not expressible as a .dfr spec: %s)\n" msg;
        ([ ("spec_error", J.String msg) ], 0)
    in
    let doc rest =
      base "synthesized"
        ([
           ("removed", J.List (List.map (synth_entry_json net) s.Synth.removed));
           ("widened", J.Int s.Synth.widened);
           ("stats", synth_stats_json st);
         ]
        @ spec_field @ rest)
    in
    if not certify then finish (doc []) spec_code
    else
      match Synth.certify s.Synth.space ~removed:s.Synth.removed with
      | Synth.Cert_unknown reason ->
        if not json then
          Printf.printf "  certification inconclusive: %s\n" reason;
        finish (doc [ ("certification", J.String "unknown") ]) 3
      | Synth.Relaxable entries ->
        if not json then begin
          Printf.printf
            "  NOT maximal: %d removals can be re-admitted without creating \
             a True Cycle:\n"
            (List.length entries);
          List.iter
            (fun e -> Printf.printf "    %s\n" (Synth.describe_entry net e))
            entries
        end;
        finish
          (doc
             [
               ("certification", J.String "relaxable");
               ( "relaxable",
                 J.List (List.map (synth_entry_json net) entries) );
             ])
          1
      | Synth.Maximal items ->
        let replayed =
          List.map
            (fun item ->
              (item, Synth.replay s.Synth.space ~removed:s.Synth.removed item))
            items
        in
        let all_ok = List.for_all snd replayed in
        if not json then begin
          Printf.printf
            "  maximal: re-admitting any removed entry creates a True Cycle \
             (%d certificates%s)\n"
            (List.length items)
            (if all_ok then ", all replayed through the classifier"
             else "; REPLAY FAILED for some");
          List.iter
            (fun (item, ok) ->
              Printf.printf "    %s -> True Cycle [%s]%s\n"
                (Synth.describe_entry net item.Synth.relaxed)
                (String.concat " -> "
                   (List.map (Net.describe_buffer net) item.Synth.cycle))
                (if ok then "" else "  (replay failed!)"))
            replayed
        end;
        let cert_json =
          J.List
            (List.map
               (fun (item, ok) ->
                 J.Obj
                   [
                     ("relaxed", synth_entry_json net item.Synth.relaxed);
                     ("cycle", J.List (List.map (fun v -> J.Int v) item.Synth.cycle));
                     ("replayed", J.Bool ok);
                   ])
               replayed)
        in
        finish
          (doc
             [ ("certification", J.String "maximal"); ("certificates", cert_json) ])
          (if all_ok then spec_code else 3))

let synth_run mode name spec_file random_n seed max_nodes budget domains
    minimize json output trace metrics =
  let mode_str =
    match mode with `Bwg -> "bwg" | `Repair -> "repair" | `Optimal -> "optimal"
  in
  let problems =
    match (name, spec_file, random_n) with
    | Some a, None, None -> (
      match lookup a with
      | Error msg -> Error msg
      | Ok e ->
        let net = Registry.network_for e None in
        Ok [ (a, net, e.Registry.algo) ])
    | None, Some file, None -> (
      match Dfr_spec.Spec.load_file file with
      | Error e -> Error (Dfr_spec.Spec.error_to_string ~file e)
      | Ok spec ->
        Ok [ (file, spec.Dfr_spec.Spec.net, spec.Dfr_spec.Spec.algo) ])
    | None, None, Some n when n > 0 ->
      (* the fuzz generator as a design source: a deterministic stream of
         multi-wait designs; undeliverable draws are skipped, not counted *)
      let rng = Dfr_util.Prng.create seed in
      let rec draw acc i attempts =
        if i >= n || attempts > 100 * n then List.rev acc
        else
          let case = Dfr_fuzz.Gen.case rng ~max_nodes in
          if Dfr_fuzz.Case.deliverable case then
            let net, algo = Dfr_fuzz.Case.to_net_algo case in
            draw ((Printf.sprintf "random[%d] %s" i algo.Algo.name, net, algo) :: acc)
              (i + 1) (attempts + 1)
          else draw acc i (attempts + 1)
      in
      Ok (draw [] 0 0)
    | _ ->
      Error
        "exactly one problem source is required: -a NAME, --spec FILE or \
         --random N"
  in
  match problems with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok problems ->
    obs_setup ~trace ~metrics;
    let codes =
      List.map
        (fun (label, net, algo) ->
          let outcome =
            match mode with
            | `Repair -> Synth.repair ~budget ~domains net algo
            | `Bwg | `Optimal -> (
              match State_space.build net algo with
              | exception Invalid_argument msg ->
                Synth.Gave_up ("invalid algorithm/network pair: " ^ msg)
              | space ->
                Synth.synthesize ~budget ~domains
                  ~minimize:(minimize || mode = `Optimal)
                  space)
          in
          synth_report ~label ~mode:mode_str ~certify:(mode = `Optimal) ~json
            ~output ~metrics net outcome)
        problems
    in
    obs_teardown ~trace;
    List.fold_left max 0 codes

let synth_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("bwg", `Bwg); ("repair", `Repair); ("optimal", `Optimal) ]) `Bwg
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,bwg): find a wait-connected, True-Cycle-free wait-edge \
             subset (Theorem 3's BWG') — exit 1 is a proof that none \
             exists.  $(b,repair): widen a deadlocking relation across \
             virtual resource copies and search for a minimal set of entry \
             removals restoring deadlock freedom.  $(b,optimal): synthesize \
             a minimized BWG', then certify it maximal Theorem-6-style — \
             every re-admitted entry yields a True-Cycle witness, replayed \
             through the classifier.")
  in
  let algo_name =
    Arg.(value & opt (some string) None
         & info [ "a"; "algorithm" ] ~doc:"Catalogue algorithm to synthesize for.")
  in
  let spec_file =
    Arg.(value & opt (some file) None
         & info [ "spec" ] ~docv:"FILE" ~doc:"A .dfr spec to synthesize for.")
  in
  let random_n =
    Arg.(value & opt (some int) None
         & info [ "random" ] ~docv:"N"
             ~doc:
               "Run on $(docv) random multi-wait designs from the fuzz \
                generator (deliverable draws only).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:
               "Seed for --random; the whole run is a pure function of \
                (seed, N, max-nodes), independent of --domains.")
  in
  let max_nodes =
    Arg.(value & opt int 6
         & info [ "max-nodes" ] ~doc:"Largest random network, in nodes.")
  in
  let budget =
    Arg.(value & opt int 4000
         & info [ "budget" ] ~doc:"Search budget in BWG rebuilds.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ]
             ~doc:
               "Per-candidate BWG build parallelism; outcomes are \
                bit-for-bit independent of it.")
  in
  let minimize =
    Arg.(value & flag
         & info [ "minimize" ]
             ~doc:
               "Greedily restore removals that turn out unnecessary (mode \
                bwg; repair and optimal always minimize).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the result as JSON.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the synthesized .dfr spec to $(docv).")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Synthesize deadlock-free designs: find a BWG' automatically \
          (Theorem 3), repair a deadlocking algorithm by minimal \
          restriction, or certify a restriction maximal (Theorem 6).  \
          Outputs reprint as checkable .dfr specs.  Exit: 0 synthesized, 1 \
          proven unsatisfiable / not maximal, 2 usage, 3 gave up."
       ~man:
         [
           `S Manpage.s_examples;
           `P "Find a BWG' for the Two-Buffer algorithm:";
           `Pre "  dfcheck synth --mode bwg -a two-buffer";
           `P "Repair the deadlocking 1-VC dragonfly control and re-check it:";
           `Pre
             "  dfcheck synth --mode repair -a dragonfly-minimal-1vc -o \
              fixed.dfr\n\
             \  dfcheck spec check fixed.dfr";
         ])
    Term.(
      const synth_run $ mode $ algo_name $ spec_file $ random_n $ seed $ max_nodes
      $ budget $ domains $ minimize $ json $ output $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* serve: the batched NDJSON checking service                          *)

let serve_run port workers queue cache cache_entry_bytes timeout_ms domains
    sessions trace metrics =
  if
    workers < 1 || queue < 1 || domains < 0 || cache < 0 || cache_entry_bytes < 0
    || timeout_ms < 0 || sessions < 0
  then begin
    prerr_endline
      "dfcheck serve: --workers and --queue must be >= 1; --domains, --cache, \
       --cache-entry-bytes, --timeout-ms and --sessions must be >= 0";
    2
  end
  else begin
    obs_setup ~trace ~metrics;
    let engine =
      Engine.create
        { Engine.workers; capacity = queue; cache_capacity = cache;
          cache_entry_bytes; timeout_ms; domains; sessions }
    in
    let code =
      match port with
      | None -> Server.run_stdio engine
      | Some port -> Server.run_tcp engine ~port
    in
    Engine.shutdown engine;
    (* stdout is the protocol stream, so metrics go to stderr here *)
    if metrics then
      Printf.eprintf "metrics:\n%s\n%!"
        (Dfr_util.Json.to_string_pretty (Obs.metrics_json ()));
    obs_teardown ~trace;
    code
  end

let serve_cmd =
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:
               "Listen on 127.0.0.1:$(docv) (0 picks a free port, announced \
                on stderr).  Without this flag the session runs on \
                stdin/stdout.")
  in
  let workers =
    Arg.(value & opt int 1
         & info [ "workers" ]
             ~doc:"Domain workers running checks concurrently.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ]
             ~doc:
               "Maximum outstanding checks (queued or running); beyond it \
                requests are refused with a $(b,queue_full) error.")
  in
  let cache =
    Arg.(value & opt int 256
         & info [ "cache" ]
             ~doc:"Verdict-cache capacity in entries (0 disables caching).")
  in
  let cache_entry_bytes =
    Arg.(value & opt int Engine.default_config.Engine.cache_entry_bytes
         & info [ "cache-entry-bytes" ]
             ~doc:
               "Largest rendered report a cache entry may pin, in bytes; \
                bigger reports (huge deadlock witnesses) are served but not \
                cached (0 removes the cap).")
  in
  let timeout_ms =
    Arg.(value & opt int 0
         & info [ "timeout-ms" ]
             ~doc:"Per-request deadline in milliseconds (0 disables).")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ]
             ~doc:
               "Per-check BWG/classification parallelism, as in `check'.  \
                The default 0 auto-sizes from the machine's core count.")
  in
  let sessions =
    Arg.(value & opt int Engine.default_config.Engine.sessions
         & info [ "sessions" ]
             ~doc:
               "Incremental sessions kept live for $(b,check_delta) requests \
                (0 disables the delta path; such requests then re-check \
                cold).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve checking requests over an NDJSON protocol: one JSON request \
          per line in, one JSON response per line out, in request order.  \
          Verdicts are cached by a digest of the elaborated problem, so \
          re-checking the same spec (or a named problem equal to it) is \
          answered without recomputation.")
    Term.(const serve_run $ port $ workers $ queue $ cache $ cache_entry_bytes
          $ timeout_ms $ domains $ sessions $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* client: one-shot scripting client for a TCP serve instance          *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let client_run op port spec algo topo ms raw =
  let module J = Dfr_util.Json in
  let request =
    match op with
    | `Ping | `Catalogue | `Stats | `Shutdown ->
      let name =
        match op with
        | `Ping -> "ping"
        | `Catalogue -> "catalogue"
        | `Stats -> "stats"
        | _ -> "shutdown"
      in
      Ok (J.Obj [ ("op", J.String name) ])
    | `Sleep -> Ok (J.Obj [ ("op", J.String "sleep"); ("ms", J.Int ms) ])
    | `Check -> (
      match (spec, algo) with
      | Some file, None -> (
        match read_file file with
        | text -> Ok (J.Obj [ ("op", J.String "check"); ("spec", J.String text) ])
        | exception Sys_error msg -> Error msg)
      | None, Some a ->
        let base = [ ("op", J.String "check"); ("algo", J.String a) ] in
        Ok
          (J.Obj
             (match topo with
             | Some t -> base @ [ ("topology", J.String t) ]
             | None -> base))
      | _ -> Error "op `check' needs exactly one of --spec FILE or -a NAME")
  in
  match request with
  | Error msg ->
    Printf.eprintf "dfcheck client: %s\n" msg;
    2
  | Ok req -> (
    match
      Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "dfcheck client: cannot connect to 127.0.0.1:%d: %s\n" port
        (Unix.error_message err);
      2
    | ic, oc -> (
      output_string oc (J.to_string req);
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | exception End_of_file ->
        (try Unix.shutdown_connection ic with Unix.Unix_error _ -> ());
        Printf.eprintf "dfcheck client: server closed without responding\n";
        2
      | line -> (
        (try Unix.shutdown_connection ic with Unix.Unix_error _ -> ());
        match J.of_string line with
        | Error msg ->
          Printf.eprintf "dfcheck client: unparseable response: %s\n" msg;
          2
        | Ok doc ->
          if raw then print_endline line
          else print_endline (J.to_string_pretty doc);
          (* mirror the local exit-code contract: a served check exits
             with the verdict's code, any protocol failure with 2 *)
          (match J.member "ok" doc with
          | Some (J.Bool true) ->
            Option.value ~default:0 (Option.bind (J.member "exit" doc) J.to_int)
          | _ -> 2))))

let client_cmd =
  let op =
    let ops =
      [ ("ping", `Ping); ("catalogue", `Catalogue); ("stats", `Stats);
        ("check", `Check); ("sleep", `Sleep); ("shutdown", `Shutdown) ]
    in
    Arg.(required & pos 0 (some (enum ops)) None
         & info [] ~docv:"OP"
             ~doc:
               "Operation: $(b,ping), $(b,catalogue), $(b,stats), \
                $(b,check), $(b,sleep) or $(b,shutdown).")
  in
  let port =
    Arg.(required & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Port of the serve instance on 127.0.0.1.")
  in
  let spec =
    Arg.(value & opt (some file) None
         & info [ "spec" ] ~docv:"FILE"
             ~doc:"For $(b,check): send this .dfr file's text.")
  in
  let algo =
    Arg.(value & opt (some string) None
         & info [ "a"; "algorithm" ]
             ~doc:"For $(b,check): name a catalogue algorithm instead.")
  in
  let topo =
    Arg.(value & opt (some string) None
         & info [ "t"; "topology" ]
             ~doc:"For $(b,check) with -a: topology string, e.g. hypercube:3.")
  in
  let ms =
    Arg.(value & opt int 100
         & info [ "ms" ] ~doc:"For $(b,sleep): duration in milliseconds.")
  in
  let raw =
    Arg.(value & flag
         & info [ "raw" ]
             ~doc:"Print the response as the single NDJSON line received.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a `dfcheck serve --port' instance and print the \
          response.  A served check exits with the verdict's usual code \
          (0 free, 1 deadlock, 3 unknown); protocol errors exit 2.")
    Term.(const client_run $ op $ port $ spec $ algo $ topo $ ms $ raw)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "dfcheck" ~version:"1.0.0"
      ~doc:"Deadlock-freedom analysis of interconnection-network routing"
  in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           list_cmd;
           check_cmd;
           bwg_cmd;
           adaptiveness_cmd;
           matrix_cmd;
           simulate_cmd;
           scenario_cmd;
           audit_cmd;
           spec_cmd;
           fuzz_cmd;
           synth_cmd;
           serve_cmd;
           client_cmd;
         ])
  in
  (* fold cmdliner's usage-error code into the documented "2 = usage error" *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
