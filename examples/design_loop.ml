(* The design loop: using the checker the way a router architect would.

   We invent a plausible routing algorithm for 2-D meshes — "balanced-vc":
   two virtual channels everywhere, packets pick the channel matching the
   parity of their source column, fully adaptive minimal within it.  It
   looks reasonable (two disjoint channel classes!), the checker finds the
   flaw and hands us the witness, and one escape-channel repair later the
   same checker certifies the fix.

   Run with: dune exec examples/design_loop.exe *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

(* Attempt #1: split traffic by source-column parity.  Each class is an
   unrestricted minimal adaptive algorithm on its own virtual channel —
   and unrestricted minimal adaptive deadlocks, whatever the channel. *)
let balanced_vc =
  let route net b ~dest =
    let topo = Net.topology_exn net in
    let head = Buf.head_node b in
    (* the class must be derivable from local information: reuse the
       packet's current virtual channel once in the network, pick by
       column parity at injection *)
    let vc =
      match Buf.vc b with
      | Some vc -> vc
      | None -> Topology.coordinate topo head 0 mod 2
    in
    List.map
      (fun (dim, dir) -> Buf.id (Net.channel net ~src:head ~dim ~dir ~vc))
      (Topology.minimal_moves topo ~src:head ~dst:dest)
  in
  Algo.make ~name:"balanced-vc" ~wait:Algo.Any_wait ~route ()

(* Attempt #2: same adaptive classes, plus a dimension-order escape.  A
   blocked packet always waits on the XY escape channel of its class, and
   the escape usage is dimension-ordered, so the waiting graph is acyclic
   — the checker confirms it. *)
let balanced_vc_fixed =
  let escape net topo head dest =
    match Topology.minimal_moves topo ~src:head ~dst:dest with
    | [] -> invalid_arg "routing at destination"
    | (dim, dir) :: _ -> Buf.id (Net.channel net ~src:head ~dim ~dir ~vc:0)
  in
  let route net b ~dest =
    let topo = Net.topology_exn net in
    let head = Buf.head_node b in
    let adaptive =
      List.map
        (fun (dim, dir) -> Buf.id (Net.channel net ~src:head ~dim ~dir ~vc:1))
        (Topology.minimal_moves topo ~src:head ~dst:dest)
    in
    escape net topo head dest :: adaptive
  in
  let waits net b ~dest =
    let topo = Net.topology_exn net in
    [ escape net topo (Buf.head_node b) dest ]
  in
  Algo.make ~name:"balanced-vc-fixed" ~wait:Algo.Specific_wait ~route ~waits ()

let show net algo =
  let report = Checker.check net algo in
  Format.printf "%a@." (Checker.pp_verdict net) report.Checker.verdict;
  report

let () =
  let net = Net.wormhole (Topology.mesh [| 4; 4 |]) ~vcs:2 in
  print_endline "Attempt #1: balanced-vc (parity-split adaptive classes)";
  let report = show net balanced_vc in
  (match report.Checker.verdict with
  | Checker.Deadlock_possible failure ->
    (match Dfr_scenario.Scenario.replay net balanced_vc failure with
    | Some true ->
      print_endline "(simulator agrees: the witness configuration is stuck)\n"
    | _ -> print_endline "")
  | _ -> print_endline "");
  print_endline "Attempt #2: add a dimension-order escape channel and wait on it";
  let report = show net balanced_vc_fixed in
  print_endline "";
  Certificate.print net balanced_vc_fixed report
