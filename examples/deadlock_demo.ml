(* Deadlock demonstration: Theorem 6's relaxation of the Enhanced Fully
   Adaptive algorithm, three ways.

   1. the checker derives a deadlock configuration symbolically;
   2. the configuration is seated in the flit-level simulator, which
      confirms the network cannot drain it;
   3. ordinary random traffic is pushed through the same network until the
      deadlock emerges naturally, and the simulator reports the packet
      wait-for cycle it died with.

   Run with: dune exec examples/deadlock_demo.exe *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

let () =
  let net = Net.wormhole (Topology.hypercube 3) ~vcs:2 in
  let algo = Hypercube_wormhole.efa_relaxed in
  print_endline "--- 1. symbolic verdict -------------------------------------";
  let report = Checker.check net algo in
  Certificate.print net algo report;
  match report.Checker.verdict with
  | Checker.Deadlock_possible failure ->
    print_endline "\n--- 2. replaying the configuration --------------------------";
    (match Dfr_scenario.Scenario.replay net algo failure with
    | Some true ->
      print_endline "the seated configuration is dynamically stuck: deadlock confirmed"
    | Some false -> print_endline "unexpectedly drained!"
    | None -> print_endline "nothing to replay");
    print_endline "\n--- 3. natural stress traffic --------------------------------";
    let topo = Net.topology_exn net in
    let traffic =
      Traffic.batch topo ~pattern:Traffic.Uniform ~count:40 ~length:24 ~seed:3
    in
    (match Wormhole_sim.run net algo traffic with
    | Wormhole_sim.Deadlocked { cycle; in_flight; wait_for; _ } ->
      Printf.printf
        "random traffic deadlocked at cycle %d with %d packets in flight\n" cycle
        in_flight;
      Printf.printf "wait-for edges at the stall (packet -> packet it blocks on):\n";
      List.iteri
        (fun i (p, q) -> if i < 12 then Printf.printf "  #%d -> #%d\n" p q)
        wait_for;
      if List.length wait_for > 12 then
        Printf.printf "  ... (%d edges total)\n" (List.length wait_for)
    | o -> Format.printf "no deadlock this time: %a@." Wormhole_sim.pp_outcome o);
    print_endline "\n--- for contrast: unrelaxed EFA under the same load ----------";
    let traffic =
      Traffic.batch topo ~pattern:Traffic.Uniform ~count:40 ~length:24 ~seed:3
    in
    Format.printf "%a@." Wormhole_sim.pp_outcome
      (Wormhole_sim.run net Hypercube_wormhole.efa traffic)
  | _ -> print_endline "unexpected verdict"
