bench/main.mli:
