test/test_incoherent.ml: Alcotest Algo Buf Bwg Checker Cycle_class Dfr_core Dfr_graph Dfr_network Dfr_routing Dfr_sim Incoherent_example List Net State_space
