test/test_routing.ml: Alcotest Algo Buf Dfr_network Dfr_routing Dfr_topology Hypercube_wormhole List Mesh_saf Mesh_wormhole Net QCheck QCheck_alcotest Registry Topology Torus_wormhole
