test/test_topology.ml: Alcotest Array Dfr_graph Dfr_topology Format List QCheck QCheck_alcotest Topology
