test/test_graph.ml: Alcotest Array Cycles Dfr_graph Digraph Dot Filename Fun Hashtbl List Printf QCheck QCheck_alcotest Scc String Sys Traversal
