test/test_util.ml: Alcotest Array Bitset Combinatorics Dfr_util Fun Json List Prng QCheck QCheck_alcotest String
