test/test_network.ml: Alcotest Array Buf Dfr_network Dfr_topology List Net Topology
