test/test_fuzz.ml: Alcotest Algo Buf Checker Dfr_core Dfr_network Dfr_routing Dfr_sim Dfr_topology Dfr_util Hashtbl List Net Option Printf Saf_sim Scenario Topology Traffic Wormhole_sim
