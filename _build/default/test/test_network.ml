(* Tests for dfr_network: buffers and buffer-level networks. *)

open Dfr_topology
open Dfr_network

let check = Alcotest.check

let test_wormhole_buffer_count () =
  (* hypercube-3, 2 vcs: 24 directed channels * 2 vcs + 8 inj + 8 del *)
  let net = Net.wormhole (Topology.hypercube 3) ~vcs:2 in
  check Alcotest.int "buffers" (48 + 16) (Net.num_buffers net);
  check Alcotest.int "nodes" 8 (Net.num_nodes net);
  check Alcotest.int "vcs" 2 (Net.vcs net)

let test_saf_buffer_count () =
  let net = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2 in
  check Alcotest.int "buffers" (18 + 18) (Net.num_buffers net);
  check Alcotest.bool "switching" true (Net.switching net = Net.Store_and_forward)

let test_vct_switching () =
  let net = Net.virtual_cut_through (Topology.mesh [| 2; 2 |]) ~classes:1 in
  check Alcotest.bool "switching" true (Net.switching net = Net.Virtual_cut_through)

let test_endpoints () =
  let net = Net.wormhole (Topology.hypercube 2) ~vcs:1 in
  for node = 0 to 3 do
    let inj = Net.injection net node and del = Net.delivery net node in
    check Alcotest.bool "inj kind" true (Buf.is_injection inj);
    check Alcotest.bool "del kind" true (Buf.is_delivery del);
    check Alcotest.int "inj node" node (Buf.head_node inj);
    check Alcotest.int "del node" node (Buf.head_node del);
    check Alcotest.bool "not transit" false (Buf.is_transit inj)
  done

let test_channel_lookup () =
  let topo = Topology.hypercube 3 in
  let net = Net.wormhole topo ~vcs:2 in
  for src = 0 to 7 do
    List.iter
      (fun (dim, dir, dst) ->
        for vc = 0 to 1 do
          let b = Net.channel net ~src ~dim ~dir ~vc in
          match Buf.kind b with
          | Buf.Channel c ->
            check Alcotest.int "src" src c.src;
            check Alcotest.int "dst" dst c.dst;
            check Alcotest.int "vc" vc c.vc;
            check Alcotest.int "head at dst" dst (Buf.head_node b);
            check Alcotest.int "source at src" src (Buf.source_node b)
          | _ -> Alcotest.fail "not a channel"
        done)
      (Topology.neighbors topo src)
  done

let test_channel_lookup_missing () =
  let net = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:1 in
  Alcotest.check_raises "off-mesh channel" Not_found (fun () ->
      ignore (Net.channel net ~src:0 ~dim:0 ~dir:Topology.Minus ~vc:0))

let test_node_buffer_lookup () =
  let net = Net.store_and_forward (Topology.mesh [| 2; 3 |]) ~classes:2 in
  for node = 0 to 5 do
    for cls = 0 to 1 do
      let b = Net.node_buffer net ~node ~cls in
      check Alcotest.int "head node" node (Buf.head_node b);
      check (Alcotest.option Alcotest.int) "cls" (Some cls) (Buf.cls b)
    done
  done;
  Alcotest.check_raises "missing class" Not_found (fun () ->
      ignore (Net.node_buffer net ~node:0 ~cls:5))

let test_channels_from () =
  let topo = Topology.hypercube 3 in
  let net = Net.wormhole topo ~vcs:2 in
  for node = 0 to 7 do
    let outs = Net.channels_from net node in
    check Alcotest.int "out channels" 6 (List.length outs);
    List.iter
      (fun b -> check Alcotest.int "source" node (Buf.source_node b))
      outs
  done

let test_transit_buffers () =
  let net = Net.wormhole (Topology.hypercube 2) ~vcs:1 in
  check Alcotest.int "transit count" 8 (List.length (Net.transit_buffers net))

let test_buffer_ids_dense () =
  let net = Net.wormhole (Topology.hypercube 2) ~vcs:2 in
  Array.iteri
    (fun i b -> check Alcotest.int "id dense" i (Buf.id b))
    (Net.buffers net)

let test_custom_network () =
  let net =
    Net.custom ~name:"tri" ~switching:Net.Wormhole ~num_nodes:3
      ~channels:[ (0, 1, 0); (1, 2, 0); (2, 0, 0); (0, 1, 1) ]
  in
  check Alcotest.int "buffers" (4 + 6) (Net.num_buffers net);
  let b = Net.find_custom_channel net ~src:0 ~dst:1 ~vc:1 in
  check Alcotest.int "head" 1 (Buf.head_node b);
  check Alcotest.bool "no topology" true (Net.topology net = None);
  Alcotest.check_raises "topology_exn" (Invalid_argument "Net.topology_exn: custom network")
    (fun () -> ignore (Net.topology_exn net));
  check Alcotest.int "outgoing from 0" 2 (List.length (Net.channels_from net 0))

let test_describe () =
  let topo = Topology.hypercube 2 in
  let net = Net.wormhole topo ~vcs:2 in
  let b = Net.channel net ~src:0 ~dim:1 ~dir:Topology.Plus ~vc:0 in
  check Alcotest.string "paper notation" "B1+^1@(0,0)" (Net.describe_buffer net (Buf.id b));
  let b2 = Net.channel net ~src:3 ~dim:0 ~dir:Topology.Minus ~vc:1 in
  check Alcotest.string "paper notation 2" "B2-^0@(1,1)" (Net.describe_buffer net (Buf.id b2));
  let saf = Net.store_and_forward (Topology.mesh [| 2; 2 |]) ~classes:2 in
  let a = Net.node_buffer saf ~node:2 ~cls:0 in
  check Alcotest.string "A buffer" "A@(0,1)" (Net.describe_buffer saf (Buf.id a))

let test_invalid_args () =
  Alcotest.check_raises "vcs 0" (Invalid_argument "Net.wormhole: vcs must be >= 1")
    (fun () -> ignore (Net.wormhole (Topology.hypercube 2) ~vcs:0));
  Alcotest.check_raises "classes 0" (Invalid_argument "Net: classes must be >= 1")
    (fun () -> ignore (Net.store_and_forward (Topology.mesh [| 2; 2 |]) ~classes:0))

let suite =
  [
    Alcotest.test_case "wormhole buffer count" `Quick test_wormhole_buffer_count;
    Alcotest.test_case "saf buffer count" `Quick test_saf_buffer_count;
    Alcotest.test_case "vct switching" `Quick test_vct_switching;
    Alcotest.test_case "endpoint buffers" `Quick test_endpoints;
    Alcotest.test_case "channel lookup" `Quick test_channel_lookup;
    Alcotest.test_case "channel lookup missing" `Quick test_channel_lookup_missing;
    Alcotest.test_case "node buffer lookup" `Quick test_node_buffer_lookup;
    Alcotest.test_case "channels from node" `Quick test_channels_from;
    Alcotest.test_case "transit buffers" `Quick test_transit_buffers;
    Alcotest.test_case "buffer ids dense" `Quick test_buffer_ids_dense;
    Alcotest.test_case "custom network" `Quick test_custom_network;
    Alcotest.test_case "describe buffers" `Quick test_describe;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
  ]
