(* Tests for dfr_adaptiveness: Figure 3's dynamic program, the generic path
   counter, and the cross-validation between them. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_adaptiveness

let check = Alcotest.check
let close = Alcotest.float 1e-9
let ha_counter = Hypercube_adaptiveness.counter

let count rule ~signs ~remaining =
  Hypercube_adaptiveness.count_paths (ha_counter rule) ~signs ~remaining

(* ---------------- closed-form anchors ---------------- *)

let test_total_paths () =
  check Alcotest.int "k=1" 2 (Hypercube_adaptiveness.total_paths ~k:1);
  check Alcotest.int "k=2" 8 (Hypercube_adaptiveness.total_paths ~k:2);
  check Alcotest.int "k=3" 48 (Hypercube_adaptiveness.total_paths ~k:3)

let test_ecube_counts () =
  (* exactly one buffer path whatever the distance or signs *)
  for k = 1 to 6 do
    for signs = 0 to (1 lsl k) - 1 do
      check Alcotest.int "one path" 1
        (count Hypercube_adaptiveness.ecube_rule ~signs ~remaining:((1 lsl k) - 1))
    done
  done

let test_unrestricted_counts () =
  (* every buffer path is permitted *)
  for k = 1 to 5 do
    check Alcotest.int "all paths"
      (Hypercube_adaptiveness.total_paths ~k)
      (count Hypercube_adaptiveness.efa_relaxed_rule ~signs:0
         ~remaining:((1 lsl k) - 1))
  done

let test_duato_k2_hand_count () =
  (* distance 2: B1 of dim 0, or B2 of either dim first: 3 first moves,
     then 2 choices each = 6 of 8 *)
  check Alcotest.int "6 paths" 6
    (count Hypercube_adaptiveness.duato_rule ~signs:0 ~remaining:3)

let test_efa_k2_hand_count () =
  (* lowest positive: like duato = 6; lowest negative: everything = 8 *)
  check Alcotest.int "positive lowest" 6
    (count Hypercube_adaptiveness.efa_rule ~signs:0 ~remaining:3);
  check Alcotest.int "negative lowest" 8
    (count Hypercube_adaptiveness.efa_rule ~signs:1 ~remaining:3);
  check Alcotest.int "sign of dim 1 irrelevant at start" 6
    (count Hypercube_adaptiveness.efa_rule ~signs:2 ~remaining:3)

let test_mean_ratio_k1 () =
  (* distance 1: ecube 1/2, adaptive algorithms 2/2 *)
  check close "ecube" 0.5
    (Hypercube_adaptiveness.mean_ratio_at_distance
       (ha_counter Hypercube_adaptiveness.ecube_rule) ~k:1);
  check close "duato" 1.0
    (Hypercube_adaptiveness.mean_ratio_at_distance
       (ha_counter Hypercube_adaptiveness.duato_rule) ~k:1)

let test_degree_small_cube_by_hand () =
  (* n = 2: 12 ordered pairs: 8 at distance 1 (ratio 1/2 for ecube), 4 at
     distance 2 (ratio 1/8) *)
  let ecube =
    Hypercube_adaptiveness.degree_of_adaptiveness
      (ha_counter Hypercube_adaptiveness.ecube_rule) ~n:2
  in
  check close "ecube n=2" ((8.0 *. 0.5) +. (4.0 *. 0.125)) (ecube *. 12.0);
  let relaxed =
    Hypercube_adaptiveness.degree_of_adaptiveness
      (ha_counter Hypercube_adaptiveness.efa_relaxed_rule) ~n:2
  in
  check close "unrestricted = 1" 1.0 relaxed

(* ---------------- Figure 3 anchors from the paper ---------------- *)

let test_fig3_paper_anchors () =
  let sweep r = Hypercube_adaptiveness.sweep r ~max_n:12 in
  let duato = sweep Hypercube_adaptiveness.duato_rule in
  let efa = sweep Hypercube_adaptiveness.efa_rule in
  let ecube = sweep Hypercube_adaptiveness.ecube_rule in
  (* "For a 12D hypercube, Duato's has a degree of adaptiveness of about
     16%, while the corresponding number for Enhanced Fully Adaptive is
     over 50%." *)
  check Alcotest.bool "duato 12D ~ 16%" true
    (duato.(12) > 0.14 && duato.(12) < 0.18);
  check Alcotest.bool "efa 12D > 50%" true (efa.(12) > 0.50);
  (* EFA strictly dominates Duato which strictly dominates ecube *)
  for n = 2 to 12 do
    check Alcotest.bool "efa > duato" true (efa.(n) > duato.(n));
    check Alcotest.bool "duato > ecube" true (duato.(n) > ecube.(n))
  done;
  (* both decrease with dimension; EFA's decline is the milder one *)
  for n = 3 to 12 do
    check Alcotest.bool "duato decreasing" true (duato.(n) < duato.(n - 1));
    check Alcotest.bool "efa decreasing" true (efa.(n) < efa.(n - 1));
    check Alcotest.bool "efa declines more slowly" true
      (duato.(n - 1) -. duato.(n) > efa.(n - 1) -. efa.(n))
  done

let test_rule_of_name () =
  List.iter
    (fun n ->
      check Alcotest.bool n true (Hypercube_adaptiveness.rule_of_name n <> None))
    [ "ecube"; "duato"; "efa"; "efa-relaxed"; "unrestricted" ];
  check Alcotest.bool "unknown" true (Hypercube_adaptiveness.rule_of_name "x" = None)

(* ---------------- generic path counting ---------------- *)

let cube2 = Net.wormhole (Topology.hypercube 2) ~vcs:2
let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2

let test_pair_paths_ecube () =
  let space = State_space.build cube3 Hypercube_wormhole.ecube in
  for src = 0 to 7 do
    for dest = 0 to 7 do
      if src <> dest then
        check (Alcotest.option Alcotest.int) "single path" (Some 1)
          (Path_count.pair_paths space ~src ~dest)
    done
  done

let test_pair_paths_unrestricted_totals () =
  let space = State_space.build cube3 Hypercube_wormhole.unrestricted in
  let topo = Net.topology_exn cube3 in
  for src = 0 to 7 do
    for dest = 0 to 7 do
      if src <> dest then
        let k = Topology.distance topo src dest in
        check (Alcotest.option Alcotest.int) "k! 2^k"
          (Some (Hypercube_adaptiveness.total_paths ~k))
          (Path_count.pair_paths space ~src ~dest)
    done
  done

let test_pair_paths_cyclic_returns_none () =
  let net = Incoherent_example.network () in
  let space = State_space.build net Incoherent_example.algo in
  (* the n2 -> n3 move graph has the qA1 <-> qB2 loop *)
  check (Alcotest.option Alcotest.int) "diverges" None
    (Path_count.pair_paths space ~src:Incoherent_example.n2
       ~dest:Incoherent_example.n3)

let test_generic_matches_dp () =
  (* the engine-level count and the bitmask DP agree on 2- and 3-cubes *)
  List.iter
    (fun (net, n) ->
      let baseline = State_space.build net Hypercube_wormhole.unrestricted in
      List.iter
        (fun (algo, rule) ->
          let space = State_space.build net algo in
          match Path_count.degree_of_adaptiveness ~baseline space with
          | None -> Alcotest.fail "must converge"
          | Some generic ->
            let dp =
              Hypercube_adaptiveness.degree_of_adaptiveness (ha_counter rule) ~n
            in
            check (Alcotest.float 1e-9)
              (Printf.sprintf "%s on %d-cube" algo.Algo.name n)
              dp generic)
        [
          (Hypercube_wormhole.ecube, Hypercube_adaptiveness.ecube_rule);
          (Hypercube_wormhole.duato, Hypercube_adaptiveness.duato_rule);
          (Hypercube_wormhole.efa, Hypercube_adaptiveness.efa_rule);
        ])
    [ (cube2, 2); (cube3, 3) ]

let test_mesh_adaptiveness_sanity () =
  (* extension measurement: turn-model algorithms sit strictly between
     dimension-order and unrestricted on a 3x3 mesh *)
  let net = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:1 in
  let baseline = State_space.build net Mesh_wormhole.unrestricted in
  let degree algo =
    match
      Path_count.degree_of_adaptiveness ~baseline (State_space.build net algo)
    with
    | Some d -> d
    | None -> Alcotest.fail "must converge"
  in
  let dor = degree Mesh_wormhole.dimension_order in
  let wf = degree Mesh_wormhole.west_first in
  let nf = degree Mesh_wormhole.negative_first in
  check Alcotest.bool "dor < west-first" true (dor < wf);
  check Alcotest.bool "dor < negative-first" true (dor < nf);
  check Alcotest.bool "west-first < 1" true (wf < 1.0);
  check (Alcotest.float 1e-9) "unrestricted = 1" 1.0
    (degree Mesh_wormhole.unrestricted)

let suite =
  [
    Alcotest.test_case "total paths" `Quick test_total_paths;
    Alcotest.test_case "ecube counts" `Quick test_ecube_counts;
    Alcotest.test_case "unrestricted counts" `Quick test_unrestricted_counts;
    Alcotest.test_case "duato k=2 by hand" `Quick test_duato_k2_hand_count;
    Alcotest.test_case "efa k=2 by hand" `Quick test_efa_k2_hand_count;
    Alcotest.test_case "mean ratio k=1" `Quick test_mean_ratio_k1;
    Alcotest.test_case "degree n=2 by hand" `Quick test_degree_small_cube_by_hand;
    Alcotest.test_case "Figure 3 paper anchors" `Quick test_fig3_paper_anchors;
    Alcotest.test_case "rule_of_name" `Quick test_rule_of_name;
    Alcotest.test_case "ecube pair paths" `Quick test_pair_paths_ecube;
    Alcotest.test_case "unrestricted totals" `Quick test_pair_paths_unrestricted_totals;
    Alcotest.test_case "cyclic counts return None" `Quick
      test_pair_paths_cyclic_returns_none;
    Alcotest.test_case "generic count = bitmask DP" `Quick test_generic_matches_dp;
    Alcotest.test_case "mesh adaptiveness sanity" `Quick test_mesh_adaptiveness_sanity;
  ]

(* ---------------- mesh adaptiveness (extension) ---------------- *)

let test_mesh_adaptiveness_module () =
  let net1 = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:1 in
  (match Mesh_adaptiveness.degree net1 Mesh_wormhole.unrestricted with
  | Some d -> check (Alcotest.float 1e-9) "unrestricted = 1" 1.0 d
  | None -> Alcotest.fail "must converge");
  (* the symmetric turn models coincide by symmetry on square meshes *)
  let d algo =
    match Mesh_adaptiveness.degree net1 algo with
    | Some d -> d
    | None -> Alcotest.fail "must converge"
  in
  check (Alcotest.float 1e-9) "west-first = north-last"
    (d Mesh_wormhole.west_first) (d Mesh_wormhole.north_last);
  check Alcotest.bool "dimension-order lowest" true
    (d Mesh_wormhole.dimension_order < d Mesh_wormhole.odd_even);
  check Alcotest.bool "odd-even below turn models" true
    (d Mesh_wormhole.odd_even < d Mesh_wormhole.west_first)

let test_mesh_adaptiveness_decreases_with_size () =
  let rows =
    Mesh_adaptiveness.sweep_square
      [ ("dor", 1, Mesh_wormhole.dimension_order) ]
      ~sizes:[ 3; 4; 5 ]
  in
  match rows with
  | [ (_, [ a; b; c ]) ] ->
    check Alcotest.bool "monotone decreasing" true (a > b && b > c)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_mesh_unrestricted_relation_validates () =
  let net = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:2 in
  match Algo.validate Mesh_adaptiveness.unrestricted_relation net with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let suite =
  suite
  @ [
      Alcotest.test_case "mesh adaptiveness module" `Quick test_mesh_adaptiveness_module;
      Alcotest.test_case "mesh adaptiveness decreases with size" `Quick
        test_mesh_adaptiveness_decreases_with_size;
      Alcotest.test_case "all-channels baseline validates" `Quick
        test_mesh_unrestricted_relation_validates;
    ]
