(** Degree of adaptiveness for mesh/torus algorithms.

    Extends Figure 3's metric beyond hypercubes: the ratio of permitted to
    possible buffer-level paths, averaged over all pairs, computed with the
    generic {!Path_count} engine against an automatically built
    unrestricted baseline (every minimal move on every virtual channel of
    the same network). *)

open Dfr_network
open Dfr_routing

val unrestricted_relation : Algo.t
(** Every minimal move on every virtual channel, any-wait; the denominator
    of the metric.  Works on any wormhole network with a topology. *)

val degree : Net.t -> Algo.t -> float option
(** [None] if some pair's count diverges (nonminimal relation). *)

val sweep_square :
  (string * int * Algo.t) list -> sizes:int list -> (string * float list) list
(** [(name, vcs, algo)] entries measured on square k x k meshes for each
    [k] in [sizes]. *)
