(** Degree of adaptiveness for hypercube routing algorithms (Figure 3).

    Following Glass & Ni [16] as used in §6.2, the degree of adaptiveness
    is the number of paths the routing algorithm permits divided by the
    total number of paths, averaged over all source-destination pairs.
    Because both Duato's algorithm and EFA permit every minimal {e
    physical} path (they are fully adaptive), Figure 3 is only consistent
    with counting {e buffer-level} paths: a path is a sequence of virtual
    channels, so a pair at Hamming distance [k] has [k! * 2^k] paths in a
    two-virtual-channel cube.  Under this reading the paper's stated
    anchors hold (12-D: Duato about 16 %, EFA above 50 %, e-cube near 0).

    Routing rules are expressed over bitmasks: [remaining] is the set of
    dimensions still to correct and [signs] the set whose needed direction
    is negative.  The dynamic program memoizes on (remaining, signs
    restricted to remaining), so a full 12-D sweep is about [3^12]
    states. *)

type rule = signs:int -> remaining:int -> (int * int) list
(** Permitted (dimension, virtual channel) moves of a packet; [vc 0] is
    the paper's [B1], [vc 1] is [B2].  Dimensions are relabeled
    [0 .. k-1]. *)

val ecube_rule : rule
val duato_rule : rule
val efa_rule : rule
val efa_relaxed_rule : rule
(** Also the unrestricted relation: every needed move on either channel. *)

val rule_of_name : string -> rule option
(** ["ecube" | "duato" | "efa" | "efa-relaxed" | "unrestricted"]. *)

type counter
(** Memoized path counter for one rule. *)

val counter : rule -> counter

val count_paths : counter -> signs:int -> remaining:int -> int
(** Number of permitted buffer-level paths for a packet that must correct
    [remaining] with directions [signs]. *)

val total_paths : k:int -> int
(** [k! * 2^k]. *)

val ratio_at : counter -> signs:int -> k:int -> float
(** Permitted / total for one sign pattern at distance [k]. *)

val mean_ratio_at_distance : counter -> k:int -> float
(** Average of {!ratio_at} over all [2^k] sign patterns. *)

val degree_of_adaptiveness : counter -> n:int -> float
(** Figure 3's y-axis: the average over all source-destination pairs of an
    [n]-cube. *)

val sweep : rule -> max_n:int -> float array
(** [sweep r ~max_n].(n) is the degree of adaptiveness for the [n]-cube
    (index 0 unused, kept 0.). *)
