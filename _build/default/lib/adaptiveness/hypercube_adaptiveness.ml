open Dfr_util

type rule = signs:int -> remaining:int -> (int * int) list

let lowest_bit mask = Bitset.min_elt mask

let b2_all remaining = Bitset.fold (fun i acc -> (i, 1) :: acc) remaining []

let ecube_rule ~signs:_ ~remaining = [ (lowest_bit remaining, 0) ]

let duato_rule ~signs:_ ~remaining =
  (lowest_bit remaining, 0) :: b2_all remaining

let efa_rule ~signs ~remaining =
  let l = lowest_bit remaining in
  let b1 =
    if Bitset.mem l signs then Bitset.fold (fun i acc -> (i, 0) :: acc) remaining []
    else [ (l, 0) ]
  in
  b1 @ b2_all remaining

let efa_relaxed_rule ~signs:_ ~remaining =
  Bitset.fold (fun i acc -> (i, 0) :: (i, 1) :: acc) remaining []

let rule_of_name = function
  | "ecube" -> Some ecube_rule
  | "duato" -> Some duato_rule
  | "efa" -> Some efa_rule
  | "efa-relaxed" | "unrestricted" -> Some efa_relaxed_rule
  | _ -> None

type counter = { rule : rule; memo : (int * int, int) Hashtbl.t }

let counter rule = { rule; memo = Hashtbl.create 4096 }

let rec count_paths t ~signs ~remaining =
  if remaining = 0 then 1
  else
    let signs = signs land remaining in
    let key = (remaining, signs) in
    match Hashtbl.find_opt t.memo key with
    | Some v -> v
    | None ->
      let moves = t.rule ~signs ~remaining in
      let total =
        List.fold_left
          (fun acc (dim, _vc) ->
            acc + count_paths t ~signs ~remaining:(Bitset.remove dim remaining))
          0 moves
      in
      Hashtbl.replace t.memo key total;
      total

let total_paths ~k = Combinatorics.factorial k * Combinatorics.pow2 k

let ratio_at t ~signs ~k =
  let remaining = Bitset.full k in
  float_of_int (count_paths t ~signs ~remaining) /. float_of_int (total_paths ~k)

let mean_ratio_at_distance t ~k =
  let acc = ref 0.0 in
  for signs = 0 to Combinatorics.pow2 k - 1 do
    acc := !acc +. ratio_at t ~signs ~k
  done;
  !acc /. float_of_int (Combinatorics.pow2 k)

let degree_of_adaptiveness t ~n =
  (* sum over distances k of (#pairs at distance k) * mean ratio, divided
     by the number of ordered pairs *)
  let pairs_total = float_of_int (Combinatorics.pow2 n * (Combinatorics.pow2 n - 1)) in
  let acc = ref 0.0 in
  for k = 1 to n do
    let pairs_at_k =
      float_of_int (Combinatorics.binomial n k * Combinatorics.pow2 n)
    in
    acc := !acc +. (pairs_at_k *. mean_ratio_at_distance t ~k)
  done;
  !acc /. pairs_total

let sweep rule ~max_n =
  let t = counter rule in
  Array.init (max_n + 1) (fun n -> if n = 0 then 0.0 else degree_of_adaptiveness t ~n)
