open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

let unrestricted_relation =
  Algo.make ~name:"all-channels" ~wait:Algo.Any_wait
    ~route:(fun net b ~dest ->
      let topo = Net.topology_exn net in
      let head = Buf.head_node b in
      List.concat_map
        (fun (dim, dir) ->
          List.init (Net.vcs net) (fun vc ->
              Buf.id (Net.channel net ~src:head ~dim ~dir ~vc)))
        (Topology.minimal_moves topo ~src:head ~dst:dest))
    ()

let degree net algo =
  let baseline = State_space.build net unrestricted_relation in
  Path_count.degree_of_adaptiveness ~baseline (State_space.build net algo)

let sweep_square entries ~sizes =
  List.map
    (fun (name, vcs, algo) ->
      let values =
        List.map
          (fun k ->
            let net = Net.wormhole (Topology.mesh [| k; k |]) ~vcs in
            Option.value (degree net algo) ~default:nan)
          sizes
      in
      (name, values))
    entries
