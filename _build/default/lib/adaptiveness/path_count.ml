open Dfr_network
open Dfr_core

exception Cyclic

(* Memoized DAG path count from [start] in the per-destination move graph;
   colors detect cycles (gray = on the current stack). *)
let count_from space ~dest ~start =
  let net = State_space.net space in
  let memo = Hashtbl.create 64 in
  let gray = Hashtbl.create 16 in
  let rec count b =
    match Hashtbl.find_opt memo b with
    | Some v -> v
    | None ->
      if Hashtbl.mem gray b then raise Cyclic;
      Hashtbl.replace gray b ();
      let v =
        if Buf.head_node (Net.buffer net b) = dest then 1
        else
          List.fold_left
            (fun acc o -> acc + count o)
            0
            (State_space.outputs space ~buf:b ~dest)
      in
      Hashtbl.remove gray b;
      Hashtbl.replace memo b v;
      v
  in
  try Some (count start) with Cyclic -> None

let pair_paths space ~src ~dest =
  if src = dest then Some 0
  else
    let inj = Buf.id (Net.injection (State_space.net space) src) in
    count_from space ~dest ~start:inj

let degree_of_adaptiveness ~baseline space =
  let n = State_space.num_nodes space in
  let acc = ref 0.0 in
  let pairs = ref 0 in
  let ok = ref true in
  for src = 0 to n - 1 do
    for dest = 0 to n - 1 do
      if src <> dest && !ok then
        match (pair_paths space ~src ~dest, pair_paths baseline ~src ~dest) with
        | Some p, Some t when t > 0 ->
          acc := !acc +. (float_of_int p /. float_of_int t);
          incr pairs
        | _ -> ok := false
    done
  done;
  if !ok && !pairs > 0 then Some (!acc /. float_of_int !pairs) else None
