lib/adaptiveness/hypercube_adaptiveness.ml: Array Bitset Combinatorics Dfr_util Hashtbl List
