lib/adaptiveness/mesh_adaptiveness.mli: Algo Dfr_network Dfr_routing Net
