lib/adaptiveness/path_count.ml: Buf Dfr_core Dfr_network Hashtbl List Net State_space
