lib/adaptiveness/hypercube_adaptiveness.mli:
