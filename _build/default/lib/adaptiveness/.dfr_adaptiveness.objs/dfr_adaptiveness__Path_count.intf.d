lib/adaptiveness/path_count.mli: Dfr_core State_space
