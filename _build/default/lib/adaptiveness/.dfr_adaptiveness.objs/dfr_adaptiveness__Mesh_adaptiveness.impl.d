lib/adaptiveness/mesh_adaptiveness.ml: Algo Buf Dfr_core Dfr_network Dfr_routing Dfr_topology List Net Option Path_count State_space Topology
