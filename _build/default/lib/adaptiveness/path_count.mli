(** Generic buffer-level path counting on any network/algorithm pair.

    Counts the distinct chains of transit buffers a packet can traverse
    from source to destination under the routing relation.  Used to
    cross-validate the closed-form hypercube dynamic program and to
    measure adaptiveness of mesh/torus algorithms for which no closed form
    is derived. *)

open Dfr_core

val pair_paths : State_space.t -> src:int -> dest:int -> int option
(** Number of routing paths from [src]'s injection buffer to arrival at
    [dest]; [None] when the per-destination move graph reachable from the
    source is cyclic (nonminimal algorithms can revisit buffers, making
    the count infinite). *)

val degree_of_adaptiveness :
  baseline:State_space.t -> State_space.t -> float option
(** Mean over all ordered pairs of [pair_paths algo / pair_paths baseline];
    [None] if any count diverges or a baseline count is zero.  The
    baseline is normally the unrestricted relation on the same network. *)
