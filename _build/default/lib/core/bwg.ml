open Dfr_network

type wait_sets = buf:int -> dest:int -> int list
type witness = { dest : int; head : int }

type t = {
  space : State_space.t;
  graph : Dfr_graph.Digraph.t;
  witnesses : (int * int, witness list) Hashtbl.t;
  wait_sets : wait_sets;
  witness_cap : int;
}

let space t = t.space
let graph t = t.graph
let wait_sets t = t.wait_sets

let witnesses t q1 q2 =
  match Hashtbl.find_opt t.witnesses (q1, q2) with
  | Some ws -> List.rev ws
  | None -> []

(* Buffers reachable from [start] (inclusive) in the per-destination move
   graph: the possible positions of the blocked header of a packet that
   still occupies [start]. *)
let continuation_heads g start =
  let seen = Hashtbl.create 16 in
  let rec dfs v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      List.iter dfs (Dfr_graph.Digraph.succ g v)
    end
  in
  dfs start;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []

(* Waiting edges contributed by one destination's traffic: pure with
   respect to everything except the pre-built move graph, so destinations
   can be processed by separate domains. *)
let edges_for_dest space ~wait_sets ~wormhole dest =
  let g = State_space.move_graph space ~dest in
  let acc = ref [] in
  let emit q1 head =
    List.iter (fun w -> acc := (q1, w, { dest; head }) :: !acc) (wait_sets ~buf:head ~dest)
  in
  let per_buffer q1 =
    if wormhole then List.iter (emit q1) (continuation_heads g q1)
    else emit q1 q1
  in
  List.iter per_buffer (State_space.reachable_with space ~dest);
  !acc

let build ?wait_sets ?(witness_cap = 32) ?(indirect = true) ?(domains = 1) space =
  let wait_sets =
    match wait_sets with
    | Some w -> w
    | None -> fun ~buf ~dest -> State_space.waits space ~buf ~dest
  in
  let net = State_space.net space in
  let num_nodes = State_space.num_nodes space in
  let graph = Dfr_graph.Digraph.create (State_space.num_buffers space) in
  let witnesses = Hashtbl.create 256 in
  let add_edge q1 q2 w =
    Dfr_graph.Digraph.add_edge graph q1 q2;
    let key = (q1, q2) in
    let existing = Option.value (Hashtbl.find_opt witnesses key) ~default:[] in
    if List.length existing < witness_cap then
      Hashtbl.replace witnesses key (w :: existing)
  in
  let wormhole = indirect && Net.switching net = Net.Wormhole in
  let dests = List.init num_nodes Fun.id in
  let edge_lists =
    if domains <= 1 || num_nodes <= 1 then
      List.map (edges_for_dest space ~wait_sets ~wormhole) dests
    else begin
      (* the lazily cached move graphs are not safe to build concurrently:
         materialize them first, then fan the per-destination closures out
         over OCaml 5 domains *)
      List.iter (fun dest -> ignore (State_space.move_graph space ~dest)) dests;
      let n_dom = min domains num_nodes in
      let chunks = Array.make n_dom [] in
      List.iteri (fun i d -> chunks.(i mod n_dom) <- d :: chunks.(i mod n_dom)) dests;
      let workers =
        Array.map
          (fun chunk ->
            Domain.spawn (fun () ->
                List.map (edges_for_dest space ~wait_sets ~wormhole) chunk))
          chunks
      in
      Array.to_list workers |> List.concat_map Domain.join
    end
  in
  (* merge sequentially: destinations ascending, witnesses in emit order,
     so the result is identical to the serial construction *)
  List.iter (fun edges -> List.iter (fun (q, w, wit) -> add_edge q w wit) (List.rev edges))
    (List.sort
       (fun a b ->
         match (a, b) with
         | (_, _, wa) :: _, (_, _, wb) :: _ -> compare wa.dest wb.dest
         | [], _ -> -1
         | _, [] -> 1)
       edge_lists);
  { space; graph; witnesses; wait_sets; witness_cap }

let is_acyclic t = Dfr_graph.Traversal.is_acyclic t.graph
let topological_order t = Dfr_graph.Traversal.topological_sort t.graph

let cycles ?limits t = Dfr_graph.Cycles.enumerate_checked ?limits t.graph

let unconnected_states t =
  let acc = ref [] in
  State_space.iter_reachable t.space (fun ~buf ~dest ->
      if
        (not (State_space.arrived t.space ~buf ~dest))
        && t.wait_sets ~buf ~dest = []
      then acc := (buf, dest) :: !acc);
  List.rev !acc

let is_wait_connected t = unconnected_states t = []

let to_dot t =
  let net = State_space.net t.space in
  Dfr_graph.Dot.to_string ~name:"bwg"
    ~vertex_label:(fun v -> Net.describe_buffer net v)
    t.graph
