(** Duato's escape-channel condition (baseline proof technique [9, 11]).

    Duato's methodology splits the routing relation into an adaptive part
    and an {e escape} subfunction and requires the escape channels' {e
    extended} channel dependency graph to be acyclic: an edge [c1 -> c2]
    (both escape channels) whenever a packet can use [c1] and later use
    [c2] having traversed only adaptive (non-escape) buffers in between.

    We instantiate the escape subfunction with the algorithm's waiting
    rule — the natural reading in the paper's buffer-centric model — and
    require it to supply an escape everywhere (Duato's connectivity
    premise).

    The crucial difference from the BWG: this graph tracks {e usage} of
    escape channels, the BWG only {e waiting}.  The paper's EFA algorithm
    routes partially adaptively on its [B1] (escape) channels, which
    creates usage cycles among them for hypercubes of dimension >= 3 even
    though no waiting cycle exists — so this test rejects EFA while
    Theorem 1 certifies it.  That separation is experiment E6. *)

val escape_channels : State_space.t -> bool array
(** Buffers appearing in some reachable waiting set. *)

val extended_dependency_graph : State_space.t -> Dfr_graph.Digraph.t
(** Direct and indirect dependencies between escape channels. *)

type result = {
  certified : bool;
  connected : bool;  (** escape subfunction defined at every blocked state *)
  acyclic : bool;  (** extended dependency graph acyclic *)
}

val analyze : State_space.t -> result
val deadlock_free : State_space.t -> bool
(** [true] certifies deadlock freedom; [false] means the technique cannot
    tell. *)
