(** Machine-readable checker reports (JSON), for scripting around the CLI
    and archiving verdicts in CI. *)

open Dfr_network
open Dfr_routing

val of_report : Net.t -> Algo.t -> Checker.report -> Dfr_util.Json.t

val to_string : Net.t -> Algo.t -> Checker.report -> string
(** Pretty-printed {!of_report}. *)
