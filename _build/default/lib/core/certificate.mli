(** Human-readable proof certificates.

    Renders a {!Checker.report} as a self-contained document: which theorem
    decided the question, the evidence (buffer ordering / classified
    cycles / removed wait entries / witness packets), and enough network
    statistics to audit it.  The CLI's [check --certificate] prints this;
    designers can archive it next to their router RTL. *)

open Dfr_network
open Dfr_routing

val render : Net.t -> Algo.t -> Checker.report -> string

val print : Net.t -> Algo.t -> Checker.report -> unit
(** [render] to stdout. *)
