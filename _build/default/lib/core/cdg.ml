open Dfr_network

let build space =
  let net = State_space.net space in
  let g = Dfr_graph.Digraph.create (State_space.num_buffers space) in
  State_space.iter_reachable space (fun ~buf ~dest ->
      if Buf.is_transit (Net.buffer net buf) then
        List.iter
          (fun o -> Dfr_graph.Digraph.add_edge g buf o)
          (State_space.outputs space ~buf ~dest));
  g

let deadlock_free space = Dfr_graph.Traversal.is_acyclic (build space)
