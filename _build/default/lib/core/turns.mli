(** Turn extraction: which physical turns a routing relation actually
    permits.

    The turn model (Glass & Ni, cited as [15, 16]) characterizes 2-D mesh
    algorithms by the set of 90-degree turns they allow; each cycle sense
    needs all four of its turns, so breaking one turn per sense suffices.
    This module recovers the turn set of {e any} algorithm from its
    reachable state space — a designer can check that an implementation
    matches the turn-model spec it claims, and the test suite validates our
    turn-model encodings against the published sets. *)

open Dfr_topology

type turn = {
  from_dim : int;
  from_dir : Topology.direction;
  to_dim : int;
  to_dir : Topology.direction;
}

val all_turns : dims:int -> turn list
(** Every ordered pair of distinct dimensions with directions —
    [4 * dims * (dims - 1)] turns; for 2-D meshes, the classical eight. *)

val permitted : State_space.t -> turn -> bool
(** Some reachable packet can take this turn somewhere in the network. *)

val permitted_at : State_space.t -> node:int -> turn -> bool
(** Some reachable packet can take this turn at this node (needed for
    position-dependent schemes like odd-even). *)

val turn_set : State_space.t -> (turn * bool) list
(** [all_turns] paired with {!permitted}. *)

val pp_turn : Format.formatter -> turn -> unit
(** e.g. ["0+ -> 1-"] for an east-to-south turn. *)
