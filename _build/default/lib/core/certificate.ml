open Dfr_network
open Dfr_routing

let describe net b = Net.describe_buffer net b

let count_reachable space =
  let n = ref 0 in
  State_space.iter_reachable space (fun ~buf:_ ~dest:_ -> incr n);
  !n

let pp_packets net buf packets =
  List.iteri
    (fun i (p : Cycle_class.packet) ->
      Buffer.add_string buf
        (Printf.sprintf "    p%d -> n%d  occupies [%s]  waits for %s\n" (i + 1)
           p.Cycle_class.dest
           (String.concat "; " (List.map (describe net) p.Cycle_class.path))
           (describe net p.Cycle_class.waits_for)))
    packets

let render net algo (report : Checker.report) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let space = report.Checker.space in
  let bwg = report.Checker.bwg in
  let g = Bwg.graph bwg in
  line "DEADLOCK-FREEDOM CERTIFICATE";
  line "============================";
  line "algorithm : %s (%s waiting)" algo.Algo.name
    (match algo.Algo.wait with
    | Algo.Specific_wait -> "committed single-buffer"
    | Algo.Any_wait -> "first-free multi-buffer");
  line "network   : %s (%d nodes, %d buffers)" (Net.name net) (Net.num_nodes net)
    (Net.num_buffers net);
  line "states    : %d reachable (buffer, destination) pairs" (count_reachable space);
  line "BWG       : %d vertices, %d waiting edges"
    (Dfr_graph.Digraph.num_vertices g)
    (Dfr_graph.Digraph.num_edges g);
  (match report.Checker.bwg_cycles with
  | Some n -> line "cycles    : %d elementary cycles enumerated" n
  | None -> ());
  line "liveness  : %s%s"
    (if Liveness.livelock_free space then "livelock-free"
     else "livelock possible (deadlock analysis is independent, cf. paper s2)")
    (if Liveness.is_minimal space then ", minimal routing" else "");
  line "";
  (match report.Checker.verdict with
  | Checker.Deadlock_free Checker.Acyclic_bwg ->
    line "VERDICT: DEADLOCK-FREE  (Theorem 1)";
    line "";
    line "The waiting rule is wait-connected (every blocked packet always has";
    line "a buffer to wait on) and the buffer waiting graph is acyclic, so no";
    line "set of packets can mutually block.  A linear ordering witnessing";
    line "acyclicity:";
    (match Bwg.topological_order bwg with
    | Some order ->
      let transit =
        List.filter (fun b -> Buf.is_transit (Net.buffer net b)) order
      in
      let shown = List.filteri (fun i _ -> i < 12) transit in
      line "  %s%s"
        (String.concat " < " (List.map (describe net) shown))
        (if List.length transit > 12 then
           Printf.sprintf " < ... (%d buffers total)" (List.length transit)
         else "")
    | None -> line "  (internal error: order missing)")
  | Checker.Deadlock_free (Checker.No_true_cycles { cycles_examined }) ->
    line "VERDICT: DEADLOCK-FREE  (Theorems 2/3, all cycles False)";
    line "";
    line "The BWG contains %d elementary cycle(s), every one of which is a"
      cycles_examined;
    line "False Resource Cycle: creating it would require one buffer to be";
    line "occupied by two packets at once, which is physically impossible.";
    line "By the necessary-and-sufficient condition the algorithm is";
    line "deadlock-free."
  | Checker.Deadlock_free (Checker.Reduced_bwg { via_hint; removed; full_bwg_cycles })
    ->
    line "VERDICT: DEADLOCK-FREE  (Theorem 3, reduced waiting graph)";
    line "";
    line "The full BWG has %d cycle(s), but a wait-connected subgraph BWG'"
      full_bwg_cycles;
    line "without True Cycles exists (%s)."
      (if via_hint then "the algorithm's declarative hint, verified"
       else "found by the automatic reduction search");
    if removed <> [] then begin
      line "Waiting options dropped to form BWG':";
      List.iter
        (fun (r : Reduction.removed) ->
          line "  a packet for n%d blocked in %s no longer waits on %s"
            r.Reduction.dest (describe net r.Reduction.head)
            (describe net r.Reduction.target))
        removed
    end
  | Checker.Deadlock_possible (Checker.Stuck_states states) ->
    line "VERDICT: BROKEN ROUTING RELATION";
    line "";
    line "These reachable states have no permitted output at all:";
    List.iter
      (fun (b, d) -> line "  %s holding a packet for n%d" (describe net b) d)
      states
  | Checker.Deadlock_possible (Checker.Not_wait_connected states) ->
    line "VERDICT: DEADLOCK (not wait-connected)";
    line "";
    line "A blocked packet in these states has nothing to wait on:";
    List.iter
      (fun (b, d) -> line "  %s holding a packet for n%d" (describe net b) d)
      states
  | Checker.Deadlock_possible (Checker.Knot config) ->
    line "VERDICT: DEADLOCK  (mutually blocking configuration)";
    line "";
    line "Seat the following %d packets; every permitted output of every one"
      (List.length config);
    line "is then occupied by another member, so none can ever move:";
    List.iter
      (fun (b, d) -> line "  %s holds a packet destined n%d" (describe net b) d)
      config
  | Checker.Deadlock_possible (Checker.True_cycle { cycle; packets }) ->
    line "VERDICT: DEADLOCK  (Theorem 2, True Cycle)";
    line "";
    line "Waiting cycle: %s" (String.concat " -> " (List.map (describe net) cycle));
    line "Witness packets (each waits on a buffer the next one occupies):";
    pp_packets net buf packets
  | Checker.Deadlock_possible (Checker.No_reduction { cycle; packets }) ->
    line "VERDICT: DEADLOCK  (Theorem 3, no BWG' exists)";
    line "";
    line "Every wait-connected reduction of the waiting rule keeps a True";
    line "Cycle; for example: %s"
      (String.concat " -> " (List.map (describe net) cycle));
    pp_packets net buf packets
  | Checker.Unknown reason ->
    line "VERDICT: UNKNOWN";
    line "";
    line "The decision procedure hit a resource cap: %s." reason;
    line "(The problem is worst-case exponential; raise the caps to retry.)");
  Buffer.contents buf

let print net algo report = print_string (render net algo report)
