(** Livelock analysis.

    §2 of the paper: "livelock freedom and deadlock freedom are independent
    issues" — the BWG machinery deliberately says nothing about progress.
    This module covers the gap: a routing relation is livelock-free when no
    packet can revisit a buffer, i.e. every per-destination move graph
    restricted to the reachable states is acyclic; minimal algorithms
    satisfy the stronger property that every hop strictly decreases the
    distance to the destination. *)

open Dfr_network

type result = {
  livelock_free : bool;
  offending_dest : int option;
      (** a destination whose move graph has a cycle, when not free *)
  cycle : int list option;  (** a buffer cycle witnessing it *)
}

val analyze : State_space.t -> result

val livelock_free : State_space.t -> bool

val is_minimal : State_space.t -> bool
(** Every permitted move strictly decreases the topological distance to the
    destination.  Always false for {!Net.custom} networks (no metric). *)

val pp_result : Net.t -> Format.formatter -> result -> unit
