open Dfr_network

type t = (int * int) list

(* Start from every reachable, unarrived transit state and repeatedly
   discard states with an output outside the currently occupied buffer
   set; the survivors (if any) are mutually blocking. *)
let find space =
  let num_nodes = State_space.num_nodes space in
  let net = State_space.net space in
  let alive = Hashtbl.create 256 in
  let per_buffer = Array.make (State_space.num_buffers space) 0 in
  State_space.iter_reachable space (fun ~buf ~dest ->
      if
        Buf.is_transit (Net.buffer net buf)
        && (not (State_space.arrived space ~buf ~dest))
        && State_space.outputs space ~buf ~dest <> []
      then begin
        Hashtbl.replace alive ((buf * num_nodes) + dest) ();
        per_buffer.(buf) <- per_buffer.(buf) + 1
      end);
  let occupied buf = per_buffer.(buf) > 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let drop = ref [] in
    Hashtbl.iter
      (fun key () ->
        let buf = key / num_nodes and dest = key mod num_nodes in
        let outs = State_space.outputs space ~buf ~dest in
        if not (List.for_all occupied outs) then drop := key :: !drop)
      alive;
    List.iter
      (fun key ->
        if Hashtbl.mem alive key then begin
          Hashtbl.remove alive key;
          per_buffer.(key / num_nodes) <- per_buffer.(key / num_nodes) - 1;
          changed := true
        end)
      !drop
  done;
  if Hashtbl.length alive = 0 then None
  else begin
    (* one packet per occupied buffer: pick the first surviving dest *)
    let chosen = Hashtbl.create 64 in
    Hashtbl.iter
      (fun key () ->
        let buf = key / num_nodes and dest = key mod num_nodes in
        if not (Hashtbl.mem chosen buf) then Hashtbl.replace chosen buf dest)
      alive;
    let config = Hashtbl.fold (fun buf dest acc -> (buf, dest) :: acc) chosen [] in
    Some (List.sort compare config)
  end

let verify space config =
  let net = State_space.net space in
  let bufs = List.map fst config in
  let distinct =
    List.length (List.sort_uniq compare bufs) = List.length bufs
  in
  distinct && config <> []
  && List.for_all
       (fun (buf, dest) ->
         Buf.is_transit (Net.buffer net buf)
         && State_space.is_reachable space ~buf ~dest
         && (not (State_space.arrived space ~buf ~dest))
         && State_space.outputs space ~buf ~dest <> []
         && List.for_all
              (fun o -> List.mem o bufs)
              (State_space.outputs space ~buf ~dest))
       config

let pp net fmt config =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (buf, dest) ->
      Format.fprintf fmt "%s holds a packet for n%d@," (Net.describe_buffer net buf)
        dest)
    config;
  Format.fprintf fmt "@]"
