(** Dally-Seitz channel dependency graph (baseline proof technique).

    The classical sufficient condition [8]: deadlock freedom follows from
    an acyclic ordering of {e usage} dependencies — an edge [b -> b']
    whenever some reachable packet may move from [b] to [b'].  The paper's
    point is that this is needlessly strong for adaptive routing: usage of
    a buffer the packet never {e waits on} cannot deadlock.  The E6 verdict
    matrix contrasts this test with the BWG checker. *)

val build : State_space.t -> Dfr_graph.Digraph.t
(** Union over all destinations of the reachable move edges between
    transit buffers (injection edges excluded, as in the original
    formulation). *)

val deadlock_free : State_space.t -> bool
(** CDG acyclicity: [true] certifies deadlock freedom; [false] is merely
    "this technique cannot tell" (the condition is only sufficient for
    adaptive algorithms). *)
