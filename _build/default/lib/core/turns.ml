open Dfr_topology
open Dfr_network

type turn = {
  from_dim : int;
  from_dir : Topology.direction;
  to_dim : int;
  to_dir : Topology.direction;
}

let all_turns ~dims =
  let dirs = [ Topology.Plus; Topology.Minus ] in
  List.concat_map
    (fun from_dim ->
      List.concat_map
        (fun to_dim ->
          if to_dim = from_dim then []
          else
            List.concat_map
              (fun from_dir ->
                List.map
                  (fun to_dir -> { from_dim; from_dir; to_dim; to_dir })
                  dirs)
              dirs)
        (List.init dims Fun.id))
    (List.init dims Fun.id)

let matches_filter net turn ~node b outputs =
  match Buf.kind (Net.buffer net b) with
  | Buf.Channel { dim; dir; dst; _ }
    when dim = turn.from_dim && dir = turn.from_dir
         && (match node with None -> true | Some n -> dst = n) ->
    List.exists
      (fun o ->
        match Buf.kind (Net.buffer net o) with
        | Buf.Channel { dim = d2; dir = r2; _ } ->
          d2 = turn.to_dim && r2 = turn.to_dir
        | _ -> false)
      outputs
  | _ -> false

let search space ~node turn =
  let net = State_space.net space in
  let found = ref false in
  State_space.iter_reachable space (fun ~buf ~dest ->
      if not !found then
        if
          matches_filter net turn ~node buf
            (State_space.outputs space ~buf ~dest)
        then found := true);
  !found

let permitted space turn = search space ~node:None turn
let permitted_at space ~node turn = search space ~node:(Some node) turn

let turn_set space =
  let dims =
    match Net.topology (State_space.net space) with
    | Some topo -> Topology.dimensions topo
    | None -> invalid_arg "Turns.turn_set: custom network"
  in
  List.map (fun t -> (t, permitted space t)) (all_turns ~dims)

let pp_turn fmt t =
  Format.fprintf fmt "%d%a -> %d%a" t.from_dim Topology.pp_direction t.from_dir
    t.to_dim Topology.pp_direction t.to_dir
