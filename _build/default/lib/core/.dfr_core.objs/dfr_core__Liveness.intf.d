lib/core/liveness.mli: Dfr_network Format Net State_space
