lib/core/liveness.ml: Buf Dfr_graph Dfr_network Dfr_topology Format List Net State_space String Topology
