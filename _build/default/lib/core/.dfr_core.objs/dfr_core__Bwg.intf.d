lib/core/bwg.mli: Dfr_graph State_space
