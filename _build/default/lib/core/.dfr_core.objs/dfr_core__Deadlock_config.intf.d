lib/core/deadlock_config.mli: Dfr_network Format State_space
