lib/core/cdg.mli: Dfr_graph State_space
