lib/core/state_space.ml: Algo Array Buf Dfr_graph Dfr_network Dfr_routing List Net Option Printf Queue
