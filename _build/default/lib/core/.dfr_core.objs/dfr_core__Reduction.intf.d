lib/core/reduction.mli: Bwg Cycle_class Dfr_graph State_space
