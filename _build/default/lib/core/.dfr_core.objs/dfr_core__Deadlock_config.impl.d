lib/core/deadlock_config.ml: Array Buf Dfr_network Format Hashtbl List Net State_space
