lib/core/reduction.ml: Bwg Cycle_class Dfr_graph Dfr_network Hashtbl List Net Option State_space
