lib/core/state_space.mli: Algo Dfr_graph Dfr_network Dfr_routing Net
