lib/core/checker.mli: Algo Bwg Cycle_class Deadlock_config Dfr_graph Dfr_network Dfr_routing Format Net Reduction State_space
