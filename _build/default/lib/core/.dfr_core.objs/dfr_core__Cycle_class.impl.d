lib/core/cycle_class.ml: Bwg Dfr_graph Dfr_network Format Hashtbl List Net State_space String
