lib/core/duato_condition.mli: Dfr_graph State_space
