lib/core/duato_condition.ml: Array Dfr_graph Hashtbl List State_space
