lib/core/certificate.mli: Algo Checker Dfr_network Dfr_routing Net
