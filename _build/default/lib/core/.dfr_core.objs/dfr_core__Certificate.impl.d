lib/core/certificate.ml: Algo Buf Buffer Bwg Checker Cycle_class Dfr_graph Dfr_network Dfr_routing List Liveness Net Printf Reduction State_space String
