lib/core/turns.mli: Dfr_topology Format State_space Topology
