lib/core/checker.ml: Algo Bwg Cycle_class Deadlock_config Dfr_network Dfr_routing Format List Net Reduction State_space
