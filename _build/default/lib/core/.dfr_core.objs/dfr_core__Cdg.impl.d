lib/core/cdg.ml: Buf Dfr_graph Dfr_network List Net State_space
