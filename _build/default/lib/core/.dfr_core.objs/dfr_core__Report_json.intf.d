lib/core/report_json.mli: Algo Checker Dfr_network Dfr_routing Dfr_util Net
