lib/core/turns.ml: Buf Dfr_network Dfr_topology Format Fun List Net State_space Topology
