lib/core/report_json.ml: Algo Bwg Checker Cycle_class Dfr_graph Dfr_network Dfr_routing Dfr_util Json List Net Reduction
