lib/core/bwg.ml: Array Dfr_graph Dfr_network Domain Fun Hashtbl List Net Option State_space
