lib/core/cycle_class.mli: Bwg Dfr_network Format
