(** Direct search for a deadlock configuration (§3's definition).

    A greatest-fixed-point computation over single-buffer packets: find a
    set of reachable, unarrived states — at most one per buffer — such that
    every state's {e entire} output set lies inside the occupied buffer
    set.  Each buffer then holds a packet none of whose outputs can ever
    free, which is precisely a deadlock configuration (every waiting buffer
    is occupied by another packet of the set, for any waiting discipline).

    The test is sound and polynomial, but not complete: configurations that
    need multi-buffer worms to cover the blocking set are missed, which is
    why the checker still runs the full Theorem 2/3 machinery afterwards.
    It exists because it instantly dispatches grossly under-restricted
    algorithms (the "unrestricted" controls) whose BWGs have far too many
    cycles to enumerate. *)

type t = (int * int) list
(** The configuration: one (buffer, destination) packet per buffer. *)

val find : State_space.t -> t option
(** [Some config] is a deadlock configuration; [None] means no
    single-buffer-per-packet configuration exists. *)

val verify : State_space.t -> t -> bool
(** Re-checks the defining property (used by tests): states are reachable,
    unarrived, pairwise distinct in buffer, and all outputs stay inside the
    configuration's buffer set. *)

val pp : Dfr_network.Net.t -> Format.formatter -> t -> unit
