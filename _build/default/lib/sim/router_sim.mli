(** Pipelined virtual-channel router simulator (credit-based flow control).

    Where {!Wormhole_sim} is the minimal operational model of the paper's
    §3 (one event kind per cycle, no router internals), this simulator
    models the canonical VC router microarchitecture a NoC practitioner
    would expect:

    - per-virtual-channel input FIFOs of configurable depth;
    - a per-VC state machine Idle → Routing → Waiting-for-VC → Active;
    - route computation evaluates the algorithm's relation when the header
      reaches the FIFO head;
    - virtual-channel allocation with per-output round-robin arbitration
      (a VC is owned from allocation until its tail flit leaves, exactly
      the paper's buffer-occupancy notion);
    - switch allocation: one flit per physical link per cycle, round-robin
      across competing virtual channels;
    - credit-based flow control with one-cycle credit return;
    - one consumption port per node.

    Deadlock detection is the same sound silence rule as the flit
    simulator: a cycle with no event while packets are in flight can never
    produce one again.  Latencies are higher than {!Wormhole_sim}'s by the
    pipeline constants; deadlock behaviour must agree (tested). *)

open Dfr_network
open Dfr_routing

type config = {
  fifo_depth : int;  (** flits per virtual-channel FIFO *)
  max_cycles : int;
  seed : int;
}

val default_config : config
(** depth 4, 200_000 cycles, seed 1. *)

type outcome =
  | Completed of Stats.t
  | Deadlocked of { cycle : int; in_flight : int; stats : Stats.t }
  | Timeout of Stats.t

val run : ?config:config -> Net.t -> Algo.t -> Traffic.t -> outcome

val is_deadlocked : outcome -> bool
val stats : outcome -> Stats.t
val pp_outcome : Format.formatter -> outcome -> unit
