(** Flit-level wormhole simulator.

    Implements the paper's §3 system model operationally: virtual channels
    are small flit buffers, a packet spans a chain of them, a blocked
    packet keeps the whole chain, one flit crosses each physical link per
    cycle (virtual channels multiplex it), and a packet arriving at its
    destination is consumed at one flit per cycle.  Injection, movement and
    consumption are the only events; the simulator therefore detects
    deadlock {e exactly}: a cycle in which no event fires while packets are
    in flight can never fire one again (injections only add load, they free
    nothing), so three consecutive silent cycles end the run.

    Packets route adaptively through the algorithm's relation, or follow a
    script first (witness replay); {!run_preloaded} instead places packets
    directly into a checker-produced deadlock configuration and verifies
    the network cannot drain it. *)

open Dfr_network
open Dfr_routing

type selection = First_free | Random_free

type config = {
  capacity : int;  (** flits per virtual-channel buffer *)
  max_cycles : int;
  seed : int;
  selection : selection;
}

val default_config : config
(** capacity 4, 100_000 cycles, seed 1, random selection. *)

type outcome =
  | Completed of Stats.t  (** every packet delivered *)
  | Deadlocked of {
      cycle : int;
      in_flight : int;
      stats : Stats.t;
      wait_for : (int * int) list;
          (** the packet wait-for graph at stall time: [(p, q)] means
              packet [p] (index into the workload) is blocked on a buffer
              owned by packet [q] — the dynamic counterpart of the BWG *)
    }
  | Timeout of Stats.t  (** max_cycles elapsed with traffic still moving *)

val run : ?config:config -> Net.t -> Algo.t -> Traffic.t -> outcome

type preload = {
  chain : int list;  (** occupied buffers, tail first, header's buffer last *)
  dest : int;
  frozen : bool;
      (** a frozen packet holds its buffers and never moves — the paper's
          "arbitrarily long" filler packets from the Theorem 2 necessity
          construction *)
}

val run_preloaded : ?config:config -> Net.t -> Algo.t -> preload list -> outcome
(** Seats each packet on its chain (every buffer filled with its flits)
    and lets the network run.  [Deadlocked] confirms the configuration is
    genuinely stuck; [Completed] means the unfrozen packets drained and
    refutes it. *)

val is_deadlocked : outcome -> bool
val stats : outcome -> Stats.t
val pp_outcome : Format.formatter -> outcome -> unit
