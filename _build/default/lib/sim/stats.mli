(** Latency/throughput accounting shared by both simulators. *)

type t = {
  cycles : int;  (** cycles simulated *)
  injected : int;  (** packets that entered the network *)
  delivered : int;  (** packets fully consumed *)
  flits_delivered : int;
  latencies : int list;  (** per delivered packet, injection to consumption *)
}

val empty : t

val mean_latency : t -> float
(** [nan] when nothing was delivered. *)

val max_latency : t -> int
val percentile_latency : t -> float -> int
(** e.g. [percentile_latency t 0.95]; 0 when nothing was delivered. *)

val throughput : t -> nodes:int -> float
(** Flits delivered per node per cycle. *)

val pp : Format.formatter -> t -> unit
