type t = {
  cycles : int;
  injected : int;
  delivered : int;
  flits_delivered : int;
  latencies : int list;
}

let empty =
  { cycles = 0; injected = 0; delivered = 0; flits_delivered = 0; latencies = [] }

let mean_latency t =
  match t.latencies with
  | [] -> nan
  | ls ->
    float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (List.length ls)

let max_latency t = List.fold_left max 0 t.latencies

let percentile_latency t p =
  match List.sort compare t.latencies with
  | [] -> 0
  | sorted ->
    let n = List.length sorted in
    let idx = min (n - 1) (int_of_float (p *. float_of_int n)) in
    List.nth sorted idx

let throughput t ~nodes =
  if t.cycles = 0 then 0.0
  else float_of_int t.flits_delivered /. float_of_int t.cycles /. float_of_int nodes

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d injected=%d delivered=%d flits=%d mean-latency=%.1f" t.cycles
    t.injected t.delivered t.flits_delivered (mean_latency t)
