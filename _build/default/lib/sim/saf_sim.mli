(** Packet-level store-and-forward / virtual-cut-through simulator.

    Packets occupy exactly one whole-packet buffer at a time (§3's model:
    the brief double-occupancy during a transfer is collapsed to an atomic
    move).  One packet moves per buffer per cycle; arbitration rotates for
    fairness.  Deadlock detection mirrors the wormhole simulator: a silent
    cycle with waiting packets is permanent. *)

open Dfr_network
open Dfr_routing

type config = { max_cycles : int; seed : int }

val default_config : config
(** 100_000 cycles, seed 1. *)

type outcome =
  | Completed of Stats.t
  | Deadlocked of { cycle : int; in_flight : int; stats : Stats.t }
  | Timeout of Stats.t

val run : ?config:config -> Net.t -> Algo.t -> Traffic.t -> outcome

type preload = {
  buffer : int;
  dest : int;
  frozen : bool;  (** frozen packets hold their buffer and never move *)
}

val run_preloaded : ?config:config -> Net.t -> Algo.t -> preload list -> outcome
(** Seat one packet per state and try to drain. *)

val is_deadlocked : outcome -> bool
val stats : outcome -> Stats.t
val pp_outcome : Format.formatter -> outcome -> unit
