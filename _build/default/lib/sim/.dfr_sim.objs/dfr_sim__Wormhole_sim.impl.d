lib/sim/wormhole_sim.ml: Algo Array Buf Dfr_network Dfr_routing Dfr_topology Dfr_util Format Hashtbl List Net Prng Stats Traffic
