lib/sim/scenario.ml: Buf Checker Cycle_class Dfr_core Dfr_network Hashtbl List Net Saf_sim State_space Wormhole_sim
