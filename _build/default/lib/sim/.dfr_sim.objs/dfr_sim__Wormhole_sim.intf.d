lib/sim/wormhole_sim.mli: Algo Dfr_network Dfr_routing Format Net Stats Traffic
