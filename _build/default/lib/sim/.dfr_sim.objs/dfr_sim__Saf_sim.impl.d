lib/sim/saf_sim.ml: Algo Array Buf Dfr_network Dfr_routing Dfr_util Format List Net Prng Stats Traffic
