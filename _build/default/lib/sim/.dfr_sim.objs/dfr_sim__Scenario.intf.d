lib/sim/scenario.mli: Algo Checker Cycle_class Deadlock_config Dfr_core Dfr_network Dfr_routing Net Saf_sim State_space Wormhole_sim
