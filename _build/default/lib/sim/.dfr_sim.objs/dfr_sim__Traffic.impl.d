lib/sim/traffic.ml: Array Dfr_topology Dfr_util List Prng Topology
