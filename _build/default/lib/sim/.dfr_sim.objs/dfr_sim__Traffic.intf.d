lib/sim/traffic.mli: Dfr_topology Dfr_util
