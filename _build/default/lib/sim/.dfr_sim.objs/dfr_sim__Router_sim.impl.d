lib/sim/router_sim.ml: Algo Array Buf Dfr_network Dfr_routing Dfr_topology Format Hashtbl List Net Option Queue Stats Traffic
