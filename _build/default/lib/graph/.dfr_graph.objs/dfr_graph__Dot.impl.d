lib/graph/dot.ml: Buffer Digraph Fun List Printf String
