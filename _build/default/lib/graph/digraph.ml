(* Invariant: no duplicate entries within adj.(u); adj lists hold the most
   recently inserted successor first. *)
type t = { n : int; adj : int list array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n []; m = 0 }

let num_vertices g = g.n
let num_edges g = g.m

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: vertex out of range"

let mem_edge g u v =
  check g u;
  check g v;
  List.mem v g.adj.(u)

let add_edge g u v =
  if not (mem_edge g u v) then begin
    g.adj.(u) <- v :: g.adj.(u);
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check g u;
  check g v;
  if List.mem v g.adj.(u) then begin
    g.adj.(u) <- List.filter (fun w -> w <> v) g.adj.(u);
    g.m <- g.m - 1
  end

let succ g u =
  check g u;
  List.rev g.adj.(u)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.adj.(u))
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { n = g.n; adj = Array.copy g.adj; m = g.m }

let transpose g =
  let t = create g.n in
  iter_edges (fun u v -> add_edge t v u) g;
  t

let induced g ~keep =
  let h = create g.n in
  iter_edges (fun u v -> if keep u && keep v then add_edge h u v) g;
  h

let out_degree g u =
  check g u;
  List.length g.adj.(u)

let equal a b =
  a.n = b.n && a.m = b.m
  && begin
    let ok = ref true in
    iter_edges (fun u v -> if not (mem_edge b u v) then ok := false) a;
    !ok
  end

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph (%d vertices, %d edges)" g.n g.m;
  iter_edges (fun u v -> Format.fprintf fmt "@,  %d -> %d" u v) g;
  Format.fprintf fmt "@]"
