type result = { count : int; component : int array }

(* Iterative Tarjan: an explicit work stack holds (vertex, remaining
   successors) frames so deep graphs cannot overflow the OCaml stack. *)
let compute g =
  let n = Digraph.num_vertices g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let work = ref [ (root, ref (Digraph.succ g root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, succs) :: rest -> (
        match !succs with
        | w :: ws ->
          succs := ws;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            work := (w, ref (Digraph.succ g w)) :: !work
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          work := rest;
          (match rest with
          | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let rec pop () =
              match !stack with
              | [] -> assert false
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                component.(w) <- !next_comp;
                if w <> v then pop ()
            in
            pop ();
            incr next_comp
          end)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  { count = !next_comp; component }

let members r =
  let buckets = Array.make r.count [] in
  Array.iteri (fun v c -> buckets.(c) <- v :: buckets.(c)) r.component;
  buckets

let condensation g r =
  let c = Digraph.create r.count in
  Digraph.iter_edges
    (fun u v ->
      let cu = r.component.(u) and cv = r.component.(v) in
      if cu <> cv then Digraph.add_edge c cu cv)
    g;
  c

let nontrivial g r =
  let size = Array.make r.count 0 in
  Array.iter (fun c -> size.(c) <- size.(c) + 1) r.component;
  let has_self = Array.make r.count false in
  Digraph.iter_edges
    (fun u v -> if u = v then has_self.(r.component.(u)) <- true)
    g;
  let keep = ref [] in
  for c = r.count - 1 downto 0 do
    if size.(c) >= 2 || has_self.(c) then keep := c :: !keep
  done;
  !keep
