(** Reachability, breadth-first distances and topological sorting. *)

val reachable : Digraph.t -> int list -> bool array
(** [reachable g sources] marks every vertex reachable from any source
    (sources themselves included). *)

val bfs_distances : Digraph.t -> int -> int array
(** Hop distances from a single source; [max_int] for unreachable
    vertices. *)

val topological_sort : Digraph.t -> int list option
(** Kahn's algorithm.  [Some order] lists all vertices with every edge
    pointing forward; [None] when the graph has a (possibly self-loop)
    cycle. *)

val is_acyclic : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** Some elementary cycle [v1; ...; vk] (edges [vi -> vi+1] and
    [vk -> v1]), or [None] for acyclic graphs.  A self loop yields a
    singleton list. *)

val path : Digraph.t -> int -> int -> int list option
(** A shortest path [src; ...; dst] if one exists. *)
