(** Strongly connected components (Tarjan, iterative). *)

type result = {
  count : int;  (** number of components *)
  component : int array;
      (** [component.(v)] is the component index of vertex [v]; indices are
          a reverse topological numbering of the condensation (every edge
          between distinct components goes from a higher index to a lower
          one). *)
}

val compute : Digraph.t -> result

val members : result -> int list array
(** Vertices of each component. *)

val condensation : Digraph.t -> result -> Digraph.t
(** Component graph: one vertex per component, edges between distinct
    components only. *)

val nontrivial : Digraph.t -> result -> int list
(** Components that can host a cycle: size >= 2, or a single vertex with a
    self loop. *)
