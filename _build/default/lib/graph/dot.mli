(** Graphviz DOT export, for inspecting buffer waiting graphs by eye. *)

val to_string :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(int -> int -> (string * string) list) ->
  Digraph.t ->
  string

val to_file :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(int -> int -> (string * string) list) ->
  string ->
  Digraph.t ->
  unit
