type limits = { max_cycles : int; max_length : int }

let default_limits = { max_cycles = 10_000; max_length = 64 }

exception Done

(* Johnson's algorithm restricted to one SCC at a time.  [least] is the
   root vertex of the current round: only vertices >= least participate and
   every reported cycle starts at [least]. *)
let enumerate_with ?(limits = default_limits) g ~on_truncate =
  let n = Digraph.num_vertices g in
  let result = ref [] in
  let found = ref 0 in
  let blocked = Array.make n false in
  let block_map = Array.make n [] in
  let stack = ref [] in
  let rec unblock v =
    if blocked.(v) then begin
      blocked.(v) <- false;
      let ws = block_map.(v) in
      block_map.(v) <- [];
      List.iter unblock ws
    end
  in
  let emit () =
    result := List.rev !stack :: !result;
    incr found;
    if !found >= limits.max_cycles then begin
      on_truncate ();
      raise Done
    end
  in
  (* circuit over the subgraph [allowed] *)
  let rec circuit g allowed least v =
    let closed = ref false in
    blocked.(v) <- true;
    stack := v :: !stack;
    let explore w =
      if allowed.(w) then
        if w = least then begin
          if List.length !stack <= limits.max_length then emit ();
          closed := true
        end
        else if not blocked.(w) && List.length !stack < limits.max_length then
          if circuit g allowed least w then closed := true
    in
    List.iter explore (Digraph.succ g v);
    if !closed then unblock v
    else
      List.iter
        (fun w ->
          if allowed.(w) && not (List.mem v block_map.(w)) then
            block_map.(w) <- v :: block_map.(w))
        (Digraph.succ g v);
    stack := List.tl !stack;
    !closed
  in
  (try
     for least = 0 to n - 1 do
       (* SCC of the subgraph induced by vertices >= least that contains
          [least] *)
       let sub = Digraph.induced g ~keep:(fun v -> v >= least) in
       let scc = Scc.compute sub in
       let c = scc.Scc.component.(least) in
       let allowed = Array.make n false in
       Array.iteri
         (fun v cv -> if v >= least && cv = c then allowed.(v) <- true)
         scc.Scc.component;
       let in_scc_with_edge =
         List.exists (fun w -> allowed.(w)) (Digraph.succ sub least)
       in
       if in_scc_with_edge || Digraph.mem_edge g least least then begin
         for v = 0 to n - 1 do
           blocked.(v) <- false;
           block_map.(v) <- []
         done;
         ignore (circuit g allowed least least)
       end
     done
   with Done -> ());
  List.rev !result

let enumerate ?limits g =
  enumerate_with ?limits g ~on_truncate:(fun () -> ())

let enumerate_checked ?limits g =
  let hit = ref false in
  let cs = enumerate_with ?limits g ~on_truncate:(fun () -> hit := true) in
  (cs, not !hit)

let truncated ?limits g =
  let hit = ref false in
  ignore (enumerate_with ?limits g ~on_truncate:(fun () -> hit := true));
  !hit

let count_bounded ?limits g = List.length (enumerate ?limits g)
