(** Mutable directed graphs over integer vertices [0, n).

    This is the graph substrate for the whole toolkit (the sealed build
    environment has no [ocamlgraph]).  Vertices are dense integers so the
    buffer-waiting-graph engine can use buffer identifiers directly. *)

type t

val create : int -> t
(** [create n] is a graph with vertices [0 .. n-1] and no edges. *)

val num_vertices : t -> int

val num_edges : t -> int
(** Number of distinct edges. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts edge [u -> v]; duplicate insertions are
    ignored.  Self loops are allowed.  Raises [Invalid_argument] when a
    vertex is out of range. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge if present; no-op otherwise. *)

val mem_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors of a vertex, in insertion order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> (int * int) list

val of_edges : int -> (int * int) list -> t
val copy : t -> t
val transpose : t -> t

val induced : t -> keep:(int -> bool) -> t
(** [induced g ~keep] is a same-vertex-set graph retaining only edges whose
    endpoints both satisfy [keep]. *)

val out_degree : t -> int -> int

val equal : t -> t -> bool
(** Same vertex count and same edge set (order-insensitive). *)

val pp : Format.formatter -> t -> unit
