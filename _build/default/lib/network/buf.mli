(** Buffers: the universal resource of the paper's system model.

    Every resource a packet can block on is a buffer — the flit buffer of a
    wormhole virtual channel, or a whole-packet buffer of a
    store-and-forward / virtual-cut-through node.  Injection and delivery
    buffers complete the model exactly as in §3 of the paper: they exist so
    that "packet injected" and "packet consumed" are ordinary buffer
    transfers. *)

open Dfr_topology

type kind =
  | Injection of int  (** node *)
  | Delivery of int  (** node *)
  | Channel of {
      src : int;
      dst : int;
      dim : int;
      dir : Topology.direction;
      vc : int;  (** virtual-channel index on the physical link *)
    }  (** a unidirectional wormhole virtual channel *)
  | Node_buffer of { node : int; cls : int }
      (** a whole-packet buffer of a SAF/VCT node; [cls] is the buffer
          class (e.g. the Two-Buffer algorithm's A = 0 and B = 1) *)

type t = { id : int; kind : kind }

val id : t -> int
val kind : t -> kind

val head_node : t -> int
(** The node where the head of a packet occupying this buffer resides:
    the channel's destination endpoint, or the owning node otherwise. *)

val source_node : t -> int
(** The node a packet sits at immediately before acquiring this buffer
    (a channel's source endpoint; the owning node otherwise). *)

val is_injection : t -> bool
val is_delivery : t -> bool
val is_transit : t -> bool
(** Channel or node buffer — a resource deadlocks can form over. *)

val vc : t -> int option
(** Virtual-channel index for channels, [None] otherwise. *)

val cls : t -> int option
(** Buffer class for node buffers, [None] otherwise. *)

val describe : Topology.t -> t -> string
(** Human-readable name in the paper's notation, e.g. ["B2+^1@(0,1)"] for
    virtual channel 2 in the positive direction of dimension 1 leaving node
    (0,1). *)

val pp : Format.formatter -> t -> unit
