(** Buffer-level networks: a topology elaborated into the full set of
    buffers the paper's model reasons about.

    A wormhole network has [vcs] virtual channels per directed physical
    channel; a store-and-forward or virtual-cut-through network has
    [classes] whole-packet buffers per node.  Every node additionally gets
    one injection and one delivery buffer (§3 of the paper).  [custom]
    builds irregular networks — e.g. Duato's incoherent example of Figure 1,
    which needs parallel links — from an explicit channel list. *)

open Dfr_topology

type switching = Store_and_forward | Virtual_cut_through | Wormhole

type t

val wormhole : Topology.t -> vcs:int -> t
(** Virtual channels are numbered [0 .. vcs-1]; the paper's [B1] is
    [vc = 0] and [B2] is [vc = 1]. *)

val store_and_forward : Topology.t -> classes:int -> t
val virtual_cut_through : Topology.t -> classes:int -> t

val custom :
  name:string ->
  switching:switching ->
  num_nodes:int ->
  channels:(int * int * int) list ->
  t
(** [custom ~name ~switching ~num_nodes ~channels] builds a network from
    explicit directed channels [(src, dst, vc)].  Channels are created in
    list order; [find_custom_channel] retrieves them by the same triple.
    The [dim]/[dir] metadata of custom channels is the channel's position
    in the list and [Plus]. *)

val name : t -> string
val switching : t -> switching
val num_nodes : t -> int
val num_buffers : t -> int

val topology : t -> Topology.t option
val topology_exn : t -> Topology.t
(** Raises [Invalid_argument] on {!custom} networks. *)

val buffer : t -> int -> Buf.t
(** Buffer by id; ids are dense in [0, num_buffers). *)

val buffers : t -> Buf.t array
(** The underlying array; callers must not mutate it. *)

val injection : t -> int -> Buf.t
(** Injection buffer of a node. *)

val delivery : t -> int -> Buf.t

val channel : t -> src:int -> dim:int -> dir:Topology.direction -> vc:int -> Buf.t
(** The virtual-channel buffer leaving [src] along [(dim, dir)].  Raises
    [Not_found] when the topology has no such channel or the network is not
    wormhole. *)

val node_buffer : t -> node:int -> cls:int -> Buf.t
(** The class-[cls] packet buffer of a node (SAF/VCT networks).  Raises
    [Not_found]. *)

val find_custom_channel : t -> src:int -> dst:int -> vc:int -> Buf.t
(** Channel lookup for {!custom} networks. Raises [Not_found]. *)

val channels_from : t -> int -> Buf.t list
(** All channel buffers whose source endpoint is the given node. *)

val transit_buffers : t -> Buf.t list
(** All channel and node buffers (the deadlock-relevant resources). *)

val vcs : t -> int
(** Virtual channels per physical channel (wormhole), or buffer classes per
    node (SAF/VCT). *)

val describe_buffer : t -> int -> string
(** Paper-style name of a buffer ([B1+^2@(0,1)], [A@(2,3)], [inj@(0,0)]...);
    falls back to ids for custom networks. *)
