open Dfr_topology

type kind =
  | Injection of int
  | Delivery of int
  | Channel of {
      src : int;
      dst : int;
      dim : int;
      dir : Topology.direction;
      vc : int;
    }
  | Node_buffer of { node : int; cls : int }

type t = { id : int; kind : kind }

let id b = b.id
let kind b = b.kind

let head_node b =
  match b.kind with
  | Injection n | Delivery n -> n
  | Channel { dst; _ } -> dst
  | Node_buffer { node; _ } -> node

let source_node b =
  match b.kind with
  | Injection n | Delivery n -> n
  | Channel { src; _ } -> src
  | Node_buffer { node; _ } -> node

let is_injection b = match b.kind with Injection _ -> true | _ -> false
let is_delivery b = match b.kind with Delivery _ -> true | _ -> false

let is_transit b =
  match b.kind with
  | Channel _ | Node_buffer _ -> true
  | Injection _ | Delivery _ -> false

let vc b = match b.kind with Channel { vc; _ } -> Some vc | _ -> None
let cls b = match b.kind with Node_buffer { cls; _ } -> Some cls | _ -> None

let describe topo b =
  let node_str n = Format.asprintf "%a" (Topology.pp_node topo) n in
  match b.kind with
  | Injection n -> Printf.sprintf "inj@%s" (node_str n)
  | Delivery n -> Printf.sprintf "del@%s" (node_str n)
  | Channel { src; dim; dir; vc; _ } ->
    Printf.sprintf "B%d%s^%d@%s" (vc + 1)
      (match dir with Topology.Plus -> "+" | Topology.Minus -> "-")
      dim (node_str src)
  | Node_buffer { node; cls } ->
    Printf.sprintf "%c@%s" (Char.chr (Char.code 'A' + cls)) (node_str node)

let pp fmt b =
  match b.kind with
  | Injection n -> Format.fprintf fmt "inj@%d" n
  | Delivery n -> Format.fprintf fmt "del@%d" n
  | Channel { src; dst; dim; dir; vc } ->
    Format.fprintf fmt "vc%d[%d->%d dim%d%a]" vc src dst dim Topology.pp_direction
      dir
  | Node_buffer { node; cls } -> Format.fprintf fmt "buf%c@%d" (Char.chr (Char.code 'A' + cls)) node
