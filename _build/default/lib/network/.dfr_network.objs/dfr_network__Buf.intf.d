lib/network/buf.mli: Dfr_topology Format Topology
