lib/network/net.mli: Buf Dfr_topology Topology
