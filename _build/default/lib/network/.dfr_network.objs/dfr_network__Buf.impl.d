lib/network/buf.ml: Char Dfr_topology Format Printf Topology
