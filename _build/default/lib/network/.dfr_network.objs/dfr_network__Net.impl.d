lib/network/net.ml: Array Buf Char Dfr_topology Hashtbl List Printf Topology
