open Dfr_topology

type switching = Store_and_forward | Virtual_cut_through | Wormhole

type channel_key = { k_src : int; k_dim : int; k_plus : bool; k_vc : int }

type t = {
  name : string;
  switching : switching;
  num_nodes : int;
  buffers : Buf.t array;
  injection : int array; (* node -> buffer id *)
  delivery : int array;
  channel_index : (channel_key, int) Hashtbl.t;
  custom_index : (int * int * int, int) Hashtbl.t; (* (src, dst, vc) -> id *)
  node_buffer_index : (int * int, int) Hashtbl.t; (* (node, cls) -> id *)
  outgoing : int list array; (* node -> channel buffer ids from that node *)
  topology : Topology.t option;
  vcs : int;
}

let name t = t.name
let switching t = t.switching
let num_nodes t = t.num_nodes
let num_buffers t = Array.length t.buffers
let topology t = t.topology

let topology_exn t =
  match t.topology with
  | Some topo -> topo
  | None -> invalid_arg "Net.topology_exn: custom network"

let buffer t id = t.buffers.(id)
let buffers t = t.buffers
let injection t node = t.buffers.(t.injection.(node))
let delivery t node = t.buffers.(t.delivery.(node))

let channel t ~src ~dim ~dir ~vc =
  let key = { k_src = src; k_dim = dim; k_plus = (dir = Topology.Plus); k_vc = vc } in
  t.buffers.(Hashtbl.find t.channel_index key)

let node_buffer t ~node ~cls = t.buffers.(Hashtbl.find t.node_buffer_index (node, cls))
let find_custom_channel t ~src ~dst ~vc = t.buffers.(Hashtbl.find t.custom_index (src, dst, vc))
let channels_from t node = List.rev_map (fun id -> t.buffers.(id)) t.outgoing.(node) |> List.rev

let transit_buffers t =
  Array.to_list t.buffers |> List.filter Buf.is_transit

let vcs t = t.vcs
let describe_buffer t id =
  match t.topology with
  | Some topo -> Buf.describe topo t.buffers.(id)
  | None ->
    let b = t.buffers.(id) in
    (match Buf.kind b with
    | Buf.Injection n -> Printf.sprintf "inj@n%d" n
    | Buf.Delivery n -> Printf.sprintf "del@n%d" n
    | Buf.Channel { src; dst; vc; _ } -> Printf.sprintf "q[%d->%d]%d" src dst (vc + 1)
    | Buf.Node_buffer { node; cls } ->
      Printf.sprintf "%c@n%d" (Char.chr (Char.code 'A' + cls)) node)

type builder = {
  mutable acc : Buf.t list; (* reversed *)
  mutable next : int;
}

let new_builder () = { acc = []; next = 0 }

let push b kind =
  let id = b.next in
  b.next <- id + 1;
  b.acc <- { Buf.id; kind } :: b.acc;
  id

let finish b = Array.of_list (List.rev b.acc)

let base ~name ~switching ~num_nodes ~topology ~vcs fill =
  let bld = new_builder () in
  let injection = Array.init num_nodes (fun n -> push bld (Buf.Injection n)) in
  let delivery = Array.init num_nodes (fun n -> push bld (Buf.Delivery n)) in
  let channel_index = Hashtbl.create 64 in
  let custom_index = Hashtbl.create 64 in
  let node_buffer_index = Hashtbl.create 64 in
  let outgoing = Array.make num_nodes [] in
  fill bld ~channel_index ~custom_index ~node_buffer_index ~outgoing;
  Array.iteri (fun n ids -> outgoing.(n) <- List.rev ids) outgoing;
  {
    name;
    switching;
    num_nodes;
    buffers = finish bld;
    injection;
    delivery;
    channel_index;
    custom_index;
    node_buffer_index;
    outgoing;
    topology;
    vcs;
  }

let wormhole topo ~vcs =
  if vcs < 1 then invalid_arg "Net.wormhole: vcs must be >= 1";
  let num_nodes = Topology.num_nodes topo in
  let fill bld ~channel_index ~custom_index:_ ~node_buffer_index:_ ~outgoing =
    for src = 0 to num_nodes - 1 do
      let add_channel (dim, dir, dst) =
        for vc = 0 to vcs - 1 do
          let id = push bld (Buf.Channel { src; dst; dim; dir; vc }) in
          let key =
            { k_src = src; k_dim = dim; k_plus = (dir = Topology.Plus); k_vc = vc }
          in
          Hashtbl.replace channel_index key id;
          outgoing.(src) <- id :: outgoing.(src)
        done
      in
      List.iter add_channel (Topology.neighbors topo src)
    done
  in
  base
    ~name:(Printf.sprintf "wormhole(%s,%dvc)" (Topology.name topo) vcs)
    ~switching:Wormhole ~num_nodes ~topology:(Some topo) ~vcs fill

let packet_buffered switching tag topo ~classes =
  if classes < 1 then invalid_arg "Net: classes must be >= 1";
  let num_nodes = Topology.num_nodes topo in
  let fill bld ~channel_index:_ ~custom_index:_ ~node_buffer_index ~outgoing:_ =
    for node = 0 to num_nodes - 1 do
      for cls = 0 to classes - 1 do
        let id = push bld (Buf.Node_buffer { node; cls }) in
        Hashtbl.replace node_buffer_index (node, cls) id
      done
    done
  in
  base
    ~name:(Printf.sprintf "%s(%s,%dbuf)" tag (Topology.name topo) classes)
    ~switching ~num_nodes ~topology:(Some topo) ~vcs:classes fill

let store_and_forward topo ~classes =
  packet_buffered Store_and_forward "saf" topo ~classes

let virtual_cut_through topo ~classes =
  packet_buffered Virtual_cut_through "vct" topo ~classes

let custom ~name ~switching ~num_nodes ~channels =
  if num_nodes < 1 then invalid_arg "Net.custom: num_nodes must be >= 1";
  let max_vc =
    List.fold_left (fun acc (_, _, vc) -> max acc (vc + 1)) 1 channels
  in
  let fill bld ~channel_index:_ ~custom_index ~node_buffer_index ~outgoing =
    List.iteri
      (fun i (src, dst, vc) ->
        if src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes then
          invalid_arg "Net.custom: channel endpoint out of range";
        match switching with
        | Wormhole ->
          let id = push bld (Buf.Channel { src; dst; dim = i; dir = Topology.Plus; vc }) in
          Hashtbl.replace custom_index (src, dst, vc) id;
          outgoing.(src) <- id :: outgoing.(src)
        | Store_and_forward | Virtual_cut_through ->
          (* buffer classes stand in for channels on packet-buffered custom
             networks: one buffer at [dst] per incoming channel *)
          let id = push bld (Buf.Node_buffer { node = dst; cls = vc }) in
          Hashtbl.replace node_buffer_index (dst, vc) id)
      channels
  in
  base ~name ~switching ~num_nodes ~topology:None ~vcs:max_vc fill
