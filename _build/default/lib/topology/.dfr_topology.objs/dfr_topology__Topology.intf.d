lib/topology/topology.mli: Dfr_graph Format
