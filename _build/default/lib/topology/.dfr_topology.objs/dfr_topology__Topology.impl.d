lib/topology/topology.ml: Array Dfr_graph Format List Option Printf String
