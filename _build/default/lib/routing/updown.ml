open Dfr_network
open Dfr_util

type t = {
  net : Net.t;
  algo : Algo.t;
  levels : int array;
}

(* BFS levels from the root over an undirected adjacency list. *)
let bfs_levels ~num_nodes ~adjacency ~root =
  let levels = Array.make num_nodes (-1) in
  let q = Queue.create () in
  levels.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if levels.(v) = -1 then begin
          levels.(v) <- levels.(u) + 1;
          Queue.add v q
        end)
      adjacency.(u)
  done;
  if Array.exists (fun l -> l = -1) levels then
    invalid_arg "Updown.make: graph is not connected";
  levels

let up levels ~src ~dst =
  levels.(dst) < levels.(src) || (levels.(dst) = levels.(src) && dst < src)

(* Permitted next channels from (node, phase) with a reachability filter:
   once a packet has taken a down channel it may only continue down, and
   down channels strictly increase (level, id), so reachability must be
   checked in the two-phase automaton. *)
let make ~num_nodes ~edges ~root =
  if root < 0 || root >= num_nodes then invalid_arg "Updown.make: bad root";
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Updown.make: self loop";
      if u < 0 || u >= num_nodes || v < 0 || v >= num_nodes then
        invalid_arg "Updown.make: edge endpoint out of range")
    edges;
  let edges = List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) edges) in
  let adjacency = Array.make num_nodes [] in
  List.iter
    (fun (u, v) ->
      adjacency.(u) <- v :: adjacency.(u);
      adjacency.(v) <- u :: adjacency.(v))
    edges;
  let levels = bfs_levels ~num_nodes ~adjacency ~root in
  let channels =
    List.concat_map (fun (u, v) -> [ (u, v, 0); (v, u, 0) ]) edges
  in
  let net =
    Net.custom ~name:(Printf.sprintf "updown-%d" num_nodes)
      ~switching:Net.Wormhole ~num_nodes ~channels
  in
  (* reach_down.(v).(d): can v reach d using only down channels?
     reach_any.(v).(d): can v reach d with a legal up*down* suffix
     starting in the up phase? *)
  let reach_down = Array.make_matrix num_nodes num_nodes false in
  let reach_any = Array.make_matrix num_nodes num_nodes false in
  for d = 0 to num_nodes - 1 do
    (* down reachability: backward closure over down channels *)
    reach_down.(d).(d) <- true;
    reach_any.(d).(d) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 0 to num_nodes - 1 do
        if not reach_down.(v).(d) then
          if
            List.exists
              (fun w -> (not (up levels ~src:v ~dst:w)) && reach_down.(w).(d))
              adjacency.(v)
          then begin
            reach_down.(v).(d) <- true;
            changed := true
          end
      done
    done;
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 0 to num_nodes - 1 do
        if not reach_any.(v).(d) then
          if
            reach_down.(v).(d)
            || List.exists
                 (fun w -> up levels ~src:v ~dst:w && reach_any.(w).(d))
                 adjacency.(v)
          then begin
            reach_any.(v).(d) <- true;
            changed := true
          end
      done
    done
  done;
  let chan src dst = Buf.id (Net.find_custom_channel net ~src ~dst ~vc:0) in
  let route net' b ~dest =
    ignore net';
    let head = Buf.head_node b in
    if head = dest then []
    else begin
      (* phase: a packet whose input channel was a down channel may only
         continue down; injection and up-channel inputs are in the up
         phase *)
      let in_down_phase =
        match Buf.kind b with
        | Buf.Channel { src; dst; _ } -> not (up levels ~src ~dst)
        | _ -> false
      in
      List.filter_map
        (fun w ->
          let w_is_up = up levels ~src:head ~dst:w in
          if in_down_phase && w_is_up then None
          else if w_is_up then
            if reach_any.(w).(dest) then Some (chan head w) else None
          else if reach_down.(w).(dest) then Some (chan head w)
          else None)
        adjacency.(head)
    end
  in
  let algo =
    Algo.make
      ~name:(Printf.sprintf "updown-%d" num_nodes)
      ~wait:Algo.Any_wait ~route ()
  in
  { net; algo; levels }

let is_up t ~src ~dst = up t.levels ~src ~dst

let random_connected ~seed ~num_nodes ~extra_edges =
  if num_nodes < 2 then invalid_arg "Updown.random_connected: too small";
  let rng = Prng.create seed in
  (* random spanning tree: attach each node to a random earlier one *)
  let order = Array.init num_nodes Fun.id in
  Prng.shuffle rng order;
  let edges = ref [] in
  for i = 1 to num_nodes - 1 do
    let parent = order.(Prng.int rng i) in
    edges := (order.(i), parent) :: !edges
  done;
  for _ = 1 to extra_edges do
    let u = Prng.int rng num_nodes and v = Prng.int rng num_nodes in
    if u <> v then edges := (u, v) :: !edges
  done;
  make ~num_nodes ~edges:!edges ~root:0

let fat_tree ~levels ~down_degree =
  if levels < 2 || down_degree < 2 then invalid_arg "Updown.fat_tree";
  (* breadth-first numbering: level l starts at (d^l - 1)/(d - 1) *)
  let d = down_degree in
  let level_start l = ((int_of_float (float_of_int d ** float_of_int l)) - 1) / (d - 1) in
  let num_nodes = level_start levels in
  let edges = ref [] in
  for node = 1 to num_nodes - 1 do
    edges := (node, (node - 1) / d) :: !edges
  done;
  (* cross-links between consecutive siblings give the fabric alternate
     routes, the reason up*/down* is needed at all *)
  for l = 1 to levels - 1 do
    let lo = level_start l and hi = level_start (l + 1) in
    for node = lo to hi - 2 do
      edges := (node, node + 1) :: !edges
    done
  done;
  make ~num_nodes ~edges:!edges ~root:0
