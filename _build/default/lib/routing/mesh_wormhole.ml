open Dfr_topology
open Dfr_network

let check_net ?(vcs = 1) ?(dims = 0) net =
  (match Net.switching net with
  | Net.Wormhole -> ()
  | _ -> invalid_arg "Mesh_wormhole: wormhole network required");
  if Net.vcs net < vcs then invalid_arg "Mesh_wormhole: not enough virtual channels";
  let topo = Net.topology_exn net in
  if Topology.is_torus topo then invalid_arg "Mesh_wormhole: mesh topology required";
  if dims > 0 && Topology.dimensions topo <> dims then
    invalid_arg "Mesh_wormhole: wrong dimensionality";
  topo

let needed ?vcs ?dims net ~head ~dest =
  let topo = check_net ?vcs ?dims net in
  Topology.minimal_moves topo ~src:head ~dst:dest

let chan net head (dim, dir) vc = Buf.id (Net.channel net ~src:head ~dim ~dir ~vc)

let lowest = function
  | [] -> invalid_arg "Mesh_wormhole: routing at destination"
  | move :: _ -> move

let dimension_order_route net b ~dest =
  let head = Buf.head_node b in
  [ chan net head (lowest (needed net ~head ~dest)) 0 ]

let dimension_order =
  Algo.make ~name:"dimension-order" ~wait:Algo.Specific_wait
    ~route:dimension_order_route ()

let duato_mesh_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed ~vcs:2 net ~head ~dest in
  chan net head (lowest moves) 0 :: List.map (fun m -> chan net head m 1) moves

let duato_mesh_waits net b ~dest =
  let head = Buf.head_node b in
  [ chan net head (lowest (needed ~vcs:2 net ~head ~dest)) 0 ]

let duato_mesh =
  Algo.make ~name:"duato-mesh" ~wait:Algo.Specific_wait ~route:duato_mesh_route
    ~waits:duato_mesh_waits ()

(* Turn-model algorithms: partition the needed moves into a "first" phase
   and a "rest" phase; the packet routes adaptively within the current
   phase. *)
let phased_route ~dims ~in_first net b ~dest =
  let head = Buf.head_node b in
  let moves = needed ~dims net ~head ~dest in
  let first, rest = List.partition in_first moves in
  let active = if first <> [] then first else rest in
  List.map (fun m -> chan net head m 0) active

let west_first =
  Algo.make ~name:"west-first" ~wait:Algo.Any_wait
    ~route:(phased_route ~dims:2 ~in_first:(fun (dim, dir) -> dim = 0 && dir = Topology.Minus))
    ()

let north_last =
  Algo.make ~name:"north-last" ~wait:Algo.Any_wait
    ~route:
      (phased_route ~dims:2 ~in_first:(fun (dim, dir) ->
           not (dim = 1 && dir = Topology.Plus)))
    ()

let negative_first =
  Algo.make ~name:"negative-first" ~wait:Algo.Any_wait
    ~route:(phased_route ~dims:0 ~in_first:(fun (_, dir) -> dir = Topology.Minus))
    ()

(* Double-y: X rides vc 0; Y rides vc 0 while the packet still needs a
   westward hop, vc 1 afterwards.  Westbound packets can never wait on
   east-class resources and the class transition is one-way, so no waiting
   cycle closes even though every minimal hop is always offered. *)
let double_y_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed ~vcs:2 ~dims:2 net ~head ~dest in
  let needs_west = List.mem (0, Topology.Minus) moves in
  let y_vc = if needs_west then 0 else 1 in
  List.map
    (fun ((dim, _) as m) -> chan net head m (if dim = 0 then 0 else y_vc))
    moves

let double_y =
  Algo.make ~name:"double-y" ~wait:Algo.Any_wait ~route:double_y_route ()

(* Odd-even turn model: forbid EN/ES turns in even columns and NW/SW turns
   in odd columns, with the two look-ahead refinements that keep the
   minimal relation dead-end free (Chiu's ROUTE function). *)
let odd_even_route net b ~dest =
  let topo = check_net ~dims:2 net in
  let head = Buf.head_node b in
  let moves = Topology.minimal_moves topo ~src:head ~dst:dest in
  let cur_col = Topology.coordinate topo head 0 in
  let dest_col = Topology.coordinate topo dest 0 in
  let dx = compare dest_col cur_col in
  let input_dim_dir =
    match Buf.kind b with
    | Buf.Channel { dim; dir; _ } -> Some (dim, dir)
    | _ -> None
  in
  let from_east = input_dim_dir = Some (0, Topology.Plus) in
  let from_row = match input_dim_dir with Some (1, _) -> true | _ -> false in
  let even = cur_col mod 2 = 0 in
  let unaligned_row = List.exists (fun (dim, _) -> dim = 1) moves in
  let allow (dim, dir) =
    match (dim, dir) with
    | 0, Topology.Plus ->
      (* east: never enter an unaligned even destination column heading
         east — the needed EN/ES turn there would be illegal *)
      not (unaligned_row && dest_col mod 2 = 0 && cur_col + 1 = dest_col)
    | 0, Topology.Minus ->
      (* west after a row move only in even columns *)
      not (from_row && not even)
    | 1, _ ->
      if dx > 0 then not (from_east && even)
      else if dx < 0 then even
      else not (from_east && even)
    | _ -> true
  in
  List.filter_map (fun m -> if allow m then Some (chan net head m 0) else None) moves

let odd_even =
  Algo.make ~name:"odd-even" ~wait:Algo.Any_wait ~route:odd_even_route ()

(* Planar-adaptive: adaptivity confined to plane A_p spanned by the
   lowest needed dimension p and the STRICTLY consecutive dimension p+1,
   with a double-y class split inside the plane.  The consecutiveness is
   essential: it dedicates dim q's vc1/vc2 channels to the single plane
   A_{q-1}, so the class invariant (the packet's pending direction in the
   plane's first dimension) is well defined per channel — letting any
   higher dimension act as partner shares those channels between planes
   and reintroduces waiting cycles (caught by the checker during
   development). *)
let planar_adaptive_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed ~vcs:3 net ~head ~dest in
  match moves with
  | [] -> invalid_arg "Mesh_wormhole: routing at destination"
  | (p, dir_p) :: rest ->
    let partner =
      List.find_opt (fun (q, _) -> q = p + 1) rest
    in
    let x = chan net head (p, dir_p) 0 in
    (match partner with
    | None -> [ x ]
    | Some (q, dir_q) ->
      let y_vc = if dir_p = Topology.Minus then 1 else 2 in
      [ x; chan net head (q, dir_q) y_vc ])

let planar_adaptive =
  Algo.make ~name:"planar-adaptive" ~wait:Algo.Any_wait
    ~route:planar_adaptive_route ()

let unrestricted_route net b ~dest =
  let head = Buf.head_node b in
  List.map (fun m -> chan net head m 0) (needed net ~head ~dest)

let unrestricted =
  Algo.make ~name:"unrestricted-mesh" ~wait:Algo.Any_wait ~route:unrestricted_route ()
