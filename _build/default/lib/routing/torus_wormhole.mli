(** Wormhole routing on k-ary n-cubes (tori): the conclusion's claim that
    the proof technique applies to "any network topology" is exercised on
    wrap-around networks here. *)

val dateline : Algo.t
(** Dally-Seitz-style nonadaptive dimension-order routing with two virtual
    channels per directed channel: within a dimension the packet travels
    the shorter way (ties broken toward [Plus]); it uses [vc 1] while its
    remaining path stays on the near side of the wrap and [vc 0] once the
    remaining path must cross it, which breaks the ring cycle in the
    waiting graph.  Needs [Net.wormhole (Topology.torus ...) ~vcs:2]. *)

val duato_torus : Algo.t
(** Fully adaptive torus routing in Duato's style: [vc 2] carries minimal
    adaptive traffic in any profitable direction, while [vc 0]/[vc 1]
    form the {!dateline} escape; a blocked packet waits on its escape
    channel.  Needs [Net.wormhole (Topology.torus ...) ~vcs:3]. *)

val unrestricted : Algo.t
(** Control: minimal adaptive on one virtual channel, waiting anywhere.
    Deadlocks on the wrap-around cycle. *)
