open Dfr_topology
open Dfr_network

let check_net ?(vcs = 1) net =
  (match Net.switching net with
  | Net.Wormhole -> ()
  | _ -> invalid_arg "Torus_wormhole: wormhole network required");
  if Net.vcs net < vcs then invalid_arg "Torus_wormhole: not enough virtual channels";
  let topo = Net.topology_exn net in
  if not (Topology.is_torus topo) then
    invalid_arg "Torus_wormhole: torus topology required";
  topo

(* Lowest dimension still to correct, the travel direction (shorter way,
   ties toward Plus), and the coordinates along that dimension. *)
let next_leg topo ~head ~dest =
  let rec find dim =
    if dim >= Topology.dimensions topo then
      invalid_arg "Torus_wormhole: routing at destination"
    else
      let c = Topology.coordinate topo head dim in
      let cd = Topology.coordinate topo dest dim in
      if c = cd then find (dim + 1)
      else
        let k = Topology.radix topo dim in
        let fwd = (cd - c + k) mod k in
        let dir = if fwd <= k - fwd then Topology.Plus else Topology.Minus in
        (dim, dir, c, cd)
  in
  find 0

let dateline_route net b ~dest =
  let topo = check_net ~vcs:2 net in
  let head = Buf.head_node b in
  let dim, dir, c, cd = next_leg topo ~head ~dest in
  (* While the remaining walk stays on the near side of the wrap point the
     packet rides vc 1; once it must cross (dest coordinate "behind" it in
     the travel direction) it rides vc 0, and after actually crossing the
     comparison flips it back to vc 1. *)
  let vc =
    match dir with
    | Topology.Plus -> if cd > c then 1 else 0
    | Topology.Minus -> if cd < c then 1 else 0
  in
  [ Buf.id (Net.channel net ~src:head ~dim ~dir ~vc) ]

let dateline =
  Algo.make ~name:"dateline" ~wait:Algo.Specific_wait ~route:dateline_route ()

let duato_torus_route net b ~dest =
  let topo = check_net ~vcs:3 net in
  let head = Buf.head_node b in
  let moves = Topology.minimal_moves topo ~src:head ~dst:dest in
  let adaptive =
    List.map (fun (dim, dir) -> Buf.id (Net.channel net ~src:head ~dim ~dir ~vc:2)) moves
  in
  dateline_route net b ~dest @ adaptive

let duato_torus_waits net b ~dest = dateline_route net b ~dest

let duato_torus =
  Algo.make ~name:"duato-torus" ~wait:Algo.Specific_wait ~route:duato_torus_route
    ~waits:duato_torus_waits ()

let unrestricted_route net b ~dest =
  let topo = check_net net in
  let head = Buf.head_node b in
  let moves = Topology.minimal_moves topo ~src:head ~dst:dest in
  List.map (fun (dim, dir) -> Buf.id (Net.channel net ~src:head ~dim ~dir ~vc:0)) moves

let unrestricted =
  Algo.make ~name:"unrestricted-torus" ~wait:Algo.Any_wait ~route:unrestricted_route ()
