open Dfr_network

let n1 = 0
let n2 = 1
let n3 = 2

(* Channel list: (src, dst, vc).  The two n1->n2 channels live on parallel
   physical links, so they are distinguished by the vc field. *)
let network () =
  Net.custom ~name:"duato-incoherent" ~switching:Net.Wormhole ~num_nodes:3
    ~channels:
      [
        (n1, n2, 0) (* qA1 *);
        (n1, n2, 1) (* qH1 *);
        (n2, n1, 0) (* qB1 *);
        (n2, n1, 1) (* qB2 *);
        (n2, n3, 0) (* qC1 *);
        (n3, n2, 0) (* qF1 *);
      ]

let chan net src dst vc = Buf.id (Net.find_custom_channel net ~src ~dst ~vc)
let q_a1 net = chan net n1 n2 0
let q_h1 net = chan net n1 n2 1
let q_b1 net = chan net n2 n1 0
let q_b2 net = chan net n2 n1 1
let q_c1 net = chan net n2 n3 0
let q_f1 net = chan net n3 n2 0

(* Minimal outputs, plus the incoherent exception: qB2 for n3-bound
   packets. *)
let route net b ~dest =
  let head = Buf.head_node b in
  if head = dest then []
  else if head = n1 then [ q_a1 net; q_h1 net ]
  else if head = n2 then
    if dest = n1 then [ q_b1 net ] else [ q_c1 net; q_b2 net ]
  else [ q_f1 net ]

let waits net b ~dest =
  List.filter (fun q -> q <> q_b2 net) (route net b ~dest)

(* "If the packet waits for qA1, ..." — the example's blocked packets
   commit to one waiting buffer (case 1 / Theorem 2). *)
let algo =
  Algo.make ~name:"duato-incoherent" ~wait:Algo.Specific_wait ~route ~waits ()
