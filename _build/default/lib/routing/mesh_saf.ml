open Dfr_topology
open Dfr_network

let check_net ~classes net =
  (match Net.switching net with
  | Net.Store_and_forward | Net.Virtual_cut_through -> ()
  | Net.Wormhole -> invalid_arg "Mesh_saf: packet-buffered network required");
  if Net.vcs net < classes then invalid_arg "Mesh_saf: not enough buffer classes";
  let topo = Net.topology_exn net in
  if Topology.is_torus topo then invalid_arg "Mesh_saf: mesh topology required";
  topo

let buf_at net topo node (dim, dir) cls =
  match Topology.neighbor topo node dim dir with
  | None -> assert false (* minimal moves never point off the mesh *)
  | Some v -> Buf.id (Net.node_buffer net ~node:v ~cls)

let a_cls = 0
let b_cls = 1

(* The phase a packet is in: positive hops pending keeps it in the A
   buffers; otherwise it routes (or continues) in the B buffers. *)
let two_buffer_route net b ~dest =
  let topo = check_net ~classes:2 net in
  let head = Buf.head_node b in
  let moves = Topology.minimal_moves topo ~src:head ~dst:dest in
  let has_positive = List.exists (fun (_, dir) -> dir = Topology.Plus) moves in
  let in_b = match Buf.cls b with Some c -> c = b_cls | None -> false in
  match Buf.kind b with
  | Buf.Injection _ ->
    (* enter the network through the local standard buffer of the right
       class *)
    let cls = if has_positive then a_cls else b_cls in
    [ Buf.id (Net.node_buffer net ~node:head ~cls) ]
  | _ ->
    if in_b || not has_positive then
      List.map (fun m -> buf_at net topo head m b_cls) moves
    else List.map (fun m -> buf_at net topo head m a_cls) moves

let two_buffer_reduced_waits net b ~dest =
  let topo = check_net ~classes:2 net in
  let head = Buf.head_node b in
  let moves = Topology.minimal_moves topo ~src:head ~dst:dest in
  let has_positive = List.exists (fun (_, dir) -> dir = Topology.Plus) moves in
  let in_b = match Buf.cls b with Some c -> c = b_cls | None -> false in
  match Buf.kind b with
  | Buf.Injection _ -> two_buffer_route net b ~dest
  | _ ->
    if in_b || not has_positive then two_buffer_route net b ~dest
    else
      (* Theorem 4's BWG': in the A phase, wait only on positive-direction
         A neighbours (at least one exists by definition of the phase) *)
      List.filter_map
        (fun ((_, dir) as m) ->
          if dir = Topology.Plus then Some (buf_at net topo head m a_cls) else None)
        moves

let two_buffer =
  Algo.make ~name:"two-buffer" ~wait:Algo.Any_wait ~route:two_buffer_route
    ~reduced_waits:two_buffer_reduced_waits ()

let single_buffer_route net b ~dest =
  let topo = check_net ~classes:1 net in
  let head = Buf.head_node b in
  match Buf.kind b with
  | Buf.Injection _ -> [ Buf.id (Net.node_buffer net ~node:head ~cls:0) ]
  | _ ->
    List.map
      (fun m -> buf_at net topo head m 0)
      (Topology.minimal_moves topo ~src:head ~dst:dest)

let single_buffer =
  Algo.make ~name:"single-buffer" ~wait:Algo.Any_wait ~route:single_buffer_route ()

let diameter topo =
  let acc = ref 0 in
  for dim = 0 to Topology.dimensions topo - 1 do
    acc := !acc + (Topology.radix topo dim - 1)
  done;
  !acc

let hop_class_route net b ~dest =
  let topo = check_net ~classes:1 net in
  if Net.vcs net < diameter topo + 1 then
    invalid_arg "Mesh_saf.hop_class: classes must exceed the mesh diameter";
  let head = Buf.head_node b in
  match Buf.kind b with
  | Buf.Injection _ -> [ Buf.id (Net.node_buffer net ~node:head ~cls:0) ]
  | _ ->
    let cls = match Buf.cls b with Some c -> c | None -> 0 in
    if cls + 1 >= Net.vcs net then
      (* unreachable under minimal routing: hops so far + remaining never
         exceed the diameter; returning [] keeps validation happy *)
      []
    else
      List.map
        (fun m -> buf_at net topo head m (cls + 1))
        (Topology.minimal_moves topo ~src:head ~dst:dest)

let hop_class =
  Algo.make ~name:"hop-class" ~wait:Algo.Any_wait ~route:hop_class_route ()
