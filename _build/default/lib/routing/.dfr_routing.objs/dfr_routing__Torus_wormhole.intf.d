lib/routing/torus_wormhole.mli: Algo
