lib/routing/torus_wormhole.ml: Algo Buf Dfr_network Dfr_topology List Net Topology
