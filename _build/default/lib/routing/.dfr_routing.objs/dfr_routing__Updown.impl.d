lib/routing/updown.ml: Algo Array Buf Dfr_network Dfr_util Fun List Net Printf Prng Queue
