lib/routing/mesh_saf.mli: Algo Dfr_topology
