lib/routing/incoherent_example.mli: Algo Dfr_network
