lib/routing/registry.mli: Algo Dfr_network Dfr_topology Net Topology
