lib/routing/hypercube_wormhole.mli: Algo
