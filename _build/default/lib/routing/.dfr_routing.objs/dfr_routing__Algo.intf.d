lib/routing/algo.mli: Buf Dfr_network Net
