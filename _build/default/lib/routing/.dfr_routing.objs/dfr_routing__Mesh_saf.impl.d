lib/routing/mesh_saf.ml: Algo Buf Dfr_network Dfr_topology List Net Topology
