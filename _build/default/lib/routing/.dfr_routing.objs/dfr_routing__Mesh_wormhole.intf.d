lib/routing/mesh_wormhole.mli: Algo
