lib/routing/incoherent_example.ml: Algo Buf Dfr_network List Net
