lib/routing/registry.ml: Algo Dfr_network Dfr_topology Hypercube_wormhole Incoherent_example List Mesh_saf Mesh_wormhole Net Topology Torus_wormhole
