lib/routing/mesh_wormhole.ml: Algo Buf Dfr_network Dfr_topology List Net Topology
