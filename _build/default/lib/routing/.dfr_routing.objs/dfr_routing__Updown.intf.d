lib/routing/updown.mli: Algo Dfr_network Net
