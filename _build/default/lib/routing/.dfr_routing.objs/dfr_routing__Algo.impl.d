lib/routing/algo.ml: Array Buf Dfr_network List Net Option Printf String
