lib/routing/hypercube_wormhole.ml: Algo Buf Dfr_network Dfr_topology List Net Printf Topology
