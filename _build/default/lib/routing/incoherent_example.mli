(** Duato's incoherent routing algorithm (Figures 1 and 2 of the paper).

    Reconstruction from the text: processors [n1], [n2], [n3]; two parallel
    physical links between [n1] and [n2] carrying channels [qA1] and [qH1]
    ([n1 -> n2]) and [qB1]/[qB2] ([n2 -> n1], two virtual channels), and a
    link [n2 - n3] with channels [qC1]/[qF1].  Routing is minimal with a
    committed waiting discipline (the text reads "if the packet waits for
    qA1, ...": case 1 of §4), with one exception: [qB2] may be {e used} by a
    packet destined for [n3] (a nonminimal detour, which breaks
    prefix-closure exactly as the paper describes) but never {e waited
    on}.

    The published BWG fragment then emerges from the engine: self-loop True
    Cycles [qA1 -> qA1] and [qH1 -> qH1] (one packet occupying the channel
    and [qB2], waiting on its own buffer), and a False Resource Cycle
    [qA1 -> qH1 -> qA1] that would need two packets inside [qB2] at once. *)

val n1 : int
val n2 : int
val n3 : int

val network : unit -> Dfr_network.Net.t

val algo : Algo.t

val q_a1 : Dfr_network.Net.t -> int
(** Buffer id of [qA1] ([n1 -> n2], first link). *)

val q_h1 : Dfr_network.Net.t -> int
(** Buffer id of [qH1] ([n1 -> n2], second link). *)

val q_b1 : Dfr_network.Net.t -> int
val q_b2 : Dfr_network.Net.t -> int
(** [qB2], the incoherently-usable virtual channel ([n2 -> n1]). *)

val q_c1 : Dfr_network.Net.t -> int
(** [n2 -> n3]. *)

val q_f1 : Dfr_network.Net.t -> int
(** [n3 -> n2]. *)
