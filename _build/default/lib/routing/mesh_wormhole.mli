(** Wormhole routing algorithms for n-dimensional meshes.

    {!dimension_order}, the turn-model algorithms and {!unrestricted} run
    on a single virtual channel ([Net.wormhole topo ~vcs:1]); {!duato_mesh}
    needs two.  The 2-D turn-model algorithms follow Glass & Ni's
    conventions with dimension 0 as the X (east/west) axis and dimension 1
    as the Y (north/south) axis: west = 0-, east = 0+, south = 1-,
    north = 1+. *)

val dimension_order : Algo.t
(** XY routing generalized to n dimensions, lowest dimension first. *)

val duato_mesh : Algo.t
(** Fully adaptive: [vc 1] unrestricted minimal, [vc 0] dimension order;
    waits on the dimension-order escape channel. *)

val west_first : Algo.t
(** 2-D turn model: all west (0-) hops first, then fully adaptive among
    the remaining minimal directions. *)

val north_last : Algo.t
(** 2-D turn model: fully adaptive among non-north minimal directions,
    north (1+) hops only once nothing else remains. *)

val negative_first : Algo.t
(** Turn model (any dimension count): all negative hops first
    (adaptively), then all positive hops (adaptively). *)

val double_y : Algo.t
(** Fully adaptive minimal routing on 2-D meshes with two virtual channels
    in the Y dimension (the "double-y" scheme underlying Glass & Ni's
    mad-y): packets that still need to travel west ride [y vc 0], all
    others ride [y vc 1]; X channels use [vc 0].  Every minimal hop is
    always permitted, so the algorithm is fully adaptive, yet the class
    split keeps the waiting graph acyclic.  Needs [vcs:2]. *)

val odd_even : Algo.t
(** Chiu's odd-even turn model for 2-D meshes (single virtual channel):
    east-to-north/south turns are forbidden in even columns and
    north/south-to-west turns in odd columns, which breaks both cycle
    senses without the turn model's asymmetric restriction.  This minimal
    adaptive encoding filters moves by the input channel direction and the
    head's column parity, and avoids dead-ends by never entering an
    unaligned even destination column travelling east and by restricting
    westbound row corrections to even columns. *)

val planar_adaptive : Algo.t
(** Chien & Kim's planar-adaptive routing for n-dimensional meshes with
    three virtual channels: the packet routes fully adaptively within the
    plane spanned by its lowest uncorrected dimension [p] and the next
    needed dimension, then moves to the next plane.  Within a plane the
    double-y discipline applies: the partner dimension rides [vc 1] while
    the packet still needs [p] in the negative direction, [vc 2]
    afterwards; dimension [p] rides [vc 0].  Needs [vcs:3]. *)

val unrestricted : Algo.t
(** Control: any minimal hop, waiting on all of them.  Deadlocks on any
    mesh with a 2x2 submesh. *)
