(** Up*/down* routing on arbitrary connected graphs (Autonet style).

    The conclusion claims the proof technique "can be applied to any
    network topology"; this module exercises it on irregular networks.  A
    BFS spanning tree rooted at [root] assigns every node a level; a
    directed channel is {e up} when it moves strictly closer to the root
    (levels tie-broken by node id), {e down} otherwise.  A legal path is
    zero or more up channels followed by zero or more down channels —
    never down-then-up — and the relation offers every legal next channel
    from which the destination stays reachable, so routing is adaptive and
    generally nonminimal.

    Both phases strictly order the levels and the up-to-down switch is
    one-way, so the move graphs are acyclic (livelock-free by
    construction) and the checker certifies deadlock freedom via
    Theorem 1. *)

open Dfr_network

type t = {
  net : Net.t;
  algo : Algo.t;
  levels : int array;  (** BFS level of each node *)
}

val make : num_nodes:int -> edges:(int * int) list -> root:int -> t
(** [make ~num_nodes ~edges ~root] builds a wormhole network with one
    virtual channel per direction of every undirected edge, and the
    up*/down* relation for it.  Raises [Invalid_argument] if the graph is
    disconnected, [root] is out of range, or an edge is a self loop. *)

val is_up : t -> src:int -> dst:int -> bool
(** Channel direction under the spanning-tree labelling. *)

val random_connected : seed:int -> num_nodes:int -> extra_edges:int -> t
(** A random connected graph: a random spanning tree plus [extra_edges]
    random chords (duplicates discarded), rooted at node 0.  Deterministic
    in [seed]; used by the property tests. *)

val fat_tree : levels:int -> down_degree:int -> t
(** A [levels]-deep tree fabric with [down_degree] children per switch and
    full sibling cross-links at each level (a poor man's fat tree): the
    canonical up*/down* deployment.  Node 0 is the root. *)
