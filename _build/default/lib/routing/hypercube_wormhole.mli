(** Wormhole routing algorithms for binary hypercubes with two virtual
    channels per directed channel (the paper's [B1]/[B2] buffer sets,
    [vc = 0] and [vc = 1]).

    All algorithms are minimal.  Build the network with
    [Net.wormhole (Topology.hypercube n) ~vcs:2]; the route functions raise
    [Invalid_argument] on any other network shape. *)

val ecube : Algo.t
(** Nonadaptive dimension-order routing (lowest dimension first) on the
    [B1] channels. *)

val duato : Algo.t
(** The fully adaptive algorithm of Duato/Gravano-et-al./Lin-et-al./Su-Shin
    cited in §6.2: [B2] adaptively in any needed dimension, [B1] in strict
    dimension order; a blocked packet waits on the dimension-order [B1]
    channel. *)

val efa : Algo.t
(** The paper's Enhanced Fully Adaptive algorithm (§6.2): [B2] is
    unrestricted; with [l] the lowest dimension still to be corrected, a
    packet needing the negative direction of [l] may use {e any} needed
    [B1] channel, a packet needing the positive direction of [l] may use
    only [B1_{l+}]; blocked packets wait on [B1^l]. *)

val efa_relaxed : Algo.t
(** The deliberately broken variant of Theorem 6: like {!efa} but a packet
    needing the positive direction of [l] may also use [B1] channels of
    higher needed dimensions.  The checker must find a True Cycle. *)

val efa_relaxed_pair : l:int -> i:int -> Algo.t
(** Theorem 6 at its finest grain: relax {e only} the restriction for the
    dimension pair [(l, i)] with [l < i] — a packet whose lowest needed
    dimension is [l] in the positive direction may additionally use
    [B1^i].  The paper proves each single relaxation already creates a
    True Cycle over [B1^l] and [B1^i]. *)

val unrestricted : Algo.t
(** Control: any needed channel on either virtual channel, waiting on all
    of them.  Deadlocks. *)
