(** Store-and-forward routing algorithms for n-dimensional meshes.

    The Two-Buffer algorithm is the paper's §6.1 case study (due to Pifarré
    et al.): each node has two whole-packet buffers, [A = cls 0] and
    [B = cls 1]; build the network with
    [Net.store_and_forward topo ~classes:2]. *)

val two_buffer : Algo.t
(** Fully adaptive minimal.  A packet rides [A] buffers (any minimal hop)
    until no positive-direction hop remains, then rides [B] buffers (all
    remaining hops are negative).  Waits on every permitted output
    ([Any_wait]); the attached [reduced_waits] hint is Theorem 4's BWG'
    (drop waits on negative-direction [A] neighbours), which the checker
    verifies. *)

val single_buffer : Algo.t
(** Control: one buffer per node ([classes:1]), any minimal hop,
    [Any_wait].  Deadlocks on any mesh containing a 2x2 submesh. *)

val hop_class : Algo.t
(** Günther's classical hop-ordered scheme [19] (also Gopal [17]): buffer
    class = hops travelled so far, so a packet in a class-[i] buffer moves
    only into class-[i+1] buffers of minimal neighbours.  The class index
    strictly increases along every path, which is the acyclic buffer
    ordering the pre-BWG literature demanded — at the cost of
    [diameter + 1] buffers per node ([classes >= diameter + 1] required,
    checked at routing time). *)

val diameter : Dfr_topology.Topology.t -> int
(** Mesh diameter (sum of per-dimension radix-1), the minimum [classes]
    for {!hop_class} minus one. *)
