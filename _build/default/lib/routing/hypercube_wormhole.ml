open Dfr_topology
open Dfr_network

let check_net net =
  (match Net.switching net with
  | Net.Wormhole -> ()
  | _ -> invalid_arg "Hypercube_wormhole: wormhole network required");
  if Net.vcs net < 2 then
    invalid_arg "Hypercube_wormhole: two virtual channels required";
  let topo = Net.topology_exn net in
  for dim = 0 to Topology.dimensions topo - 1 do
    if Topology.radix topo dim <> 2 then
      invalid_arg "Hypercube_wormhole: hypercube topology required"
  done;
  topo

(* Moves the packet still has to make, lowest dimension first. *)
let needed net ~head ~dest =
  let topo = check_net net in
  Topology.minimal_moves topo ~src:head ~dst:dest

let chan net head (dim, dir) vc = Buf.id (Net.channel net ~src:head ~dim ~dir ~vc)

let lowest = function
  | [] -> invalid_arg "Hypercube_wormhole: routing at destination"
  | move :: _ -> move (* minimal_moves lists dimensions in increasing order *)

let b2_all net head moves = List.map (fun m -> chan net head m 1) moves

let ecube_route net b ~dest =
  let head = Buf.head_node b in
  [ chan net head (lowest (needed net ~head ~dest)) 0 ]

let ecube =
  Algo.make ~name:"ecube" ~wait:Algo.Specific_wait ~route:ecube_route ()

let duato_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed net ~head ~dest in
  chan net head (lowest moves) 0 :: b2_all net head moves

let duato_waits net b ~dest =
  let head = Buf.head_node b in
  [ chan net head (lowest (needed net ~head ~dest)) 0 ]

let duato =
  Algo.make ~name:"duato" ~wait:Algo.Specific_wait ~route:duato_route
    ~waits:duato_waits ()

let efa_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed net ~head ~dest in
  let _, dir_l = lowest moves in
  let b1 =
    match dir_l with
    | Topology.Minus -> List.map (fun m -> chan net head m 0) moves
    | Topology.Plus -> [ chan net head (lowest moves) 0 ]
  in
  b1 @ b2_all net head moves

let efa_waits net b ~dest =
  let head = Buf.head_node b in
  [ chan net head (lowest (needed net ~head ~dest)) 0 ]

let efa =
  Algo.make ~name:"efa" ~wait:Algo.Specific_wait ~route:efa_route
    ~waits:efa_waits ()

let efa_relaxed_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed net ~head ~dest in
  List.map (fun m -> chan net head m 0) moves @ b2_all net head moves

let efa_relaxed =
  Algo.make ~name:"efa-relaxed" ~wait:Algo.Specific_wait
    ~route:efa_relaxed_route ~waits:efa_waits ()

let efa_relaxed_pair ~l ~i =
  if l >= i then invalid_arg "Hypercube_wormhole.efa_relaxed_pair: need l < i";
  let route net b ~dest =
    let head = Buf.head_node b in
    let moves = needed net ~head ~dest in
    let low_dim, dir_l = lowest moves in
    let extra =
      (* the single relaxed case: lowest needed dimension is l, positive,
         and dimension i is also needed *)
      if low_dim = l && dir_l = Topology.Plus then
        List.filter_map
          (fun (dim, dir) -> if dim = i then Some (chan net head (dim, dir) 0) else None)
          moves
      else []
    in
    extra @ efa_route net b ~dest
  in
  Algo.make
    ~name:(Printf.sprintf "efa-relaxed-%d-%d" l i)
    ~wait:Algo.Specific_wait ~route ~waits:efa_waits ()

let unrestricted_route net b ~dest =
  let head = Buf.head_node b in
  let moves = needed net ~head ~dest in
  List.map (fun m -> chan net head m 0) moves @ b2_all net head moves

let unrestricted =
  Algo.make ~name:"unrestricted-hypercube" ~wait:Algo.Any_wait
    ~route:unrestricted_route ()
