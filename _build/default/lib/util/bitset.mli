(** Small integer sets represented as native-int bitmasks.

    Used pervasively for "set of dimensions still to be corrected" in the
    routing algorithms and the adaptiveness dynamic programs.  Elements must
    lie in [0, 61]. *)

type t = int

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int

val min_elt : t -> int
(** Smallest member. Raises [Not_found] on the empty set. *)

val max_elt : t -> int
(** Largest member. Raises [Not_found] on the empty set. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val iter : (int -> unit) -> t -> unit
val elements : t -> int list
val of_list : int list -> t
val full : int -> t
(** [full n] is the set [{0, ..., n-1}]. *)

val subsets : t -> t list
(** All subsets, the empty set first.  Cardinal must be at most 16. *)

val pp : Format.formatter -> t -> unit
