let factorial n =
  if n < 0 then invalid_arg "Combinatorics.factorial: negative";
  if n > 20 then invalid_arg "Combinatorics.factorial: overflow";
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let binomial n k =
  if n < 0 then invalid_arg "Combinatorics.binomial: negative n";
  if k < 0 || k > n then 0
  else begin
    (* multiply/divide incrementally so intermediates stay exact *)
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1
  end

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Combinatorics.pow2: out of range";
  1 lsl k

let falling n k =
  if k < 0 then invalid_arg "Combinatorics.falling: negative k";
  let rec go acc i = if i >= k then acc else go (acc * (n - i)) (i + 1) in
  go 1 0

let permutations l =
  if List.length l > 8 then invalid_arg "Combinatorics.permutations: too long";
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys -> (x :: y :: ys) :: List.map (fun zs -> y :: zs) (insert_everywhere x ys)
  in
  let rec go = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (go xs)
  in
  go l

let subsets l =
  if List.length l > 16 then invalid_arg "Combinatorics.subsets: too long";
  let rec go = function
    | [] -> [ [] ]
    | x :: xs ->
      let rest = go xs in
      rest @ List.map (fun s -> x :: s) rest
  in
  go l
