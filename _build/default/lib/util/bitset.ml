type t = int

let check_elt i =
  if i < 0 || i > 61 then invalid_arg "Bitset: element out of [0, 61]"

let empty = 0
let is_empty s = s = 0

let singleton i =
  check_elt i;
  1 lsl i

let mem i s =
  check_elt i;
  s land (1 lsl i) <> 0

let add i s = s lor singleton i
let remove i s = s land lnot (singleton i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + 1) (s land (s - 1)) in
  go 0 s

let min_elt s =
  if s = 0 then raise Not_found;
  (* index of lowest set bit *)
  let rec go i s = if s land 1 = 1 then i else go (i + 1) (s lsr 1) in
  go 0 s

let max_elt s =
  if s = 0 then raise Not_found;
  let rec go i s = if s = 1 then i else go (i + 1) (s lsr 1) in
  go 0 s

let fold f s init =
  let rec go acc s =
    if s = 0 then acc
    else
      let i = min_elt s in
      go (f i acc) (remove i s)
  in
  go init s

let iter f s = fold (fun i () -> f i) s ()
let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun s i -> add i s) empty l

let full n =
  if n < 0 || n > 61 then invalid_arg "Bitset.full";
  (1 lsl n) - 1

let subsets s =
  if cardinal s > 16 then invalid_arg "Bitset.subsets: too large";
  (* enumerate submasks of s in increasing order of the complemented walk *)
  let rec go acc sub =
    let acc = sub :: acc in
    if sub = s then List.rev acc else go acc ((sub - s) land s)
  in
  go [] 0

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    (elements s)
