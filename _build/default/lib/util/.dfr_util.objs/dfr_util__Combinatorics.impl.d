lib/util/combinatorics.ml: List
