lib/util/combinatorics.mli:
