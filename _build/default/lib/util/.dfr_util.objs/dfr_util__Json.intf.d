lib/util/json.mli:
