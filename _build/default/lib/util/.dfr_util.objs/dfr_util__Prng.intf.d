lib/util/prng.mli:
