(** Exact integer combinatorics used by the adaptiveness calculators.

    All results are native [int]s; the largest quantity the toolkit needs is
    [12! * 2^12 < 2^42], well inside 63-bit integers.  Functions raise
    [Invalid_argument] on negative inputs rather than returning garbage. *)

val factorial : int -> int
(** [factorial n] is [n!]. Raises [Invalid_argument] if [n < 0] or the
    result would overflow a native int ([n > 20]). *)

val binomial : int -> int -> int
(** [binomial n k] is the number of [k]-subsets of an [n]-set; [0] when
    [k < 0 || k > n]. Raises [Invalid_argument] if [n < 0]. *)

val pow2 : int -> int
(** [pow2 k] is [2^k]. Raises [Invalid_argument] if [k < 0 || k > 61]. *)

val falling : int -> int -> int
(** [falling n k] is the falling factorial [n * (n-1) * ... * (n-k+1)]. *)

val permutations : 'a list -> 'a list list
(** All permutations of a list, in no particular order.  Intended for
    small lists (tests and exhaustive checks); raises [Invalid_argument]
    for lists longer than 8. *)

val subsets : 'a list -> 'a list list
(** All subsets of a list. Raises [Invalid_argument] beyond 16 elements. *)
