(** Deterministic splittable pseudo-random number generator (SplitMix64).

    The simulators need reproducible randomness that is independent of the
    order in which components draw numbers; every component receives its own
    [t] split off a root seed, so adding a new consumer never perturbs the
    streams of existing ones. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split g] derives an independent generator; [g] itself advances. *)

val int : t -> int -> int
(** [int g bound] draws a uniform integer in [0, bound). [bound] must be
    positive. *)

val float : t -> float -> float
(** [float g bound] draws a uniform float in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)
