type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next g =
  g.state <- Int64.add g.state golden;
  mix g.state

let create seed = { state = mix (Int64.of_int seed) }
let split g = { state = next g }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 low bits so the conversion to a 63-bit OCaml int stays
     non-negative *)
  let x = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  x mod bound

let float g bound =
  let x = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  (* 53 random bits scaled into [0, 1) *)
  x /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next g) 1L = 1L
let bernoulli g p = float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int g (List.length l))
