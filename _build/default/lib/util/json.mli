(** Minimal JSON emitter (no parsing).

    The sealed build environment has no JSON library; this is just enough
    to export checker reports and experiment tables machine-readably. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single line. *)

val to_string_pretty : t -> string
(** Two-space indentation. *)
