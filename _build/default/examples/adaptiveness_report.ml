(* Adaptiveness report: regenerates Figure 3 of the paper and extends the
   measurement to mesh algorithms via the generic path counter.

   Run with: dune exec examples/adaptiveness_report.exe *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_adaptiveness

let () =
  print_endline "Degree of adaptiveness for hypercube routing (Figure 3)";
  print_endline "ratio of permitted buffer-level paths, averaged over all pairs\n";
  let algos = [ "ecube"; "duato"; "efa" ] in
  let sweeps =
    List.map
      (fun a ->
        match Hypercube_adaptiveness.rule_of_name a with
        | Some r -> (a, Hypercube_adaptiveness.sweep r ~max_n:12)
        | None -> assert false)
      algos
  in
  Printf.printf "%-6s" "dim";
  List.iter (fun (a, _) -> Printf.printf "%12s" a) sweeps;
  print_newline ();
  for n = 2 to 12 do
    Printf.printf "%-6d" n;
    List.iter (fun (_, s) -> Printf.printf "%11.2f%%" (100.0 *. s.(n))) sweeps;
    print_newline ()
  done

let () =
  print_endline "\nMesh algorithms, measured with the generic path counter";
  print_endline "(5x5 mesh; 2-VC algorithms use a 2-VC denominator)\n";
  let topo = Topology.mesh [| 5; 5 |] in
  List.iter
    (fun (name, vcs, algo) ->
      let net = Net.wormhole topo ~vcs in
      let d =
        Option.value (Mesh_adaptiveness.degree net algo) ~default:nan
      in
      Printf.printf "%-20s %8.2f%%%s\n" name (100.0 *. d)
        (if vcs > 1 then Printf.sprintf "  (%d VCs)" vcs else ""))
    [
      ("dimension-order", 1, Mesh_wormhole.dimension_order);
      ("west-first", 1, Mesh_wormhole.west_first);
      ("north-last", 1, Mesh_wormhole.north_last);
      ("negative-first", 1, Mesh_wormhole.negative_first);
      ("odd-even", 1, Mesh_wormhole.odd_even);
      ("double-y", 2, Mesh_wormhole.double_y);
      ("duato-mesh", 2, Mesh_wormhole.duato_mesh);
      ("unrestricted", 1, Mesh_wormhole.unrestricted);
    ];
  print_endline "\nNote: double-y is fully adaptive in PHYSICAL paths (every";
  print_endline "minimal hop is always offered) but restricts the virtual-channel";
  print_endline "choice per hop, which the buffer-level metric charges for."
