examples/adaptiveness_report.mli:
