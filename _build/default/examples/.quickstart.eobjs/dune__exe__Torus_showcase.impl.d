examples/torus_showcase.ml: Algo Certificate Checker Dfr_core Dfr_network Dfr_routing Dfr_topology Format List Net Topology Torus_wormhole
