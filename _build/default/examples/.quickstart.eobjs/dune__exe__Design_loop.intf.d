examples/design_loop.mli:
