examples/quickstart.ml: Algo Checker Dfr_core Dfr_network Dfr_routing Dfr_topology Format Hypercube_wormhole Mesh_saf Net Topology Unix
