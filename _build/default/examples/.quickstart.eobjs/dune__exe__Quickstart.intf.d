examples/quickstart.mli:
