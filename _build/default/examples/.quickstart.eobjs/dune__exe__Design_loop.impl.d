examples/design_loop.ml: Algo Buf Certificate Checker Dfr_core Dfr_network Dfr_routing Dfr_sim Dfr_topology Format List Net Topology
