examples/torus_showcase.mli:
