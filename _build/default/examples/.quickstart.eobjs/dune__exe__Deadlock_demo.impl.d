examples/deadlock_demo.ml: Certificate Checker Dfr_core Dfr_network Dfr_routing Dfr_sim Dfr_topology Format Hypercube_wormhole List Net Printf Scenario Topology Traffic Wormhole_sim
