examples/irregular_network.ml: Algo Array Buf Certificate Checker Dfr_core Dfr_graph Dfr_network Dfr_routing Dfr_sim Format List Liveness Net Printf State_space Updown
