(* Irregular networks: the conclusion's "any network topology" claim on a
   graph with no geometric structure at all.

   The network below is a small cluster fabric: two top switches, four
   leaves, hosts hanging off leaves, plus a couple of ad-hoc cross links.
   up*/down* routing (Autonet) assigns levels from a BFS spanning tree and
   forbids down-then-up transitions; the BWG checker certifies it, and the
   flit simulator drains an all-pairs workload.

   Run with: dune exec examples/irregular_network.exe *)

open Dfr_network
open Dfr_routing
open Dfr_core

let () =
  (* 0,1 = spine; 2-5 = leaves; 6-9 = hosts; 10 = a stray box wired
     straight into both a leaf and a spine *)
  let edges =
    [
      (0, 2); (0, 3); (0, 4); (1, 3); (1, 4); (1, 5);
      (2, 6); (3, 7); (4, 8); (5, 9);
      (2, 3); (* leaf-to-leaf cross link *)
      (10, 5); (10, 1);
    ]
  in
  let t = Updown.make ~num_nodes:11 ~edges ~root:0 in
  Printf.printf "levels:";
  Array.iteri (fun n l -> Printf.printf " n%d=%d" n l) t.Updown.levels;
  print_newline ();
  let report = Checker.check t.Updown.net t.Updown.algo in
  Certificate.print t.Updown.net t.Updown.algo report;
  (* liveness comes free: both routing phases strictly order the levels *)
  let space = State_space.build t.Updown.net t.Updown.algo in
  Format.printf "liveness: %a@." (Liveness.pp_result t.Updown.net)
    (Liveness.analyze space);
  (* all-pairs traffic through the fabric *)
  let n = Net.num_nodes t.Updown.net in
  let traffic = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        traffic :=
          { Dfr_sim.Traffic.src; dst; length = 8; inject_at = 0;
            mode = Dfr_sim.Traffic.Adaptive }
          :: !traffic
    done
  done;
  Format.printf "all-pairs workload: %a@." Dfr_sim.Wormhole_sim.pp_outcome
    (Dfr_sim.Wormhole_sim.run t.Updown.net t.Updown.algo !traffic);
  (* contrast: plain shortest-path adaptive routing on the same graph has
     wait cycles around the fabric's loops *)
  let shortest =
    let g = Dfr_graph.Digraph.create 11 in
    List.iter
      (fun (u, v) ->
        Dfr_graph.Digraph.add_edge g u v;
        Dfr_graph.Digraph.add_edge g v u)
      edges;
    let dist = Array.init 11 (fun s -> Dfr_graph.Traversal.bfs_distances g s) in
    Algo.make ~name:"shortest-path" ~wait:Algo.Any_wait
      ~route:(fun net b ~dest ->
        let head = Buf.head_node b in
        List.filter_map
          (fun nb ->
            let nb_node = Buf.head_node nb in
            if dist.(nb_node).(dest) = dist.(head).(dest) - 1 then
              Some (Buf.id nb)
            else None)
          (Net.channels_from net head))
      ()
  in
  Format.printf "@.shortest-path adaptive on the same fabric: %a@."
    (Checker.pp_verdict t.Updown.net)
    (Checker.verdict t.Updown.net shortest)
