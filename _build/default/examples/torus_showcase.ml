(* "Any network topology": the conclusion's universality claim, exercised
   on wrap-around networks where naive routing famously deadlocks on the
   ring cycle.

   Run with: dune exec examples/torus_showcase.exe *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

let verdict net algo =
  Format.printf "  %-14s %a@." algo.Algo.name (Checker.pp_verdict net)
    (Checker.verdict net algo)

let () =
  List.iter
    (fun k ->
      let topo = Topology.ring k in
      Format.printf "%s:@." (Topology.name topo);
      verdict (Net.wormhole topo ~vcs:1) Torus_wormhole.unrestricted;
      verdict (Net.wormhole topo ~vcs:2) Torus_wormhole.dateline;
      verdict (Net.wormhole topo ~vcs:3) Torus_wormhole.duato_torus)
    [ 4; 6; 8 ];
  let topo = Topology.torus [| 4; 4 |] in
  Format.printf "%s:@." (Topology.name topo);
  verdict (Net.wormhole topo ~vcs:1) Torus_wormhole.unrestricted;
  verdict (Net.wormhole topo ~vcs:2) Torus_wormhole.dateline;
  verdict (Net.wormhole topo ~vcs:3) Torus_wormhole.duato_torus;
  (* the wrap-around knot, spelled out on a small ring *)
  let net = Net.wormhole (Topology.ring 4) ~vcs:1 in
  print_newline ();
  let report = Checker.check net Torus_wormhole.unrestricted in
  Certificate.print net Torus_wormhole.unrestricted report
