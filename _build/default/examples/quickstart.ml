(* Quickstart: verify deadlock freedom of the paper's Enhanced Fully
   Adaptive hypercube algorithm, then watch its Theorem 6 relaxation fail.

   Run with: dune exec examples/quickstart.exe *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_core

let check_and_print net algo =
  let t0 = Unix.gettimeofday () in
  let report = Checker.check net algo in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%-14s on %-24s [%.2fs]: %a@." algo.Algo.name (Net.name net) dt
    (Checker.pp_verdict net) report.Checker.verdict

let () =
  let cube = Net.wormhole (Topology.hypercube 3) ~vcs:2 in
  check_and_print cube Hypercube_wormhole.ecube;
  check_and_print cube Hypercube_wormhole.duato;
  check_and_print cube Hypercube_wormhole.efa;
  check_and_print cube Hypercube_wormhole.efa_relaxed;
  check_and_print cube Hypercube_wormhole.unrestricted;
  let mesh = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2 in
  check_and_print mesh Mesh_saf.two_buffer
