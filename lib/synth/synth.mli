(** Automatic BWG' synthesis, restriction repair, and optimality
    certification — the constructive side of the paper's Theorem 3.

    The checker decides deadlock freedom of a {e given} design; this
    module {e finds} designs.  Three entry points share one engine, a
    CDCL-flavoured backtracking search over wait (or route) entries:

    - {!synthesize} (Theorem 3 forward): find a wait-connected,
      True-Cycle-free subset of the waiting rule — a BWG' — for a
      multi-wait algorithm, without a hand-supplied hint;
    - {!repair} (design methodology, §6): given a deadlocking algorithm,
      re-decide, for every (occupied buffer, destination) state and every
      physical hop it takes, {e which} virtual copy of that hop to use —
      a conflict-driven search over copy assignments whose solution space
      contains the classic dateline/layered designs;
    - {!certify} (Theorem 6 style): prove a candidate restriction maximal
      by exhibiting, for every removed entry, a True Cycle that appears
      the moment that single entry is re-admitted — each witness is a
      machine-checkable certificate replayed with {!replay}.

    The search learns {e blocking clauses} from every True Cycle it
    meets: the witness packets name the wait entries generating the
    cycle's edges, and as long as all of them stay live the same cycle
    family recurs — so at least one must go.  Candidates violating a
    learned clause are pruned without rebuilding the BWG.  In
    {!synthesize} routes are fixed, the True-Cycle property is monotone
    in the kept entries, the implication is exact, and exhaustion is an
    honest [Unsat] — Theorem 3's necessity direction.  In {!repair}
    reassignments change occupancy, clauses are heuristic, and
    exhaustion only says [Gave_up]; the accepted candidate is instead
    re-verified end to end by the checker.

    Every search is deterministic: entries are ordered by activity
    (bumped on every clause mention) with identifier ties, no wall clock
    or randomness enters, and [domains] only parallelizes BWG
    construction, whose merge is deterministic. *)

open Dfr_network
open Dfr_routing
open Dfr_core

type entry = { head : int; dest : int; target : int }
(** "A packet destined [dest] whose header occupies [head] may wait on /
    move to [target]" — one removable atom of the waiting rule
    ({!synthesize}) or of the widened routing relation ({!repair}). *)

type stats = {
  rebuilds : int;  (** BWG (re)constructions, the search's cost unit *)
  decisions : int;  (** branch choices taken *)
  conflicts : int;  (** True Cycles discovered by probes *)
  learned : int;  (** distinct blocking clauses recorded *)
  pruned : int;  (** candidates rejected by a learned clause, no rebuild *)
  restored : int;  (** removals undone by greedy minimization *)
}

type success = {
  space : State_space.t;
      (** the candidate's state space — {!repair} rebuilds it from the
          repaired relation; {!synthesize} passes the input through *)
  bwg : Bwg.t;  (** the final candidate BWG: wait-connected, no True Cycle
                    found (exhaustively, for the verified paths) *)
  full_bwg : Bwg.t option;
      (** {!synthesize} only: the unreduced BWG, for overlay rendering *)
  algo : Algo.t;  (** the input algorithm with the synthesized rule wired
                      in via {!Algo.with_waits} / {!Algo.with_relation} *)
  removed : entry list;  (** ascending; relative to the full waiting rule
                             ({!synthesize}) or widened relation
                             ({!repair}) *)
  widened : int;
      (** {!repair}: route entries the virtual-copy widening added on top
          of the original relation; [0] for {!synthesize} *)
  spec : (string, string) result;
      (** the result reprinted as a checkable [.dfr]
          ({!Dfr_spec.Printer}) *)
  stats : stats;
}

type outcome =
  | Synthesized of success
  | Already_free of Checker.proof
      (** {!repair} only: the input needs no repair *)
  | Unsat of string
      (** {!synthesize} only, and honest: no wait-connected BWG' without a
          True Cycle exists (Theorem 3 ⇒ the algorithm deadlocks).
          {!repair} folds this case into [Gave_up] — unsatisfiability of
          one particular widening is not a verdict on the design. *)
  | Gave_up of string  (** a cap or budget hit; no conclusion *)

val synthesize :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?budget:int ->
  ?domains:int ->
  ?minimize:bool ->
  State_space.t ->
  outcome
(** Find a BWG' for the algorithm of [space].  [budget] caps BWG rebuilds
    (default 4000).  [minimize] (default false) runs a greedy restore
    pass so the removed set is 1-minimal — the form {!certify} expects.
    An algorithm whose full BWG is already True-Cycle-free synthesizes
    with [removed = \[\]]. *)

val repair :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?budget:int ->
  ?domains:int ->
  Net.t ->
  Algo.t ->
  outcome
(** Repair a deadlocking algorithm.  The relation is first widened
    across the virtual copies of each physical resource (other virtual
    channels of the same link; other buffer classes of the same node) —
    a deadlocking single-VC design has no freedom left to restrict, so
    the unused copies must open first.  Restricting only the {e waiting}
    rule of that widened design cannot work in this model (movement
    follows routes, so the widened occupancy itself deadlocks — a knot);
    the search instead assigns, per state and physical hop, exactly one
    virtual copy.  Conflicts (True Cycles and knots of the candidate)
    learn value clauses — "at least one occupant of this cycle must take
    a different copy" — and per-destination deliverability from every
    injection is kept as an invariant of every reassignment
    (decrementally, via {!Dfr_graph.Reach}).  A greedy re-admission pass
    then restores removed copies wherever freedom survives, making the
    removal set 1-minimal, and the result is re-verified end to end with
    {!Checker.verdict} before being reported. *)

type cert_item = {
  relaxed : entry;
  cycle : int list;
  packets : Cycle_class.packet list;
}
(** Re-admitting [relaxed] alone creates [cycle], realized by
    [packets]. *)

type certification =
  | Maximal of cert_item list  (** one witness per removed entry *)
  | Relaxable of entry list
      (** these removals were unnecessary: re-admitting any one of them
          leaves the BWG' True-Cycle-free *)
  | Cert_unknown of string  (** a classification cap hit *)

val certify :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?domains:int ->
  State_space.t ->
  removed:entry list ->
  certification
(** Theorem-6-style maximality: for each entry of [removed], rebuild the
    BWG with that single entry restored and demand a True Cycle.  Run it
    on a minimized {!synthesize} result. *)

val replay :
  ?class_limits:Cycle_class.limits ->
  ?domains:int ->
  State_space.t ->
  removed:entry list ->
  cert_item ->
  bool
(** Independent check of one certificate: rebuild the relaxed BWG from
    scratch, confirm every consecutive pair of [cycle] is an edge, and
    re-classify the cycle through {!Cycle_class.classify} — the same
    machinery the checker trusts.  [removed] must be the certification's
    removed set. *)

val bwg_prime_dot : success -> string
(** DOT overlay of a {!synthesize} result: the full BWG with kept (BWG')
    edges solid and removed edges dashed, vertex labels in the paper's
    buffer notation. *)

val describe_entry : Net.t -> entry -> string
