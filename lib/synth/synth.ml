(* The synthesis engine: one backtracking search over removable entries
   (wait entries in BWG' synthesis, route entries in repair), CDCL-style.

   The searched object is a boolean assignment "entry live / removed".
   A probe builds the candidate BWG and asks for a True Cycle
   (Reduction.true_cycle_status, shortest first).  Every True Cycle's
   witness packets name the entries that generate its edges; as long as
   all of them are live the same cycle recurs, so the set becomes a
   blocking clause "remove at least one".  The search branches over the
   clause's entries (most-active first, id ties — deterministic), prunes
   any candidate violating a learned clause without rebuilding, and keeps
   two invariants by construction: wait-connectivity (never remove the
   last live entry of a state) and, in repair mode, deliverability from
   every injection (a decremental per-destination Reach query).

   Soundness of the clause implication differs by mode.  With routes
   fixed (synthesize) occupancy and reachability never change, the
   True-Cycle property is monotone in the kept entries, and the clause is
   exact — an exhausted search is an honest Unsat, which is Theorem 3's
   necessity direction.  Removing route entries (repair) shrinks
   reachability, a clause can outlive its cycle's realizability, so
   exhaustion only says Gave_up; the final candidate is instead
   re-verified end to end by the checker. *)

open Dfr_network
open Dfr_routing
open Dfr_core
module Csr = Dfr_graph.Csr
module Digraph = Dfr_graph.Digraph
module Dot = Dfr_graph.Dot
module Reach = Dfr_graph.Reach
module Obs = Dfr_obs.Obs
module Printer = Dfr_spec.Printer

type entry = { head : int; dest : int; target : int }

type stats = {
  rebuilds : int;
  decisions : int;
  conflicts : int;
  learned : int;
  pruned : int;
  restored : int;
}

type success = {
  space : State_space.t;
  bwg : Bwg.t;
  full_bwg : Bwg.t option;
  algo : Algo.t;
  removed : entry list;
  widened : int;
  spec : (string, string) result;
  stats : stats;
}

type outcome =
  | Synthesized of success
  | Already_free of Checker.proof
  | Unsat of string
  | Gave_up of string

let describe_entry net { head; dest; target } =
  Printf.sprintf "%s -> %s for dest %d"
    (Net.describe_buffer net head)
    (Net.describe_buffer net target)
    dest

(* ------------------------------------------------------------------ *)
(* mutable search counters, frozen into [stats] on exit               *)

type mstats = {
  mutable m_rebuilds : int;
  mutable m_decisions : int;
  mutable m_conflicts : int;
  mutable m_learned : int;
  mutable m_pruned : int;
  mutable m_restored : int;
}

let mstats_zero () =
  {
    m_rebuilds = 0;
    m_decisions = 0;
    m_conflicts = 0;
    m_learned = 0;
    m_pruned = 0;
    m_restored = 0;
  }

let freeze m =
  {
    rebuilds = m.m_rebuilds;
    decisions = m.m_decisions;
    conflicts = m.m_conflicts;
    learned = m.m_learned;
    pruned = m.m_pruned;
    restored = m.m_restored;
  }

let emit m =
  Obs.count "synth.rebuilds" m.m_rebuilds;
  Obs.count "synth.decisions" m.m_decisions;
  Obs.count "synth.conflicts" m.m_conflicts;
  Obs.count "synth.clauses.learned" m.m_learned;
  Obs.count "synth.pruned" m.m_pruned;
  Obs.count "synth.restored" m.m_restored

(* ------------------------------------------------------------------ *)
(* learned-clause store: clause = sorted array of entry ids, "at least
   one must be removed".  [dead] counts the removed entries per clause,
   maintained on every remove/restore, so "some clause violated" (all
   entries live) is a scan over an int array.  [activity] counts how
   often an entry appears in discovered cycles; branching follows it. *)

module Clauses = struct
  type t = {
    mutable arr : int array array;
    mutable branch : int array array;
        (* per clause: the subset branched over.  Equal to the clause in
           synthesize; in repair it is the wait-edge entries only, so the
           fan-out is the cycle length, not the total path length. *)
    mutable dead : int array;
    mutable n : int;
    occ : int list array; (* entry id -> clauses containing it *)
    activity : int array;
    seen : (string, unit) Hashtbl.t;
  }

  let create num_entries =
    {
      arr = Array.make 16 [||];
      branch = Array.make 16 [||];
      dead = Array.make 16 0;
      n = 0;
      occ = Array.make (max 1 num_entries) [];
      activity = Array.make (max 1 num_entries) 0;
      seen = Hashtbl.create 64;
    }

  let key c = String.concat "," (List.map string_of_int (Array.to_list c))

  let ensure t =
    if t.n = Array.length t.arr then begin
      let cap = 2 * t.n in
      let arr = Array.make cap [||] in
      Array.blit t.arr 0 arr 0 t.n;
      t.arr <- arr;
      let branch = Array.make cap [||] in
      Array.blit t.branch 0 branch 0 t.n;
      t.branch <- branch;
      let dead = Array.make cap 0 in
      Array.blit t.dead 0 dead 0 t.n;
      t.dead <- dead
    end

  (* returns true when the clause is new *)
  let learn t ~live ~branch_ids entry_ids =
    let c = Array.of_list (List.sort_uniq compare entry_ids) in
    let b = Array.of_list (List.sort_uniq compare branch_ids) in
    Array.iter (fun e -> t.activity.(e) <- t.activity.(e) + 1) c;
    let k = key c in
    if Hashtbl.mem t.seen k then false
    else begin
      Hashtbl.add t.seen k ();
      ensure t;
      let dead =
        Array.fold_left (fun acc e -> if live.(e) then acc else acc + 1) 0 c
      in
      t.arr.(t.n) <- c;
      t.branch.(t.n) <- b;
      t.dead.(t.n) <- dead;
      Array.iter (fun e -> t.occ.(e) <- t.n :: t.occ.(e)) c;
      t.n <- t.n + 1;
      true
    end

  let on_remove t e = List.iter (fun i -> t.dead.(i) <- t.dead.(i) + 1) t.occ.(e)

  let on_restore t e =
    List.iter (fun i -> t.dead.(i) <- t.dead.(i) - 1) t.occ.(e)

  (* first violated clause, as (preferred branch set, full clause) *)
  let violated t =
    let rec go i =
      if i >= t.n then None
      else if t.dead.(i) = 0 then Some (t.branch.(i), t.arr.(i))
      else go (i + 1)
    in
    go 0
end

(* ------------------------------------------------------------------ *)
(* the mode-independent solver                                         *)

exception Stop of string

type engine = {
  entries : entry array;
  state_of : int array; (* entry id -> state index *)
  live : bool array;
  live_count : int array; (* per state: live entries left *)
  clauses : Clauses.t;
  st : mstats;
  budget : int;
  max_decisions : int;
      (* hang guard: clause-pruned subtrees cost no rebuilds, so the
         rebuild budget alone cannot bound them *)
  probe :
    unit -> ((int list * Cycle_class.packet list) option, string) result;
  clause_of :
    Cycle_class.packet list -> (int list * int list, string) result;
      (* packets -> (clause entries, branch entries) *)
}

let remove eng e =
  eng.live.(e) <- false;
  eng.live_count.(eng.state_of.(e)) <- eng.live_count.(eng.state_of.(e)) - 1;
  Clauses.on_remove eng.clauses e

let restore eng e =
  Clauses.on_restore eng.clauses e;
  eng.live_count.(eng.state_of.(e)) <- eng.live_count.(eng.state_of.(e)) + 1;
  eng.live.(e) <- true

(* DFS.  Returns true when a True-Cycle-free assignment was reached (the
   live array is left at it); false when this subtree is exhausted. *)
let rec solve eng =
  match Clauses.violated eng.clauses with
  | Some (preferred, clause) ->
    eng.st.m_pruned <- eng.st.m_pruned + 1;
    branch eng ~preferred clause
  | None -> (
    if eng.st.m_rebuilds >= eng.budget then
      raise
        (Stop
           (Printf.sprintf "search budget of %d BWG rebuilds exhausted"
              eng.budget));
    eng.st.m_rebuilds <- eng.st.m_rebuilds + 1;
    match eng.probe () with
    | Error reason -> raise (Stop reason)
    | Ok None -> true
    | Ok (Some (_cycle, packets)) -> (
      eng.st.m_conflicts <- eng.st.m_conflicts + 1;
      match eng.clause_of packets with
      | Error msg -> raise (Stop msg)
      | Ok (entry_ids, branch_ids) ->
        if Clauses.learn eng.clauses ~live:eng.live ~branch_ids entry_ids
        then eng.st.m_learned <- eng.st.m_learned + 1;
        branch eng
          ~preferred:(Array.of_list (List.sort_uniq compare branch_ids))
          (Array.of_list (List.sort_uniq compare entry_ids))))

(* Branch over the clause in two tiers: the preferred subset first (in
   repair, the wait-edge entries — cutting one is the move most likely to
   kill the whole cycle family, and the tier keeps the fan-out at the
   cycle length), then the remaining clause entries as a completeness
   fallback.  Within a tier, most-active first, id ties. *)
and branch eng ~preferred clause =
  let by_activity =
    List.stable_sort (fun a b ->
        match
          compare eng.clauses.Clauses.activity.(b)
            eng.clauses.Clauses.activity.(a)
        with
        | 0 -> compare a b
        | c -> c)
  in
  let in_preferred = Array.to_list preferred in
  let rest =
    List.filter
      (fun e -> not (List.mem e in_preferred))
      (Array.to_list clause)
  in
  let order = by_activity in_preferred @ by_activity rest in
  List.exists
    (fun e ->
      eng.live.(e)
      && eng.live_count.(eng.state_of.(e)) > 1
      &&
      (if eng.st.m_decisions >= eng.max_decisions then
         raise
           (Stop
              (Printf.sprintf "decision limit of %d exhausted"
                 eng.max_decisions));
       eng.st.m_decisions <- eng.st.m_decisions + 1;
       remove eng e;
       let ok = solve eng in
       if not ok then restore eng e;
       ok))
    order

(* Greedy 1-minimization: restore each removal in ascending entry order
   and keep the restoration whenever the candidate stays True-Cycle-free.
   Because the True-Cycle property is monotone in the kept entries, one
   ascending pass yields a 1-minimal removed set — exactly the shape
   {!certify} wants (re-admitting any single survivor deadlocks). *)
let minimize_pass eng =
  Obs.span "synth.minimize" @@ fun () ->
  for e = 0 to Array.length eng.entries - 1 do
    if not eng.live.(e) then begin
      restore eng e;
      eng.st.m_rebuilds <- eng.st.m_rebuilds + 1;
      match eng.probe () with
      | Ok None -> eng.st.m_restored <- eng.st.m_restored + 1
      | Ok (Some _) | Error _ -> remove eng e
    end
  done

let removed_of eng =
  let acc = ref [] in
  for e = Array.length eng.entries - 1 downto 0 do
    if not eng.live.(e) then acc := eng.entries.(e) :: !acc
  done;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* mode 1: BWG' synthesis (waits shrink, routes fixed)                 *)

let synthesize ?cycle_limits ?class_limits ?(budget = 4000) ?(domains = 1)
    ?(minimize = false) space =
  Obs.span "synth.solve" @@ fun () ->
  let net = State_space.net space in
  let algo = State_space.algo space in
  match State_space.stuck_states space with
  | _ :: _ ->
    Unsat
      "the routing relation dead-ends in stuck states; no waiting rule can \
       restore lost packets"
  | [] ->
    (* entry table over reachable, unarrived transit/injection states *)
    let num_states = ref 0 in
    let state_index = Hashtbl.create 256 in
    let entry_list = ref [] in
    let unconnected = ref false in
    State_space.iter_reachable space (fun ~buf ~dest ->
        if
          (not (State_space.arrived space ~buf ~dest))
          && not (Buf.is_delivery (Net.buffer net buf))
        then
          match State_space.waits space ~buf ~dest with
          | [] -> unconnected := true
          | ws ->
            let si = !num_states in
            incr num_states;
            Hashtbl.replace state_index (buf, dest) si;
            List.iter
              (fun target ->
                entry_list := ({ head = buf; dest; target }, si) :: !entry_list)
              ws);
    if !unconnected then
      Unsat
        "not wait-connected: a reachable state already has an empty waiting \
         set under the full rule"
    else begin
      let tagged = Array.of_list (List.rev !entry_list) in
      let entries = Array.map fst tagged in
      let state_of = Array.map snd tagged in
      let n = Array.length entries in
      let live = Array.make (max 1 n) true in
      let live_count = Array.make (max 1 !num_states) 0 in
      Array.iter (fun si -> live_count.(si) <- live_count.(si) + 1) state_of;
      let state_entries = Array.make (max 1 !num_states) [] in
      for e = n - 1 downto 0 do
        state_entries.(state_of.(e)) <- e :: state_entries.(state_of.(e))
      done;
      let id_of = Hashtbl.create 256 in
      Array.iteri
        (fun i en -> Hashtbl.replace id_of (en.head, en.dest, en.target) i)
        entries;
      match Deadlock_config.find space with
      | Some _ ->
        Unsat
          "a deadlocked single-buffer configuration (knot) exists: every \
           wait-connected BWG' keeps a True Cycle"
      | None ->
        let wait_sets ~buf ~dest =
          match Hashtbl.find_opt state_index (buf, dest) with
          | None -> []
          | Some si ->
            List.filter_map
              (fun e -> if live.(e) then Some entries.(e).target else None)
              state_entries.(si)
        in
        let full_bwg = ref None in
        let st = mstats_zero () in
        let probe () =
          let bwg =
            Obs.span "synth.attempt" (fun () ->
                Bwg.build ~wait_sets ~domains space)
          in
          if Option.is_none !full_bwg then full_bwg := Some bwg;
          Reduction.true_cycle_status ?cycle_limits ?class_limits
            ~shortest_first:true bwg
        in
        let clause_of packets =
          let ids =
            List.fold_left
              (fun acc (p : Cycle_class.packet) ->
                match acc with
                | Error _ -> acc
                | Ok ids -> (
                  match List.rev p.Cycle_class.path with
                  | [] -> Error "internal: witness packet with an empty path"
                  | head :: _ -> (
                    match
                      Hashtbl.find_opt id_of
                        (head, p.Cycle_class.dest, p.Cycle_class.waits_for)
                    with
                    | Some i -> Ok (i :: ids)
                    | None ->
                      Error
                        "internal: witness wait entry missing from the entry \
                         table")))
              (Ok []) packets
          in
          Result.map (fun ids -> (ids, ids)) ids
        in
        let eng =
          {
            entries;
            state_of;
            live;
            live_count;
            clauses = Clauses.create n;
            st;
            budget;
            max_decisions = 256 * budget;
            probe;
            clause_of;
          }
        in
        (match solve eng with
        | exception Stop msg ->
          emit st;
          Gave_up msg
        | false ->
          emit st;
          Unsat
            "exhaustive search: every wait-connected BWG' has a True Cycle \
             (Theorem 3 necessity)"
        | true ->
          if minimize then minimize_pass eng;
          (* one final rebuild so the reported BWG matches the (possibly
             minimized) table *)
          let bwg = Bwg.build ~wait_sets ~domains space in
          let keep = Array.copy live in
          let waits_fun _net b ~dest =
            match Hashtbl.find_opt state_index (Buf.id b, dest) with
            | None -> algo.Algo.waits net b ~dest
            | Some si ->
              List.filter_map
                (fun e -> if keep.(e) then Some entries.(e).target else None)
                state_entries.(si)
          in
          let algo' = Algo.with_waits algo waits_fun in
          let spec = Printer.to_string net algo' in
          emit st;
          Synthesized
            {
              space;
              bwg;
              full_bwg = !full_bwg;
              algo = algo';
              removed = removed_of eng;
              widened = 0;
              spec;
              stats = freeze st;
            })
    end

(* ------------------------------------------------------------------ *)
(* mode 2: restriction repair (routes shrink, from a widened relation)  *)

(* Virtual copies of a physical resource: the virtual channels of one
   directed link share (src, dst); the buffer classes of one SAF/VCT node
   share the node.  Widening a route set admits every copy of each
   resource it already uses — the unused copies are exactly the freedom a
   deadlocking single-VC design needs opened before restriction can
   help. *)
let copy_groups net =
  let groups = Hashtbl.create 64 in
  let key b =
    match Buf.kind b with
    | Buf.Channel { src; dst; _ } -> (0, src, dst)
    | Buf.Node_buffer { node; _ } -> (1, node, node)
    | Buf.Injection _ | Buf.Delivery _ -> assert false
  in
  List.iter
    (fun b ->
      let k = key b in
      let cur = Option.value (Hashtbl.find_opt groups k) ~default:[] in
      Hashtbl.replace groups k (Buf.id b :: cur))
    (Net.transit_buffers net);
  fun id ->
    let b = Net.buffer net id in
    if Buf.is_transit b then List.sort compare (Hashtbl.find groups (key b))
    else [ id ]

(* The direct wait-restriction route does not work here: movement
   follows routes in this model, so once the relation is widened the bad
   occupancy is reachable and the widened design has a knot — no waiting
   rule can save it (synthesize returns Unsat).  Nor does a monotone
   remove-only search over route entries: its blocking clauses are
   heuristic (removals change occupancy) and the clause-pruned region
   blows up exponentially (observed: millions of decisions between two
   BWG rebuilds on dragonfly-minimal-1vc).

   What repairs such designs in practice is re-deciding, per state and
   physical hop, WHICH virtual copy to use — the dateline/layered
   assignments all live in that space.  So the repair search is a
   conflict-driven search over copy assignments: a variable per (state,
   physical-copy group with >= 2 members), values its copies; a probe
   builds the candidate (route = assigned copies, waits = route) and
   asks for a knot or a True Cycle; a conflict's occupants yield the
   value clause "at least one of these states must take a different
   copy", with the cycle's wait-edge literals preferred for branching;
   decided variables are frozen down the subtree, so the tree is finite.
   Exactly-one-copy assignments preserve the input's physical structure,
   and per-destination deliverability from every injection is checked on
   every reassignment (decrementally, via Reach) as a belt-and-braces
   invariant.  Clauses over-approximate (another assignment elsewhere
   might break the cycle's occupancy), so exhaustion is only Gave_up. *)

type fvar = {
  f_head : int;
  f_dest : int;
  f_choices : int array; (* the copy group, ascending *)
  mutable f_value : int; (* index into f_choices *)
}

module VClauses = struct
  type lit = { lv : int; lval : int } (* variable index, choice index *)

  type t = {
    mutable arr : lit array array; (* full clause *)
    mutable branch : lit array array; (* preferred branch subset *)
    mutable sat : int array; (* literals with current value <> lval *)
    mutable n : int;
    occ : (int * int) list array; (* var -> (clause, lval) *)
    activity : int array; (* per variable *)
    seen : (string, unit) Hashtbl.t;
  }

  let create num_vars =
    {
      arr = Array.make 16 [||];
      branch = Array.make 16 [||];
      sat = Array.make 16 0;
      n = 0;
      occ = Array.make (max 1 num_vars) [];
      activity = Array.make (max 1 num_vars) 0;
      seen = Hashtbl.create 64;
    }

  let lit_compare a b =
    match compare a.lv b.lv with 0 -> compare a.lval b.lval | c -> c

  let key c =
    String.concat ","
      (List.map (fun l -> Printf.sprintf "%d=%d" l.lv l.lval)
         (Array.to_list c))

  let ensure t =
    if t.n = Array.length t.arr then begin
      let cap = 2 * t.n in
      let grow a fill =
        let a' = Array.make cap fill in
        Array.blit a 0 a' 0 t.n;
        a'
      in
      t.arr <- grow t.arr [||];
      t.branch <- grow t.branch [||];
      t.sat <- grow t.sat 0
    end

  (* returns true when the clause is new *)
  let learn t ~vars ~branch_lits lits =
    let c = Array.of_list (List.sort_uniq lit_compare lits) in
    let b = Array.of_list (List.sort_uniq lit_compare branch_lits) in
    Array.iter (fun l -> t.activity.(l.lv) <- t.activity.(l.lv) + 1) c;
    let k = key c in
    if Hashtbl.mem t.seen k then false
    else begin
      Hashtbl.add t.seen k ();
      ensure t;
      let sat =
        Array.fold_left
          (fun acc l -> if vars.(l.lv).f_value <> l.lval then acc + 1 else acc)
          0 c
      in
      t.arr.(t.n) <- c;
      t.sat.(t.n) <- sat;
      t.branch.(t.n) <- b;
      Array.iter (fun l -> t.occ.(l.lv) <- (t.n, l.lval) :: t.occ.(l.lv)) c;
      t.n <- t.n + 1;
      true
    end

  let on_change t v ~old_val ~new_val =
    List.iter
      (fun (i, lval) ->
        if lval = old_val then t.sat.(i) <- t.sat.(i) + 1
        else if lval = new_val then t.sat.(i) <- t.sat.(i) - 1)
      t.occ.(v)

  (* first violated clause, as (preferred branch set, full clause) *)
  let violated t =
    let rec go i =
      if i >= t.n then None
      else if t.sat.(i) = 0 then Some (t.branch.(i), t.arr.(i))
      else go (i + 1)
    in
    go 0
end

let repair_search ?cycle_limits ?class_limits ~budget ~domains net algo =
  let num_nodes = Net.num_nodes net in
  let num_buffers = Net.num_buffers net in
  let group = copy_groups net in
  (* variables in (buffer asc, dest asc, group-min asc) order; fixed
     (singleton-group) targets are not searchable *)
  let vars = ref [] and num_vars = ref 0 in
  let fixed_of = Hashtbl.create 256 in (* (buf, dest) -> targets *)
  let var_ids_of = Hashtbl.create 256 in (* (buf, dest) -> var ids *)
  let lit_of = Hashtbl.create 256 in (* (buf, dest, target) -> (var, idx) *)
  let widened_delta = ref 0 in
  Array.iter
    (fun b ->
      if not (Buf.is_delivery b) then
        for dest = 0 to num_nodes - 1 do
          if Buf.head_node b <> dest then
            match algo.Algo.route net b ~dest with
            | [] -> ()
            | route ->
              let orig = List.sort_uniq compare route in
              let seen_groups = Hashtbl.create 4 in
              let fixed = ref [] and ids = ref [] in
              List.iter
                (fun t ->
                  let g = group t in
                  let gmin = List.hd g in
                  if not (Hashtbl.mem seen_groups gmin) then begin
                    Hashtbl.add seen_groups gmin ();
                    match g with
                    | [ only ] -> fixed := only :: !fixed
                    | _ ->
                      widened_delta :=
                        !widened_delta + List.length g
                        - List.length (List.filter (fun x -> List.mem x orig) g);
                      let choices = Array.of_list g in
                      let value =
                        (* least original member of the group *)
                        let rec first i =
                          if List.mem choices.(i) orig then i else first (i + 1)
                        in
                        first 0
                      in
                      let v =
                        {
                          f_head = Buf.id b;
                          f_dest = dest;
                          f_choices = choices;
                          f_value = value;
                        }
                      in
                      let vi = !num_vars in
                      incr num_vars;
                      vars := v :: !vars;
                      ids := vi :: !ids;
                      Array.iteri
                        (fun i t ->
                          Hashtbl.replace lit_of (Buf.id b, dest, t) (vi, i))
                        choices
                  end)
                orig;
              Hashtbl.replace fixed_of (Buf.id b, dest) (List.rev !fixed);
              Hashtbl.replace var_ids_of (Buf.id b, dest) (List.rev !ids)
        done)
    (Net.buffers net);
  let vars = Array.of_list (List.rev !vars) in
  let n = Array.length vars in
  (* keep sets: during the search each variable contributes exactly its
     assigned copy; the re-admission pass afterwards widens them *)
  let keep = Array.map (fun v -> Array.make (Array.length v.f_choices) false) vars in
  Array.iteri (fun i v -> keep.(i).(v.f_value) <- true) vars;
  let route' netv b ~dest =
    match Hashtbl.find_opt fixed_of (Buf.id b, dest) with
    | None -> algo.Algo.route netv b ~dest
    | Some fixed ->
      let chosen =
        List.concat_map
          (fun vi ->
            let v = vars.(vi) in
            List.filteri (fun i _ -> keep.(vi).(i))
              (Array.to_list v.f_choices))
          (Hashtbl.find var_ids_of (Buf.id b, dest))
      in
      List.sort compare (fixed @ chosen)
  in
  let cand = Algo.with_relation algo route' in
  (* per-destination deliverability over all widened entries; copies not
     currently kept are disabled *)
  let dest_edges = Array.make num_nodes [] in
  let add_edge d h t = dest_edges.(d) <- (h, t) :: dest_edges.(d) in
  Hashtbl.iter
    (fun (b, d) fixed -> List.iter (fun t -> add_edge d b t) fixed)
    fixed_of;
  Array.iter
    (fun v -> Array.iter (fun t -> add_edge v.f_dest v.f_head t) v.f_choices)
    vars;
  let sinks = Array.make num_nodes [] in
  for d = 0 to num_nodes - 1 do
    sinks.(d) <- [ Buf.id (Net.delivery net d) ]
  done;
  List.iter
    (fun b -> sinks.(Buf.head_node b) <- Buf.id b :: sinks.(Buf.head_node b))
    (Net.transit_buffers net);
  let sources = Array.make num_nodes [] in
  Array.iter
    (fun b ->
      match Buf.kind b with
      | Buf.Injection node ->
        for dest = 0 to num_nodes - 1 do
          if dest <> node && algo.Algo.route net b ~dest <> [] then
            sources.(dest) <- Buf.id b :: sources.(dest)
        done
      | _ -> ())
    (Net.buffers net);
  let reach =
    Array.init num_nodes (fun d ->
        Reach.create (Csr.of_edges num_buffers dest_edges.(d)) ~sinks:sinks.(d))
  in
  Array.iter
    (fun v ->
      Array.iteri
        (fun i t ->
          if i <> v.f_value then Reach.disable_edge reach.(v.f_dest) v.f_head t)
        v.f_choices)
    vars;
  let st = mstats_zero () in
  let clauses = VClauses.create n in
  let decided = Array.make (max 1 n) false in
  (* reassign vi to [value]; false (and no change) when deliverability
     from some injection would break *)
  let assign vi value =
    let v = vars.(vi) in
    if value = v.f_value then true
    else begin
      let r = reach.(v.f_dest) in
      Reach.enable_edge r v.f_head v.f_choices.(value);
      Reach.disable_edge r v.f_head v.f_choices.(v.f_value);
      if Reach.reaches_all r ~sources:sources.(v.f_dest) then begin
        VClauses.on_change clauses vi ~old_val:v.f_value ~new_val:value;
        keep.(vi).(v.f_value) <- false;
        keep.(vi).(value) <- true;
        v.f_value <- value;
        true
      end
      else begin
        Reach.enable_edge r v.f_head v.f_choices.(v.f_value);
        Reach.disable_edge r v.f_head v.f_choices.(value);
        false
      end
    end
  in
  let probe () =
    Obs.span "synth.attempt" @@ fun () ->
    match State_space.build net cand with
    | exception Invalid_argument msg ->
      Error ("internal: candidate relation rejected: " ^ msg)
    | space' -> (
      match Deadlock_config.find space' with
      | Some config -> Ok (Some (`Knot config))
      | None -> (
        let bwg = Bwg.build ~domains space' in
        match
          Reduction.true_cycle_status ?cycle_limits ?class_limits
            ~shortest_first:true bwg
        with
        | Error _ as e -> e
        | Ok None -> Ok None
        | Ok (Some (_cycle, packets)) -> Ok (Some (`Cycle packets))))
  in
  let lit (h, d, t) =
    match Hashtbl.find_opt lit_of (h, d, t) with
    | Some (lv, lval) -> Some { VClauses.lv; lval }
    | None -> None (* a fixed, singleton-group entry: not searchable *)
  in
  (* a conflict's value clause; literals on fixed entries drop out *)
  let clause_of_conflict = function
    | `Knot config ->
      let lits =
        List.concat_map
          (fun (buf, dest) ->
            List.filter_map (fun t -> lit (buf, dest, t))
              (route' net (Net.buffer net buf) ~dest))
          config
      in
      (lits, lits)
    | `Cycle packets ->
      let wait_edges =
        List.filter_map
          (fun (p : Cycle_class.packet) ->
            match List.rev p.Cycle_class.path with
            | [] -> None
            | head :: _ ->
              lit (head, p.Cycle_class.dest, p.Cycle_class.waits_for))
          packets
      in
      let path_lits =
        List.concat_map
          (fun (p : Cycle_class.packet) ->
            let d = p.Cycle_class.dest in
            let rec along acc = function
              | [] | [ _ ] -> acc
              | a :: (b :: _ as rest) -> (
                match lit (a, d, b) with
                | Some l -> along (l :: acc) rest
                | None -> along acc rest)
            in
            along [] p.Cycle_class.path)
          packets
      in
      (wait_edges @ path_lits, wait_edges)
  in
  let max_decisions = 256 * budget in
  let rec fsolve () =
    match VClauses.violated clauses with
    | Some (preferred, full) ->
      st.m_pruned <- st.m_pruned + 1;
      fbranch preferred full
    | None -> (
      if st.m_rebuilds >= budget then
        raise
          (Stop
             (Printf.sprintf "search budget of %d BWG rebuilds exhausted"
                budget));
      st.m_rebuilds <- st.m_rebuilds + 1;
      match probe () with
      | Error reason -> raise (Stop reason)
      | Ok None -> true
      | Ok (Some conflict) -> (
        st.m_conflicts <- st.m_conflicts + 1;
        match clause_of_conflict conflict with
        | [], _ -> false (* only fixed entries involved: dead subtree *)
        | lits, branch_lits ->
          if VClauses.learn clauses ~vars ~branch_lits lits then
            st.m_learned <- st.m_learned + 1;
          fbranch
            (Array.of_list (List.sort_uniq VClauses.lit_compare branch_lits))
            (Array.of_list (List.sort_uniq VClauses.lit_compare lits))))
  and fbranch preferred full =
    (* two tiers: the cycle's wait-edge literals first, then the rest of
       the clause; within a tier most-active variable first, index ties *)
    let by_activity =
      List.stable_sort (fun a b ->
          match
            compare clauses.VClauses.activity.(b.VClauses.lv)
              clauses.VClauses.activity.(a.VClauses.lv)
          with
          | 0 -> VClauses.lit_compare a b
          | c -> c)
    in
    let pref = Array.to_list preferred in
    let rest =
      List.filter (fun l -> not (List.mem l pref)) (Array.to_list full)
    in
    let order = by_activity pref @ by_activity rest in
    List.exists
      (fun { VClauses.lv; lval } ->
        (not decided.(lv))
        && vars.(lv).f_value = lval
        && begin
             decided.(lv) <- true;
             let alts =
               List.filter (fun i -> i <> lval)
                 (List.init (Array.length vars.(lv).f_choices) Fun.id)
             in
             let ok =
               List.exists
                 (fun alt ->
                   if st.m_decisions >= max_decisions then
                     raise
                       (Stop
                          (Printf.sprintf "decision limit of %d exhausted"
                             max_decisions));
                   st.m_decisions <- st.m_decisions + 1;
                   assign lv alt
                   &&
                   let ok = fsolve () in
                   if not ok then ignore (assign lv lval : bool);
                   ok)
                 alts
             in
             if not ok then decided.(lv) <- false;
             ok
           end)
      order
  in
  (* greedy re-admission: restore each removed copy, ascending, and keep
     the restoration whenever the candidate stays free — the removal set
     becomes 1-minimal and the repaired design keeps what adaptivity it
     can.  Shares the probe budget; stops quietly when it runs out. *)
  let readmit () =
    Obs.span "synth.minimize" @@ fun () ->
    Array.iteri
      (fun vi v ->
        Array.iteri
          (fun i _ ->
            if (not keep.(vi).(i)) && st.m_rebuilds < budget then begin
              keep.(vi).(i) <- true;
              st.m_rebuilds <- st.m_rebuilds + 1;
              match probe () with
              | Ok None -> st.m_restored <- st.m_restored + 1
              | Ok (Some _) | Error _ -> keep.(vi).(i) <- false
            end)
          v.f_choices)
      vars
  in
  let removed_entries () =
    let acc = ref [] in
    Array.iteri
      (fun vi v ->
        Array.iteri
          (fun i t ->
            if not keep.(vi).(i) then
              acc := { head = v.f_head; dest = v.f_dest; target = t } :: !acc)
          v.f_choices)
      vars;
    List.sort compare !acc
  in
  match fsolve () with
  | exception Stop msg ->
    emit st;
    Gave_up msg
  | false ->
    emit st;
    Gave_up
      "search exhausted without a repair (value clauses are heuristic — \
       reassignments change occupancy — so this is no unsatisfiability \
       claim)"
  | true -> (
    readmit ();
    let final = Algo.with_relation algo route' ~name:(algo.Algo.name ^ "+repair") in
    (* independent end-to-end verification through the checker *)
    match Checker.verdict ?cycle_limits ?class_limits ~domains net final with
    | Checker.Deadlock_free _ ->
      let space' = State_space.build net final in
      let bwg = Bwg.build ~domains space' in
      let spec = Printer.to_string net final in
      emit st;
      Synthesized
        {
          space = space';
          bwg;
          full_bwg = None;
          algo = final;
          removed = removed_entries ();
          widened = !widened_delta;
          spec;
          stats = freeze st;
        }
    | Checker.Deadlock_possible _ ->
      emit st;
      Gave_up
        "internal: the repaired candidate failed end-to-end re-verification"
    | Checker.Unknown reason ->
      emit st;
      Gave_up ("repaired candidate could not be re-verified: " ^ reason))

let repair ?cycle_limits ?class_limits ?(budget = 4000) ?(domains = 1) net
    algo =
  Obs.span "synth.solve" @@ fun () ->
  match Checker.verdict ?cycle_limits ?class_limits ~domains net algo with
  | Checker.Deadlock_free proof -> Already_free proof
  | Checker.Unknown reason -> Gave_up ("baseline check inconclusive: " ^ reason)
  | Checker.Deadlock_possible (Checker.Stuck_states _) ->
    Gave_up
      "the input relation has stuck states; repair removes entries and \
       cannot restore lost packets"
  | Checker.Deadlock_possible _ ->
    repair_search ?cycle_limits ?class_limits ~budget ~domains net algo

(* ------------------------------------------------------------------ *)
(* mode 3: Theorem-6-style maximality certification                     *)

type cert_item = {
  relaxed : entry;
  cycle : int list;
  packets : Cycle_class.packet list;
}

type certification =
  | Maximal of cert_item list
  | Relaxable of entry list
  | Cert_unknown of string

let restricted_wait_sets space ~removed ~except =
  let out = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match except with
      | Some e when e = r -> ()
      | _ -> Hashtbl.replace out (r.head, r.dest, r.target) ())
    removed;
  fun ~buf ~dest ->
    List.filter
      (fun t -> not (Hashtbl.mem out (buf, dest, t)))
      (State_space.waits space ~buf ~dest)

let certify ?cycle_limits ?class_limits ?(domains = 1) space ~removed =
  Obs.span "synth.certify" @@ fun () ->
  let rec go items relaxable = function
    | [] ->
      if relaxable = [] then Maximal (List.rev items)
      else Relaxable (List.rev relaxable)
    | r :: rest -> (
      let wait_sets = restricted_wait_sets space ~removed ~except:(Some r) in
      let bwg = Bwg.build ~wait_sets ~domains space in
      match
        Reduction.true_cycle_status ?cycle_limits ?class_limits
          ~shortest_first:true bwg
      with
      | Error reason -> Cert_unknown reason
      | Ok None -> go items (r :: relaxable) rest
      | Ok (Some (cycle, packets)) ->
        go ({ relaxed = r; cycle; packets } :: items) relaxable rest)
  in
  go [] [] removed

let replay ?class_limits ?(domains = 1) space ~removed item =
  let wait_sets =
    restricted_wait_sets space ~removed ~except:(Some item.relaxed)
  in
  let bwg = Bwg.build ~wait_sets ~domains space in
  let g = Bwg.graph bwg in
  let edges_ok =
    match item.cycle with
    | [] -> false
    | first :: _ ->
      let rec chk = function
        | [] -> false
        | [ last ] -> Digraph.mem_edge g last first
        | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && chk rest
      in
      chk item.cycle
  in
  edges_ok
  &&
  match Cycle_class.classify ?limits:class_limits bwg item.cycle with
  | Cycle_class.True_cycle _ -> true
  | Cycle_class.False_resource_cycle _ -> false

(* ------------------------------------------------------------------ *)
(* DOT overlay: BWG with the synthesized BWG' edges highlighted         *)

let bwg_prime_dot s =
  match s.full_bwg with
  | None ->
    invalid_arg "Synth.bwg_prime_dot: result carries no full BWG (repair?)"
  | Some full ->
    let net = State_space.net s.space in
    let fg = Bwg.graph full in
    let rg = Bwg.graph s.bwg in
    let touched = Array.make (Digraph.num_vertices fg) false in
    Digraph.iter_edges
      (fun u v ->
        touched.(u) <- true;
        touched.(v) <- true)
      fg;
    Dot.to_string ~name:"bwg_prime"
      ~vertex_label:(fun v -> Net.describe_buffer net v)
      ~vertex_attrs:(fun v ->
        if touched.(v) then [] else [ ("style", "invis") ])
      ~edge_attrs:(fun u v ->
        if Digraph.mem_edge rg u v then
          [ ("color", "#1f78b4"); ("penwidth", "1.6") ]
        else [ ("color", "#9e9e9e"); ("style", "dashed") ])
      fg
