(** Classification of BWG cycles into True Cycles and False Resource
    Cycles (§5 of the paper).

    A cycle is {e True} when a set of packets can create every waiting
    dependency on it without any buffer being occupied by two packets at
    once; the classifier searches for such a set directly, so a [True_cycle]
    verdict comes with the witness packets — which are exactly the deadlock
    configuration of Theorem 2's necessity proof.  A cycle whose every
    realization needs a simultaneously shared buffer is a {e False Resource
    Cycle} and can be ignored.

    A self-loop realized by a single packet is the paper's [n = 1] deadlock:
    the packet waits on a buffer it occupies itself (Duato's incoherent
    example, Figure 2).

    The search is worst-case exponential — as the paper notes every general
    procedure is — so verdicts carry an [exhaustive] flag; a
    non-exhaustive [False_resource_cycle] means "no realization found
    within the caps", not a proof. *)

type packet = {
  dest : int;
  path : int list;  (** occupied buffers, tail first, header's buffer last *)
  waits_for : int;
}

type verdict =
  | True_cycle of packet list
      (** one packet per cycle edge, in cycle order: packet [k] occupies a
          path starting at cycle vertex [k] and waits for vertex [k+1]
          (wrapping), so printers can zip packets with edges directly *)
  | False_resource_cycle of { exhaustive : bool }

type limits = {
  max_paths_per_edge : int;  (** candidate occupied paths per cycle edge *)
  max_path_length : int;
  max_assignments : int;  (** backtracking budget *)
}

val default_limits : limits
(** 64 paths per edge, length 24, 100_000 assignments. *)

val simple_paths :
  limits:limits ->
  Dfr_graph.Csr.t ->
  start:int ->
  target:int ->
  int list list * bool
(** Simple paths from [start] to [target] (internal building block,
    exposed for the boundary tests).  At most [max_paths_per_edge] paths
    are returned; the boolean is false only when enumeration actually
    truncated something — a path beyond the cap exists, or an extension
    was cut by [max_path_length] — never merely because the cap was
    reached exactly. *)

val classify : ?limits:limits -> Bwg.t -> int list -> verdict
(** [classify bwg cycle] where [cycle] is a vertex list as returned by
    {!Bwg.cycles}.  Raises [Invalid_argument] if some consecutive pair is
    not a BWG edge. *)

val first_true_cycle :
  ?limits:limits -> Bwg.t -> int list list -> (int list * packet list) option
(** First cycle in the list that classifies as True, with its witness. *)

val pp_packet : Dfr_network.Net.t -> Format.formatter -> packet -> unit
