(** The reachable routing states of an algorithm on a network.

    A state is a pair (buffer, destination): "some packet destined for
    [dest] occupies [buf]".  States are seeded at the injection buffers and
    closed under the routing relation; everything downstream — the buffer
    waiting graph, wait-connectivity, cycle classification, the baseline
    proof techniques and the adaptiveness counters — works on this state
    space, which is what keeps the analysis exact: dependencies that no
    packet can actually create (because the state is unreachable) never
    enter the BWG. *)

open Dfr_network
open Dfr_routing

type t

val build :
  ?storage:[ `Auto | `Dense | `Sparse ] -> ?domains:int -> Net.t -> Algo.t -> t
(** Raises [Invalid_argument] when [Algo.validate] rejects the pair.

    [storage] picks the state-table layout: [`Dense] keeps flat
    [buffers * nodes] arrays, [`Sparse] stores per-destination slices of
    the actually-reachable states, and [`Auto] (the default) switches to
    sparse once the flat table would exceed ~4M entries.  The two layouts
    are observationally identical (tested); sparse is what lets
    10^4-10^5-buffer instances fit in memory.

    [domains] fans both serial phases of the build out over the shared
    {!Dfr_util.Domain_pool}: the [Algo.validate] sweep partitions by
    buffer, the reachability BFS by destination (a destination's states
    never depend on another's).  The resulting table — and the error
    message on a rejected pair — is identical to the serial build's. *)

val is_sparse : t -> bool
(** Whether the sparse per-destination layout is in use. *)

val net : t -> Net.t
val algo : t -> Algo.t
val num_buffers : t -> int
val num_nodes : t -> int

val is_reachable : t -> buf:int -> dest:int -> bool

val outputs : t -> buf:int -> dest:int -> int list
(** Permitted transit outputs of a reachable state; [[]] when the head is
    at the destination (the packet proceeds to delivery) or the state is
    unreachable. *)

val waits : t -> buf:int -> dest:int -> int list
(** Waiting buffers of a reachable state (same conventions). *)

val reduced_waits : t -> (buf:int -> dest:int -> int list) option
(** The algorithm's BWG' hint filtered to reachable states, if any. *)

val arrived : t -> buf:int -> dest:int -> bool
(** The head of a packet in this state is at its destination. *)

val iter_reachable : t -> (buf:int -> dest:int -> unit) -> unit

val move_graph : t -> dest:int -> Dfr_graph.Csr.t
(** Buffer-to-buffer moves available to packets destined for [dest]
    (restricted to reachable states), frozen to CSR and cached.  The lazy
    cache is not safe to populate from several domains at once — callers
    that fan work out call {!materialize_move_graphs} first.

    Records [space.move-graph.hits]/[.builds] observability counters; use
    {!move_graph_quiet} on paths whose cache behaviour varies with the
    domain count (see DESIGN.md, observability architecture). *)

val move_graph_quiet : t -> dest:int -> Dfr_graph.Csr.t
(** [move_graph] without the cache counters. *)

val move_graph_view : t -> dest:int -> Dfr_graph.Csr.t
(** The cached graph when present, otherwise a fresh build that is {e not}
    retained (and no counters).  Single-visit passes — the BWG closure
    walks each destination exactly once — use this so the cache never pins
    N per-destination CSRs at once; at 10^5 buffers that cache alone would
    dwarf the state table. *)

val materialize_move_graphs : ?domains:int -> t -> unit
(** Populate the move-graph cache for every destination (required before
    fanning work out over domains).  Counts cache builds but not hits, so
    the counters agree between lazy serial and eager parallel builds.
    With [domains > 1] the fill itself fans out over the pool (each
    destination's slot is written at most once, chunks are disjoint). *)

val reachable_with : t -> dest:int -> int list
(** Buffers some [dest]-bound packet can occupy, ascending. *)

(** {2 Incremental access}

    The state table decomposes by destination — a destination's slice is a
    pure function of (net, algo restricted to that destination) — which is
    the sharing unit of the incremental re-checker. *)

type dest_view = {
  view_bufs : int array;  (** reachable buffers, ascending *)
  view_outs : int list array;  (** parallel: permitted transit outputs *)
  view_wts : int list array;  (** parallel: waiting sets *)
}

val dest_view : t -> dest:int -> dest_view
(** One destination's reachable states and routing relation as parallel
    arrays.  On the sparse layout this aliases the internal slice (do not
    mutate); on the dense layout it is extracted fresh per call. *)

val with_updated_dests : t -> Algo.t -> dests:int list -> t
(** A state space for the new algorithm that rebuilds only the slices (and
    invalidates only the move-graph cache entries) of the listed
    destinations, sharing every other destination's structures with [t].
    Sound when the algorithms agree on every destination outside [dests] —
    the caller (Diff / Incr) is responsible for that frontier; the result
    is then indistinguishable from [build net algo].  [Algo.validate] is
    deliberately {e not} re-run (callers hold pre-validated algorithms;
    re-validating would cost the full O(B·N) sweep this function avoids).
    Raises [Invalid_argument] on an out-of-range destination, or when
    [algo] carries a [reduced_waits] hint and [t] was built without one
    (the clean destinations' hint tables cannot be filled in
    retroactively). *)

val filter_reachable :
  ?domains:int -> t -> (buf:int -> dest:int -> bool) -> (int * int) list
(** The reachable states satisfying a predicate, in [iter_reachable]
    order.  With [domains > 1] the scan chunks by destination over the
    shared {!Dfr_util.Domain_pool} and the merged result is identical to
    the serial scan's (the predicate is then called from several domains
    concurrently — safe for table reads, which is all the scan
    predicates do). *)

val stuck_states : ?domains:int -> t -> (int * int) list
(** Reachable states that are neither arrived nor have any output: the
    routing relation dead-ends there (a malformed algorithm).
    [domains] parallelizes the scan (see {!filter_reachable}). *)

val describe_state : t -> int * int -> string
