(** The paper's decision procedure, end to end.

    Given a network and a routing algorithm, the checker builds the
    reachable state space and the buffer waiting graph and then applies, in
    order:

    - {b Theorem 1}: wait-connected + acyclic BWG ⇒ deadlock-free;
    - {b Theorem 2} (specific-wait): deadlock-free ⇔ wait-connected and
      no True Cycle — a True Cycle yields the witness deadlock
      configuration of the necessity proof;
    - {b Theorem 3} (multi-wait): deadlock-free ⇔ some wait-connected
      BWG' has no True Cycle — tried first with the algorithm's verified
      hint, then by automatic reduction search; an exhaustive failed search
      is a deadlock verdict by the theorem's necessity direction.

    Because enumeration and classification are worst-case exponential, the
    checker can also return [Unknown] with the cap that was hit. *)

open Dfr_network
open Dfr_routing

type proof =
  | Acyclic_bwg  (** Theorem 1 *)
  | No_true_cycles of { cycles_examined : int }  (** Theorem 2 *)
  | Reduced_bwg of {
      via_hint : bool;
      removed : Reduction.removed list;
      full_bwg_cycles : int;
    }  (** Theorem 3 *)

type failure =
  | Stuck_states of (int * int) list
      (** reachable states with no permitted output: packets are lost *)
  | Not_wait_connected of (int * int) list
  | Knot of Deadlock_config.t
      (** a polynomial-time direct witness: mutually blocking single-buffer
          packets; such a set induces a True Cycle in {e every}
          wait-connected BWG', so it is a deadlock under both disciplines *)
  | True_cycle of { cycle : int list; packets : Cycle_class.packet list }
  | No_reduction of { cycle : int list; packets : Cycle_class.packet list }
      (** every wait-connected BWG' keeps a True Cycle (Theorem 3
          necessity); a witness from the full BWG is attached *)

type verdict =
  | Deadlock_free of proof
  | Deadlock_possible of failure
  | Unknown of string

type report = {
  verdict : verdict;
  space : State_space.t;
  bwg : Bwg.t;  (** built from the full waiting rule *)
  bwg_cycles : int option;
      (** cycles found in the full BWG (capped); [None] when the verdict
          was reached without enumerating them *)
}

val check :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?reduction_budget:int ->
  ?domains:int ->
  Net.t ->
  Algo.t ->
  report
(** [domains] parallelizes the BWG construction and the cycle
    classification scan over OCaml 5 domains (default 1; see
    {!Bwg.build}).  Verdicts are bit-for-bit identical to the serial
    run: the classification fan-out still reports the True Cycle of
    minimal index in the shortest-first order. *)

val decide :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?reduction_budget:int ->
  ?domains:int ->
  stuck:(int * int) list ->
  unconnected:(int * int) list ->
  State_space.t ->
  Bwg.t ->
  report
(** The verdict pipeline downstream of the BWG build — exactly the code
    {!check} runs after constructing [space] and [bwg], exposed for the
    incremental re-checker, which maintains the stuck / wait-connectivity
    state lists and the BWG per destination and replays them here.  [stuck]
    and [unconnected] must be what {!State_space.stuck_states} and
    {!Bwg.unconnected_states} would return (reachable-iteration order);
    [unconnected] is only consulted when [stuck] is empty, so callers
    holding stuck states may pass [[]]. *)

val verdict :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?reduction_budget:int ->
  ?domains:int ->
  Net.t ->
  Algo.t ->
  verdict
(** Just the verdict of {!check}. *)

val check_result :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?reduction_budget:int ->
  ?domains:int ->
  Net.t ->
  Algo.t ->
  (report, string) result
(** Re-entrant {!check} for long-lived callers (the serving layer): a
    structurally invalid algorithm or a raising route function becomes
    [Error msg] instead of an exception, and calls may run concurrently
    from multiple domains — every structure {!check} builds is allocated
    per call. *)

val is_deadlock_free : verdict -> bool option
(** [Some true] / [Some false] / [None] for [Unknown]. *)

val pp_verdict : Net.t -> Format.formatter -> verdict -> unit
