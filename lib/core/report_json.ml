open Dfr_network
open Dfr_routing
open Dfr_util

let buffer_name net b = Json.String (Net.describe_buffer net b)

let state_json net (b, d) =
  Json.Obj [ ("buffer", buffer_name net b); ("dest", Json.Int d) ]

let packet_json net (p : Cycle_class.packet) =
  Json.Obj
    [
      ("dest", Json.Int p.Cycle_class.dest);
      ("occupies", Json.List (List.map (buffer_name net) p.Cycle_class.path));
      ("waits_for", buffer_name net p.Cycle_class.waits_for);
    ]

let verdict_json net = function
  | Checker.Deadlock_free proof ->
    let detail =
      match proof with
      | Checker.Acyclic_bwg -> [ ("theorem", Json.Int 1) ]
      | Checker.No_true_cycles { cycles_examined } ->
        [ ("theorem", Json.Int 2); ("false_cycles", Json.Int cycles_examined) ]
      | Checker.Reduced_bwg { via_hint; removed; full_bwg_cycles } ->
        [
          ("theorem", Json.Int 3);
          ("via_hint", Json.Bool via_hint);
          ("full_bwg_cycles", Json.Int full_bwg_cycles);
          ( "removed_waits",
            Json.List
              (List.map
                 (fun (r : Reduction.removed) ->
                   Json.Obj
                     [
                       ("head", buffer_name net r.Reduction.head);
                       ("dest", Json.Int r.Reduction.dest);
                       ("target", buffer_name net r.Reduction.target);
                     ])
                 removed) );
        ]
    in
    Json.Obj (("result", Json.String "deadlock-free") :: detail)
  | Checker.Deadlock_possible failure ->
    let detail =
      match failure with
      | Checker.Stuck_states states ->
        [
          ("kind", Json.String "stuck-states");
          ("states", Json.List (List.map (state_json net) states));
        ]
      | Checker.Not_wait_connected states ->
        [
          ("kind", Json.String "not-wait-connected");
          ("states", Json.List (List.map (state_json net) states));
        ]
      | Checker.Knot config ->
        [
          ("kind", Json.String "knot");
          ("packets", Json.List (List.map (state_json net) config));
        ]
      | Checker.True_cycle { cycle; packets } ->
        [
          ("kind", Json.String "true-cycle");
          ("cycle", Json.List (List.map (buffer_name net) cycle));
          ("packets", Json.List (List.map (packet_json net) packets));
        ]
      | Checker.No_reduction { cycle; packets } ->
        [
          ("kind", Json.String "no-reduction");
          ("cycle", Json.List (List.map (buffer_name net) cycle));
          ("packets", Json.List (List.map (packet_json net) packets));
        ]
    in
    Json.Obj (("result", Json.String "deadlock") :: detail)
  | Checker.Unknown reason ->
    Json.Obj [ ("result", Json.String "unknown"); ("reason", Json.String reason) ]

(* The one constructor of the report object.  Every surface that renders a
   checker outcome as JSON — `dfcheck check --json', `dfcheck spec check
   --json', the audit, the serving layer's cached verdicts, and the
   incremental re-checker's fast path — goes through here, so none of them
   can drift apart field by field. *)
let of_counts ?metrics net algo ~bwg_vertices ~bwg_edges ~bwg_cycles ~verdict =
  let fields =
    [
      ("algorithm", Json.String algo.Algo.name);
      ( "waiting",
        Json.String
          (match algo.Algo.wait with
          | Algo.Specific_wait -> "specific"
          | Algo.Any_wait -> "any") );
      ("network", Json.String (Net.name net));
      ("nodes", Json.Int (Net.num_nodes net));
      ("buffers", Json.Int (Net.num_buffers net));
      ( "bwg",
        Json.Obj
          [
            ("vertices", Json.Int bwg_vertices);
            ("edges", Json.Int bwg_edges);
            ( "cycles",
              match bwg_cycles with Some n -> Json.Int n | None -> Json.Null );
          ] );
      ("verdict", verdict_json net verdict);
    ]
  in
  (* the report parser ignores unknown fields, so appending is compatible *)
  match metrics with
  | Some m -> Json.Obj (fields @ [ ("metrics", m) ])
  | None -> Json.Obj fields

let of_outcome ?metrics net algo (report : Checker.report) =
  let g = Bwg.graph report.Checker.bwg in
  of_counts ?metrics net algo
    ~bwg_vertices:(Dfr_graph.Digraph.num_vertices g)
    ~bwg_edges:(Dfr_graph.Digraph.num_edges g)
    ~bwg_cycles:report.Checker.bwg_cycles ~verdict:report.Checker.verdict

let of_report net algo report = of_outcome net algo report
let to_string net algo report = Json.to_string_pretty (of_report net algo report)

(* Exit codes (kept machine-checkable, see test/cli_exit_codes.sh):
     0  deadlock-free / success
     1  deadlock found
     3  verdict Unknown (a cap or budget was hit)
   The CLI and the serve protocol's "exit" field both read this table, so
   a script can treat a served response exactly like a process status. *)
let exit_code = function
  | Checker.Deadlock_free _ -> 0
  | Checker.Deadlock_possible _ -> 1
  | Checker.Unknown _ -> 3

(* ------------------------------------------------------------------ *)
(* parsing, for downstream tooling that consumes checker output        *)

type summary = {
  algorithm : string;
  waiting : Algo.wait_discipline;
  network : string;
  nodes : int;
  buffers : int;
  bwg_vertices : int;
  bwg_edges : int;
  bwg_cycles : int option;
  result : string;
  theorem : int option;
  failure_kind : string option;
  cycle : string list;
}

let of_string s =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name conv doc =
    match Option.bind (Json.member name doc) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "report is missing field %S" name)
  in
  let* doc = Json.of_string s in
  let* algorithm = field "algorithm" Json.to_str doc in
  let* waiting_s = field "waiting" Json.to_str doc in
  let* waiting =
    match waiting_s with
    | "specific" -> Ok Algo.Specific_wait
    | "any" -> Ok Algo.Any_wait
    | w -> Error (Printf.sprintf "unknown waiting discipline %S" w)
  in
  let* network = field "network" Json.to_str doc in
  let* nodes = field "nodes" Json.to_int doc in
  let* buffers = field "buffers" Json.to_int doc in
  let* bwg = field "bwg" Option.some doc in
  let* bwg_vertices = field "vertices" Json.to_int bwg in
  let* bwg_edges = field "edges" Json.to_int bwg in
  let bwg_cycles = Option.bind (Json.member "cycles" bwg) Json.to_int in
  let* verdict = field "verdict" Option.some doc in
  let* result = field "result" Json.to_str verdict in
  let theorem = Option.bind (Json.member "theorem" verdict) Json.to_int in
  let failure_kind = Option.bind (Json.member "kind" verdict) Json.to_str in
  let cycle =
    match Option.bind (Json.member "cycle" verdict) Json.to_list with
    | Some items -> List.filter_map Json.to_str items
    | None -> []
  in
  Ok
    {
      algorithm;
      waiting;
      network;
      nodes;
      buffers;
      bwg_vertices;
      bwg_edges;
      bwg_cycles;
      result;
      theorem;
      failure_kind;
      cycle;
    }
