(** Machine-readable checker reports (JSON), for scripting around the CLI
    and archiving verdicts in CI. *)

open Dfr_network
open Dfr_routing

val of_report : Net.t -> Algo.t -> Checker.report -> Dfr_util.Json.t

val to_string : Net.t -> Algo.t -> Checker.report -> string
(** Pretty-printed {!of_report}. *)

(** {2 Round-tripping}

    The structured part of a report can be read back, so scripts (or a
    future verification service) can consume checker output instead of
    only producing it. *)

type summary = {
  algorithm : string;
  waiting : Algo.wait_discipline;
  network : string;
  nodes : int;
  buffers : int;
  bwg_vertices : int;
  bwg_edges : int;
  bwg_cycles : int option;  (** [None] when cycle counting was skipped *)
  result : string;  (** ["deadlock-free"], ["deadlock"] or ["unknown"] *)
  theorem : int option;  (** which of Theorems 1-3 proved freedom *)
  failure_kind : string option;  (** e.g. ["true-cycle"], ["knot"] *)
  cycle : string list;  (** buffer names of the offending cycle, if any *)
}

val of_string : string -> (summary, string) result
(** Parse the output of {!to_string}. *)
