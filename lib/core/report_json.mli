(** Machine-readable checker reports (JSON), for scripting around the CLI
    and archiving verdicts in CI. *)

open Dfr_network
open Dfr_routing

val of_counts :
  ?metrics:Dfr_util.Json.t ->
  Net.t ->
  Algo.t ->
  bwg_vertices:int ->
  bwg_edges:int ->
  bwg_cycles:int option ->
  verdict:Checker.verdict ->
  Dfr_util.Json.t
(** The single constructor of the report object; every rendering surface
    funnels through it.  The BWG contributes only its vertex/edge counts
    and the optional cycle count, which is what lets the incremental
    re-checker's fast path render a byte-identical report without
    materializing a [Bwg.t] at all. *)

val of_outcome :
  ?metrics:Dfr_util.Json.t -> Net.t -> Algo.t -> Checker.report -> Dfr_util.Json.t
(** {!of_counts} with the counts taken from a checker report, shared by
    [dfcheck check --json], [dfcheck spec check --json] and the serving
    layer's cached verdicts — the surfaces can never drift.  [metrics],
    when given, is appended as a final ["metrics"] field (the parser
    ignores unknown fields, so this is compatible with {!of_string}). *)

val of_report : Net.t -> Algo.t -> Checker.report -> Dfr_util.Json.t
(** {!of_outcome} without metrics. *)

val to_string : Net.t -> Algo.t -> Checker.report -> string
(** Pretty-printed {!of_report}. *)

val exit_code : Checker.verdict -> int
(** The CLI exit-code table (0 deadlock-free, 1 deadlock, 3 unknown),
    also served as the ["exit"] field of a protocol response.  Pinned by
    test/cli_exit_codes.sh. *)

(** {2 Round-tripping}

    The structured part of a report can be read back, so scripts (or a
    future verification service) can consume checker output instead of
    only producing it. *)

type summary = {
  algorithm : string;
  waiting : Algo.wait_discipline;
  network : string;
  nodes : int;
  buffers : int;
  bwg_vertices : int;
  bwg_edges : int;
  bwg_cycles : int option;  (** [None] when cycle counting was skipped *)
  result : string;  (** ["deadlock-free"], ["deadlock"] or ["unknown"] *)
  theorem : int option;  (** which of Theorems 1-3 proved freedom *)
  failure_kind : string option;  (** e.g. ["true-cycle"], ["knot"] *)
  cycle : string list;  (** buffer names of the offending cycle, if any *)
}

val of_string : string -> (summary, string) result
(** Parse the output of {!to_string}. *)
