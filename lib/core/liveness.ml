open Dfr_topology
open Dfr_network

type result = {
  livelock_free : bool;
  offending_dest : int option;
  cycle : int list option;
}

let analyze space =
  let rec scan dest =
    if dest >= State_space.num_nodes space then
      { livelock_free = true; offending_dest = None; cycle = None }
    else
      let g = State_space.move_graph space ~dest in
      match Dfr_graph.Traversal.find_cycle_csr g with
      | Some cycle ->
        { livelock_free = false; offending_dest = Some dest; cycle = Some cycle }
      | None -> scan (dest + 1)
  in
  scan 0

let livelock_free space = (analyze space).livelock_free

let is_minimal space =
  match Net.topology (State_space.net space) with
  | None -> false
  | Some topo ->
    let ok = ref true in
    State_space.iter_reachable space (fun ~buf ~dest ->
        if not (State_space.arrived space ~buf ~dest) then begin
          let here = Buf.head_node (Net.buffer (State_space.net space) buf) in
          let d = Topology.distance topo here dest in
          List.iter
            (fun o ->
              let next = Buf.head_node (Net.buffer (State_space.net space) o) in
              (* same-node transfers (injection entry, buffer-class change)
                 are distance-neutral and allowed *)
              if next <> here && Topology.distance topo next dest <> d - 1 then
                ok := false)
            (State_space.outputs space ~buf ~dest)
        end);
    !ok

let pp_result net fmt r =
  if r.livelock_free then Format.pp_print_string fmt "livelock-free"
  else
    match (r.offending_dest, r.cycle) with
    | Some dest, Some cycle ->
      Format.fprintf fmt "possible livelock toward n%d: %s" dest
        (String.concat " -> " (List.map (Net.describe_buffer net) cycle))
    | _ -> Format.pp_print_string fmt "possible livelock"
