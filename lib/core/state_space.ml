open Dfr_network
open Dfr_routing
module Obs = Dfr_obs.Obs

type t = {
  net : Net.t;
  algo : Algo.t;
  num_buffers : int;
  num_nodes : int;
  reachable : bool array; (* buf * num_nodes + dest *)
  outputs : int list array; (* only meaningful for reachable states *)
  waits : int list array;
  reduced : int list array option;
  move_graphs : Dfr_graph.Csr.t option array; (* per dest, lazy *)
}

let index t ~buf ~dest = (buf * t.num_nodes) + dest
let net t = t.net
let algo t = t.algo
let num_buffers t = t.num_buffers
let num_nodes t = t.num_nodes

let is_reachable t ~buf ~dest = t.reachable.(index t ~buf ~dest)

let arrived t ~buf ~dest = Buf.head_node (Net.buffer t.net buf) = dest

let outputs t ~buf ~dest =
  if is_reachable t ~buf ~dest then t.outputs.(index t ~buf ~dest) else []

let waits t ~buf ~dest =
  if is_reachable t ~buf ~dest then t.waits.(index t ~buf ~dest) else []

let reduced_waits t =
  Option.map
    (fun arr ~buf ~dest ->
      if is_reachable t ~buf ~dest then arr.(index t ~buf ~dest) else [])
    t.reduced

let build net algo =
  Obs.span "space.build" @@ fun () ->
  (match Algo.validate algo net with
  | Ok () -> ()
  | Error msg -> invalid_arg ("State_space.build: " ^ msg));
  let num_buffers = Net.num_buffers net in
  let num_nodes = Net.num_nodes net in
  let size = num_buffers * num_nodes in
  let reachable = Array.make size false in
  let outputs = Array.make size [] in
  let waits = Array.make size [] in
  let reduced = Option.map (fun _ -> Array.make size []) algo.Algo.reduced_waits in
  let idx buf dest = (buf * num_nodes) + dest in
  let queue = Queue.create () in
  let visit buf dest =
    let i = idx buf dest in
    if not reachable.(i) then begin
      reachable.(i) <- true;
      Queue.add (buf, dest) queue
    end
  in
  for src = 0 to num_nodes - 1 do
    for dest = 0 to num_nodes - 1 do
      if src <> dest then visit (Buf.id (Net.injection net src)) dest
    done
  done;
  while not (Queue.is_empty queue) do
    let buf, dest = Queue.pop queue in
    let b = Net.buffer net buf in
    if Buf.head_node b <> dest then begin
      let i = idx buf dest in
      let outs =
        List.filter
          (fun o -> Buf.is_transit (Net.buffer net o))
          (algo.Algo.route net b ~dest)
      in
      outputs.(i) <- outs;
      waits.(i) <- algo.Algo.waits net b ~dest;
      (match (reduced, algo.Algo.reduced_waits) with
      | Some arr, Some rw -> arr.(i) <- rw net b ~dest
      | _ -> ());
      List.iter (fun o -> visit o dest) outs
    end
  done;
  Obs.count "space.states"
    (Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 reachable);
  {
    net;
    algo;
    num_buffers;
    num_nodes;
    reachable;
    outputs;
    waits;
    reduced;
    move_graphs = Array.make num_nodes None;
  }

let iter_reachable t f =
  for buf = 0 to t.num_buffers - 1 do
    for dest = 0 to t.num_nodes - 1 do
      if t.reachable.(index t ~buf ~dest) then f ~buf ~dest
    done
  done

(* The quiet accessor exists for counter determinism: the serial BWG build
   resolves move graphs lazily while the parallel build pre-materializes
   them, so any hit/build counting on the structural pass would make the
   metrics depend on [--domains].  Structural consumers go through
   [move_graph_quiet]/[materialize_move_graphs]; only the classification
   paths (which run after materialization on every configuration) use the
   counted [move_graph]. *)
let move_graph_quiet t ~dest =
  match t.move_graphs.(dest) with
  | Some g -> g
  | None ->
    let g = Dfr_graph.Digraph.create t.num_buffers in
    for buf = 0 to t.num_buffers - 1 do
      if t.reachable.(index t ~buf ~dest) then
        List.iter
          (fun o -> Dfr_graph.Digraph.add_edge g buf o)
          t.outputs.(index t ~buf ~dest)
    done;
    let frozen = Dfr_graph.Digraph.freeze g in
    t.move_graphs.(dest) <- Some frozen;
    frozen

let move_graph t ~dest =
  (match t.move_graphs.(dest) with
  | Some _ -> Obs.count "space.move-graph.hits" 1
  | None -> Obs.count "space.move-graph.builds" 1);
  move_graph_quiet t ~dest

let materialize_move_graphs t =
  for dest = 0 to t.num_nodes - 1 do
    (match t.move_graphs.(dest) with
    | None -> Obs.count "space.move-graph.builds" 1
    | Some _ -> ());
    ignore (move_graph_quiet t ~dest)
  done

let reachable_with t ~dest =
  let acc = ref [] in
  for buf = t.num_buffers - 1 downto 0 do
    if t.reachable.(index t ~buf ~dest) then acc := buf :: !acc
  done;
  !acc

let stuck_states t =
  let acc = ref [] in
  iter_reachable t (fun ~buf ~dest ->
      if (not (arrived t ~buf ~dest)) && t.outputs.(index t ~buf ~dest) = [] then
        acc := (buf, dest) :: !acc);
  List.rev !acc

let describe_state t (buf, dest) =
  Printf.sprintf "%s->n%d" (Net.describe_buffer t.net buf) dest
