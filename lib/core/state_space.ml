open Dfr_network
open Dfr_routing
module Obs = Dfr_obs.Obs

(* One destination's reachable states, stored compactly: [bufs] is the
   ascending list of buffers some [dest]-bound packet can occupy, and the
   parallel arrays carry the per-state routing relation.  A full-mesh or
   dragonfly destination touches O(nodes) of the network's B buffers, so
   this is what keeps the table at O(states) instead of O(B * N) — the
   difference between megabytes and gigabytes at 10^5 buffers. *)
type slice = {
  bufs : int array;
  outs : int list array;
  wts : int list array;
  rdc : int list array option;
}

type storage =
  | Dense_tab of {
      reachable : bool array; (* buf * num_nodes + dest *)
      outputs : int list array; (* only meaningful for reachable states *)
      waits : int list array;
      reduced : int list array option;
    }
  | Sparse_tab of slice array (* per dest *)

type t = {
  net : Net.t;
  algo : Algo.t;
  num_buffers : int;
  num_nodes : int;
  storage : storage;
  move_graphs : Dfr_graph.Csr.t option array; (* per dest, lazy *)
}

(* Above this many (buffer, destination) entries the flat arrays are
   replaced by per-destination slices.  4M entries of three word-sized
   arrays is ~100 MB of table — roughly where the dense layout stops being
   free and the O(log states) slice lookup starts being worth it. *)
let dense_threshold = 1 lsl 22

let index t ~buf ~dest = (buf * t.num_nodes) + dest
let net t = t.net
let algo t = t.algo
let num_buffers t = t.num_buffers
let num_nodes t = t.num_nodes

(* position of [buf] in [s.bufs], or -1 *)
let slice_find s buf =
  let lo = ref 0 and hi = ref (Array.length s.bufs) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let b = s.bufs.(mid) in
    if b = buf then found := mid else if b < buf then lo := mid + 1 else hi := mid
  done;
  !found

let is_reachable t ~buf ~dest =
  match t.storage with
  | Dense_tab d -> d.reachable.(index t ~buf ~dest)
  | Sparse_tab slices -> slice_find slices.(dest) buf >= 0

let arrived t ~buf ~dest = Buf.head_node (Net.buffer t.net buf) = dest

let outputs t ~buf ~dest =
  match t.storage with
  | Dense_tab d ->
    if d.reachable.(index t ~buf ~dest) then d.outputs.(index t ~buf ~dest)
    else []
  | Sparse_tab slices ->
    let s = slices.(dest) in
    let i = slice_find s buf in
    if i >= 0 then s.outs.(i) else []

let waits t ~buf ~dest =
  match t.storage with
  | Dense_tab d ->
    if d.reachable.(index t ~buf ~dest) then d.waits.(index t ~buf ~dest)
    else []
  | Sparse_tab slices ->
    let s = slices.(dest) in
    let i = slice_find s buf in
    if i >= 0 then s.wts.(i) else []

let reduced_waits t =
  match t.storage with
  | Dense_tab d ->
    Option.map
      (fun arr ~buf ~dest ->
        if d.reachable.(index t ~buf ~dest) then arr.(index t ~buf ~dest)
        else [])
      d.reduced
  | Sparse_tab slices ->
    if Array.exists (fun s -> s.rdc <> None) slices then
      Some
        (fun ~buf ~dest ->
          let s = slices.(dest) in
          match s.rdc with
          | None -> []
          | Some arr ->
            let i = slice_find s buf in
            if i >= 0 then arr.(i) else [])
    else None

(* One destination's column of the dense table: clear it, then BFS from
   the injection buffers.  A state's stored content is a pure function
   of (net, algo, buf, dest) and a destination's reachability never
   consults another destination's states, so columns can be built in any
   order — or concurrently, the writes being disjoint — and the table is
   identical to the historical single-queue BFS over all columns at
   once.  Shared by the (possibly parallel) cold build and by
   [with_updated_dests]' dirty-column rebuilds. *)
let dense_column net algo ~num_buffers ~num_nodes ~reachable ~outputs ~waits
    ~reduced dest =
  let idx buf = (buf * num_nodes) + dest in
  for buf = 0 to num_buffers - 1 do
    let i = idx buf in
    reachable.(i) <- false;
    outputs.(i) <- [];
    waits.(i) <- [];
    match reduced with Some arr -> arr.(i) <- [] | None -> ()
  done;
  let queue = Queue.create () in
  let visit buf =
    let i = idx buf in
    if not reachable.(i) then begin
      reachable.(i) <- true;
      Queue.add buf queue
    end
  in
  for src = 0 to num_nodes - 1 do
    if src <> dest then visit (Buf.id (Net.injection net src))
  done;
  while not (Queue.is_empty queue) do
    let buf = Queue.pop queue in
    let b = Net.buffer net buf in
    if Buf.head_node b <> dest then begin
      let i = idx buf in
      let outs =
        List.filter
          (fun o -> Buf.is_transit (Net.buffer net o))
          (algo.Algo.route net b ~dest)
      in
      outputs.(i) <- outs;
      waits.(i) <- algo.Algo.waits net b ~dest;
      (match (reduced, algo.Algo.reduced_waits) with
      | Some arr, Some rw -> arr.(i) <- rw net b ~dest
      | _ -> ());
      List.iter visit outs
    end
  done

let build_dense ?(domains = 1) net algo ~num_buffers ~num_nodes =
  let size = num_buffers * num_nodes in
  let reachable = Array.make size false in
  let outputs = Array.make size [] in
  let waits = Array.make size [] in
  let reduced = Option.map (fun _ -> Array.make size []) algo.Algo.reduced_waits in
  let n_dom = max 1 (min domains num_nodes) in
  Dfr_util.Domain_pool.parallel ~domains:n_dom (fun k ->
      let start, stop =
        Dfr_util.Domain_pool.chunk ~n:num_nodes ~domains:n_dom k
      in
      for dest = start to stop - 1 do
        dense_column net algo ~num_buffers ~num_nodes ~reachable ~outputs ~waits
          ~reduced dest
      done);
  Obs.count "space.states"
    (Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 reachable);
  Dense_tab { reachable; outputs; waits; reduced }

(* Same closure, one destination at a time: the BFS for a destination only
   ever revisits its own states, so a size-B scratch reused across
   destinations replaces the B*N flat arrays entirely.  The single-slice
   function is shared with [with_updated_dests], which re-runs it for just
   the dirty destinations — a slice is a pure function of (net, algo,
   dest), so a rebuilt slice is identical to what a cold build produces. *)
let sparse_slice net algo ~num_nodes ~seen ~out_scratch ~wait_scratch
    ~red_scratch dest =
  let touched = ref [] in
  let queue = Queue.create () in
  let visit buf =
    if not seen.(buf) then begin
      seen.(buf) <- true;
      touched := buf :: !touched;
      Queue.add buf queue
    end
  in
  for src = 0 to num_nodes - 1 do
    if src <> dest then visit (Buf.id (Net.injection net src))
  done;
  while not (Queue.is_empty queue) do
    let buf = Queue.pop queue in
    let b = Net.buffer net buf in
    if Buf.head_node b <> dest then begin
      let outs =
        List.filter
          (fun o -> Buf.is_transit (Net.buffer net o))
          (algo.Algo.route net b ~dest)
      in
      out_scratch.(buf) <- outs;
      wait_scratch.(buf) <- algo.Algo.waits net b ~dest;
      (match (red_scratch, algo.Algo.reduced_waits) with
      | Some arr, Some rw -> arr.(buf) <- rw net b ~dest
      | _ -> ());
      List.iter visit outs
    end
  done;
  let bufs = Array.of_list (List.sort compare !touched) in
  let slice =
    {
      bufs;
      outs = Array.map (fun b -> out_scratch.(b)) bufs;
      wts = Array.map (fun b -> wait_scratch.(b)) bufs;
      rdc = Option.map (fun arr -> Array.map (fun b -> arr.(b)) bufs) red_scratch;
    }
  in
  List.iter
    (fun b ->
      seen.(b) <- false;
      out_scratch.(b) <- [];
      wait_scratch.(b) <- [];
      match red_scratch with Some arr -> arr.(b) <- [] | None -> ())
    !touched;
  slice

(* Destinations partition across domains: each worker owns a contiguous
   chunk and a private size-B scratch, and writes only its own slices —
   a slice is a pure function of (net, algo, dest), so the filled array
   is identical whatever the chunking.  The states counter is a sum of
   per-slice sizes, hence domain-count-invariant. *)
let build_sparse ?(domains = 1) net algo ~num_buffers ~num_nodes =
  let empty = { bufs = [||]; outs = [||]; wts = [||]; rdc = None } in
  let slices = Array.make num_nodes empty in
  let n_dom = max 1 (min domains num_nodes) in
  Dfr_util.Domain_pool.parallel ~domains:n_dom (fun k ->
      let seen = Array.make num_buffers false in
      let out_scratch = Array.make num_buffers [] in
      let wait_scratch = Array.make num_buffers [] in
      let red_scratch =
        Option.map (fun _ -> Array.make num_buffers []) algo.Algo.reduced_waits
      in
      let start, stop =
        Dfr_util.Domain_pool.chunk ~n:num_nodes ~domains:n_dom k
      in
      for dest = start to stop - 1 do
        slices.(dest) <-
          sparse_slice net algo ~num_nodes ~seen ~out_scratch ~wait_scratch
            ~red_scratch dest
      done);
  let states =
    Array.fold_left (fun acc s -> acc + Array.length s.bufs) 0 slices
  in
  Obs.count "space.states" states;
  Sparse_tab slices

let build ?(storage = `Auto) ?(domains = 1) net algo =
  Obs.span "space.build" @@ fun () ->
  (match Obs.span "space.validate" (fun () -> Algo.validate ~domains algo net)
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("State_space.build: " ^ msg));
  let num_buffers = Net.num_buffers net in
  let num_nodes = Net.num_nodes net in
  let sparse =
    match storage with
    | `Dense -> false
    | `Sparse -> true
    | `Auto -> num_buffers * num_nodes > dense_threshold
  in
  let storage =
    if sparse then build_sparse ~domains net algo ~num_buffers ~num_nodes
    else build_dense ~domains net algo ~num_buffers ~num_nodes
  in
  {
    net;
    algo;
    num_buffers;
    num_nodes;
    storage;
    move_graphs = Array.make num_nodes None;
  }

let is_sparse t = match t.storage with Sparse_tab _ -> true | Dense_tab _ -> false

let iter_reachable t f =
  match t.storage with
  | Dense_tab d ->
    for buf = 0 to t.num_buffers - 1 do
      for dest = 0 to t.num_nodes - 1 do
        if d.reachable.((buf * t.num_nodes) + dest) then f ~buf ~dest
      done
    done
  | Sparse_tab slices ->
    (* gather + sort restores the (buf ascending, dest ascending) order of
       the dense scan, so downstream state lists are layout-independent *)
    let total = Array.fold_left (fun acc s -> acc + Array.length s.bufs) 0 slices in
    let keys = Array.make (max total 1) 0 in
    let k = ref 0 in
    Array.iteri
      (fun dest s ->
        Array.iter
          (fun buf ->
            keys.(!k) <- (buf * t.num_nodes) + dest;
            incr k)
          s.bufs)
      slices;
    Array.sort (fun (a : int) b -> compare a b) keys;
    for i = 0 to total - 1 do
      f ~buf:(keys.(i) / t.num_nodes) ~dest:(keys.(i) mod t.num_nodes)
    done

let build_move_graph t ~dest =
  let g = Dfr_graph.Digraph.create t.num_buffers in
  (match t.storage with
  | Dense_tab d ->
    for buf = 0 to t.num_buffers - 1 do
      let i = (buf * t.num_nodes) + dest in
      if d.reachable.(i) then
        List.iter (fun o -> Dfr_graph.Digraph.add_edge g buf o) d.outputs.(i)
    done
  | Sparse_tab slices ->
    let s = slices.(dest) in
    Array.iteri
      (fun i buf -> List.iter (fun o -> Dfr_graph.Digraph.add_edge g buf o) s.outs.(i))
      s.bufs);
  Dfr_graph.Digraph.freeze g

(* The quiet accessor exists for counter determinism: structural passes
   whose cache behaviour varies with [--domains] go through
   [move_graph_view]/[move_graph_quiet]/[materialize_move_graphs]; only
   the classification paths (which run after materialization on every
   configuration) use the counted [move_graph]. *)
let move_graph_quiet t ~dest =
  match t.move_graphs.(dest) with
  | Some g -> g
  | None ->
    let frozen = build_move_graph t ~dest in
    t.move_graphs.(dest) <- Some frozen;
    frozen

(* A cached graph when one exists, otherwise a fresh build that is NOT
   retained.  The BWG construction visits each destination exactly once,
   so caching there would pin N CSRs — O(B) offsets each — for the rest of
   the run; classification materializes the cache later only if a cycle
   actually needs walking.  Reads of a partially populated cache are safe
   from worker domains because entries are only ever written by the serial
   phases. *)
let move_graph_view t ~dest =
  match t.move_graphs.(dest) with
  | Some g -> g
  | None -> build_move_graph t ~dest

let move_graph t ~dest =
  (match t.move_graphs.(dest) with
  | Some _ -> Obs.count "space.move-graph.hits" 1
  | None -> Obs.count "space.move-graph.builds" 1);
  move_graph_quiet t ~dest

(* Cache slots are written at most once per destination and the chunks
   are disjoint, so the parallel fill is race-free; the pool's join
   orders the writes before any later read from any domain.  The builds
   counter is a per-destination sum, hence domain-count-invariant. *)
let materialize_move_graphs ?(domains = 1) t =
  let n = t.num_nodes in
  let n_dom = max 1 (min domains n) in
  Dfr_util.Domain_pool.parallel ~domains:n_dom (fun k ->
      let start, stop = Dfr_util.Domain_pool.chunk ~n ~domains:n_dom k in
      for dest = start to stop - 1 do
        (match t.move_graphs.(dest) with
        | None -> Obs.count "space.move-graph.builds" 1
        | Some _ -> ());
        ignore (move_graph_quiet t ~dest)
      done)

let reachable_with t ~dest =
  match t.storage with
  | Dense_tab d ->
    let acc = ref [] in
    for buf = t.num_buffers - 1 downto 0 do
      if d.reachable.((buf * t.num_nodes) + dest) then acc := buf :: !acc
    done;
    !acc
  | Sparse_tab slices -> Array.to_list slices.(dest).bufs

type dest_view = {
  view_bufs : int array;
  view_outs : int list array;
  view_wts : int list array;
}

let dest_view t ~dest =
  match t.storage with
  | Sparse_tab slices ->
    let s = slices.(dest) in
    { view_bufs = s.bufs; view_outs = s.outs; view_wts = s.wts }
  | Dense_tab d ->
    let acc = ref [] in
    for buf = t.num_buffers - 1 downto 0 do
      if d.reachable.((buf * t.num_nodes) + dest) then acc := buf :: !acc
    done;
    let bufs = Array.of_list !acc in
    let idx b = (b * t.num_nodes) + dest in
    {
      view_bufs = bufs;
      view_outs = Array.map (fun b -> d.outputs.(idx b)) bufs;
      view_wts = Array.map (fun b -> d.waits.(idx b)) bufs;
    }

(* Rebuild only the named destinations' tables under a new algorithm,
   sharing everything else.  A destination's slice (and move graph) is a
   pure function of (net, algo restricted to that dest), so as long as the
   caller's dirty set covers every destination whose applicable rules
   changed — Diff.diff computes exactly that set for spec edits — the
   result is indistinguishable from a cold build of [algo].  No
   [Algo.validate] pass runs here: the callers hold pre-validated
   algorithms (Elaborate validates every compiled spec; the bench path
   warrants its own edits), and a full validation sweep is O(B * N) route
   calls — precisely the cost this function exists to avoid. *)
let with_updated_dests t algo ~dests =
  Obs.span "space.update" @@ fun () ->
  let num_buffers = t.num_buffers and num_nodes = t.num_nodes in
  let dests = List.sort_uniq compare dests in
  List.iter
    (fun d ->
      if d < 0 || d >= num_nodes then
        invalid_arg "State_space.with_updated_dests: destination out of range")
    dests;
  let hint = algo.Algo.reduced_waits <> None in
  (* a hint cannot be introduced incrementally: the clean destinations'
     reduced tables were never computed *)
  (match t.storage with
  | Dense_tab d ->
    if hint && d.reduced = None then
      invalid_arg
        "State_space.with_updated_dests: cannot introduce a reduced-waits hint"
  | Sparse_tab slices ->
    if hint && Array.exists (fun s -> s.rdc = None) slices then
      invalid_arg
        "State_space.with_updated_dests: cannot introduce a reduced-waits hint");
  let storage =
    match t.storage with
    | Sparse_tab slices ->
      let slices' = Array.copy slices in
      (* a hint the new algorithm no longer carries must not survive in the
         shared slices either, or [reduced_waits] would diverge from a
         cold build of [algo] *)
      if not hint then
        Array.iteri
          (fun i s -> if s.rdc <> None then slices'.(i) <- { s with rdc = None })
          slices';
      let seen = Array.make num_buffers false in
      let out_scratch = Array.make num_buffers [] in
      let wait_scratch = Array.make num_buffers [] in
      let red_scratch =
        Option.map (fun _ -> Array.make num_buffers []) algo.Algo.reduced_waits
      in
      List.iter
        (fun dest ->
          Obs.count "space.dest.rebuilds" 1;
          slices'.(dest) <-
            sparse_slice t.net algo ~num_nodes ~seen ~out_scratch ~wait_scratch
              ~red_scratch dest)
        dests;
      Sparse_tab slices'
    | Dense_tab d ->
      let reachable = Array.copy d.reachable in
      let outputs = Array.copy d.outputs in
      let waits = Array.copy d.waits in
      let reduced = if hint then Option.map Array.copy d.reduced else None in
      List.iter
        (fun dest ->
          Obs.count "space.dest.rebuilds" 1;
          dense_column t.net algo ~num_buffers ~num_nodes ~reachable ~outputs
            ~waits ~reduced dest)
        dests;
      Dense_tab { reachable; outputs; waits; reduced }
  in
  let move_graphs = Array.copy t.move_graphs in
  List.iter (fun dest -> move_graphs.(dest) <- None) dests;
  { t with algo; storage; move_graphs }

(* One destination's reachable buffers, in ascending order — the
   per-destination strand of [iter_reachable] the parallel scans chunk
   over. *)
let iter_reachable_dest t ~dest f =
  match t.storage with
  | Dense_tab d ->
    for buf = 0 to t.num_buffers - 1 do
      if d.reachable.((buf * t.num_nodes) + dest) then f ~buf
    done
  | Sparse_tab slices -> Array.iter (fun buf -> f ~buf) slices.(dest).bufs

(* Filter scan over the reachable states.  Serial it is exactly the
   [iter_reachable] order; parallel it chunks by destination over the
   shared pool (a destination's states never depend on another's) and a
   final sort on the dense key restores the (buf ascending, dest
   ascending) order — the surviving states are few (usually none), so the
   sort costs nothing and the output is layout- and domain-count-
   invariant. *)
let filter_reachable ?(domains = 1) t pred =
  if domains <= 1 then begin
    let acc = ref [] in
    iter_reachable t (fun ~buf ~dest ->
        if pred ~buf ~dest then acc := (buf, dest) :: !acc);
    List.rev !acc
  end
  else begin
    let per = Array.make t.num_nodes [] in
    Dfr_util.Domain_pool.parallel ~domains (fun k ->
        let lo, hi = Dfr_util.Domain_pool.chunk ~n:t.num_nodes ~domains k in
        for dest = lo to hi - 1 do
          let acc = ref [] in
          iter_reachable_dest t ~dest (fun ~buf ->
              if pred ~buf ~dest then acc := (buf, dest) :: !acc);
          per.(dest) <- List.rev !acc
        done);
    List.sort
      (fun (b1, d1) (b2, d2) ->
        compare ((b1 * t.num_nodes) + d1) ((b2 * t.num_nodes) + d2))
      (List.concat (Array.to_list per))
  end

let stuck_states ?domains t =
  filter_reachable ?domains t (fun ~buf ~dest ->
      (not (arrived t ~buf ~dest)) && outputs t ~buf ~dest = [])

let describe_state t (buf, dest) =
  Printf.sprintf "%s->n%d" (Net.describe_buffer t.net buf) dest
