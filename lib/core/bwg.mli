(** The Buffer Waiting Graph (§3-§4 of the paper).

    Vertices are the network's buffers.  There is an edge [(q1, q2)] when a
    packet that occupies [q1] can wait for [q2]:

    - for store-and-forward and virtual cut-through, a blocked packet sits
      in exactly one buffer, so [q2] must be in the waiting set of the
      state [(q1, dest)] itself;
    - for wormhole routing the packet may occupy the whole chain of buffers
      from [q1] to the buffer its header blocks in, so the edge relation is
      closed under permitted route continuations ("the packet length is
      sufficient to fill the buffers from q1 to q2").

    Every edge carries witnesses [(dest, head)] recording which traffic
    creates it; the cycle classifier reconstructs the occupied paths from
    them. *)

type wait_sets = buf:int -> dest:int -> int list
(** The waiting rule the graph is built from — the algorithm's full [waits]
    by default, or a reduced BWG' candidate. *)

type witness = { dest : int; head : int }
(** A packet destined [dest] can sit with [q1] occupied and its header
    blocked in buffer [head], whose waiting set contains the edge target. *)

type t

val build :
  ?wait_sets:wait_sets ->
  ?witness_cap:int ->
  ?indirect:bool ->
  ?domains:int ->
  ?dense_closures:bool ->
  State_space.t ->
  t
(** [witness_cap] bounds the witnesses retained per edge (default 32).
    [domains] (default 1) fans the per-destination continuation closures
    out over OCaml 5 domains; the per-destination work is independent, the
    merge is deterministic, and the result is identical to the serial
    build (tested).
    [indirect] (default [true]) controls the wormhole continuation
    closure; building with [~indirect:false] keeps only the direct "waits
    of the occupied buffer's own state" edges.  That is {e unsound} for
    wormhole networks — a packet spans a chain of buffers — and exists
    purely for the ablation experiment showing the closure is what catches
    Duato's incoherent example.
    [dense_closures] (default [false]) forces every per-destination
    reachability closure row into the dense bitmap representation instead
    of the hybrid sparse/dense one.  The resulting graph is identical
    (tested); the flag exists so the equivalence tests and the memory
    benches can compare the two allocation regimes. *)

val dest_edges :
  ?wait_sets:wait_sets ->
  ?dense_closures:bool ->
  State_space.t ->
  dest:int ->
  emit:(int -> int -> witness -> unit) ->
  unit
(** The waiting edges contributed by one destination's traffic, streamed to
    [emit q1 q2 witness] in exactly the order {!build} records them
    (buffers in [reachable_with] order; per buffer, waiting heads
    ascending; per head, waits in rule order).  The BWG's edge set is the
    union of these per-destination emissions over all destinations — this
    is the decomposition the incremental re-checker caches and diffs, one
    destination at a time.  For wormhole networks the indirect continuation
    closure is always applied (there is no [indirect] ablation knob
    here). *)

val replay :
  ?wait_sets:wait_sets ->
  ?witness_cap:int ->
  State_space.t ->
  ((int -> int -> witness -> unit) -> unit) ->
  t
(** [replay space f] constructs a BWG by handing [f] the same edge recorder
    {!build} uses internally and letting the caller drive every emission.
    If [f] emits, for each destination in ascending order, exactly the
    sequence {!dest_edges} produces for that destination, the result is
    structurally identical to [build space] — same adjacency, same witness
    lists, same caps — by construction, since the emissions pass through
    the same recorder in the same order.  This is the incremental
    re-checker's slow path: it replays its cached per-destination emission
    lists instead of recomputing the continuation closures. *)

val space : t -> State_space.t
val graph : t -> Dfr_graph.Digraph.t

val wait_sets : t -> wait_sets

val witnesses : t -> int -> int -> witness list
(** Witnesses of edge [q1 -> q2] ([[]] if absent). *)

val is_acyclic : t -> bool

val topological_order : t -> int list option
(** A linear buffer ordering proving acyclicity (Theorem 1's certificate),
    if one exists. *)

val cycles : ?limits:Dfr_graph.Cycles.limits -> t -> int list list * bool
(** Elementary cycles and whether enumeration was exhaustive (false = the
    cap was hit and cycles may be missing). *)

val unconnected_states : ?domains:int -> t -> (int * int) list
(** Reachable, unarrived, non-delivery states whose waiting set under
    [wait_sets] is empty.  The algorithm is wait-connected for this graph
    iff the list is empty (§3: every loss-less algorithm must be).
    [domains] parallelizes the scan over the shared pool; the list is
    identical to the serial scan's
    ({!State_space.filter_reachable}). *)

val is_wait_connected : t -> bool

val to_dot : t -> string
(** DOT rendering with paper-style buffer labels (transit buffers only). *)
