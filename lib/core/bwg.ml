open Dfr_network
open Dfr_graph
module Obs = Dfr_obs.Obs

type wait_sets = buf:int -> dest:int -> int list
type witness = { dest : int; head : int }

(* Witness lists are capped; the insertion count rides along so the cap
   check is O(1) instead of an O(cap) List.length per recorded edge. *)
type wcell = { mutable count : int; mutable ws : witness list }

type t = {
  space : State_space.t;
  graph : Digraph.t;
  witnesses : (int * wcell) list array;
      (* per-q1 association rows (q2, cell); BWG out-degrees are small, so
         a pointer walk beats hashing on the build's hot path *)
  wait_sets : wait_sets;
  witness_cap : int;
}

let space t = t.space
let graph t = t.graph
let wait_sets t = t.wait_sets

(* Successors of [q1] as a strictly ascending array, read straight off the
   witness rows.  This is the implicit edge relation the acyclicity and
   cycle queries run on — the BWG is never frozen into a second full CSR
   copy of its adjacency, which matters once the graph has 10^5 vertices. *)
let succ_row t q1 =
  let r = Array.of_list (List.map fst t.witnesses.(q1)) in
  Array.sort (fun (a : int) b -> compare a b) r;
  r

let rec find_cell q2 = function
  | [] -> None
  | (k, cell) :: tl -> if k = q2 then Some cell else find_cell q2 tl

let witnesses t q1 q2 =
  if q1 < 0 || q1 >= Array.length t.witnesses then []
  else
    match find_cell q2 t.witnesses.(q1) with
    | Some cell -> List.rev cell.ws
    | None -> []

(* Waiting edges contributed by one destination's traffic: pure with
   respect to everything except the pre-built move graph, so destinations
   can be processed by separate domains.

   For wormhole switching the blocked header of a packet occupying [q1]
   can sit in any buffer reachable from [q1] in the per-destination move
   graph.  Buffers in the same SCC share that reachability closure, and
   the SCC indices are a reverse topological numbering of the condensation
   (every cross edge points to a lower index), so one pass over components
   in ascending index order computes every closure: seed the component's
   own members, then union in the already-complete closures of its
   successor components — a word-parallel bitset [lor] each.  This
   replaces the previous per-(buffer, dest) DFS, which cost
   O(B · (V + E)) per destination.

   [emit q1 w wit] receives each waiting edge in a deterministic order
   (buffers in [reachable_with] order, heads ascending, waits in rule
   order); the serial build passes its edge recorder directly, the domain
   fan-out accumulates per-destination lists and replays them in
   destination order so both paths see the same sequence. *)
let edges_for_dest space ~wait_sets ~wormhole ~dense_closures dest ~emit =
  if not wormhole then
    List.iter
      (fun q1 ->
        let wit = { dest; head = q1 } in
        List.iter (fun w -> emit q1 w wit) (wait_sets ~buf:q1 ~dest))
      (State_space.reachable_with space ~dest)
  else begin
    let g = State_space.move_graph_view space ~dest in
    let n = Csr.num_vertices g in
    let reach = State_space.reachable_with space ~dest in
    (* The closure pass needs components numbered in reverse topological
       order, with member lists: verts.(start.(c) .. start.(c + 1) - 1).
       Move graphs of deadlock-free algorithms are acyclic, so try a Kahn
       pass first — every vertex its own component, numbered n-1-(topo
       position) — and fall back to Tarjan only when a cycle remains. *)
    let count, comp, start, verts =
      let indeg = Array.make n 0 in
      Csr.iter_edges (fun _ w -> indeg.(w) <- indeg.(w) + 1) g;
      let order = Array.make n 0 in
      let filled = ref 0 in
      for v = 0 to n - 1 do
        if indeg.(v) = 0 then begin
          order.(!filled) <- v;
          incr filled
        end
      done;
      let head = ref 0 in
      while !head < !filled do
        let v = order.(!head) in
        incr head;
        Csr.iter_succ
          (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then begin
              order.(!filled) <- w;
              incr filled
            end)
          g v
      done;
      if !filled = n then begin
        let comp = Array.make n 0 in
        let verts = Array.make n 0 in
        for i = 0 to n - 1 do
          let c = n - 1 - i in
          comp.(order.(i)) <- c;
          verts.(c) <- order.(i)
        done;
        (n, comp, Array.init (n + 1) Fun.id, verts)
      end
      else begin
        let scc = Scc.compute_csr g in
        let count = scc.Scc.count in
        let comp = scc.Scc.component in
        (* group vertices by component (counting sort) *)
        let start = Array.make (count + 1) 0 in
        for v = 0 to n - 1 do
          start.(comp.(v) + 1) <- start.(comp.(v) + 1) + 1
        done;
        for c = 0 to count - 1 do
          start.(c + 1) <- start.(c + 1) + start.(c)
        done;
        let verts = Array.make n 0 in
        let next = Array.copy start in
        for v = 0 to n - 1 do
          verts.(next.(comp.(v))) <- v;
          next.(comp.(v)) <- next.(comp.(v)) + 1
        done;
        (count, comp, start, verts)
      end
    in
    let closures =
      Dfr_util.Bitset.Hybrid.Rows.create ~force_dense:dense_closures
        ~rows:count ~len:n ()
    in
    (* merged.(c') = c marks that c' is already unioned into c's row, so a
       component with many edges into the same successor pays one sweep *)
    let merged = Array.make count (-1) in
    for c = 0 to count - 1 do
      for i = start.(c) to start.(c + 1) - 1 do
        let v = verts.(i) in
        Dfr_util.Bitset.Hybrid.Rows.add closures c v;
        Csr.iter_succ
          (fun w ->
            let cw = comp.(w) in
            if cw <> c && merged.(cw) <> c then begin
              merged.(cw) <- c;
              Dfr_util.Bitset.Hybrid.Rows.union_rows closures ~into:c ~src:cw
            end)
          g v
      done
    done;
    Obs.count "bwg.closure.words"
      (Dfr_util.Bitset.Hybrid.Rows.storage_words closures);
    Obs.count "bwg.closure.dense-rows"
      (Dfr_util.Bitset.Hybrid.Rows.dense_rows closures);
    (* Only heads with a non-empty waiting set generate edges: resolve each
       head's waiting set and (shared) witness record once per destination
       into an array, so collecting a component's heads is one pass over
       its closure bits with an O(1) lookup per element — no per-component
       list filtering. *)
    let head_info = Array.make n None in
    List.iter
      (fun head ->
        match wait_sets ~buf:head ~dest with
        | [] -> ()
        | ws -> head_info.(head) <- Some ({ dest; head }, ws))
      reach;
    (* waiting heads in a component's closure (ascending), memoized *)
    let heads_of = Array.make count None in
    let heads c =
      match heads_of.(c) with
      | Some hs -> hs
      | None ->
        let acc = ref [] in
        Dfr_util.Bitset.Hybrid.Rows.iter_row
          (fun v ->
            match head_info.(v) with
            | Some info -> acc := info :: !acc
            | None -> ())
          closures c;
        let hs = List.rev !acc in
        heads_of.(c) <- Some hs;
        hs
    in
    List.iter
      (fun q1 ->
        List.iter
          (fun (wit, ws) -> List.iter (fun w -> emit q1 w wit) ws)
          (heads comp.(q1)))
      reach
  end

let default_wait_sets space =
 fun ~buf ~dest -> State_space.waits space ~buf ~dest

(* Shared edge recorder: the witness cell doubles as the duplicate-edge
   check, so only the first witness of an edge touches the adjacency
   structure.  Both the cold build and [replay] feed emissions through
   this same code, which is what makes a replayed BWG structurally
   identical to a built one. *)
let make_recorder ~witness_cap ~graph ~witnesses ~num_edges =
  let add_edge q1 q2 w =
    match find_cell q2 witnesses.(q1) with
    | Some cell ->
      if cell.count < witness_cap then begin
        cell.ws <- w :: cell.ws;
        cell.count <- cell.count + 1
      end
      else Obs.count "bwg.witnesses.capped" 1
    | None ->
      witnesses.(q1) <- (q2, { count = 1; ws = [ w ] }) :: witnesses.(q1);
      incr num_edges;
      Digraph.unsafe_add_edge graph q1 q2
  in
  add_edge

let dest_edges ?wait_sets ?(dense_closures = false) space ~dest ~emit =
  let wait_sets =
    match wait_sets with Some w -> w | None -> default_wait_sets space
  in
  let wormhole = Net.switching (State_space.net space) = Net.Wormhole in
  edges_for_dest space ~wait_sets ~wormhole ~dense_closures dest ~emit

let replay ?wait_sets ?(witness_cap = 32) space f =
  let wait_sets =
    match wait_sets with Some w -> w | None -> default_wait_sets space
  in
  let num_bufs = State_space.num_buffers space in
  let graph = Digraph.create num_bufs in
  let witnesses = Array.make num_bufs [] in
  let num_edges = ref 0 in
  f (make_recorder ~witness_cap ~graph ~witnesses ~num_edges);
  { space; graph; witnesses; wait_sets; witness_cap }

let build ?wait_sets ?(witness_cap = 32) ?(indirect = true) ?(domains = 1)
    ?(dense_closures = false) space =
  Obs.span "bwg.build" @@ fun () ->
  let wait_sets =
    match wait_sets with
    | Some w -> w
    | None -> default_wait_sets space
  in
  let net = State_space.net space in
  let num_nodes = State_space.num_nodes space in
  let num_bufs = State_space.num_buffers space in
  let graph = Digraph.create num_bufs in
  let witnesses = Array.make num_bufs [] in
  let num_edges = ref 0 in
  let add_edge = make_recorder ~witness_cap ~graph ~witnesses ~num_edges in
  let wormhole = indirect && Net.switching net = Net.Wormhole in
  (* the closure pass reads each destination's move graph exactly once,
     through [move_graph_view]: a transient build per destination instead
     of pinning the whole N-entry cache for the rest of the run.  Workers
     only ever *read* the cache (entries are written by serial phases), so
     the fan-out stays safe without materializing first. *)
  if domains <= 1 || num_nodes <= 1 then
    (* serial: stream edges straight into the recorder, no staging lists *)
    for d = 0 to num_nodes - 1 do
      Obs.span "bwg.closure" (fun () ->
          edges_for_dest space ~wait_sets ~wormhole ~dense_closures d
            ~emit:add_edge)
    done
  else begin
    (* Work items are single destinations claimed off an atomic ticket,
       not static chunks: a destination's move-graph materialization
       ([move_graph_view] inside [edges_for_dest]) is the producer half
       and its SCC/closure/emission pass the consumer half, so with
       dynamic claiming one domain is materializing destination d+1's
       move graph while another is still folding destination d's
       closures — the two halves overlap instead of serializing, and an
       expensive destination never leaves a whole chunk idle behind it.
       Determinism is unaffected: emissions are staged per destination
       and merged in ascending order below, and every Obs counter on
       this path is a per-destination sum. *)
    let n_dom = min domains num_nodes in
    let results = Array.make num_nodes [] in
    let next = Atomic.make 0 in
    Dfr_util.Domain_pool.parallel ~domains:n_dom (fun _ ->
        Obs.span "bwg.build.worker" @@ fun () ->
        let continue = ref true in
        while !continue do
          let d = Atomic.fetch_and_add next 1 in
          if d >= num_nodes then continue := false
          else
            Obs.span "bwg.closure" (fun () ->
                let acc = ref [] in
                edges_for_dest space ~wait_sets ~wormhole ~dense_closures d
                  ~emit:(fun q w wit -> acc := (q, w, wit) :: !acc);
                results.(d) <- !acc)
        done);
    (* merge sequentially: destinations ascending, witnesses in emit order,
       so the result is identical to the serial construction *)
    Array.iter
      (fun es -> List.iter (fun (q, w, wit) -> add_edge q w wit) (List.rev es))
      results
  end;
  Obs.gauge "bwg.vertices" (float_of_int num_bufs);
  Obs.gauge "bwg.edges" (float_of_int !num_edges);
  { space; graph; witnesses; wait_sets; witness_cap }

(* Kahn's pass over the witness rows directly: no frozen CSR, no sorting —
   acyclicity does not depend on visit order. *)
let is_acyclic t =
  let n = Array.length t.witnesses in
  let indeg = Array.make n 0 in
  Array.iter
    (fun row -> List.iter (fun (q2, _) -> indeg.(q2) <- indeg.(q2) + 1) row)
    t.witnesses;
  let stack = ref [] in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then stack := v :: !stack
  done;
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | v :: tl ->
      stack := tl;
      incr seen;
      List.iter
        (fun (w, _) ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then stack := w :: !stack)
        t.witnesses.(v)
  done;
  !seen = n

(* Only the Theorem-1 certificate needs a materialized order; freeze a
   transient CSR so the output is byte-identical to the historical frozen
   path, and let it be collected immediately after. *)
let topological_order t = Traversal.topological_sort_csr (Digraph.freeze t.graph)

let cycles ?limits t =
  Cycles.enumerate_checked_rows ?limits ~n:(Array.length t.witnesses)
    ~row:(succ_row t) ()

let unconnected_states ?domains t =
  State_space.filter_reachable ?domains t.space (fun ~buf ~dest ->
      (not (State_space.arrived t.space ~buf ~dest))
      && t.wait_sets ~buf ~dest = [])

let is_wait_connected t = unconnected_states t = []

let to_dot t =
  let net = State_space.net t.space in
  Dot.to_string ~name:"bwg"
    ~vertex_label:(fun v -> Net.describe_buffer net v)
    t.graph
