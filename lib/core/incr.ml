open Dfr_network
open Dfr_routing
open Dfr_graph
module Obs = Dfr_obs.Obs

(* Incremental re-checking session.

   The BWG's edge multiset is the union of independent per-destination
   emissions (Bwg.dest_edges), and a destination's emissions are a pure
   function of (net, algo restricted to that destination).  A session
   caches, per destination: the emission sequence (compressed into
   (q1, head) groups), the destination's stuck / wait-unconnected state
   lists, and its contribution to a maintained merged graph.  An edit
   whose dirty frontier is known (Diff.diff for spec edits, the caller's
   warrant for programmatic ones) re-derives only the dirty destinations
   and patches the merged structures.

   Verdict rendering then splits:

   - {b fast path} — no stuck states, wait-connected, and the maintained
     graph is certified acyclic by a topological rank.  The cold verdict
     would be Theorem 1's [Acyclic_bwg], whose rendered report reads only
     the BWG's vertex/edge counts (witnesses and cycle lists are never
     consulted), so [Report_json.of_counts] reproduces the cold bytes
     without materializing a [Bwg.t] at all.  This is O(edit), tens of
     microseconds on 10^4-buffer instances.

   - {b slow path} — anything else.  The cached emissions are replayed,
     in destination order, through the recorder of [Bwg.replay] (giving a
     BWG structurally identical to a cold build, witness caps included)
     and handed to [Checker.decide], the very pipeline a cold check runs.
     Bit-for-bit identity is by construction, not by re-implementation:
     witness order under the cap and the shortest-first classification
     scan are order-sensitive, so no incremental shortcut is taken past
     this point.

   The acyclicity certificate is a rank array (any topological order of
   the merged graph).  Edge removals keep a valid rank valid; an added
   edge keeps it valid iff it is rank-forward; only a violating addition
   forces a Kahn recomputation — so the steady state of edit traffic on a
   deadlock-free instance never re-runs a full graph pass. *)

type group = { g_q1 : int; g_head : int; g_targets : int list }

type dest_state = {
  mutable groups : group list; (* emission order *)
  mutable d_stuck : int list; (* buffers, ascending *)
  mutable d_unconn : int list; (* buffers, ascending *)
}

type path = Fast | Replay

type result = {
  report : Dfr_util.Json.t;
  exit_code : int;
  path : path;
  dirty_dests : int;
  reused_dests : int;
}

type counters = {
  updates : int;
  fast_verdicts : int;
  replays : int;
  patched_dests : int;
  reemitted_dests : int;
}

type t = {
  net : Net.t;
  mutable algo : Algo.t;
  mutable space : State_space.t;
  dests : dest_state array;
  contrib : (int, int) Hashtbl.t; (* packed edge q1 * B + q2 -> #dests *)
  graph : Digraph.t; (* merged distinct edges, degree-counted *)
  mutable rank : int array option; (* valid topological order, if known *)
  witness_cap : int;
  domains : int;
  cycle_limits : Cycles.limits option;
  class_limits : Cycle_class.limits option;
  reduction_budget : int option;
  mutable n_updates : int;
  mutable n_fast : int;
  mutable n_replay : int;
  mutable n_patched : int;
  mutable n_reemitted : int;
}

let net t = t.net
let algo t = t.algo
let space t = t.space

let counters t =
  {
    updates = t.n_updates;
    fast_verdicts = t.n_fast;
    replays = t.n_replay;
    patched_dests = t.n_patched;
    reemitted_dests = t.n_reemitted;
  }

(* Compress one destination's emission stream into (q1, head) groups.
   [Bwg.dest_edges] emits, for each q1 and each waiting head in q1's
   closure, that head's waits in rule order — so grouping on change of
   (q1, head) is lossless: concatenating the groups' targets in order
   reproduces the exact emission sequence. *)
let capture_groups space dest =
  let cur_q1 = ref (-1) and cur_head = ref (-1) in
  let cur_targets = ref [] and groups = ref [] in
  let flush () =
    if !cur_q1 >= 0 then
      groups :=
        { g_q1 = !cur_q1; g_head = !cur_head; g_targets = List.rev !cur_targets }
        :: !groups
  in
  Bwg.dest_edges space ~dest ~emit:(fun q1 q2 (wit : Bwg.witness) ->
      if q1 <> !cur_q1 || wit.Bwg.head <> !cur_head then begin
        flush ();
        cur_q1 := q1;
        cur_head := wit.Bwg.head;
        cur_targets := []
      end;
      cur_targets := q2 :: !cur_targets);
  flush ();
  List.rev !groups

(* The destination's rows of [State_space.stuck_states] and
   [Bwg.unconnected_states]: reachable, not arrived, empty outputs
   (resp. waits); ascending by buffer like the views themselves. *)
let scan_dest space dest =
  let v = State_space.dest_view space ~dest in
  let stuck = ref [] and unconn = ref [] in
  for i = Array.length v.State_space.view_bufs - 1 downto 0 do
    let buf = v.State_space.view_bufs.(i) in
    if not (State_space.arrived space ~buf ~dest) then begin
      if v.State_space.view_outs.(i) = [] then stuck := buf :: !stuck;
      if v.State_space.view_wts.(i) = [] then unconn := buf :: !unconn
    end
  done;
  (!stuck, !unconn)

(* Distinct edges of one destination, packed, in first-emission order. *)
let dest_edge_list num_bufs groups =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun g ->
      List.iter
        (fun q2 ->
          let key = (g.g_q1 * num_bufs) + q2 in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := key :: !acc
          end)
        g.g_targets)
    groups;
  !acc

(* Kahn over the merged graph; [Some rank] certifies acyclicity. *)
let compute_rank t =
  let n = Digraph.num_vertices t.graph in
  let indeg = Array.make n 0 in
  Digraph.iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) t.graph;
  let order = Array.make n 0 in
  let filled = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      order.(!filled) <- v;
      incr filled
    end
  done;
  let head = ref 0 in
  while !head < !filled do
    let v = order.(!head) in
    incr head;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then begin
          order.(!filled) <- w;
          incr filled
        end)
      (Digraph.succ t.graph v)
  done;
  if !filled = n then begin
    let rank = Array.make n 0 in
    for i = 0 to n - 1 do
      rank.(order.(i)) <- i
    done;
    Some rank
  end
  else None

(* Fold one destination's edge turnover into the merged structures.  The
   contribution counter makes the graph see exactly the distinct-edge
   union; the rank certificate survives removals and rank-forward
   additions, and is dropped (to be recomputed lazily) otherwise. *)
let apply_edge_delta t ~num_bufs ~old_edges ~new_edges =
  let old_set = Hashtbl.create (List.length old_edges) in
  List.iter (fun k -> Hashtbl.replace old_set k ()) old_edges;
  let new_set = Hashtbl.create (List.length new_edges) in
  List.iter (fun k -> Hashtbl.replace new_set k ()) new_edges;
  List.iter
    (fun key ->
      if not (Hashtbl.mem new_set key) then
        match Hashtbl.find_opt t.contrib key with
        | Some 1 ->
          Hashtbl.remove t.contrib key;
          Digraph.remove_edge t.graph (key / num_bufs) (key mod num_bufs)
        | Some c -> Hashtbl.replace t.contrib key (c - 1)
        | None -> assert false)
    old_edges;
  List.iter
    (fun key ->
      if not (Hashtbl.mem old_set key) then
        match Hashtbl.find_opt t.contrib key with
        | Some c -> Hashtbl.replace t.contrib key (c + 1)
        | None ->
          Hashtbl.replace t.contrib key 1;
          let q1 = key / num_bufs and q2 = key mod num_bufs in
          Digraph.unsafe_add_edge t.graph q1 q2;
          (match t.rank with
          | Some r when r.(q1) < r.(q2) -> ()
          | Some _ -> t.rank <- None
          | None -> ()))
    new_edges

(* Merge the per-destination state lists back into the global
   reachable-iteration order: ascending (buf * num_nodes) + dest, exactly
   [State_space.iter_reachable]'s key. *)
let merge_states t proj =
  let num_nodes = State_space.num_nodes t.space in
  let acc = ref [] in
  Array.iteri
    (fun dest ds ->
      List.iter (fun buf -> acc := ((buf * num_nodes) + dest) :: !acc) (proj ds))
    t.dests;
  let arr = Array.of_list !acc in
  Array.sort (fun (a : int) b -> compare a b) arr;
  Array.fold_right
    (fun k acc -> (k / num_nodes, k mod num_nodes) :: acc)
    arr []

let conclude t ~dirty_dests =
  let stuck = merge_states t (fun ds -> ds.d_stuck) in
  let unconnected =
    if stuck = [] then merge_states t (fun ds -> ds.d_unconn) else []
  in
  if t.rank = None then t.rank <- compute_rank t;
  let reused_dests = State_space.num_nodes t.space - dirty_dests in
  (* a verdict renderable from the maintained counts alone: the BWG
     contributes only its vertex/edge numbers to these reports, so
     replaying its emissions would recompute a graph whose only use is
     [Digraph.num_edges] — which the session already has *)
  let from_counts verdict =
    t.n_fast <- t.n_fast + 1;
    Obs.count "incr.fast" 1;
    let report =
      Report_json.of_counts t.net t.algo
        ~bwg_vertices:(Digraph.num_vertices t.graph)
        ~bwg_edges:(Digraph.num_edges t.graph)
        ~bwg_cycles:None ~verdict
    in
    {
      report;
      exit_code = Report_json.exit_code verdict;
      path = Fast;
      dirty_dests;
      reused_dests;
    }
  in
  if stuck = [] && unconnected = [] && t.rank <> None then
    from_counts (Checker.Deadlock_free Checker.Acyclic_bwg)
  else if stuck <> [] then
    (* Checker.decide returns before touching the BWG on stuck states
       (and the maintained list is exactly the ~stuck it would get), so
       a fault that strands packets re-verdicts at fast-path cost — the
       common case of a fault sweep *)
    from_counts (Checker.Deadlock_possible (Checker.Stuck_states stuck))
  else if unconnected <> [] then
    from_counts (Checker.Deadlock_possible (Checker.Not_wait_connected unconnected))
  else begin
    t.n_replay <- t.n_replay + 1;
    Obs.count "incr.replay" 1;
    let bwg =
      Bwg.replay ~witness_cap:t.witness_cap t.space (fun emit ->
          Array.iteri
            (fun dest ds ->
              List.iter
                (fun g ->
                  let wit = { Bwg.dest; head = g.g_head } in
                  List.iter (fun q2 -> emit g.g_q1 q2 wit) g.g_targets)
                ds.groups)
            t.dests)
    in
    let report =
      Checker.decide ?cycle_limits:t.cycle_limits ?class_limits:t.class_limits
        ?reduction_budget:t.reduction_budget ~domains:t.domains ~stuck
        ~unconnected t.space bwg
    in
    {
      report = Report_json.of_outcome t.net t.algo report;
      exit_code = Report_json.exit_code report.Checker.verdict;
      path = Replay;
      dirty_dests;
      reused_dests;
    }
  end

let create ?(witness_cap = 32) ?cycle_limits ?class_limits ?reduction_budget
    ?(domains = 1) net algo =
  Obs.span "incr.create" @@ fun () ->
  let space = State_space.build ~domains net algo in
  let num_nodes = State_space.num_nodes space in
  let num_bufs = State_space.num_buffers space in
  let t =
    {
      net;
      algo;
      space;
      dests =
        Array.init num_nodes (fun _ ->
            { groups = []; d_stuck = []; d_unconn = [] });
      contrib = Hashtbl.create 4096;
      graph = Digraph.create num_bufs;
      rank = None;
      witness_cap;
      domains;
      cycle_limits;
      class_limits;
      reduction_budget;
      n_updates = 0;
      n_fast = 0;
      n_replay = 0;
      n_patched = 0;
      n_reemitted = 0;
    }
  in
  for dest = 0 to num_nodes - 1 do
    let ds = t.dests.(dest) in
    ds.groups <- capture_groups space dest;
    let stuck, unconn = scan_dest space dest in
    ds.d_stuck <- stuck;
    ds.d_unconn <- unconn;
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.contrib key with
        | Some c -> Hashtbl.replace t.contrib key (c + 1)
        | None ->
          Hashtbl.replace t.contrib key 1;
          Digraph.unsafe_add_edge t.graph (key / num_bufs) (key mod num_bufs))
      (dest_edge_list num_bufs ds.groups)
  done;
  let result = conclude t ~dirty_dests:num_nodes in
  (t, { result with reused_dests = 0 })

(* The wait-only quick path applies when the dirty destination's routes —
   and with them its reachable set, move graph, closures and q1 iteration
   order — are untouched, and no formerly-empty waiting set became
   non-empty (a new waiting head would have to be *inserted* into the
   group sequence).  Then the cold emission sequence differs from the
   cached one only in each group's target list (possibly emptied, which
   drops the group), so it can be patched in O(cached emissions) without
   re-running the closure. *)
let patchable (oldv : State_space.dest_view) (newv : State_space.dest_view) =
  oldv.State_space.view_bufs = newv.State_space.view_bufs
  && oldv.State_space.view_outs = newv.State_space.view_outs
  &&
  let ok = ref true in
  Array.iteri
    (fun i w_old ->
      if w_old = [] && newv.State_space.view_wts.(i) <> [] then ok := false)
    oldv.State_space.view_wts;
  !ok

let patch_groups (v : State_space.dest_view) groups =
  let bufs = v.State_space.view_bufs in
  let find buf =
    let lo = ref 0 and hi = ref (Array.length bufs) and res = ref (-1) in
    while !res < 0 && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let b = bufs.(mid) in
      if b = buf then res := mid else if b < buf then lo := mid + 1 else hi := mid
    done;
    !res
  in
  List.filter_map
    (fun g ->
      let i = find g.g_head in
      match if i >= 0 then v.State_space.view_wts.(i) else [] with
      | [] -> None
      | ws -> Some { g with g_targets = ws })
    groups

let update t algo ~dirty =
  Obs.span "incr.update" @@ fun () ->
  let num_nodes = State_space.num_nodes t.space in
  let num_bufs = State_space.num_buffers t.space in
  let dirty = List.sort_uniq compare dirty in
  List.iter
    (fun d ->
      if d < 0 || d >= num_nodes then
        invalid_arg "Incr.update: destination out of range")
    dirty;
  t.n_updates <- t.n_updates + 1;
  (* old views must be taken before the slices are replaced *)
  let old_views =
    List.map (fun d -> (d, State_space.dest_view t.space ~dest:d)) dirty
  in
  let space' = State_space.with_updated_dests t.space algo ~dests:dirty in
  t.space <- space';
  t.algo <- algo;
  List.iter
    (fun (d, oldv) ->
      let ds = t.dests.(d) in
      let old_edges = dest_edge_list num_bufs ds.groups in
      let newv = State_space.dest_view space' ~dest:d in
      ds.groups <-
        (if patchable oldv newv then begin
           t.n_patched <- t.n_patched + 1;
           patch_groups newv ds.groups
         end
         else begin
           t.n_reemitted <- t.n_reemitted + 1;
           capture_groups space' d
         end);
      let stuck, unconn = scan_dest space' d in
      ds.d_stuck <- stuck;
      ds.d_unconn <- unconn;
      let new_edges = dest_edge_list num_bufs ds.groups in
      apply_edge_delta t ~num_bufs ~old_edges ~new_edges)
    old_views;
  conclude t ~dirty_dests:(List.length dirty)
