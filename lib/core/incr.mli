(** Incremental re-checking sessions for edit-heavy traffic.

    A session holds the per-destination decomposition of a checked
    instance — each destination's BWG emission sequence, its stuck /
    wait-unconnected states, and its contribution to a maintained merged
    waiting graph with a topological-rank acyclicity certificate.  An
    edit with a known dirty destination frontier ({!Dfr_spec.Diff} for
    spec edits) re-derives only those destinations and re-renders the
    verdict:

    - when the instance stays wait-connected with an acyclic graph, the
      Theorem-1 report is rendered directly from the maintained counts
      ({!Report_json.of_counts}) in O(edit) — no BWG is materialized;
    - otherwise the cached emissions are replayed through {!Bwg.replay}
      and decided by {!Checker.decide}, the cold pipeline itself.

    Either way the rendered report is bit-for-bit identical to what a
    cold [Checker.check] + [Report_json.of_outcome] of the edited
    algorithm produces (tested by randomized edit replay).  Soundness of
    the reuse requires the caller's [dirty] set to cover every
    destination whose routing relation changed; destinations outside it
    are assumed — not re-checked — to be untouched. *)

open Dfr_network
open Dfr_routing

type t

type path =
  | Fast  (** verdict rendered from maintained counts (Theorem 1) *)
  | Replay  (** cached emissions replayed through the cold pipeline *)

type result = {
  report : Dfr_util.Json.t;  (** byte-identical to the cold report *)
  exit_code : int;  (** {!Report_json.exit_code} of the verdict *)
  path : path;
  dirty_dests : int;
  reused_dests : int;
}

type counters = {
  updates : int;
  fast_verdicts : int;
  replays : int;
  patched_dests : int;
      (** dirty destinations patched by the wait-only quick path *)
  reemitted_dests : int;
      (** dirty destinations that re-ran the full emission closure *)
}

val create :
  ?witness_cap:int ->
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?reduction_budget:int ->
  ?domains:int ->
  Net.t ->
  Algo.t ->
  t * result
(** Cold-build a session: state space, one emission capture per
    destination, merged graph, and the initial verdict.  The limits are
    pinned for the session's lifetime so every replayed verdict runs the
    pipeline under the same caps as the session's own cold baseline.
    Raises [Invalid_argument] when [Algo.validate] rejects the pair
    (as {!State_space.build} does). *)

val update : t -> Algo.t -> dirty:int list -> result
(** Re-check after an edit touching only the listed destinations.
    Within each dirty destination, an edit that leaves the routes
    untouched and empties no→yes no waiting set is patched in O(cached
    emissions); anything else re-runs that destination's emission
    closure.  The caller warrants the frontier (see module doc); spec
    edits get it from {!Dfr_spec.Diff.diff}.  The new algorithm is not
    re-validated — compiled specs are validated by elaboration, and
    programmatic callers must pass algorithms [Algo.validate] accepts.
    Raises [Invalid_argument] on an out-of-range destination or when the
    edit introduces a [reduced_waits] hint the session was built
    without. *)

val net : t -> Net.t
val algo : t -> Algo.t

val space : t -> State_space.t
(** The session's current state space (updated in place by {!update}). *)

val counters : t -> counters
