let escape_channels space =
  let escape = Array.make (State_space.num_buffers space) false in
  State_space.iter_reachable space (fun ~buf ~dest ->
      List.iter (fun w -> escape.(w) <- true) (State_space.waits space ~buf ~dest));
  escape

let extended_dependency_graph space =
  let escape = escape_channels space in
  let n = State_space.num_buffers space in
  let g = Dfr_graph.Digraph.create n in
  for dest = 0 to State_space.num_nodes space - 1 do
    let moves = State_space.move_graph space ~dest in
    (* From escape channel c1, walk through adaptive buffers only and record
       every escape channel usable along the way. *)
    let from_escape c1 =
      let seen = Hashtbl.create 16 in
      let rec walk v =
        Dfr_graph.Csr.iter_succ
          (fun w ->
            if escape.(w) then Dfr_graph.Digraph.add_edge g c1 w
            else if not (Hashtbl.mem seen w) then begin
              Hashtbl.replace seen w ();
              walk w
            end)
          moves v
      in
      walk c1
    in
    List.iter
      (fun b -> if escape.(b) then from_escape b)
      (State_space.reachable_with space ~dest)
  done;
  g

type result = { certified : bool; connected : bool; acyclic : bool }

let analyze space =
  let connected =
    let ok = ref true in
    State_space.iter_reachable space (fun ~buf ~dest ->
        if
          (not (State_space.arrived space ~buf ~dest))
          && State_space.waits space ~buf ~dest = []
        then ok := false);
    !ok
  in
  let acyclic = Dfr_graph.Traversal.is_acyclic (extended_dependency_graph space) in
  { certified = connected && acyclic; connected; acyclic }

let deadlock_free space = (analyze space).certified
