open Dfr_network
open Dfr_routing
module Obs = Dfr_obs.Obs

type proof =
  | Acyclic_bwg
  | No_true_cycles of { cycles_examined : int }
  | Reduced_bwg of {
      via_hint : bool;
      removed : Reduction.removed list;
      full_bwg_cycles : int;
    }

type failure =
  | Stuck_states of (int * int) list
  | Not_wait_connected of (int * int) list
  | Knot of Deadlock_config.t
  | True_cycle of { cycle : int list; packets : Cycle_class.packet list }
  | No_reduction of { cycle : int list; packets : Cycle_class.packet list }

type verdict =
  | Deadlock_free of proof
  | Deadlock_possible of failure
  | Unknown of string

type report = {
  verdict : verdict;
  space : State_space.t;
  bwg : Bwg.t;
  bwg_cycles : int option;
}

(* Classify every cycle, shortest first (stable sort, so equal lengths
   keep enumeration order); short-circuit on the first True one (short
   cycles are both the likeliest witnesses and the cheapest to classify).

   With [domains > 1] the classifications fan out over OCaml 5 domains.
   The verdict is kept bit-for-bit deterministic: the reported True Cycle
   is the one of minimal index in the sorted order, exactly what the
   serial scan short-circuits on.  Workers may skip an index [i] only
   once a True Cycle is already recorded at some index < i — such an [i]
   can never be the minimum, so skipping preserves the result while still
   giving an early exit. *)
let scan_cycles ?class_limits ?(domains = 1) bwg cycles =
  Obs.span "checker.classify" @@ fun () ->
  let cycles =
    List.sort (fun a b -> compare (List.length a) (List.length b)) cycles
  in
  let classify c = Cycle_class.classify ?limits:class_limits bwg c in
  let n = List.length cycles in
  (* [checker.cycles.classified] counts classifications that contribute to
     the verdict: with a True Cycle at sorted index i that is i + 1 (every
     cycle below it plus the witness), otherwise all n — identical between
     the serial and parallel scans even though parallel workers may
     opportunistically classify further cycles before the short-circuit
     propagates. *)
  let classified k = Obs.count "checker.cycles.classified" k in
  (* wormhole classification walks lazily cached per-destination move
     graphs; the structural BWG build no longer populates that cache, so
     materialize here — identically on the serial and the parallel scans —
     keeping the cache counters independent of [--domains] (and making the
     fan-out safe, since the lazy cache must not be populated
     concurrently) *)
  (if n > 1 then
     let space = Bwg.space bwg in
     if Net.switching (State_space.net space) = Net.Wormhole then
       State_space.materialize_move_graphs ~domains space);
  if domains <= 1 || n <= 1 then
    let rec go uncertain examined = function
      | [] ->
        classified examined;
        `All_false (examined, uncertain)
      | c :: rest -> (
        match classify c with
        | Cycle_class.True_cycle packets ->
          classified (examined + 1);
          `True (c, packets)
        | Cycle_class.False_resource_cycle { exhaustive } ->
          go (uncertain || not exhaustive) (examined + 1) rest)
    in
    go false 0 cycles
  else begin
    let arr = Array.of_list cycles in
    let verdicts = Array.make n None in
    let best = Atomic.make max_int in
    let n_dom = min domains n in
    let worker k () =
      Obs.span "checker.classify.worker" @@ fun () ->
      let i = ref k in
      while !i < n do
        if Atomic.get best > !i then
          verdicts.(!i) <- Some (classify arr.(!i));
        (match verdicts.(!i) with
        | Some (Cycle_class.True_cycle _) ->
          (* lower [best] to !i unless it is already smaller *)
          let rec lower () =
            let b = Atomic.get best in
            if !i < b && not (Atomic.compare_and_set best b !i) then lower ()
          in
          lower ()
        | _ -> ());
        i := !i + n_dom
      done
    in
    Dfr_util.Domain_pool.parallel ~domains:n_dom (fun k -> worker k ());
    let rec collect uncertain examined i =
      if i >= n then begin
        classified examined;
        `All_false (examined, uncertain)
      end
      else
        match verdicts.(i) with
        | Some (Cycle_class.True_cycle packets) ->
          classified (examined + 1);
          `True (arr.(i), packets)
        | Some (Cycle_class.False_resource_cycle { exhaustive }) ->
          collect (uncertain || not exhaustive) (examined + 1) (i + 1)
        | None ->
          (* skipped: only possible when a True Cycle exists below [i] *)
          collect uncertain examined (i + 1)
    in
    collect false 0 0
  end

(* The verdict pipeline downstream of the BWG build, factored out so the
   incremental re-checker (Incr) can run it against a replayed BWG: the
   stuck / wait-connectivity prefixes are passed in because Incr maintains
   them per destination, and everything after — acyclicity, knot, cycle
   enumeration, classification, reduction — is exactly [check]'s code, which
   is what makes incremental slow-path verdicts bit-for-bit identical to
   cold ones.  [unconnected] is only consulted when [stuck] is empty, so
   callers that already have stuck states may pass [[]] for it. *)
let decide ?cycle_limits ?class_limits ?reduction_budget ?(domains = 1) ~stuck
    ~unconnected space bwg =
  let algo = State_space.algo space in
  let n_cycles = ref None in
  let ran_knot = ref false and ran_scan = ref false and ran_classify = ref false in
  let stage ran name f =
    ran := true;
    Obs.span name f
  in
  let finish verdict =
    (* every trace carries the full pipeline: stages an early verdict made
       unnecessary appear as zero-duration spans *)
    if not !ran_knot then Obs.span "checker.knot" (fun () -> ());
    if not !ran_scan then Obs.span "checker.cycle-scan" (fun () -> ());
    if not !ran_classify then Obs.span "checker.classify" (fun () -> ());
    { verdict; space; bwg; bwg_cycles = !n_cycles }
  in
  match stuck with
  | _ :: _ -> finish (Deadlock_possible (Stuck_states stuck))
  | [] -> (
    match unconnected with
    | _ :: _ as states -> finish (Deadlock_possible (Not_wait_connected states))
    | [] ->
      if Bwg.is_acyclic bwg then finish (Deadlock_free Acyclic_bwg)
      else (
        (* Cheap polynomial knot test: a set of mutually blocking
           single-buffer packets survives in every BWG', so it is a
           deadlock under either waiting discipline (Theorems 2-3,
           necessity). *)
        match stage ran_knot "checker.knot" (fun () -> Deadlock_config.find space)
        with
        | Some config -> finish (Deadlock_possible (Knot config))
        | None -> (
          let cycles, cycles_exhaustive =
            stage ran_scan "checker.cycle-scan" (fun () ->
                Bwg.cycles ?limits:cycle_limits bwg)
          in
          n_cycles := Some (List.length cycles);
          Obs.count "checker.cycles.enumerated" (List.length cycles);
          ran_classify := true;
          match scan_cycles ?class_limits ~domains bwg cycles with
          | `True (cycle, packets) -> (
            match algo.Algo.wait with
            | Algo.Specific_wait ->
              (* Theorem 2 necessity: the witness is a deadlock. *)
              finish (Deadlock_possible (True_cycle { cycle; packets }))
            | Algo.Any_wait -> (
              (* Theorem 3: look for a BWG'. *)
              match Reduction.verify_hint ?cycle_limits ?class_limits space with
              | Some (Reduction.Reduced (_, removed)) ->
                finish
                  (Deadlock_free
                     (Reduced_bwg
                        {
                          via_hint = true;
                          removed;
                          full_bwg_cycles = List.length cycles;
                        }))
              | _ -> (
                match
                  Reduction.search ?cycle_limits ?class_limits
                    ?budget:reduction_budget space
                with
                | Reduction.Reduced (_, removed) ->
                  finish
                    (Deadlock_free
                       (Reduced_bwg
                          {
                            via_hint = false;
                            removed;
                            full_bwg_cycles = List.length cycles;
                          }))
                | Reduction.Impossible ->
                  if cycles_exhaustive then
                    finish (Deadlock_possible (No_reduction { cycle; packets }))
                  else
                    finish (Unknown "cycle enumeration truncated during reduction")
                | Reduction.Gave_up reason -> finish (Unknown reason))))
          | `All_false (examined, uncertain) ->
            if uncertain || not cycles_exhaustive then
              finish
                (Unknown
                   (if cycles_exhaustive then "cycle classification hit its caps"
                    else "cycle enumeration truncated"))
            else
              (* Theorems 2 and 3 sufficiency with BWG' = BWG: only False
                 Resource Cycles remain. *)
              finish (Deadlock_free (No_true_cycles { cycles_examined = examined })))))

let check ?cycle_limits ?class_limits ?reduction_budget ?(domains = 1) net algo =
  Obs.span "checker.check" @@ fun () ->
  let space = State_space.build ~domains net algo in
  let bwg = Bwg.build ~domains space in
  let stuck = State_space.stuck_states ~domains space in
  let unconnected =
    if stuck = [] then Bwg.unconnected_states ~domains bwg else []
  in
  decide ?cycle_limits ?class_limits ?reduction_budget ~domains ~stuck
    ~unconnected space bwg

let verdict ?cycle_limits ?class_limits ?reduction_budget ?domains net algo =
  (check ?cycle_limits ?class_limits ?reduction_budget ?domains net algo).verdict

(* Serving entry point: a long-lived process checking untrusted inputs
   cannot afford [check]'s process-per-check error model, where a
   malformed algorithm (validation failure, a route function that
   raises) takes the whole process down.  Everything [check] touches is
   allocated per call — state space, BWG, worker domains — so calls are
   independent and may run concurrently from any number of domains; this
   wrapper only has to turn the two documented failure exceptions into
   data.  Asynchronous exceptions (Out_of_memory, Stack_overflow) are
   deliberately not caught: a worker cannot know how much of the heap
   they poisoned. *)
let check_result ?cycle_limits ?class_limits ?reduction_budget ?domains net algo =
  match check ?cycle_limits ?class_limits ?reduction_budget ?domains net algo with
  | report -> Ok report
  | exception Invalid_argument msg -> Error msg
  | exception Failure msg -> Error msg

let is_deadlock_free = function
  | Deadlock_free _ -> Some true
  | Deadlock_possible _ -> Some false
  | Unknown _ -> None

let pp_states net fmt states =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    (fun fmt (b, d) -> Format.fprintf fmt "%s->n%d" (Net.describe_buffer net b) d)
    fmt states

let pp_cycle net fmt cycle =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
    (fun fmt b -> Format.pp_print_string fmt (Net.describe_buffer net b))
    fmt cycle

let pp_verdict net fmt = function
  | Deadlock_free Acyclic_bwg ->
    Format.fprintf fmt "deadlock-free (Theorem 1: wait-connected, acyclic BWG)"
  | Deadlock_free (No_true_cycles { cycles_examined }) ->
    Format.fprintf fmt
      "deadlock-free (Theorem 2/3: %d BWG cycle(s), all False Resource Cycles)"
      cycles_examined
  | Deadlock_free (Reduced_bwg { via_hint; removed; full_bwg_cycles }) ->
    Format.fprintf fmt
      "deadlock-free (Theorem 3: BWG' %s, %d wait entr%s removed, full BWG had %d cycle(s))"
      (if via_hint then "verified from hint" else "found by search")
      (List.length removed)
      (if List.length removed = 1 then "y" else "ies")
      full_bwg_cycles
  | Deadlock_possible (Stuck_states states) ->
    Format.fprintf fmt "broken: states with no permitted output: %a" (pp_states net)
      states
  | Deadlock_possible (Not_wait_connected states) ->
    Format.fprintf fmt "deadlock: not wait-connected at %a" (pp_states net) states
  | Deadlock_possible (Knot config) ->
    Format.fprintf fmt
      "deadlock: %d mutually blocking packets (knot configuration)"
      (List.length config)
  | Deadlock_possible (True_cycle { cycle; packets }) ->
    Format.fprintf fmt "@[<v>deadlock: True Cycle %a@,%a@]" (pp_cycle net) cycle
      (Format.pp_print_list (Cycle_class.pp_packet net))
      packets
  | Deadlock_possible (No_reduction { cycle; packets }) ->
    Format.fprintf fmt
      "@[<v>deadlock: no wait-connected BWG' exists; e.g. True Cycle %a@,%a@]"
      (pp_cycle net) cycle
      (Format.pp_print_list (Cycle_class.pp_packet net))
      packets
  | Unknown reason -> Format.fprintf fmt "unknown (%s)" reason
