open Dfr_network
module Obs = Dfr_obs.Obs

type packet = { dest : int; path : int list; waits_for : int }
type verdict = True_cycle of packet list | False_resource_cycle of { exhaustive : bool }

type limits = {
  max_paths_per_edge : int;
  max_path_length : int;
  max_assignments : int;
}

let default_limits =
  { max_paths_per_edge = 64; max_path_length = 24; max_assignments = 100_000 }

(* Simple paths from [start] to [target] in the per-destination move graph:
   the candidate chains of buffers a single blocked packet can occupy.
   Returns the paths found and whether enumeration was exhaustive.

   Exhaustiveness at the path cap is decided by evidence, not position:
   the search keeps running after [max_paths_per_edge] paths were
   recorded, and only flips [exhaustive] the moment a (cap+1)-th path is
   found (then aborts).  If the remaining search tree holds no further
   path, exploring it is exactly the work a capless enumeration would
   have needed to prove exhaustiveness, so this costs nothing extra —
   while "cap reached" alone no longer downgrades verdicts to Unknown at
   exactly-at-cap boundaries. *)
exception Capped

let simple_paths ~limits g ~start ~target =
  let found = ref [] in
  let count = ref 0 in
  let exhaustive = ref true in
  let on_path = Hashtbl.create 16 in
  let rec dfs v acc len =
    let acc = v :: acc in
    Hashtbl.replace on_path v ();
    if v = target then begin
      if !count >= limits.max_paths_per_edge then begin
        exhaustive := false;
        raise Capped
      end;
      incr count;
      found := List.rev acc :: !found
    end
    else if len >= limits.max_path_length then exhaustive := false
    else
      Dfr_graph.Csr.iter_succ
        (fun w -> if not (Hashtbl.mem on_path w) then dfs w acc (len + 1))
        g v;
    Hashtbl.remove on_path v
  in
  (try dfs start [] 1 with Capped -> ());
  (List.rev !found, !exhaustive)

(* Candidate realizations of one BWG edge q -> w: a destination and an
   occupied path from q to a head buffer whose waiting set contains w. *)
let edge_candidates ~limits bwg q w =
  let space = Bwg.space bwg in
  let wormhole =
    Net.switching (State_space.net space) = Net.Wormhole
  in
  let exhaustive = ref true in
  let candidates = ref [] in
  let seen = Hashtbl.create 16 in
  let add dest path =
    let key = (dest, path) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      candidates := { dest; path; waits_for = w } :: !candidates
    end
  in
  let per_witness (wit : Bwg.witness) =
    if wormhole then begin
      let g = State_space.move_graph space ~dest:wit.Bwg.dest in
      let paths, ex = simple_paths ~limits g ~start:q ~target:wit.Bwg.head in
      if not ex then exhaustive := false;
      List.iter (add wit.Bwg.dest) paths
    end
    else add wit.Bwg.dest [ q ]
  in
  List.iter per_witness (Bwg.witnesses bwg q w);
  (List.rev !candidates, !exhaustive)

exception Found of (int * packet) list

(* Timed but not counted: the parallel scan may classify cycles past the
   short-circuit point, so a call counter would vary with [--domains];
   [Checker] counts the verdict-relevant classifications instead. *)
let classify ?(limits = default_limits) bwg cycle =
  Obs.span "classify.cycle" @@ fun () ->
  let g = Bwg.graph bwg in
  let edges =
    match cycle with
    | [] -> invalid_arg "Cycle_class.classify: empty cycle"
    | first :: _ ->
      let rec pair = function
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: pair rest
        | [] -> assert false
      in
      pair cycle
  in
  List.iter
    (fun (q, w) ->
      if not (Dfr_graph.Digraph.mem_edge g q w) then
        invalid_arg "Cycle_class.classify: not a BWG cycle")
    edges;
  let exhaustive = ref true in
  let candidates =
    List.map
      (fun (q, w) ->
        let cands, ex = edge_candidates ~limits bwg q w in
        if not ex then exhaustive := false;
        cands)
      edges
  in
  match cycle with
  | [ _ ] -> (
    (* A single packet waiting on a buffer it occupies: every realizable
       self-loop is the paper's n = 1 deadlock, hence True. *)
    match candidates with
    | [ c :: _ ] -> True_cycle [ c ]
    | _ -> False_resource_cycle { exhaustive = !exhaustive })
  | _ ->
    (* Search for one candidate per edge with pairwise-disjoint occupied
       paths (no buffer simultaneously held by two packets). *)
    let budget = ref limits.max_assignments in
    let occupied = Hashtbl.create 64 in
    let order =
      (* fewest candidates first: fail fast.  Each candidate list keeps
         its original edge index so the witness can be put back into
         cycle order — packet k must realize edge k of [cycle], or
         [pp_verdict]/JSON print packets against the wrong edges. *)
      List.sort
        (fun (_, a) (_, b) -> compare (List.length a) (List.length b))
        (List.mapi (fun i cands -> (i, cands)) candidates)
    in
    let rec assign chosen = function
      | [] -> raise (Found chosen)
      | (edge, cands) :: rest ->
        let try_candidate c =
          if !budget <= 0 then exhaustive := false
          else begin
            decr budget;
            if List.for_all (fun b -> not (Hashtbl.mem occupied b)) c.path then begin
              List.iter (fun b -> Hashtbl.replace occupied b ()) c.path;
              assign ((edge, c) :: chosen) rest;
              List.iter (fun b -> Hashtbl.remove occupied b) c.path
            end
          end
        in
        List.iter try_candidate cands
    in
    (try
       assign [] order;
       False_resource_cycle { exhaustive = !exhaustive }
     with Found chosen ->
       True_cycle
         (List.map snd
            (List.sort (fun (i, _) (j, _) -> compare (i : int) j) chosen)))

let first_true_cycle ?limits bwg cycles =
  let rec go = function
    | [] -> None
    | c :: rest -> (
      match classify ?limits bwg c with
      | True_cycle packets -> Some (c, packets)
      | False_resource_cycle _ -> go rest)
  in
  go cycles

let pp_packet net fmt p =
  Format.fprintf fmt "@[<h>packet->n%d occupies [%s] waits %s@]" p.dest
    (String.concat "; " (List.map (Net.describe_buffer net) p.path))
    (Net.describe_buffer net p.waits_for)
