open Dfr_network
module Obs = Dfr_obs.Obs

type removed = { head : int; dest : int; target : int }

type outcome =
  | Reduced of Bwg.t * removed list
  | Impossible
  | Gave_up of string

(* No True Cycles in [bwg]?  Returns [Ok (Some witness)] when a True Cycle
   exists, [Ok None] when provably none does, [Error reason] when a cap was
   hit. *)
let true_cycle_status ?cycle_limits ?class_limits ?(shortest_first = false) bwg
    =
  let cycles, cycles_exhaustive = Bwg.cycles ?limits:cycle_limits bwg in
  let cycles =
    (* shortest cycles have the fewest witness packets, so a caller
       learning blocking clauses from the witness gets the tightest
       clause; stable sort keeps determinism *)
    if shortest_first then
      List.stable_sort
        (fun a b -> compare (List.length a) (List.length b))
        cycles
    else cycles
  in
  let rec go uncertain = function
    | [] -> if uncertain then Error "cycle classification hit its caps" else Ok None
    | c :: rest -> (
      match Cycle_class.classify ?limits:class_limits bwg c with
      | Cycle_class.True_cycle packets -> Ok (Some (c, packets))
      | Cycle_class.False_resource_cycle { exhaustive } ->
        go (uncertain || not exhaustive) rest)
  in
  match go (not cycles_exhaustive) cycles with
  | Ok None when not cycles_exhaustive -> Error "cycle enumeration truncated"
  | r -> r

let verify_hint ?cycle_limits ?class_limits space =
  match State_space.reduced_waits space with
  | None -> None
  | Some wait_sets ->
    Obs.span "reduction.verify-hint" @@ fun () ->
    let bwg = Bwg.build ~wait_sets space in
    if not (Bwg.is_wait_connected bwg) then
      Some (Gave_up "reduced-waits hint is not wait-connected")
    else (
      match true_cycle_status ?cycle_limits ?class_limits bwg with
      | Ok None -> Some (Reduced (bwg, []))
      | Ok (Some _) -> Some (Gave_up "reduced-waits hint still has a True Cycle")
      | Error reason -> Some (Gave_up ("hint verification: " ^ reason)))

(* Wait entries that generate BWG edge q -> w: pairs (head, dest) with
   [w] in the current waiting set of (head, dest) and [head] reachable
   from [q] by a continuation (wormhole) or equal to [q] (SAF/VCT). *)
let generating_entries space current ~wormhole q w =
  let acc = ref [] in
  for dest = 0 to State_space.num_nodes space - 1 do
    if State_space.is_reachable space ~buf:q ~dest then begin
      let heads =
        if wormhole then
          let g = State_space.move_graph space ~dest in
          let seen = Hashtbl.create 16 in
          let rec dfs v =
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.replace seen v ();
              Dfr_graph.Csr.iter_succ dfs g v
            end
          in
          dfs q;
          Hashtbl.fold (fun v () l -> v :: l) seen []
        else [ q ]
      in
      List.iter
        (fun h -> if List.mem w (current ~buf:h ~dest) then acc := (h, dest) :: !acc)
        heads
    end
  done;
  !acc

let search ?cycle_limits ?class_limits ?(budget = 2000) space =
  Obs.span "reduction.search" @@ fun () ->
  let wormhole = Net.switching (State_space.net space) = Net.Wormhole in
  let num_nodes = State_space.num_nodes space in
  (* mutable copy of the waiting rule, indexed like the state space *)
  let table = Hashtbl.create 256 in
  State_space.iter_reachable space (fun ~buf ~dest ->
      let ws = State_space.waits space ~buf ~dest in
      if ws <> [] then Hashtbl.replace table ((buf * num_nodes) + dest) ws);
  let current ~buf ~dest =
    Option.value (Hashtbl.find_opt table ((buf * num_nodes) + dest)) ~default:[]
  in
  let removed = ref [] in
  let remaining = ref budget in
  let uncertain = ref None in
  let exception Success of Bwg.t in
  let rec attempt () =
    if !remaining <= 0 then uncertain := Some "reduction budget exhausted"
    else begin
      decr remaining;
      Obs.count "reduction.attempts" 1;
      let bwg = Bwg.build ~wait_sets:current space in
      match true_cycle_status ?cycle_limits ?class_limits bwg with
      | Error reason -> uncertain := Some reason
      | Ok None -> raise (Success bwg)
      | Ok (Some (cycle, _)) ->
        let first = List.hd cycle in
        let edges =
          let rec pair = function
            | [ last ] -> [ (last, first) ]
            | a :: (b :: _ as rest) -> (a, b) :: pair rest
            | [] -> assert false
          in
          pair cycle
        in
        let try_edge (q, w) =
          let entries = generating_entries space current ~wormhole q w in
          (* an entry is removable only if its state keeps another wait *)
          let removable =
            List.for_all
              (fun (h, d) -> List.length (current ~buf:h ~dest:d) > 1)
              entries
          in
          if removable && entries <> [] then begin
            let saved =
              List.map (fun (h, d) -> ((h, d), current ~buf:h ~dest:d)) entries
            in
            List.iter
              (fun (h, d) ->
                Hashtbl.replace table
                  ((h * num_nodes) + d)
                  (List.filter (fun x -> x <> w) (current ~buf:h ~dest:d)))
              entries;
            removed := List.map (fun (h, d) -> { head = h; dest = d; target = w }) entries @ !removed;
            attempt ();
            (* backtrack *)
            removed :=
              List.filter
                (fun r -> not (List.exists (fun (h, d) -> r.head = h && r.dest = d && r.target = w) entries))
                !removed;
            List.iter (fun ((h, d), ws) -> Hashtbl.replace table ((h * num_nodes) + d) ws) saved
          end
        in
        List.iter try_edge edges
    end
  in
  try
    attempt ();
    match !uncertain with
    | Some reason -> Gave_up reason
    | None -> Impossible
  with Success bwg -> Reduced (bwg, List.rev !removed)
