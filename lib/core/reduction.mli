(** Reduction of the BWG to a BWG' (Theorem 3, §5).

    For algorithms that let a blocked packet wait on several buffers at
    once, an acyclic BWG is not necessary: it suffices that {e some} subset
    of the waiting rule — wait-connected, with no True Cycles — exists.
    [removed] entries name dropped waiting options [(head, dest, target)]:
    "a packet destined [dest] whose header blocks in [head] no longer waits
    on [target]".  Removing a wait entry only shrinks the waiting sets; the
    routing relation (which buffers may be {e used}) is untouched, exactly
    as the paper prescribes.

    The search mirrors the paper's design methodology: find a True Cycle,
    branch on which of its edges to dissolve (an edge dies only when every
    wait entry generating it is removed), keep wait-connectivity as an
    invariant, backtrack.  It is exponential in the worst case — the paper
    says as much — so a budget caps it. *)

type removed = { head : int; dest : int; target : int }

type outcome =
  | Reduced of Bwg.t * removed list
      (** a verified BWG': wait-connected, no True Cycles *)
  | Impossible
      (** exhaustive search: every wait-connected BWG' has a True Cycle,
          so by Theorem 3 the algorithm deadlocks *)
  | Gave_up of string  (** a cap was hit; no conclusion *)

val true_cycle_status :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?shortest_first:bool ->
  Bwg.t ->
  ((int list * Cycle_class.packet list) option, string) result
(** One freedom probe of a candidate BWG': [Ok (Some (cycle, packets))]
    is a True Cycle with its witness packets; [Ok None] means every cycle
    was exhaustively classified False; [Error reason] means a cap was hit
    before a verdict.  [shortest_first] classifies shortest cycles first,
    which gives callers that learn from the witness the tightest one.
    This is the probe both {!search} and the synthesis engine
    ({!Dfr_synth.Synth}) drive. *)

val verify_hint :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  State_space.t ->
  outcome option
(** Checks the algorithm's declarative [reduced_waits] hint, if present.
    [Some (Reduced _)] when the hint is sound; [Some (Gave_up _)] when it
    is wait-connected but cycles could not be ruled out exhaustively;
    [Some Impossible] is never returned. A broken hint yields
    [Some (Gave_up reason)]. *)

val search :
  ?cycle_limits:Dfr_graph.Cycles.limits ->
  ?class_limits:Cycle_class.limits ->
  ?budget:int ->
  State_space.t ->
  outcome
(** Automatic search from the full waiting rule.  [budget] bounds the
    number of BWG rebuilds (default 2000). *)
