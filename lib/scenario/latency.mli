(** Worst-case latency bounds from the buffer waiting graph.

    For a deadlock-free instance whose per-destination move graphs are
    acyclic, every packet's delivery time is bounded: a packet can be
    delayed only by packets it shares a buffer with — directly (both can
    occupy or wait on the buffer) or indirectly through the waiting-edge
    closure of the BWG and through physical-link multiplexing (virtual
    channels of one link share its flit bandwidth).  Closing the packet
    set under that interference relation partitions the workload into
    components, and serializing a component end to end bounds each
    member: no schedule can make a packet wait on work outside its
    component (nothing outside ever holds a buffer the packet, or any
    packet it transitively waits behind, needs).

    The per-packet bound is the classic trajectory-style form —
    direct + indirect blocking, a la the buffer-aware worst-case analyses
    of wormhole NoCs: the skew to the component's last injection, plus
    the sum over the component of (packet length + longest route + 2)
    cycles, the 2 covering the injection and consumption moves.  The
    bounds are deliberately generous (they assume total serialization);
    their value is that they are {e sound} — the benches gate analytic
    p100 against the simulator's observed p100 — and that they are
    buffer-aware: sparse traffic that shares no buffers decomposes into
    singleton components and gets tight per-packet bounds. *)

open Dfr_core
open Dfr_sim

type t = {
  defined : bool;
      (** bounds exist: every destination's move graph is acyclic (the
          caller separately ensures the instance is deadlock-free) *)
  reason : string option;  (** why not, when [defined] is false *)
  packets : int;
  components : int;  (** interference components in the workload *)
  largest_component : int;
  p50 : int;
  p99 : int;
  p100 : int;  (** nearest-rank percentiles over the per-packet bounds *)
}

val analyze : State_space.t -> Bwg.t -> Traffic.t -> t
(** Bounds for every packet of the workload.  Packets with [src = dst]
    or an unreachable destination make the analysis [defined = false]
    rather than guessing. *)

val to_json : t -> Dfr_util.Json.t
