open Dfr_network
open Dfr_routing
open Dfr_core

type t =
  | Filtered of { algo : Algo.t; killed : int list; dirty : int list }
  | Rebuilt of {
      net : Net.t;
      algo : Algo.t;
      killed_nodes : int list;
      killed : int list;
      node_of_old : int array;
    }

let killed_buffers net fault =
  match fault with
  | Fault.Kill_link { src; dst; vc } ->
    let hits =
      List.filter_map
        (fun b ->
          match Buf.kind b with
          | Buf.Channel c
            when c.src = src && c.dst = dst
                 && (match vc with None -> true | Some v -> c.vc = v) ->
            Some (Buf.id b)
          | _ -> None)
        (Array.to_list (Net.buffers net))
    in
    if hits = [] then
      Error
        (Printf.sprintf "no channel %d->%d%s in network %s" src dst
           (match vc with None -> "" | Some v -> Printf.sprintf " vc %d" v)
           (Net.name net))
    else Ok hits
  | Fault.Kill_buffer b ->
    if b < 0 || b >= Net.num_buffers net then
      Error (Printf.sprintf "buffer %d out of range 0..%d" b (Net.num_buffers net - 1))
    else if not (Buf.is_transit (Net.buffer net b)) then
      Error
        (Printf.sprintf
           "buffer %d (%s) is not a transit buffer; injection and delivery \
            buffers cannot be killed"
           b (Net.describe_buffer net b))
    else Ok [ b ]
  | Fault.Kill_node _ -> Error "killed_buffers: node kills change the skeleton"
  | Fault.Storm _ -> Error "killed_buffers: storms must be expanded first"

let ( let* ) = Result.bind

(* The baseline relation with the killed buffers filtered out of every
   route, waiting and reduced-waits set.  The buffer skeleton is
   untouched, so the degraded algorithm can ride an [Incr] session. *)
let filtered space killed =
  let algo = State_space.algo space in
  let num_buffers = State_space.num_buffers space in
  let mask = Array.make num_buffers false in
  List.iter (fun k -> mask.(k) <- true) killed;
  let wrap f net b ~dest = List.filter (fun o -> not mask.(o)) (f net b ~dest) in
  let algo' =
    {
      algo with
      Algo.route = wrap algo.Algo.route;
      waits = wrap algo.Algo.waits;
      reduced_waits = Option.map wrap algo.Algo.reduced_waits;
    }
  in
  (* Frontier soundness: a destination's slice mentions buffer [k] — in a
     route, waiting or reduced set, or as a reachable state — only if [k]
     is reachable for that destination in the baseline, because every
     output list entry is itself a reachable state.  So the destinations
     that baseline-reach some killed buffer cover every slice the filter
     can change. *)
  let dirty = ref [] in
  for dest = State_space.num_nodes space - 1 downto 0 do
    if
      List.exists (fun k -> State_space.is_reachable space ~buf:k ~dest) killed
    then dirty := dest :: !dirty
  done;
  Filtered { algo = algo'; killed; dirty = !dirty }

(* Node kills renumber the survivors into a fresh custom network; the
   degraded algorithm translates buffer ids through the old/new
   correspondence and consults the baseline relation on the old net. *)
let rebuilt space killed_nodes killed =
  let net = State_space.net space in
  let algo = State_space.algo space in
  let n = Net.num_nodes net in
  let* () =
    if
      List.exists
        (fun b ->
          match Buf.kind b with Buf.Node_buffer _ -> true | _ -> false)
        (Array.to_list (Net.buffers net))
    then
      Error
        "kill node: store-and-forward / virtual-cut-through node buffers have \
         no survivor renumbering; node kills need a channel-based network"
    else Ok ()
  in
  let* () =
    match List.find_opt (fun v -> v < 0 || v >= n) killed_nodes with
    | Some v -> Error (Printf.sprintf "node %d out of range 0..%d" v (n - 1))
    | None -> Ok ()
  in
  let dead = Array.make n false in
  List.iter (fun v -> dead.(v) <- true) killed_nodes;
  let survivors = n - List.length killed_nodes in
  let* () =
    if survivors < 2 then
      Error "kill node: fewer than two nodes would survive" else Ok ()
  in
  let kmask = Array.make (Net.num_buffers net) false in
  List.iter (fun k -> kmask.(k) <- true) killed;
  let node_of_old = Array.make n (-1) in
  let old_node = Array.make survivors 0 in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if not dead.(v) then begin
      node_of_old.(v) <- !next;
      old_node.(!next) <- v;
      incr next
    end
  done;
  (* kept channels in old-id order; [Net.custom] creates its channel
     buffers in list order, so the i-th kept channel IS the i-th channel
     buffer of the rebuilt net *)
  let kept =
    List.filter_map
      (fun b ->
        match Buf.kind b with
        | Buf.Channel c
          when (not dead.(c.src)) && (not dead.(c.dst)) && not kmask.(Buf.id b)
          ->
          Some (Buf.id b, c.src, c.dst, c.vc)
        | _ -> None)
      (Array.to_list (Net.buffers net))
  in
  let* () = if kept = [] then Error "kill node: no channels survive" else Ok () in
  let net' =
    Net.custom
      ~name:(Net.name net ^ "~cut")
      ~switching:(Net.switching net) ~num_nodes:survivors
      ~channels:
        (List.map
           (fun (_, s, d, v) -> (node_of_old.(s), node_of_old.(d), v))
           kept)
  in
  let new_channels =
    List.filter_map
      (fun b ->
        match Buf.kind b with Buf.Channel _ -> Some b | _ -> None)
      (Array.to_list (Net.buffers net'))
  in
  let bmap = Array.make (Net.num_buffers net) (-1) in
  let old_of_new = Array.make (Net.num_buffers net') (Net.buffer net 0) in
  List.iter2
    (fun (old_id, _, _, _) nb ->
      bmap.(old_id) <- Buf.id nb;
      old_of_new.(Buf.id nb) <- Net.buffer net old_id)
    kept new_channels;
  for v' = 0 to survivors - 1 do
    let v = old_node.(v') in
    bmap.(Buf.id (Net.injection net v)) <- Buf.id (Net.injection net' v');
    old_of_new.(Buf.id (Net.injection net' v')) <- Net.injection net v;
    bmap.(Buf.id (Net.delivery net v)) <- Buf.id (Net.delivery net' v');
    old_of_new.(Buf.id (Net.delivery net' v')) <- Net.delivery net v
  done;
  let remap f _net nb ~dest =
    let ob = old_of_new.(Buf.id nb) in
    List.filter_map
      (fun b -> if bmap.(b) >= 0 then Some bmap.(b) else None)
      (f net ob ~dest:old_node.(dest))
  in
  let algo' =
    {
      algo with
      Algo.route = remap algo.Algo.route;
      waits = remap algo.Algo.waits;
      reduced_waits = Option.map remap algo.Algo.reduced_waits;
    }
  in
  Ok (Rebuilt { net = net'; algo = algo'; killed_nodes; killed; node_of_old })

let apply space faults =
  let net = State_space.net space in
  let rec resolve nodes bufs = function
    | [] -> Ok (List.sort_uniq compare nodes, List.sort_uniq compare bufs)
    | Fault.Kill_node v :: rest -> resolve (v :: nodes) bufs rest
    | fault :: rest ->
      let* ids = killed_buffers net fault in
      resolve nodes (List.rev_append ids bufs) rest
  in
  let* nodes, killed = resolve [] [] faults in
  match nodes with
  | [] -> Ok (filtered space killed)
  | _ -> rebuilt space nodes killed

let disconnections space ~killed ~dests ~sources =
  let net = State_space.net space in
  let mask = Array.make (State_space.num_buffers space) false in
  List.iter (fun k -> mask.(k) <- true) killed;
  List.filter_map
    (fun dest ->
      let inj s = Buf.id (Net.injection net s) in
      let candidates =
        List.filter
          (fun s -> s <> dest && State_space.is_reachable space ~buf:(inj s) ~dest)
          sources
      in
      if candidates = [] then None
      else begin
        let g = State_space.move_graph_view space ~dest in
        let sinks =
          List.filter
            (fun b -> State_space.arrived space ~buf:b ~dest)
            (State_space.reachable_with space ~dest)
        in
        if sinks = [] then Some (dest, candidates)
        else begin
          let r = Dfr_graph.Reach.create g ~sinks in
          Dfr_graph.Csr.iter_edges
            (fun u v ->
              if mask.(u) || mask.(v) then Dfr_graph.Reach.disable_edge r u v)
            g;
          match
            List.filter (fun s -> not (Dfr_graph.Reach.reaches r (inj s))) candidates
          with
          | [] -> None
          | cut -> Some (dest, cut)
        end
      end)
    dests
