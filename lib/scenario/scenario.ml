open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

let preloads_of_knot config =
  List.map
    (fun (buf, dest) ->
      { Wormhole_sim.chain = [ buf ]; dest; frozen = false })
    config

let preloads_of_true_cycle space packets =
  let occupied = Hashtbl.create 64 in
  List.iter
    (fun (p : Cycle_class.packet) ->
      List.iter (fun b -> Hashtbl.replace occupied b ()) p.Cycle_class.path)
    packets;
  let cycle_preloads =
    List.map
      (fun (p : Cycle_class.packet) ->
        {
          Wormhole_sim.chain = p.Cycle_class.path;
          dest = p.Cycle_class.dest;
          frozen = false;
        })
      packets
  in
  (* Freeze a filler into every still-free output of each blocked header,
     so the cycle packets genuinely cannot sidestep (Theorem 2's previous
     packets of tuned length). *)
  let fillers = ref [] in
  let add_filler b =
    if not (Hashtbl.mem occupied b) then begin
      Hashtbl.replace occupied b ();
      (* any destination gives the filler a consistent identity; frozen
         packets never consult the routing relation *)
      let dest =
        let head = Buf.head_node (Net.buffer (State_space.net space) b) in
        (head + 1) mod State_space.num_nodes space
      in
      fillers := { Wormhole_sim.chain = [ b ]; dest; frozen = true } :: !fillers
    end
  in
  List.iter
    (fun (p : Cycle_class.packet) ->
      match List.rev p.Cycle_class.path with
      | [] -> ()
      | head :: _ ->
        List.iter add_filler
          (State_space.outputs space ~buf:head ~dest:p.Cycle_class.dest))
    packets;
  cycle_preloads @ !fillers

(* SAF packets occupy single buffers; fillers freeze the remaining free
   outputs of each blocked packet, as in the wormhole case. *)
let saf_preloads_of_packets space packets =
  let occupied = Hashtbl.create 64 in
  List.iter
    (fun (p : Cycle_class.packet) ->
      Hashtbl.replace occupied (List.hd p.Cycle_class.path) ())
    packets;
  let main =
    List.map
      (fun (p : Cycle_class.packet) ->
        {
          Saf_sim.buffer = List.hd p.Cycle_class.path;
          dest = p.Cycle_class.dest;
          frozen = false;
        })
      packets
  in
  let fillers = ref [] in
  List.iter
    (fun (p : Cycle_class.packet) ->
      let b = List.hd p.Cycle_class.path in
      List.iter
        (fun o ->
          if not (Hashtbl.mem occupied o) then begin
            Hashtbl.replace occupied o ();
            fillers := { Saf_sim.buffer = o; dest = 0; frozen = true } :: !fillers
          end)
        (State_space.outputs space ~buf:b ~dest:p.Cycle_class.dest))
    packets;
  main @ !fillers

let replay ?wormhole_config ?saf_config ?space net algo failure =
  let wormhole = Net.switching net = Net.Wormhole in
  let knot_replay states =
    if wormhole then
      Some
        (Wormhole_sim.is_deadlocked
           (Wormhole_sim.run_preloaded ?config:wormhole_config net algo
              (preloads_of_knot states)))
    else
      Some
        (Saf_sim.is_deadlocked
           (Saf_sim.run_preloaded ?config:saf_config net algo
              (List.map
                 (fun (buffer, dest) -> { Saf_sim.buffer; dest; frozen = false })
                 states)))
  in
  match failure with
  | Checker.Knot config -> knot_replay config
  | Checker.True_cycle { packets; _ } | Checker.No_reduction { packets; _ } ->
    let space =
      match space with Some s -> s | None -> State_space.build net algo
    in
    if wormhole then
      Some
        (Wormhole_sim.is_deadlocked
           (Wormhole_sim.run_preloaded ?config:wormhole_config net algo
              (preloads_of_true_cycle space packets)))
    else
      Some
        (Saf_sim.is_deadlocked
           (Saf_sim.run_preloaded ?config:saf_config net algo
              (saf_preloads_of_packets space packets)))
  | Checker.Stuck_states _ | Checker.Not_wait_connected _ -> None

(* ------------------------------------------------------------------ *)
(* fault campaigns                                                     *)

module Json = Dfr_util.Json

type classification =
  | Still_free
  | Deadlocked of { kind : string; cycle : string list }
  | Disconnected of (int * int list) list
  | Undetermined of string

type outcome = {
  at : int;
  label : string;
  killed : int list;
  classification : classification;
  report : Json.t;
  exit_code : int;
}

type campaign = {
  network : string;
  algorithm : string;
  plan_name : string option;
  seed : int;
  mode : [ `Sweep | `Sequence ];
  baseline : Json.t;
  baseline_exit : int;
  space : State_space.t;  (** the pristine baseline space *)
  outcomes : outcome list;
  exit_code : int;
}

(* The channel buffers a node kill rips out along with the node — the
   killed set the disconnection classifier disables on the baseline
   graphs. *)
let adjacent_channels net dead =
  List.filter_map
    (fun b ->
      match Buf.kind b with
      | Buf.Channel c when List.mem c.src dead || List.mem c.dst dead ->
        Some (Buf.id b)
      | _ -> None)
    (Array.to_list (Net.buffers net))

(* Classify one degraded verdict.  Disconnection refines a stuck-states
   deadlock report: routing dead-ends caused by severed reachability are
   "the fault cut the network", not "the algorithm deadlocks".  Everything
   here is a pure function of the baseline space, the killed set and the
   (byte-stable) report, so incremental and cold campaigns classify
   identically. *)
let classify space ~degraded ~report ~exit_code =
  let summary () =
    match Report_json.of_string (Json.to_string report) with
    | Ok s -> Some s
    | Error _ -> None
  in
  if exit_code = 0 then Still_free
  else if exit_code <> 1 then
    Undetermined
      (match summary () with
      | Some s -> s.Report_json.result
      | None -> "unparseable report")
  else begin
    let kind, cycle =
      match summary () with
      | Some s ->
        ( Option.value ~default:"deadlock" s.Report_json.failure_kind,
          s.Report_json.cycle )
      | None -> ("deadlock", [])
    in
    if kind <> "stuck-states" then Deadlocked { kind; cycle }
    else begin
      let nodes n = List.init n (fun i -> i) in
      let n = State_space.num_nodes space in
      let pairs =
        match degraded with
        | Degrade.Filtered { killed; dirty; _ } ->
          Degrade.disconnections space ~killed ~dests:dirty
            ~sources:(nodes n)
        | Degrade.Rebuilt { killed_nodes; killed; _ } ->
          let net = State_space.net space in
          let alive =
            List.filter (fun v -> not (List.mem v killed_nodes)) (nodes n)
          in
          let killed =
            List.sort_uniq compare (adjacent_channels net killed_nodes @ killed)
          in
          let dead_entries =
            List.filter_map
              (fun d ->
                match
                  List.filter
                    (fun s ->
                      State_space.is_reachable space
                        ~buf:(Buf.id (Net.injection net s))
                        ~dest:d)
                    alive
                with
                | [] -> None
                | srcs -> Some (d, srcs))
              killed_nodes
          in
          List.sort
            (fun (d1, _) (d2, _) -> compare d1 d2)
            (dead_entries
            @ Degrade.disconnections space ~killed ~dests:alive ~sources:alive)
      in
      if pairs = [] then Deadlocked { kind; cycle } else Disconnected pairs
    end
  end

(* Sorted-union of two ascending destination lists (the frontier for an
   incremental move from one killed set to another). *)
let rec merge_dirty a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
    if x < y then x :: merge_dirty xs b
    else if y < x then y :: merge_dirty a ys
    else x :: merge_dirty xs ys

let label_of net faults =
  String.concat "; " (List.map (Fault.describe net) faults)

let campaign ?(domains = 1) ?(cold = false) ~mode net algo (plan : Fault.t) =
  let ( let* ) = Result.bind in
  let* steps = Fault.expand plan net in
  (* Sweep checks every fault independently; Sequence replays the plan's
     timeline, one re-check per tick, faults accumulating. *)
  let groups =
    match mode with
    | `Sweep ->
      List.map (fun (s : Fault.step) -> (s.Fault.at, [ s.Fault.fault ], [ s.Fault.fault ])) steps
    | `Sequence ->
      let sorted =
        List.stable_sort
          (fun (a : Fault.step) b -> compare a.Fault.at b.Fault.at)
          steps
      in
      let rec batches acc = function
        | [] -> List.rev acc
        | (s : Fault.step) :: _ as rest ->
          let now, later =
            List.partition (fun (x : Fault.step) -> x.Fault.at = s.Fault.at) rest
          in
          let fresh = List.map (fun (x : Fault.step) -> x.Fault.fault) now in
          batches ((s.Fault.at, fresh) :: acc) later
      in
      let rec accumulate sofar = function
        | [] -> []
        | (at, fresh) :: rest ->
          let cum = sofar @ fresh in
          (at, fresh, cum) :: accumulate cum rest
      in
      accumulate [] (batches [] sorted)
  in
  let finish ~baseline ~baseline_exit ~space outcomes =
    {
      network = Net.name net;
      algorithm = algo.Algo.name;
      plan_name = plan.Fault.name;
      seed = plan.Fault.seed;
      mode;
      baseline;
      baseline_exit;
      space;
      outcomes;
      exit_code =
        List.fold_left (fun acc (o : outcome) -> max acc o.exit_code) baseline_exit outcomes;
    }
  in
  let killed_of = function
    | Degrade.Filtered { killed; _ } -> killed
    | Degrade.Rebuilt { killed; killed_nodes; _ } ->
      (* report the old-skeleton resources lost: the explicit kills plus
         every channel of the killed nodes *)
      List.sort_uniq compare
        (killed
        @ List.concat_map (fun v -> adjacent_channels net [ v ]) killed_nodes)
  in
  if cold then begin
    let rep = Checker.check ~domains net algo in
    let baseline = Report_json.of_outcome net algo rep in
    let baseline_exit = Report_json.exit_code rep.Checker.verdict in
    let space = rep.Checker.space in
    let* outcomes =
      List.fold_left
        (fun acc (at, fresh, faults) ->
          let* acc = acc in
          let* degraded = Degrade.apply space faults in
          let report, exit_code =
            match degraded with
            | Degrade.Filtered { algo = algo'; _ } ->
              let r = Checker.check ~domains net algo' in
              (Report_json.of_outcome net algo' r,
               Report_json.exit_code r.Checker.verdict)
            | Degrade.Rebuilt { net = net'; algo = algo'; _ } ->
              let r = Checker.check ~domains net' algo' in
              (Report_json.of_outcome net' algo' r,
               Report_json.exit_code r.Checker.verdict)
          in
          let classification = classify space ~degraded ~report ~exit_code in
          Ok
            ({
               at;
               label = label_of net fresh;
               killed = killed_of degraded;
               classification;
               report;
               exit_code;
             }
            :: acc))
        (Ok []) groups
    in
    Ok (finish ~baseline ~baseline_exit ~space (List.rev outcomes))
  end
  else begin
    let session, base = Incr.create ~domains net algo in
    let space = Incr.space session in
    (* [Incr.update] replaces the session's space (column copies), so this
       binding stays the pristine baseline for frontiers and Reach *)
    let session_dirty = ref [] in
    let* outcomes =
      List.fold_left
        (fun acc (at, fresh, faults) ->
          let* acc = acc in
          let* degraded = Degrade.apply space faults in
          let report, exit_code =
            match degraded with
            | Degrade.Filtered { algo = algo'; dirty; _ } ->
              let r =
                Incr.update session algo'
                  ~dirty:(merge_dirty !session_dirty dirty)
              in
              session_dirty := dirty;
              (r.Incr.report, r.Incr.exit_code)
            | Degrade.Rebuilt { net = net'; algo = algo'; _ } ->
              (* skeleton change: the session cannot absorb it (the same
                 situation Diff reports as Incompatible) — cold fallback *)
              let r = Checker.check ~domains net' algo' in
              (Report_json.of_outcome net' algo' r,
               Report_json.exit_code r.Checker.verdict)
          in
          let classification = classify space ~degraded ~report ~exit_code in
          Ok
            ({
               at;
               label = label_of net fresh;
               killed = killed_of degraded;
               classification;
               report;
               exit_code;
             }
            :: acc))
        (Ok []) groups
    in
    Ok
      (finish ~baseline:base.Incr.report ~baseline_exit:base.Incr.exit_code
         ~space (List.rev outcomes))
  end

let classification_json = function
  | Still_free -> [ ("class", Json.String "free") ]
  | Deadlocked { kind; cycle } ->
    [
      ("class", Json.String "deadlock");
      ("kind", Json.String kind);
      ("cycle", Json.List (List.map (fun c -> Json.String c) cycle));
    ]
  | Disconnected pairs ->
    [
      ("class", Json.String "disconnected");
      ( "disconnected",
        Json.List
          (List.map
             (fun (dest, srcs) ->
               Json.Obj
                 [
                   ("dest", Json.Int dest);
                   ("sources", Json.List (List.map (fun s -> Json.Int s) srcs));
                 ])
             pairs) );
    ]
  | Undetermined reason ->
    [ ("class", Json.String "unknown"); ("reason", Json.String reason) ]

(* NOTE: nothing in this envelope says whether a fault took the
   incremental or the cold path — the two are byte-identical by
   construction and the determinism tests diff them. *)
let campaign_to_json c =
  Json.Obj
    [
      ("network", Json.String c.network);
      ("algorithm", Json.String c.algorithm);
      ( "plan",
        match c.plan_name with None -> Json.Null | Some n -> Json.String n );
      ("seed", Json.Int c.seed);
      ( "mode",
        Json.String (match c.mode with `Sweep -> "sweep" | `Sequence -> "sequence")
      );
      ( "baseline",
        Json.Obj [ ("exit", Json.Int c.baseline_exit); ("report", c.baseline) ]
      );
      ( "faults",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 ([
                    ("at", Json.Int o.at);
                    ("label", Json.String o.label);
                    ("killed", Json.List (List.map (fun k -> Json.Int k) o.killed));
                  ]
                 @ classification_json o.classification
                 @ [ ("exit", Json.Int o.exit_code); ("report", o.report) ]))
             c.outcomes) );
      ("exit", Json.Int c.exit_code);
    ]

(* ------------------------------------------------------------------ *)
(* deadlock-seeking traffic                                            *)

let seeking_traffic space ~length failure =
  let net = State_space.net space in
  let of_chain chain dest =
    match chain with
    | [] -> []
    | first :: _ ->
      let src = Buf.source_node (Net.buffer net first) in
      if src = dest then [] else Traffic.scripted ~src ~dst:dest ~length chain
  in
  match failure with
  | Checker.True_cycle { packets; _ } | Checker.No_reduction { packets; _ } -> (
    match
      List.concat_map
        (fun (p : Cycle_class.packet) ->
          of_chain p.Cycle_class.path p.Cycle_class.dest)
        packets
    with
    | [] -> None
    | ps -> Some ps)
  | Checker.Knot states -> (
    match
      List.concat_map (fun (buf, dest) -> of_chain [ buf ] dest) states
    with
    | [] -> None
    | ps -> Some ps)
  | Checker.Stuck_states _ | Checker.Not_wait_connected _ -> None
