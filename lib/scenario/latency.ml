open Dfr_network
open Dfr_core
open Dfr_sim

type t = {
  defined : bool;
  reason : string option;
  packets : int;
  components : int;
  largest_component : int;
  p50 : int;
  p99 : int;
  p100 : int;
}

let undefined ~packets reason =
  {
    defined = false;
    reason = Some reason;
    packets;
    components = 0;
    largest_component = 0;
    p50 = 0;
    p99 = 0;
    p100 = 0;
  }

(* Nearest-rank percentile over the per-packet bounds, the same rank
   convention as [Stats.percentile_latency] so the soundness gate
   compares like with like. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sorted.(rank - 1)
  end

(* Longest path (in moves) out of every vertex of an acyclic move graph:
   process a topological order backwards so successors are done first. *)
let longest_paths g order =
  let h = Array.make (Dfr_graph.Csr.num_vertices g) 0 in
  List.iter
    (fun v ->
      Dfr_graph.Csr.iter_succ
        (fun w -> if 1 + h.(w) > h.(v) then h.(v) <- 1 + h.(w))
        g v)
    (List.rev order);
  h

(* Buffers multiplexing one physical resource: the virtual channels of a
   directed link share its one-flit-per-cycle bandwidth, so occupancy of
   any of them delays all of them.  Injection/delivery/node buffers are
   their own resource. *)
let link_sharers net =
  let tbl = Hashtbl.create 64 in
  let key b =
    match Buf.kind b with
    | Buf.Channel c -> (0, c.src, c.dst)
    | Buf.Injection n -> (1, n, 0)
    | Buf.Delivery n -> (2, n, 0)
    | Buf.Node_buffer { node; _ } -> (3, node, 0)
  in
  Array.iter
    (fun b ->
      let k = key b in
      Hashtbl.replace tbl k (Buf.id b :: (try Hashtbl.find tbl k with Not_found -> [])))
    (Net.buffers net);
  let sharers = Array.make (Net.num_buffers net) [] in
  Array.iter
    (fun b -> sharers.(Buf.id b) <- Hashtbl.find tbl (key b))
    (Net.buffers net);
  sharers

(* Union-find over packet indices. *)
let rec find parent i = if parent.(i) = i then i else find parent parent.(i)

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(max ri rj) <- min ri rj

let analyze space bwg traffic =
  let net = State_space.net space in
  let num_buffers = State_space.num_buffers space in
  let num_nodes = State_space.num_nodes space in
  let packets = Array.of_list traffic in
  let np = Array.length packets in
  let bad =
    Array.fold_left
      (fun acc (p : Traffic.packet) ->
        match acc with
        | Some _ -> acc
        | None ->
          if p.src < 0 || p.src >= num_nodes || p.dst < 0 || p.dst >= num_nodes
          then Some (Printf.sprintf "packet endpoint out of range (%d -> %d)" p.src p.dst)
          else if p.src = p.dst then
            Some (Printf.sprintf "packet with src = dst (%d)" p.src)
          else if
            not
              (State_space.is_reachable space
                 ~buf:(Buf.id (Net.injection net p.src))
                 ~dest:p.dst)
          then Some (Printf.sprintf "no route from %d to %d" p.src p.dst)
          else None)
      None packets
  in
  match bad with
  | Some reason -> undefined ~packets:np reason
  | None -> (
    let dests = List.sort_uniq compare (Array.to_list (Array.map (fun (p : Traffic.packet) -> p.dst) packets)) in
    (* per-destination move graphs must be acyclic for a longest path to
       exist; a cyclic one means no finite bound from this analysis *)
    let graphs = Hashtbl.create 16 in
    let cyclic =
      List.find_map
        (fun dest ->
          let g = State_space.move_graph_view space ~dest in
          match Dfr_graph.Traversal.topological_sort_csr g with
          | None -> Some dest
          | Some order ->
            Hashtbl.replace graphs dest (g, longest_paths g order);
            None)
        dests
    in
    match cyclic with
    | Some dest ->
      undefined ~packets:np
        (Printf.sprintf "move graph for destination %d is cyclic" dest)
    | None ->
      if np = 0 then
        {
          defined = true;
          reason = None;
          packets = 0;
          components = 0;
          largest_component = 0;
          p50 = 0;
          p99 = 0;
          p100 = 0;
        }
      else begin
        let sharers = link_sharers net in
        let bwg_csr = Dfr_graph.Digraph.freeze (Bwg.graph bwg) in
        (* occupancy sets: the buffers packet p can ever hold *)
        let occ_cache = Hashtbl.create 64 in
        let occupancy (p : Traffic.packet) =
          match Hashtbl.find_opt occ_cache (p.src, p.dst) with
          | Some r -> r
          | None ->
            let g, _ = Hashtbl.find graphs p.dst in
            let r =
              Dfr_graph.Traversal.reachable_csr g
                [ Buf.id (Net.injection net p.src) ]
            in
            Hashtbl.replace occ_cache (p.src, p.dst) r;
            r
        in
        let touch = Array.make num_buffers [] in
        Array.iteri
          (fun i p ->
            let occ = occupancy p in
            for b = 0 to num_buffers - 1 do
              if occ.(b) then touch.(b) <- i :: touch.(b)
            done)
          packets;
        let parent = Array.init np (fun i -> i) in
        (* two packets that can hold the same buffer interfere directly *)
        Array.iter
          (function
            | [] | [ _ ] -> ()
            | first :: rest -> List.iter (fun q -> union parent first q) rest)
          touch;
        (* indirect interference: close each packet's buffer set under BWG
           waiting edges and link multiplexing; any packet touching the
           closure can stall work this packet transitively waits behind *)
        let visited = Array.make num_buffers false in
        let stack = ref [] in
        let frontier = ref [] in
        Array.iteri
          (fun i p ->
            let occ = occupancy p in
            stack := [];
            frontier := [];
            for b = 0 to num_buffers - 1 do
              if occ.(b) then begin
                visited.(b) <- true;
                stack := b :: !stack;
                frontier := b :: !frontier
              end
            done;
            let push b =
              if not visited.(b) then begin
                visited.(b) <- true;
                stack := b :: !stack;
                frontier := b :: !frontier
              end
            in
            let rec drain () =
              match !frontier with
              | [] -> ()
              | b :: rest ->
                frontier := rest;
                Dfr_graph.Csr.iter_succ push bwg_csr b;
                List.iter push sharers.(b);
                drain ()
            in
            drain ();
            List.iter
              (fun b ->
                (match touch.(b) with [] -> () | q :: _ -> union parent i q);
                visited.(b) <- false)
              !stack)
          packets;
        (* serialize each component: skew to its last injection plus the
           sum of (length + longest route + inject + consume) *)
        let cost i =
          let p = packets.(i) in
          let _, hops = Hashtbl.find graphs p.dst in
          p.length + hops.(Buf.id (Net.injection net p.src)) + 2
        in
        let comp_cost = Array.make np 0 in
        let comp_last = Array.make np min_int in
        let comp_size = Array.make np 0 in
        Array.iteri
          (fun i (p : Traffic.packet) ->
            let r = find parent i in
            comp_cost.(r) <- comp_cost.(r) + cost i;
            comp_last.(r) <- max comp_last.(r) p.inject_at;
            comp_size.(r) <- comp_size.(r) + 1)
          packets;
        let bounds =
          Array.mapi
            (fun i (p : Traffic.packet) ->
              let r = find parent i in
              comp_last.(r) - p.inject_at + comp_cost.(r))
            packets
        in
        Array.sort compare bounds;
        let components =
          Array.fold_left (fun acc s -> if s > 0 then acc + 1 else acc) 0 comp_size
        in
        let largest = Array.fold_left max 0 comp_size in
        {
          defined = true;
          reason = None;
          packets = np;
          components;
          largest_component = largest;
          p50 = percentile bounds 0.5;
          p99 = percentile bounds 0.99;
          p100 = percentile bounds 1.0;
        }
      end)

let to_json t =
  let open Dfr_util.Json in
  Obj
    [
      ("defined", Bool t.defined);
      ("reason", match t.reason with None -> Null | Some r -> String r);
      ("packets", Int t.packets);
      ("components", Int t.components);
      ("largest_component", Int t.largest_component);
      ("bound_p50", Int t.p50);
      ("bound_p99", Int t.p99);
      ("bound_p100", Int t.p100);
    ]
