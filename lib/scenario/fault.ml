open Dfr_network
open Dfr_util

type fault =
  | Kill_link of { src : int; dst : int; vc : int option }
  | Kill_buffer of int
  | Kill_node of int
  | Storm of { count : int; seed : int option }

type step = { at : int; fault : fault }

type t = { name : string option; seed : int; steps : step list }

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Whitespace-split with "->" guaranteed to be its own token, so
   "kill link 0->1" and "kill link 0 -> 1" parse alike. *)
let tokens line =
  let buf = Buffer.create (String.length line + 8) in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    (if !i + 1 < n && line.[!i] = '-' && line.[!i + 1] = '>' then begin
       Buffer.add_string buf " -> ";
       incr i
     end
     else
       match line.[!i] with
       | '\t' | '\r' -> Buffer.add_char buf ' '
       | c -> Buffer.add_char buf c);
    incr i
  done;
  String.split_on_char ' ' (Buffer.contents buf)
  |> List.filter (fun s -> s <> "")

let int_of ~line what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "line %d: %s expects an integer, got %S" line what s)

let ( let* ) = Result.bind

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

(* One directive, already split into tokens and stripped of a leading
   [at T] (handled by the caller). *)
let parse_fault ~line toks =
  match toks with
  | [ "kill"; "link"; s; "->"; d ] ->
    let* src = int_of ~line "link source" s in
    let* dst = int_of ~line "link target" d in
    Ok (Kill_link { src; dst; vc = None })
  | [ "kill"; "link"; s; "->"; d; "vc"; v ] ->
    let* src = int_of ~line "link source" s in
    let* dst = int_of ~line "link target" d in
    let* vc = int_of ~line "vc" v in
    Ok (Kill_link { src; dst; vc = Some vc })
  | [ "kill"; "buffer"; b ] ->
    let* b = int_of ~line "buffer id" b in
    Ok (Kill_buffer b)
  | [ "kill"; "node"; n ] ->
    let* n = int_of ~line "node id" n in
    Ok (Kill_node n)
  | [ "storm"; "links"; k ] ->
    let* count = int_of ~line "storm size" k in
    Ok (Storm { count; seed = None })
  | [ "storm"; "links"; k; "seed"; s ] ->
    let* count = int_of ~line "storm size" k in
    let* seed = int_of ~line "storm seed" s in
    Ok (Storm { count; seed = Some seed })
  | _ ->
    Error
      (Printf.sprintf "line %d: cannot parse directive %S" line
         (String.concat " " toks))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno ~name ~seed ~prev_at acc = function
    | [] -> Ok { name; seed; steps = List.rev acc }
    | raw :: rest -> (
      let toks = tokens (strip_comment raw) in
      match toks with
      | [] -> go (lineno + 1) ~name ~seed ~prev_at acc rest
      | [ "plan"; n ] ->
        go (lineno + 1) ~name:(Some (unquote n)) ~seed ~prev_at acc rest
      | [ "seed"; s ] -> (
        match int_of ~line:lineno "seed" s with
        | Ok s -> go (lineno + 1) ~name ~seed:s ~prev_at acc rest
        | Error e -> Error e)
      | "at" :: t :: body -> (
        match
          let* at = int_of ~line:lineno "at" t in
          if at < 0 then Error (Printf.sprintf "line %d: at must be >= 0" lineno)
          else
            let* fault = parse_fault ~line:lineno body in
            Ok { at; fault }
        with
        | Ok step -> go (lineno + 1) ~name ~seed ~prev_at:step.at (step :: acc) rest
        | Error e -> Error e)
      | body -> (
        match parse_fault ~line:lineno body with
        | Ok fault ->
          let at = match acc with [] -> 0 | _ -> prev_at + 1 in
          go (lineno + 1) ~name ~seed ~prev_at:at ({ at; fault } :: acc) rest
        | Error e -> Error e))
  in
  go 1 ~name:None ~seed:1 ~prev_at:0 [] lines

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* storm expansion                                                     *)

let channel_buffer_ids net =
  List.filter_map
    (fun b ->
      match Buf.kind b with Buf.Channel _ -> Some (Buf.id b) | _ -> None)
    (Array.to_list (Net.buffers net))

let expand plan net =
  let channels = Array.of_list (channel_buffer_ids net) in
  let rec go idx acc = function
    | [] -> Ok (List.rev acc)
    | { at; fault = Storm { count; seed } } :: rest ->
      if count < 1 then Error "storm links: size must be >= 1"
      else if count > Array.length channels then
        Error
          (Printf.sprintf
             "storm links %d: the network has only %d channel buffers" count
             (Array.length channels))
      else begin
        (* an unseeded storm derives from the plan seed and its position,
           so two storms in one plan draw different kills *)
        let seed =
          match seed with Some s -> s | None -> plan.seed + (1009 * idx)
        in
        let pool = Array.copy channels in
        Prng.shuffle (Prng.create seed) pool;
        let kills =
          List.init count (fun i -> { at; fault = Kill_buffer pool.(i) })
        in
        go (idx + 1) (List.rev_append kills acc) rest
      end
    | step :: rest -> go idx (step :: acc) rest
  in
  go 0 [] plan.steps

let describe net fault =
  match fault with
  | Kill_link { src; dst; vc = None } -> Printf.sprintf "kill link %d->%d" src dst
  | Kill_link { src; dst; vc = Some v } ->
    Printf.sprintf "kill link %d->%d vc %d" src dst v
  | Kill_buffer b ->
    if b >= 0 && b < Net.num_buffers net then
      Printf.sprintf "kill buffer %d (%s)" b (Net.describe_buffer net b)
    else Printf.sprintf "kill buffer %d" b
  | Kill_node n -> Printf.sprintf "kill node %d" n
  | Storm { count; seed = None } -> Printf.sprintf "storm links %d" count
  | Storm { count; seed = Some s } -> Printf.sprintf "storm links %d seed %d" count s
