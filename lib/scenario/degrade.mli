(** Fault application: rewriting a checked instance around killed
    resources.

    Link, virtual-channel and buffer kills leave the network's buffer
    skeleton intact — they only shrink the routing relation, by filtering
    the killed buffer ids out of every route, waiting and reduced-waits
    set.  That is exactly the shape the incremental re-checker consumes:
    the degraded algorithm rides an {!Dfr_core.Incr} session with a dirty
    frontier of the destinations that could ever reach a killed buffer
    (an output list can mention a buffer only in states from which that
    buffer is reachable, so the frontier provably covers every changed
    slice).

    Node kills change the skeleton itself: the node and every channel
    touching it disappear and the survivors are renumbered.  Those take
    the cold path — {!Dfr_spec.Diff} calls the same situation
    [Incompatible] — on a rebuilt custom network whose algorithm
    translates buffer ids through the old/new correspondence. *)

open Dfr_network
open Dfr_routing
open Dfr_core

type t =
  | Filtered of {
      algo : Algo.t;  (** the baseline relation minus the killed buffers *)
      killed : int list;  (** killed buffer ids, ascending *)
      dirty : int list;
          (** destinations whose slice may differ — the {!Dfr_core.Incr}
              frontier: every dest that reaches a killed buffer in the
              {e baseline} space *)
    }
  | Rebuilt of {
      net : Net.t;  (** renumbered survivor network *)
      algo : Algo.t;
      killed_nodes : int list;  (** ascending *)
      killed : int list;  (** killed buffer ids of the {e old} network *)
      node_of_old : int array;  (** old node -> new node, [-1] if killed *)
    }

val killed_buffers : Net.t -> Fault.fault -> (int list, string) result
(** The channel-buffer ids a link/buffer kill removes ([Kill_node] and
    [Storm] are not resolvable here).  Errors on an unknown link, an
    out-of-range id, or a non-transit buffer (injection and delivery
    buffers model the paper's unbounded sources/sinks — killing them is
    not a fault, it is a different traffic matrix). *)

val apply : State_space.t -> Fault.fault list -> (t, string) result
(** Degrade the baseline instance by all the faults at once.  Any
    [Kill_node] forces the [Rebuilt] shape (and requires a channel-based
    network — wormhole or custom; SAF/VCT node buffers have no survivor
    renumbering story).  [Storm]s must have been expanded by
    {!Fault.expand} first. *)

val disconnections :
  State_space.t ->
  killed:int list ->
  dests:int list ->
  sources:int list ->
  (int * int list) list
(** For each destination, the source nodes whose injection buffer loses
    every path to an arrived buffer once all move edges touching a killed
    buffer are disabled — computed on the baseline per-destination move
    graphs with {!Dfr_graph.Reach}.  Only baseline-reachable pairs are
    consulted (a pair unreachable before the fault is not fault-caused
    damage).  Destinations with no cut source are omitted; order follows
    [dests] / [sources]. *)
