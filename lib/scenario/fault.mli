(** Declarative fault plans.

    A plan is a seeded, timed sequence of fault events against a checked
    instance: kill one virtual channel of a link, kill a single buffer,
    kill a whole node, or unleash a seeded random storm of link kills.
    Plans are parsed from a small line-based format ([.plan] files) so
    fault campaigns live next to the [.dfr] specs they degrade:

    {v
    # mesh: lose the east link out of node 0, then the whole node
    plan "mesh-cut"
    seed 7
    kill link 0 -> 1
    at 3 kill node 2
    storm links 4 seed 11
    v}

    Grammar, one directive per line ([#] starts a comment):
    - [plan "NAME"] — optional, names the campaign;
    - [seed N] — optional (default 1), the root seed storms derive from;
    - [[at T] kill link S -> D [vc V]] — kill every virtual channel of the
      [S -> D] link, or just channel [V];
    - [[at T] kill buffer B] — kill one buffer by id;
    - [[at T] kill node N] — kill a node and every link touching it;
    - [[at T] storm links K [seed S]] — [K] random distinct channel-buffer
      kills drawn from the named seed (default: derived from the plan
      seed and the storm's position).

    A step without [at] fires one tick after the previous step (the first
    at tick 0), so a bare list of kills is a sequence; sweeps ignore the
    ticks and treat every step independently. *)

type fault =
  | Kill_link of { src : int; dst : int; vc : int option }
  | Kill_buffer of int
  | Kill_node of int
  | Storm of { count : int; seed : int option }

type step = { at : int; fault : fault }

type t = { name : string option; seed : int; steps : step list }

val parse : string -> (t, string) result
(** Parse plan text; errors carry 1-based line numbers. *)

val load_file : string -> (t, string) result

val expand : t -> Dfr_network.Net.t -> (step list, string) result
(** The plan's steps with every {!Storm} replaced by its concrete
    [Kill_buffer] steps: [count] distinct channel buffers drawn by a
    seeded shuffle of the network's channel list, all at the storm's
    tick.  Deterministic in the plan.  Errors when a storm asks for more
    channels than the network has, or the network has none. *)

val describe : Dfr_network.Net.t -> fault -> string
(** One-line label for reports, e.g. ["kill link 0->1 vc 1"] or
    ["kill buffer 17 (B1+^0@(0,1))"]. *)
