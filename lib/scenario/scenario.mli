(** Bridging the checker's symbolic witnesses and the simulators.

    A deadlock verdict from {!Dfr_core.Checker} comes with a configuration
    (a knot of mutually blocking packets, or a True Cycle's packet set).
    These helpers seat that configuration in the matching simulator and
    report whether the network is dynamically stuck — the executable
    counterpart of the paper's necessity proofs. *)

open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

val preloads_of_knot : Deadlock_config.t -> Wormhole_sim.preload list
(** One single-buffer packet per knot state; no fillers needed (the knot is
    already saturated). *)

val preloads_of_true_cycle :
  State_space.t -> Cycle_class.packet list -> Wormhole_sim.preload list
(** The True Cycle's packets on their occupied chains, plus frozen filler
    packets holding every other free output of each blocked header — the
    "previous packet occupying this output indefinitely" of Theorem 2's
    proof. *)

val replay :
  ?wormhole_config:Wormhole_sim.config ->
  ?saf_config:Saf_sim.config ->
  ?space:State_space.t ->
  Net.t ->
  Algo.t ->
  Checker.failure ->
  bool option
(** Replays a checker failure in the appropriate simulator.
    [Some true] = deadlock confirmed dynamically; [Some false] = the
    configuration drained; [None] = this failure kind has nothing to
    replay (wait-connectivity and stuck-state failures).

    [space] lets callers holding a {!Checker.report} reuse its state
    space instead of rebuilding it (the True-Cycle filler construction
    needs the per-state output sets). *)

(** {2 Fault campaigns}

    A campaign takes a checked instance and a {!Fault} plan and re-checks
    the degraded instance after each fault (sweep: every fault alone) or
    each tick of the timeline (sequence: faults accumulate), classifying
    every verdict.  Skeleton-preserving faults ride one incremental
    {!Dfr_core.Incr} session — the k-fault sweep pays the delta cost, not
    k cold checks — and node kills fall back to cold checks of the
    rebuilt network.  The rendered campaign is byte-identical whether it
    ran incrementally or cold ([?cold]) and at any [?domains] (pinned by
    the determinism tests). *)

type classification =
  | Still_free  (** the degraded instance is still deadlock-free *)
  | Deadlocked of { kind : string; cycle : string list }
      (** the fault created a genuine deadlock (a True Cycle, knot or
          wait-connectivity failure); [cycle] names the witness buffers *)
  | Disconnected of (int * int list) list
      (** the fault severed routes: for each destination, the source
          nodes with no surviving path ({!Degrade.disconnections}) *)
  | Undetermined of string  (** the checker returned Unknown *)

type outcome = {
  at : int;  (** the plan tick *)
  label : string;  (** the fault(s) newly applied, {!Fault.describe}d *)
  killed : int list;  (** all buffer ids dead at this point (old skeleton) *)
  classification : classification;
  report : Dfr_util.Json.t;  (** the degraded instance's full report *)
  exit_code : int;
}

type campaign = {
  network : string;
  algorithm : string;
  plan_name : string option;
  seed : int;
  mode : [ `Sweep | `Sequence ];
  baseline : Dfr_util.Json.t;
  baseline_exit : int;
  space : State_space.t;  (** the pristine baseline space *)
  outcomes : outcome list;
  exit_code : int;  (** max over the baseline and every outcome *)
}

val campaign :
  ?domains:int ->
  ?cold:bool ->
  mode:[ `Sweep | `Sequence ] ->
  Net.t ->
  Algo.t ->
  Fault.t ->
  (campaign, string) result
(** Run the plan.  [?cold] forces a fresh {!Checker.check} per fault
    instead of the incremental session — same bytes, k times the cost
    (the determinism tests and benches rely on both properties). *)

val campaign_to_json : campaign -> Dfr_util.Json.t
(** The campaign envelope.  Deliberately silent about which path
    (incremental or cold) produced each report, so the two render
    byte-identically. *)

(** {2 Deadlock-seeking traffic} *)

val seeking_traffic :
  State_space.t -> length:int -> Checker.failure -> Traffic.t option
(** A workload aimed straight at a checker witness: one scripted packet
    per witness packet, following its occupied chain.  [None] when the
    failure carries no packet configuration (stuck states,
    wait-connectivity) or every witness packet starts at its own
    destination. *)
