type direction = Plus | Minus

(* Which irregular generator produced the topology, with the parameters
   the routing algorithms need to recover the wiring arithmetic. *)
type flavor =
  | Fullmesh
  | Dragonfly of { a : int; h : int; g : int }
  | Kntree of { k : int; levels : int; hosts : int }

type grid_data = {
  radices : int array;
  wrap : bool;
  strides : int array; (* strides.(i) = product of radices below i *)
}

type structure =
  | Grid of grid_data
  | Irregular of { flavor : flavor; adj : (int * direction * int) list array }
      (* adj.(u) lists (port, Plus, v) in fixed port order; ports play the
         role grid dimensions play in channel addressing *)

type t = { name : string; num_nodes : int; structure : structure }

let flip = function Plus -> Minus | Minus -> Plus

let grid t fn =
  match t.structure with
  | Grid g -> g
  | Irregular _ ->
    invalid_arg (Printf.sprintf "Topology.%s: grid topology required (got %s)" fn t.name)

let make ~name ~wrap radices =
  if Array.length radices = 0 then invalid_arg "Topology: no dimensions";
  Array.iter
    (fun k ->
      if k < 1 then invalid_arg "Topology: radix must be >= 1";
      if wrap && k < 3 then invalid_arg "Topology: torus radix must be >= 3")
    radices;
  let n = Array.length radices in
  let strides = Array.make n 1 in
  for i = 1 to n - 1 do
    strides.(i) <- strides.(i - 1) * radices.(i - 1)
  done;
  let num_nodes = strides.(n - 1) * radices.(n - 1) in
  {
    name;
    num_nodes;
    structure = Grid { radices = Array.copy radices; wrap; strides };
  }

let mesh radices =
  let dims = String.concat "x" (Array.to_list (Array.map string_of_int radices)) in
  make ~name:(Printf.sprintf "mesh-%s" dims) ~wrap:false radices

let hypercube n =
  if n < 1 then invalid_arg "Topology.hypercube: dimension must be >= 1";
  let t = make ~name:"" ~wrap:false (Array.make n 2) in
  { t with name = Printf.sprintf "hypercube-%d" n }

let torus radices =
  let dims = String.concat "x" (Array.to_list (Array.map string_of_int radices)) in
  make ~name:(Printf.sprintf "torus-%s" dims) ~wrap:true radices

let ring k =
  let t = torus [| k |] in
  { t with name = Printf.sprintf "ring-%d" k }

(* ---------------- irregular generators ---------------- *)

let irregular ~name ~flavor adj =
  { name; num_nodes = Array.length adj; structure = Irregular { flavor; adj } }

let fullmesh n =
  if n < 2 then invalid_arg "Topology.fullmesh: need at least 2 nodes";
  let adj =
    Array.init n (fun u ->
        (* port p of node u reaches the p-th other node in ascending order *)
        List.init (n - 1) (fun p ->
            let v = if p < u then p else p + 1 in
            (p, Plus, v)))
  in
  irregular ~name:(Printf.sprintf "fullmesh-%d" n) ~flavor:Fullmesh adj

(* Palmtree dragonfly: [a] routers per group, [h] global links per router,
   [g = a*h + 1] groups, one global link between every pair of groups.
   Router (grp, r) is node grp*a + r.  Ports: a-1 local ports (port j
   reaches router (r + j + 1) mod a of the same group), then h global
   ports (port a-1+l carries the group's global link number r*h + l).
   Link L of group x lands in group (x + L + 1) mod g, whose answering
   link is g - 2 - L — the palmtree assignment, which wires each pair of
   groups exactly once. *)
let dragonfly ~a ~h ?g () =
  if a < 2 then invalid_arg "Topology.dragonfly: need >= 2 routers per group";
  if h < 1 then invalid_arg "Topology.dragonfly: need >= 1 global link per router";
  let full = (a * h) + 1 in
  let g = match g with None -> full | Some g -> g in
  if g <> full then
    invalid_arg
      (Printf.sprintf
         "Topology.dragonfly: group count must be a*h + 1 = %d (fully \
          subscribed palmtree), got %d"
         full g);
  let n = g * a in
  let adj =
    Array.init n (fun u ->
        let grp = u / a and r = u mod a in
        let local =
          List.init (a - 1) (fun j -> (j, Plus, (grp * a) + ((r + j + 1) mod a)))
        in
        let global =
          List.init h (fun l ->
              let link = (r * h) + l in
              let g2 = (grp + link + 1) mod g in
              let back = g - 2 - link in
              (a - 1 + l, Plus, (g2 * a) + (back / h)))
        in
        local @ global)
  in
  irregular
    ~name:(Printf.sprintf "dragonfly-%dx%dx%d" a h g)
    ~flavor:(Dragonfly { a; h; g })
    adj

(* k-ary n-tree: k^n hosts (ids 0..k^n-1) under n levels of k^(n-1)
   switches; level 0 holds the roots, level n-1 the leaf switches.
   Switch (l, w) is node k^n + l*k^(n-1) + w, where w encodes the n-1
   base-k digits shared with the hosts below it.  A level-l switch and a
   level-(l+1) switch are wired iff their digit vectors agree everywhere
   except digit l; host p hangs off leaf switch (n-1, p mod k^(n-1)).
   Hence switch (l, w) is an ancestor of host p iff w = p (mod k^l).
   Ports: k down ports first (port m goes to the child with digit l = m,
   or to host w + m*k^(n-1) at the leaves), then k up ports (port k+m to
   the parent with digit l-1 = m; roots have none). *)
let kary_ntree ~k ~n =
  if k < 2 then invalid_arg "Topology.kary_ntree: arity must be >= 2";
  if n < 1 then invalid_arg "Topology.kary_ntree: need >= 1 level";
  let hosts = int_of_float (float_of_int k ** float_of_int n +. 0.5) in
  let per_level = hosts / k in
  let switch l w = hosts + (l * per_level) + w in
  let pow_k = Array.make n 1 in
  for i = 1 to n - 1 do
    pow_k.(i) <- pow_k.(i - 1) * k
  done;
  let num = hosts + (n * per_level) in
  let adj =
    Array.init num (fun u ->
        if u < hosts then [ (0, Plus, switch (n - 1) (u mod per_level)) ]
        else begin
          let s = u - hosts in
          let l = s / per_level and w = s mod per_level in
          let down =
            List.init k (fun m ->
                if l = n - 1 then (m, Plus, w + (m * per_level))
                else
                  let d = pow_k.(l) in
                  let w' = (w / (d * k) * (d * k)) + (m * d) + (w mod d) in
                  (m, Plus, switch (l + 1) w'))
          in
          let up =
            if l = 0 then []
            else
              List.init k (fun m ->
                  let d = pow_k.(l - 1) in
                  let w' = (w / (d * k) * (d * k)) + (m * d) + (w mod d) in
                  (k + m, Plus, switch (l - 1) w'))
          in
          down @ up
        end)
  in
  irregular
    ~name:(Printf.sprintf "kntree-%dx%d" k n)
    ~flavor:(Kntree { k; levels = n; hosts })
    adj

let name t = t.name
let num_nodes t = t.num_nodes

let is_grid t =
  match t.structure with Grid _ -> true | Irregular _ -> false

let is_torus t =
  match t.structure with Grid g -> g.wrap | Irregular _ -> false

let fullmesh_params t =
  match t.structure with
  | Irregular { flavor = Fullmesh; _ } -> Some t.num_nodes
  | _ -> None

let dragonfly_params t =
  match t.structure with
  | Irregular { flavor = Dragonfly { a; h; g }; _ } -> Some (a, h, g)
  | _ -> None

let kntree_params t =
  match t.structure with
  | Irregular { flavor = Kntree { k; levels; _ }; _ } -> Some (k, levels)
  | _ -> None

let dimensions t = Array.length (grid t "dimensions").radices

let radix t i =
  let g = grid t "radix" in
  if i < 0 || i >= Array.length g.radices then invalid_arg "Topology.radix";
  g.radices.(i)

let coordinate t node dim =
  let g = grid t "coordinate" in
  if node < 0 || node >= t.num_nodes then invalid_arg "Topology: node out of range";
  node / g.strides.(dim) mod g.radices.(dim)

let coord_of_node t node =
  Array.init (dimensions t) (fun i -> coordinate t node i)

let node_of_coord t coord =
  let g = grid t "node_of_coord" in
  if Array.length coord <> Array.length g.radices then
    invalid_arg "Topology.node_of_coord";
  let acc = ref 0 in
  for i = 0 to Array.length g.radices - 1 do
    let c = coord.(i) in
    if c < 0 || c >= g.radices.(i) then invalid_arg "Topology.node_of_coord";
    acc := !acc + (c * g.strides.(i))
  done;
  !acc

let neighbor t node dim dir =
  let g = grid t "neighbor" in
  let c = coordinate t node dim in
  let k = g.radices.(dim) in
  let c' =
    match dir with
    | Plus -> if c + 1 < k then Some (c + 1) else if g.wrap then Some 0 else None
    | Minus -> if c > 0 then Some (c - 1) else if g.wrap then Some (k - 1) else None
  in
  Option.map (fun c' -> node + ((c' - c) * g.strides.(dim))) c'

let neighbors t node =
  match t.structure with
  | Irregular { adj; _ } ->
    if node < 0 || node >= t.num_nodes then
      invalid_arg "Topology: node out of range";
    adj.(node)
  | Grid _ ->
    let acc = ref [] in
    for dim = dimensions t - 1 downto 0 do
      let try_dir dir =
        match neighbor t node dim dir with
        | Some v -> acc := (dim, dir, v) :: !acc
        | None -> ()
      in
      try_dir Minus;
      try_dir Plus
    done;
    !acc

let dim_distance g dim a b =
  let d = abs (a - b) in
  if g.wrap then min d (g.radices.(dim) - d) else d

let distance t u v =
  match t.structure with
  | Grid g ->
    let acc = ref 0 in
    for dim = 0 to Array.length g.radices - 1 do
      acc := !acc + dim_distance g dim (coordinate t u dim) (coordinate t v dim)
    done;
    !acc
  | Irregular { adj; _ } ->
    (* irregular wirings have no coordinate arithmetic; BFS over ports *)
    if u < 0 || u >= t.num_nodes || v < 0 || v >= t.num_nodes then
      invalid_arg "Topology: node out of range";
    if u = v then 0
    else begin
      let dist = Array.make t.num_nodes (-1) in
      dist.(u) <- 0;
      let q = Queue.create () in
      Queue.add u q;
      let found = ref (-1) in
      while !found < 0 && not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun (_, _, y) ->
            if dist.(y) < 0 then begin
              dist.(y) <- dist.(x) + 1;
              if y = v then found := dist.(y);
              Queue.add y q
            end)
          adj.(x)
      done;
      if !found < 0 then invalid_arg "Topology.distance: disconnected" else !found
    end

let minimal_moves t ~src ~dst =
  let g = grid t "minimal_moves" in
  let acc = ref [] in
  for dim = Array.length g.radices - 1 downto 0 do
    let cs = coordinate t src dim and cd = coordinate t dst dim in
    if cs <> cd then
      if not g.wrap then acc := (dim, if cs < cd then Plus else Minus) :: !acc
      else begin
        let k = g.radices.(dim) in
        let fwd = (cd - cs + k) mod k in
        let bwd = k - fwd in
        if fwd < bwd then acc := (dim, Plus) :: !acc
        else if bwd < fwd then acc := (dim, Minus) :: !acc
        else acc := (dim, Plus) :: (dim, Minus) :: !acc
      end
  done;
  !acc

let channels t =
  let acc = ref [] in
  for u = num_nodes t - 1 downto 0 do
    List.iter (fun (_, _, v) -> acc := (u, v) :: !acc) (neighbors t u)
  done;
  !acc

let to_digraph t =
  let g = Dfr_graph.Digraph.create (num_nodes t) in
  List.iter (fun (u, v) -> Dfr_graph.Digraph.add_edge g u v) (channels t);
  g

let pp_node t fmt node =
  match t.structure with
  | Grid _ ->
    let coord = coord_of_node t node in
    Format.fprintf fmt "(%s)"
      (String.concat "," (Array.to_list (Array.map string_of_int coord)))
  | Irregular _ -> Format.fprintf fmt "n%d" node

let pp_direction fmt = function
  | Plus -> Format.pp_print_char fmt '+'
  | Minus -> Format.pp_print_char fmt '-'

(* ------------------------------------------------------------------ *)
(* the textual shorthand grammar, shared by the dfcheck CLI and the
   spec language's `topology' clause *)

let grammar_summary =
  "hypercube:N, mesh:AxBx..., torus:AxBx..., ring:N, fullmesh:N, \
   dragonfly:AxH[xG] or kntree:KxN"

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_tok kind tok ~what ~lo ~hi =
    let range =
      if hi = max_int then Printf.sprintf ">= %d" lo
      else Printf.sprintf "in %d..%d" lo hi
    in
    match int_of_string_opt tok with
    | None -> err "%s: %S is not an integer (expected %s %s)" kind tok what range
    | Some n when n < lo || n > hi ->
      err "%s: %s %d out of range (%s expected)" kind what n range
    | Some n -> Ok n
  in
  let dims kind tok ~min_radix build =
    let parts = String.split_on_char 'x' tok in
    if parts = [ "" ] then
      err "%s: empty dimension list; expected e.g. %s:4x4" kind kind
    else
      let rec collect i acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | p :: rest -> (
          match int_of_string_opt p with
          | None ->
            err "%s: dimension %d token %S is not an integer (expected e.g. %s:4x4)"
              kind i p kind
          | Some r when r < min_radix ->
            err "%s: dimension %d has radix %d (from %S); %s radices must be >= %d"
              kind i r p kind min_radix
          | Some r -> collect (i + 1) (r :: acc) rest)
      in
      match collect 1 [] parts with
      | Error _ as e -> e
      | Ok radices -> Ok (build radices)
  in
  let fields kind tok ~expect =
    let parts = String.split_on_char 'x' tok in
    let num_fields = List.length parts in
    if not (List.mem num_fields expect) then
      err "%s: expected %s 'x'-separated fields, got %d (from %S)" kind
        (String.concat " or " (List.map string_of_int expect))
        num_fields tok
    else
      let rec collect i acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match int_of_string_opt p with
          | None -> err "%s: field %d token %S is not an integer" kind i p
          | Some v -> collect (i + 1) (v :: acc) rest)
      in
      collect 1 [] parts
  in
  let guarded f = try f () with Invalid_argument m -> Error m in
  match String.index_opt s ':' with
  | None -> err "missing ':' in topology %S; expected %s" s grammar_summary
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "hypercube" -> (
      match int_tok kind rest ~what:"dimension" ~lo:1 ~hi:10 with
      | Ok n -> Ok (hypercube n)
      | Error _ as e -> e)
    | "ring" -> (
      match int_tok kind rest ~what:"size" ~lo:3 ~hi:max_int with
      | Ok k -> Ok (ring k)
      | Error _ as e -> e)
    | "mesh" -> dims kind rest ~min_radix:1 mesh
    | "torus" -> dims kind rest ~min_radix:3 torus
    | "fullmesh" -> (
      match int_tok kind rest ~what:"size" ~lo:2 ~hi:max_int with
      | Ok n -> Ok (fullmesh n)
      | Error _ as e -> e)
    | "dragonfly" -> (
      match fields kind rest ~expect:[ 2; 3 ] with
      | Error _ as e -> e
      | Ok [ a; h ] -> guarded (fun () -> Ok (dragonfly ~a ~h ()))
      | Ok [ a; h; g ] -> guarded (fun () -> Ok (dragonfly ~a ~h ~g ()))
      | Ok _ -> assert false)
    | "kntree" | "fattree" -> (
      match fields kind rest ~expect:[ 2 ] with
      | Error _ as e -> e
      | Ok [ k; n ] ->
        if n > 6 then err "%s: %d levels is out of range 1..6" kind n
        else guarded (fun () -> Ok (kary_ntree ~k ~n))
      | Ok _ -> assert false)
    | _ -> err "unknown topology kind %S; expected %s" kind grammar_summary)
