type direction = Plus | Minus

type t = {
  name : string;
  radices : int array;
  wrap : bool;
  strides : int array; (* strides.(i) = product of radices below i *)
  num_nodes : int;
}

let flip = function Plus -> Minus | Minus -> Plus

let make ~name ~wrap radices =
  if Array.length radices = 0 then invalid_arg "Topology: no dimensions";
  Array.iter
    (fun k ->
      if k < 1 then invalid_arg "Topology: radix must be >= 1";
      if wrap && k < 3 then invalid_arg "Topology: torus radix must be >= 3")
    radices;
  let n = Array.length radices in
  let strides = Array.make n 1 in
  for i = 1 to n - 1 do
    strides.(i) <- strides.(i - 1) * radices.(i - 1)
  done;
  let num_nodes = strides.(n - 1) * radices.(n - 1) in
  { name; radices = Array.copy radices; wrap; strides; num_nodes }

let mesh radices =
  let dims = String.concat "x" (Array.to_list (Array.map string_of_int radices)) in
  make ~name:(Printf.sprintf "mesh-%s" dims) ~wrap:false radices

let hypercube n =
  if n < 1 then invalid_arg "Topology.hypercube: dimension must be >= 1";
  let t = make ~name:"" ~wrap:false (Array.make n 2) in
  { t with name = Printf.sprintf "hypercube-%d" n }

let torus radices =
  let dims = String.concat "x" (Array.to_list (Array.map string_of_int radices)) in
  make ~name:(Printf.sprintf "torus-%s" dims) ~wrap:true radices

let ring k =
  let t = torus [| k |] in
  { t with name = Printf.sprintf "ring-%d" k }

let name t = t.name
let is_torus t = t.wrap
let num_nodes t = t.num_nodes
let dimensions t = Array.length t.radices

let radix t i =
  if i < 0 || i >= dimensions t then invalid_arg "Topology.radix";
  t.radices.(i)

let coordinate t node dim =
  if node < 0 || node >= t.num_nodes then invalid_arg "Topology: node out of range";
  node / t.strides.(dim) mod t.radices.(dim)

let coord_of_node t node =
  Array.init (dimensions t) (fun i -> coordinate t node i)

let node_of_coord t coord =
  if Array.length coord <> dimensions t then invalid_arg "Topology.node_of_coord";
  let acc = ref 0 in
  for i = 0 to dimensions t - 1 do
    let c = coord.(i) in
    if c < 0 || c >= t.radices.(i) then invalid_arg "Topology.node_of_coord";
    acc := !acc + (c * t.strides.(i))
  done;
  !acc

let neighbor t node dim dir =
  let c = coordinate t node dim in
  let k = t.radices.(dim) in
  let c' =
    match dir with
    | Plus -> if c + 1 < k then Some (c + 1) else if t.wrap then Some 0 else None
    | Minus -> if c > 0 then Some (c - 1) else if t.wrap then Some (k - 1) else None
  in
  Option.map (fun c' -> node + ((c' - c) * t.strides.(dim))) c'

let neighbors t node =
  let acc = ref [] in
  for dim = dimensions t - 1 downto 0 do
    let try_dir dir =
      match neighbor t node dim dir with
      | Some v -> acc := (dim, dir, v) :: !acc
      | None -> ()
    in
    try_dir Minus;
    try_dir Plus
  done;
  !acc

let dim_distance t dim a b =
  let d = abs (a - b) in
  if t.wrap then min d (t.radices.(dim) - d) else d

let distance t u v =
  let acc = ref 0 in
  for dim = 0 to dimensions t - 1 do
    acc := !acc + dim_distance t dim (coordinate t u dim) (coordinate t v dim)
  done;
  !acc

let minimal_moves t ~src ~dst =
  let acc = ref [] in
  for dim = dimensions t - 1 downto 0 do
    let cs = coordinate t src dim and cd = coordinate t dst dim in
    if cs <> cd then
      if not t.wrap then
        acc := (dim, if cs < cd then Plus else Minus) :: !acc
      else begin
        let k = t.radices.(dim) in
        let fwd = (cd - cs + k) mod k in
        let bwd = k - fwd in
        if fwd < bwd then acc := (dim, Plus) :: !acc
        else if bwd < fwd then acc := (dim, Minus) :: !acc
        else acc := (dim, Plus) :: (dim, Minus) :: !acc
      end
  done;
  !acc

let channels t =
  let acc = ref [] in
  for u = num_nodes t - 1 downto 0 do
    List.iter (fun (_, _, v) -> acc := (u, v) :: !acc) (neighbors t u)
  done;
  !acc

let to_digraph t =
  let g = Dfr_graph.Digraph.create (num_nodes t) in
  List.iter (fun (u, v) -> Dfr_graph.Digraph.add_edge g u v) (channels t);
  g

let pp_node t fmt node =
  let coord = coord_of_node t node in
  Format.fprintf fmt "(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int coord)))

let pp_direction fmt = function
  | Plus -> Format.pp_print_char fmt '+'
  | Minus -> Format.pp_print_char fmt '-'

(* ------------------------------------------------------------------ *)
(* the textual shorthand grammar, shared by the dfcheck CLI and the
   spec language's `topology' clause *)

let grammar_summary = "hypercube:N, mesh:AxBx..., torus:AxBx... or ring:N"

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let int_tok kind tok ~what ~lo ~hi =
    let range =
      if hi = max_int then Printf.sprintf ">= %d" lo
      else Printf.sprintf "in %d..%d" lo hi
    in
    match int_of_string_opt tok with
    | None -> err "%s: %S is not an integer (expected %s %s)" kind tok what range
    | Some n when n < lo || n > hi ->
      err "%s: %s %d out of range (%s expected)" kind what n range
    | Some n -> Ok n
  in
  let dims kind tok ~min_radix build =
    let parts = String.split_on_char 'x' tok in
    if parts = [ "" ] then
      err "%s: empty dimension list; expected e.g. %s:4x4" kind kind
    else
      let rec collect i acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | p :: rest -> (
          match int_of_string_opt p with
          | None ->
            err "%s: dimension %d token %S is not an integer (expected e.g. %s:4x4)"
              kind i p kind
          | Some r when r < min_radix ->
            err "%s: dimension %d has radix %d (from %S); %s radices must be >= %d"
              kind i r p kind min_radix
          | Some r -> collect (i + 1) (r :: acc) rest)
      in
      match collect 1 [] parts with
      | Error _ as e -> e
      | Ok radices -> Ok (build radices)
  in
  match String.index_opt s ':' with
  | None ->
    err "missing ':' in topology %S; expected %s" s grammar_summary
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "hypercube" -> (
      match int_tok kind rest ~what:"dimension" ~lo:1 ~hi:10 with
      | Ok n -> Ok (hypercube n)
      | Error _ as e -> e)
    | "ring" -> (
      match int_tok kind rest ~what:"size" ~lo:3 ~hi:max_int with
      | Ok k -> Ok (ring k)
      | Error _ as e -> e)
    | "mesh" -> dims kind rest ~min_radix:1 mesh
    | "torus" -> dims kind rest ~min_radix:3 torus
    | _ -> err "unknown topology kind %S; expected %s" kind grammar_summary)
