(** Orthogonal interconnection-network topologies.

    Covers every topology the paper touches: n-dimensional meshes
    (Theorem 4), hypercubes (Theorems 5-6, Figure 3) and k-ary n-cubes /
    tori / rings (the "any network topology" claim of the conclusion).
    Nodes are dense integers obtained by mixed-radix encoding of their
    coordinates, so they can index arrays directly. *)

type t

type direction = Plus | Minus

val flip : direction -> direction

val mesh : int array -> t
(** [mesh radices] is an n-dimensional mesh; [radices.(i)] is the number of
    nodes along dimension [i] (each must be >= 2 except that a
    one-dimensional [mesh [|k|]] is a line).  Raises [Invalid_argument] on
    an empty array or radices < 1. *)

val hypercube : int -> t
(** [hypercube n] is the binary n-cube (a mesh of [n] radix-2 dimensions). *)

val torus : int array -> t
(** Like {!mesh} but with wrap-around links.  Radices must be >= 3 so that
    the two directed wrap channels are distinct physical links. *)

val ring : int -> t
(** [ring k] is [torus [| k |]]. *)

val fullmesh : int -> t
(** [fullmesh n] connects every ordered pair of the [n] nodes directly
    (port [p] of node [u] reaches the [p]-th other node in ascending
    order).  The HOTI'25 full-mesh setting: one hop suffices, so minimal
    routing is trivially deadlock-free even with one virtual channel. *)

val dragonfly : a:int -> h:int -> ?g:int -> unit -> t
(** Fully subscribed palmtree dragonfly: [a] routers per group, [h] global
    links per router, [a*h + 1] groups with exactly one global link
    between every pair.  [g], when given, must equal [a*h + 1] (it exists
    so shorthand instances can state their size explicitly).  Router
    [(grp, r)] is node [grp*a + r]; local ports come first, then global
    ports.  Raises [Invalid_argument] on out-of-range parameters. *)

val kary_ntree : k:int -> n:int -> t
(** The k-ary n-tree fat tree: [k^n] hosts (nodes [0..k^n-1]) under [n]
    levels of [k^(n-1)] switches each, roots at level 0.  Every node —
    hosts and switches — injects and delivers, matching the checker's
    all-pairs state seeding. *)

val name : t -> string

val is_grid : t -> bool
(** Whether the topology is an orthogonal grid (mesh/torus/hypercube
    family).  Coordinate accessors ({!coordinate}, {!dimensions},
    {!radix}, {!minimal_moves}, {!neighbor}, ...) raise
    [Invalid_argument] on irregular (fullmesh/dragonfly/fat-tree)
    topologies; {!neighbors}, {!distance}, {!channels} and
    {!to_digraph} work on every topology. *)

val fullmesh_params : t -> int option
(** Node count when the topology is a full mesh. *)

val dragonfly_params : t -> (int * int * int) option
(** [(a, h, g)] when the topology is a dragonfly. *)

val kntree_params : t -> (int * int) option
(** [(k, n)] when the topology is a k-ary n-tree. *)

val is_torus : t -> bool
val num_nodes : t -> int
val dimensions : t -> int
val radix : t -> int -> int

val coord_of_node : t -> int -> int array
(** Fresh array of coordinates, lowest dimension first. *)

val node_of_coord : t -> int array -> int
val coordinate : t -> int -> int -> int
(** [coordinate t node dim] without allocating the full vector. *)

val neighbor : t -> int -> int -> direction -> int option
(** [neighbor t node dim dir] is the adjacent node in that direction, or
    [None] at a mesh boundary. *)

val neighbors : t -> int -> (int * direction * int) list
(** All [(dim, dir, node)] triples adjacent to a node. *)

val distance : t -> int -> int -> int
(** Minimal hop count (wrap-aware on tori). *)

val minimal_moves : t -> src:int -> dst:int -> (int * direction) list
(** Directions that strictly decrease the distance to [dst].  On a torus a
    dimension whose two ways around are equidistant contributes both
    directions. *)

val channels : t -> (int * int) list
(** Every directed physical channel [(u, v)]. *)

val to_digraph : t -> Dfr_graph.Digraph.t
(** The directed physical-channel graph over nodes. *)

val of_string : string -> (t, string) result
(** Parse the textual shorthand shared by the [dfcheck] CLI and the spec
    language's [topology] clause: [hypercube:N] (N in 1..10), [mesh:AxBx...]
    (radices >= 1), [torus:AxBx...] (radices >= 3), [ring:N] (N >= 3),
    [fullmesh:N] (N >= 2), [dragonfly:AxH] or [dragonfly:AxHxG] (G = A*H+1)
    and [kntree:KxN] / [fattree:KxN] (K >= 2, N in 1..6).  Errors name the
    offending token and the valid range. *)

val grammar_summary : string
(** One-line reminder of the accepted forms, for error messages. *)

val pp_node : t -> Format.formatter -> int -> unit
(** Prints the coordinate vector, e.g. ["(2,0,1)"]. *)

val pp_direction : Format.formatter -> direction -> unit
