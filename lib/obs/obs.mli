(** Structured tracing and metrics for the checker pipeline and the
    simulators.

    The layer is {e off by default}: every probe ([span], [count],
    [gauge]) first reads one atomic word and returns immediately when no
    collector is installed, so instrumented code paths cost a few
    nanoseconds per probe when tracing is disabled (asserted to be < 2%
    of the bwg-build benchmark by [bench micro]).

    When enabled ({!enable}), probes record into a process-global
    collector that is safe to use from multiple OCaml domains:

    - {b spans} measure wall-clock intervals ([span "bwg.build" f]) with
      proper nesting (a per-domain depth is maintained in domain-local
      storage) and per-domain attribution — spans recorded by a spawned
      domain carry that domain's id, which the Chrome trace exporter maps
      to a [tid] so parallel phases render as parallel tracks;
    - {b counters} are monotonically accumulated integers ([count
      "bwg.edges" n] adds [n]); additions commute, so totals are
      deterministic even when recorded from racing domains, provided the
      instrumented program performs a deterministic amount of counted
      work (see DESIGN.md "Observability architecture" for the one
      documented exception);
    - {b gauges} are last-write-wins floats for end-of-run summary values
      (e.g. flits per 1k cycles).

    Two exporters:

    - {!trace_json} / {!write_trace}: Chrome [trace_event] format
      (load the file in [chrome://tracing] or Perfetto for a flamegraph);
    - {!metrics_json}: a flat object of counters, gauges and per-name
      span aggregates, suitable for merging into checker/sim reports.

    Timestamps come from {!Dfr_util.Monotime} ([CLOCK_MONOTONIC])
    re-based to the collector's installation instant, so they are
    immune to wall-clock steps (NTP adjustments can otherwise produce
    negative span durations mid-run).  The wall-clock time at
    installation is captured once and exported as [epochWallUs] in
    {!trace_json} for consumers that want calendar alignment. *)

val enable : unit -> unit
(** Install a fresh collector (discarding any previous one). *)

val disable : unit -> unit
(** Remove the collector; probes become no-ops again.  Recorded data is
    dropped, so export before disabling. *)

val enabled : unit -> bool

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()], recording a completed-duration event when
    a collector is installed.  The event is recorded (and the nesting
    depth restored) even when [f] raises. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the counter [name]. *)

val gauge : string -> float -> unit
(** [gauge name v] sets the gauge [name] to [v] (last write wins). *)

(** {2 Reading the collector} *)

val counters : unit -> (string * int) list
(** Current counter values, sorted by name; [[]] when disabled. *)

val counter_calls : unit -> (string * int) list
(** How many times each counter was recorded (as opposed to its
    accumulated value — a counter fed magnitudes, like
    [bwg.closure.words], has few calls but a large value).  Sorted by
    name; [[]] when disabled. *)

val gauges : unit -> (string * float) list

val span_totals : unit -> (string * (int * float)) list
(** Per span name: [(occurrences, total wall-clock µs)], sorted by
    name; [[]] when disabled. *)

(** {2 Process memory} *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of the process in kB ([VmHWM] from
    [/proc/self/status]), covering every domain's stacks and minor heaps
    as well as the major heap; [None] when the file is unavailable
    (non-Linux).  Works whether or not a collector is installed. *)

val reset_peak_rss : unit -> bool
(** Reset the kernel's peak-RSS watermark to the current RSS (write
    ["5"] to [/proc/self/clear_refs]) so {!peak_rss_kb} measures one
    phase of a run.  Returns [false] when the platform refuses. *)

val mem_json : unit -> Dfr_util.Json.t
(** Snapshot of process memory: [peak_rss_kb] (when available) plus
    [Gc.quick_stat] major-heap figures ([major_words],
    [top_heap_words], [heap_words], collection counts). *)

val metrics_json : unit -> Dfr_util.Json.t
(** [{"counters": {..}, "gauges": {..}, "spans": {name: {"count": n,
    "total_us": µs}}, "mem": {..}}] with every object sorted by key.
    Counter values are deterministic across [--domains] settings (see
    above); span timings and the [mem] section are not. *)

val trace_json : unit -> Dfr_util.Json.t
(** Chrome [trace_event] document: [{"traceEvents": [...],
    "displayTimeUnit": "ms", "epochWallUs": t}].  Each event is a
    complete ("ph": "X") event with [ts]/[dur] in microseconds (from the
    monotonic clock, relative to collector installation), [pid] 0 and
    [tid] the OCaml domain id that recorded it.  [epochWallUs] is the
    wall-clock time of collector installation in µs since the Unix
    epoch, so [epochWallUs + ts] approximates an event's calendar time;
    the field is present only while the collector is installed. *)

val write_trace : string -> unit
(** Write {!trace_json} (pretty-printed) to a file. *)
