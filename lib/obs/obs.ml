open Dfr_util

type event = {
  name : string;
  start_us : float; (* relative to the collector's epoch *)
  dur_us : float;
  domain : int;
  depth : int;
}

type collector = {
  mutable events : event list; (* most recent first *)
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  mutex : Mutex.t;
  epoch : float;
}

(* One global slot.  Probes read it with a single [Atomic.get]; [None]
   (the default) makes every probe a near-free no-op. *)
let state : collector option Atomic.t = Atomic.make None

let now_us () = Unix.gettimeofday () *. 1e6

let enable () =
  Atomic.set state
    (Some
       {
         events = [];
         counters = Hashtbl.create 32;
         gauges = Hashtbl.create 16;
         mutex = Mutex.create ();
         epoch = now_us ();
       })

let disable () = Atomic.set state None
let enabled () = Atomic.get state <> None

(* Nesting depth is tracked per domain: spans recorded inside a spawned
   worker nest relative to that worker, not to the spawning domain. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let span name f =
  match Atomic.get state with
  | None -> f ()
  | Some c ->
    let d = Domain.DLS.get depth_key in
    let depth = !d in
    d := depth + 1;
    let t0 = now_us () in
    let record () =
      let t1 = now_us () in
      d := depth;
      let ev =
        {
          name;
          start_us = t0 -. c.epoch;
          dur_us = t1 -. t0;
          domain = (Domain.self () :> int);
          depth;
        }
      in
      locked c (fun () -> c.events <- ev :: c.events)
    in
    Fun.protect ~finally:record f

let count name n =
  match Atomic.get state with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        let cur = Option.value (Hashtbl.find_opt c.counters name) ~default:0 in
        Hashtbl.replace c.counters name (cur + n))

let gauge name v =
  match Atomic.get state with
  | None -> ()
  | Some c -> locked c (fun () -> Hashtbl.replace c.gauges name v)

(* ------------------------------------------------------------------ *)
(* reading                                                             *)

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters () =
  match Atomic.get state with
  | None -> []
  | Some c -> locked c (fun () -> sorted_bindings c.counters)

let gauges () =
  match Atomic.get state with
  | None -> []
  | Some c -> locked c (fun () -> sorted_bindings c.gauges)

let events () =
  match Atomic.get state with
  | None -> []
  | Some c ->
    let evs = locked c (fun () -> c.events) in
    (* chronological, ties broken by depth so a parent precedes the
       children that started in the same clock tick *)
    List.sort
      (fun a b ->
        match compare a.start_us b.start_us with
        | 0 -> compare a.depth b.depth
        | n -> n)
      evs

let span_totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let n, total =
        Option.value (Hashtbl.find_opt tbl ev.name) ~default:(0, 0.0)
      in
      Hashtbl.replace tbl ev.name (n + 1, total +. ev.dur_us))
    (events ());
  sorted_bindings tbl

(* ------------------------------------------------------------------ *)
(* exporters                                                           *)

let metrics_json () =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges ())) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (k, (n, total)) ->
               ( k,
                 Json.Obj
                   [ ("count", Json.Int n); ("total_us", Json.Float total) ] ))
             (span_totals ())) );
    ]

let trace_json () =
  let event ev =
    Json.Obj
      [
        ("name", Json.String ev.name);
        ("cat", Json.String "dfr");
        ("ph", Json.String "X");
        ("ts", Json.Float ev.start_us);
        ("dur", Json.Float ev.dur_us);
        ("pid", Json.Int 0);
        ("tid", Json.Int ev.domain);
        ("args", Json.Obj [ ("depth", Json.Int ev.depth) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_trace file =
  let oc = open_out file in
  output_string oc (Json.to_string_pretty (trace_json ()));
  output_char oc '\n';
  close_out oc
