open Dfr_util

type event = {
  name : string;
  start_us : float; (* relative to the collector's epoch *)
  dur_us : float;
  domain : int;
  depth : int;
}

type collector = {
  mutable events : event list; (* most recent first *)
  counters : (string, int) Hashtbl.t;
  counter_calls : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  mutex : Mutex.t;
  epoch : float;
  epoch_wall_us : float;
      (* wall clock captured at [enable], so trace consumers can place the
         monotonic timeline in calendar time without the timestamps
         themselves ever stepping *)
}

(* One global slot.  Probes read it with a single [Atomic.get]; [None]
   (the default) makes every probe a near-free no-op. *)
let state : collector option Atomic.t = Atomic.make None

(* Span timestamps come from CLOCK_MONOTONIC, not [Unix.gettimeofday]:
   an NTP step mid-run would otherwise move the wall clock under an open
   span and export negative durations (Chrome's trace viewer renders
   those as zero-width events at the wrong offset).  Monotonic readings
   never go backwards, which the obs test suite pins. *)
let now_us () = Int64.to_float (Monotime.now_ns ()) *. 1e-3

let enable () =
  Atomic.set state
    (Some
       {
         events = [];
         counters = Hashtbl.create 32;
         counter_calls = Hashtbl.create 32;
         gauges = Hashtbl.create 16;
         mutex = Mutex.create ();
         epoch = now_us ();
         epoch_wall_us = Unix.gettimeofday () *. 1e6;
       })

let disable () = Atomic.set state None
let enabled () = Atomic.get state <> None

(* Nesting depth is tracked per domain: spans recorded inside a spawned
   worker nest relative to that worker, not to the spawning domain. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let span name f =
  match Atomic.get state with
  | None -> f ()
  | Some c ->
    let d = Domain.DLS.get depth_key in
    let depth = !d in
    d := depth + 1;
    let t0 = now_us () in
    let record () =
      let t1 = now_us () in
      d := depth;
      let ev =
        {
          name;
          start_us = t0 -. c.epoch;
          dur_us = t1 -. t0;
          domain = (Domain.self () :> int);
          depth;
        }
      in
      locked c (fun () -> c.events <- ev :: c.events)
    in
    Fun.protect ~finally:record f

let count name n =
  match Atomic.get state with
  | None -> ()
  | Some c ->
    locked c (fun () ->
        let cur = Option.value (Hashtbl.find_opt c.counters name) ~default:0 in
        Hashtbl.replace c.counters name (cur + n);
        let calls = Option.value (Hashtbl.find_opt c.counter_calls name) ~default:0 in
        Hashtbl.replace c.counter_calls name (calls + 1))

let gauge name v =
  match Atomic.get state with
  | None -> ()
  | Some c -> locked c (fun () -> Hashtbl.replace c.gauges name v)

(* ------------------------------------------------------------------ *)
(* reading                                                             *)

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters () =
  match Atomic.get state with
  | None -> []
  | Some c -> locked c (fun () -> sorted_bindings c.counters)

let counter_calls () =
  match Atomic.get state with
  | None -> []
  | Some c -> locked c (fun () -> sorted_bindings c.counter_calls)

let gauges () =
  match Atomic.get state with
  | None -> []
  | Some c -> locked c (fun () -> sorted_bindings c.gauges)

let events () =
  match Atomic.get state with
  | None -> []
  | Some c ->
    let evs = locked c (fun () -> c.events) in
    (* chronological, ties broken by depth so a parent precedes the
       children that started in the same clock tick *)
    List.sort
      (fun a b ->
        match compare a.start_us b.start_us with
        | 0 -> compare a.depth b.depth
        | n -> n)
      evs

let span_totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let n, total =
        Option.value (Hashtbl.find_opt tbl ev.name) ~default:(0, 0.0)
      in
      Hashtbl.replace tbl ev.name (n + 1, total +. ev.dur_us))
    (events ());
  sorted_bindings tbl

(* ------------------------------------------------------------------ *)
(* process memory                                                      *)

(* VmHWM is the process's peak resident set since start (or since the
   last reset); it covers everything the OCaml heap statistics miss —
   the minor heaps of spawned domains, malloc'd bigarrays, the binary
   itself. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          close_in ic;
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
            (fun kb -> Some kb)
        end
        else scan ()
      | exception End_of_file ->
        close_in ic;
        None
    in
    scan ()
  with Sys_error _ | Scanf.Scan_failure _ | Failure _ -> None

(* Writing "5" to clear_refs resets VmHWM to the current RSS, so peaks
   can be attributed to one phase of a run.  Linux-only; returns whether
   the reset took. *)
let reset_peak_rss () =
  try
    let oc = open_out "/proc/self/clear_refs" in
    output_string oc "5\n";
    close_out oc;
    true
  with Sys_error _ -> false

let mem_json () =
  let gc = Gc.quick_stat () in
  let rss =
    match peak_rss_kb () with Some kb -> [ ("peak_rss_kb", Json.Int kb) ] | None -> []
  in
  Json.Obj
    (rss
    @ [
        ("major_words", Json.Float gc.Gc.major_words);
        ("top_heap_words", Json.Int gc.Gc.top_heap_words);
        ("heap_words", Json.Int gc.Gc.heap_words);
        ("major_collections", Json.Int gc.Gc.major_collections);
        ("minor_collections", Json.Int gc.Gc.minor_collections);
      ])

(* ------------------------------------------------------------------ *)
(* exporters                                                           *)

let metrics_json () =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges ())) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (k, (n, total)) ->
               ( k,
                 Json.Obj
                   [ ("count", Json.Int n); ("total_us", Json.Float total) ] ))
             (span_totals ())) );
      ("mem", mem_json ());
    ]

let trace_json () =
  let event ev =
    Json.Obj
      [
        ("name", Json.String ev.name);
        ("cat", Json.String "dfr");
        ("ph", Json.String "X");
        ("ts", Json.Float ev.start_us);
        ("dur", Json.Float ev.dur_us);
        ("pid", Json.Int 0);
        ("tid", Json.Int ev.domain);
        ("args", Json.Obj [ ("depth", Json.Int ev.depth) ]);
      ]
  in
  let epoch_wall =
    match Atomic.get state with
    | None -> []
    | Some c ->
      (* lets trace consumers map the monotonic "ts" axis back onto
         calendar time: wall ≈ epoch_wall_us + ts *)
      [ ("epochWallUs", Json.Float c.epoch_wall_us) ]
  in
  Json.Obj
    ([
       ("traceEvents", Json.List (List.map event (events ())));
       ("displayTimeUnit", Json.String "ms");
     ]
    @ epoch_wall)

let write_trace file =
  let oc = open_out file in
  output_string oc (Json.to_string_pretty (trace_json ()));
  output_char oc '\n';
  close_out oc
