/* Monotonic clock for deadline arithmetic.

   CLOCK_MONOTONIC is immune to NTP steps and manual clock changes, which
   wall-clock deadlines (Unix.gettimeofday) are not.  Readings are
   nanoseconds from an arbitrary origin; only differences are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value dfr_monotime_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0) QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_int64(
      (int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>

CAMLprim value dfr_monotime_ns(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
#endif
