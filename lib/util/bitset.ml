type t = int

let check_elt i =
  if i < 0 || i > 61 then invalid_arg "Bitset: element out of [0, 61]"

let empty = 0
let is_empty s = s = 0

let singleton i =
  check_elt i;
  1 lsl i

let mem i s =
  check_elt i;
  s land (1 lsl i) <> 0

let add i s = s lor singleton i
let remove i s = s land lnot (singleton i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + 1) (s land (s - 1)) in
  go 0 s

let min_elt s =
  if s = 0 then raise Not_found;
  (* index of lowest set bit *)
  let rec go i s = if s land 1 = 1 then i else go (i + 1) (s lsr 1) in
  go 0 s

let max_elt s =
  if s = 0 then raise Not_found;
  let rec go i s = if s = 1 then i else go (i + 1) (s lsr 1) in
  go 0 s

let fold f s init =
  let rec go acc s =
    if s = 0 then acc
    else
      let i = min_elt s in
      go (f i acc) (remove i s)
  in
  go init s

let iter f s = fold (fun i () -> f i) s ()
let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun s i -> add i s) empty l

let full n =
  if n < 0 || n > 61 then invalid_arg "Bitset.full";
  (1 lsl n) - 1

let subsets s =
  if cardinal s > 16 then invalid_arg "Bitset.subsets: too large";
  (* enumerate submasks of s in increasing order of the complemented walk *)
  let rec go acc sub =
    let acc = sub :: acc in
    if sub = s then List.rev acc else go acc ((sub - s) land s)
  in
  go [] 0

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    (elements s)

module Dense = struct
  (* 62 bits per word keeps every mask a non-boxed OCaml int. *)
  let bits = 62

  type t = { len : int; words : int array }

  let create len =
    if len < 0 then invalid_arg "Bitset.Dense.create: negative length";
    { len; words = Array.make ((len + bits - 1) / bits) 0 }

  let length s = s.len

  let check s i =
    if i < 0 || i >= s.len then invalid_arg "Bitset.Dense: element out of range"

  let mem s i =
    check s i;
    s.words.(i / bits) land (1 lsl (i mod bits)) <> 0

  let add s i =
    check s i;
    let w = i / bits in
    s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits))

  let union_into ~into src =
    if into.len <> src.len then invalid_arg "Bitset.Dense.union_into: lengths differ";
    for w = 0 to Array.length into.words - 1 do
      into.words.(w) <- into.words.(w) lor src.words.(w)
    done

  let cardinal s =
    let count x =
      let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
      go 0 x
    in
    Array.fold_left (fun acc w -> acc + count w) 0 s.words

  (* index of an isolated bit: binary search over the word, six branches
     instead of a shift-per-position loop *)
  let bit_index b =
    let i = ref 0 and b = ref b in
    if !b land 0xFFFFFFFF = 0 then begin i := 32; b := !b lsr 32 end;
    if !b land 0xFFFF = 0 then begin i := !i + 16; b := !b lsr 16 end;
    if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
    if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
    if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
    if !b land 0x1 = 0 then i := !i + 1;
    !i

  let iter f s =
    for w = 0 to Array.length s.words - 1 do
      let m = ref s.words.(w) in
      let base = w * bits in
      while !m <> 0 do
        (* isolate and clear the lowest set bit *)
        f (base + bit_index (!m land - !m));
        m := !m land (!m - 1)
      done
    done

  let fold f s init =
    let acc = ref init in
    iter (fun i -> acc := f i !acc) s;
    !acc

  let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

  (* Many same-width rows in one flat word array: the allocation pattern
     of per-component reachability closures (one row per SCC), where
     creating hundreds of individual [t] values would dominate. *)
  module Matrix = struct
    type t = { rows : int; len : int; nw : int; words : int array }

    let create ~rows ~len =
      if rows < 0 || len < 0 then invalid_arg "Bitset.Dense.Matrix.create";
      let nw = (len + bits - 1) / bits in
      { rows; len; nw; words = Array.make (rows * nw) 0 }

    let rows m = m.rows
    let length m = m.len

    let check m r i =
      if r < 0 || r >= m.rows || i < 0 || i >= m.len then
        invalid_arg "Bitset.Dense.Matrix: out of range"

    let add m r i =
      check m r i;
      let w = (r * m.nw) + (i / bits) in
      m.words.(w) <- m.words.(w) lor (1 lsl (i mod bits))

    let mem m r i =
      check m r i;
      m.words.((r * m.nw) + (i / bits)) land (1 lsl (i mod bits)) <> 0

    let union_rows m ~into ~src =
      if into < 0 || into >= m.rows || src < 0 || src >= m.rows then
        invalid_arg "Bitset.Dense.Matrix.union_rows";
      let a = into * m.nw and b = src * m.nw in
      for k = 0 to m.nw - 1 do
        m.words.(a + k) <- m.words.(a + k) lor m.words.(b + k)
      done

    let iter_row f m r =
      if r < 0 || r >= m.rows then invalid_arg "Bitset.Dense.Matrix.iter_row";
      let off = r * m.nw in
      for w = 0 to m.nw - 1 do
        let mask = ref m.words.(off + w) in
        let base = w * bits in
        while !mask <> 0 do
          f (base + bit_index (!mask land - !mask));
          mask := !mask land (!mask - 1)
        done
      done
  end
end
