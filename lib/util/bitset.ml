type t = int

let check_elt i =
  if i < 0 || i > 61 then invalid_arg "Bitset: element out of [0, 61]"

let empty = 0
let is_empty s = s = 0

let singleton i =
  check_elt i;
  1 lsl i

let mem i s =
  check_elt i;
  s land (1 lsl i) <> 0

let add i s = s lor singleton i
let remove i s = s land lnot (singleton i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + 1) (s land (s - 1)) in
  go 0 s

let min_elt s =
  if s = 0 then raise Not_found;
  (* index of lowest set bit *)
  let rec go i s = if s land 1 = 1 then i else go (i + 1) (s lsr 1) in
  go 0 s

let max_elt s =
  if s = 0 then raise Not_found;
  let rec go i s = if s = 1 then i else go (i + 1) (s lsr 1) in
  go 0 s

let fold f s init =
  let rec go acc s =
    if s = 0 then acc
    else
      let i = min_elt s in
      go (f i acc) (remove i s)
  in
  go init s

let iter f s = fold (fun i () -> f i) s ()
let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun s i -> add i s) empty l

let full n =
  if n < 0 || n > 61 then invalid_arg "Bitset.full";
  (1 lsl n) - 1

let subsets s =
  if cardinal s > 16 then invalid_arg "Bitset.subsets: too large";
  (* enumerate submasks of s in increasing order of the complemented walk *)
  let rec go acc sub =
    let acc = sub :: acc in
    if sub = s then List.rev acc else go acc ((sub - s) land s)
  in
  go [] 0

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    (elements s)

module Dense = struct
  (* 62 bits per word keeps every mask a non-boxed OCaml int. *)
  let bits = 62

  type t = { len : int; words : int array }

  let create len =
    if len < 0 then invalid_arg "Bitset.Dense.create: negative length";
    { len; words = Array.make ((len + bits - 1) / bits) 0 }

  let length s = s.len

  let check s i =
    if i < 0 || i >= s.len then invalid_arg "Bitset.Dense: element out of range"

  let mem s i =
    check s i;
    s.words.(i / bits) land (1 lsl (i mod bits)) <> 0

  let add s i =
    check s i;
    let w = i / bits in
    s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits))

  let union_into ~into src =
    if into.len <> src.len then invalid_arg "Bitset.Dense.union_into: lengths differ";
    for w = 0 to Array.length into.words - 1 do
      into.words.(w) <- into.words.(w) lor src.words.(w)
    done

  let cardinal s =
    let count x =
      let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
      go 0 x
    in
    Array.fold_left (fun acc w -> acc + count w) 0 s.words

  (* index of an isolated bit: binary search over the word, six branches
     instead of a shift-per-position loop *)
  let bit_index b =
    let i = ref 0 and b = ref b in
    if !b land 0xFFFFFFFF = 0 then begin i := 32; b := !b lsr 32 end;
    if !b land 0xFFFF = 0 then begin i := !i + 16; b := !b lsr 16 end;
    if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
    if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
    if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
    if !b land 0x1 = 0 then i := !i + 1;
    !i

  let iter f s =
    for w = 0 to Array.length s.words - 1 do
      let m = ref s.words.(w) in
      let base = w * bits in
      while !m <> 0 do
        (* isolate and clear the lowest set bit *)
        f (base + bit_index (!m land - !m));
        m := !m land (!m - 1)
      done
    done

  let fold f s init =
    let acc = ref init in
    iter (fun i -> acc := f i !acc) s;
    !acc

  let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

  (* Many same-width rows in one flat word array: the allocation pattern
     of per-component reachability closures (one row per SCC), where
     creating hundreds of individual [t] values would dominate. *)
  module Matrix = struct
    type t = { rows : int; len : int; nw : int; words : int array }

    let create ~rows ~len =
      if rows < 0 || len < 0 then invalid_arg "Bitset.Dense.Matrix.create";
      let nw = (len + bits - 1) / bits in
      { rows; len; nw; words = Array.make (rows * nw) 0 }

    let rows m = m.rows
    let length m = m.len

    let check m r i =
      if r < 0 || r >= m.rows || i < 0 || i >= m.len then
        invalid_arg "Bitset.Dense.Matrix: out of range"

    let add m r i =
      check m r i;
      let w = (r * m.nw) + (i / bits) in
      m.words.(w) <- m.words.(w) lor (1 lsl (i mod bits))

    let mem m r i =
      check m r i;
      m.words.((r * m.nw) + (i / bits)) land (1 lsl (i mod bits)) <> 0

    let union_rows m ~into ~src =
      if into < 0 || into >= m.rows || src < 0 || src >= m.rows then
        invalid_arg "Bitset.Dense.Matrix.union_rows";
      let a = into * m.nw and b = src * m.nw in
      for k = 0 to m.nw - 1 do
        m.words.(a + k) <- m.words.(a + k) lor m.words.(b + k)
      done

    let iter_row f m r =
      if r < 0 || r >= m.rows then invalid_arg "Bitset.Dense.Matrix.iter_row";
      let off = r * m.nw in
      for w = 0 to m.nw - 1 do
        let mask = ref m.words.(off + w) in
        let base = w * bits in
        while !mask <> 0 do
          f (base + bit_index (!mask land - !mask));
          mask := !mask land (!mask - 1)
        done
      done
  end
end

(* Rows that pick their representation per row by density.  The BWG
   builder's per-destination closures are the motivating client: on large
   sparse networks (full mesh, dragonfly) a closure row holds a handful of
   buffers out of 10^4-10^5, so a dense V-bit row wastes three orders of
   magnitude of memory; on small dense move graphs (the cube fixtures) the
   word-parallel union is what makes the closure pass fast.  A row starts
   as a sorted int array and promotes itself to dense words once it would
   occupy as many words as the bitmap. *)
module Hybrid = struct
  let bits = Dense.bits

  type row =
    | Sparse of { mutable elts : int array; mutable card : int }
        (* elts.(0 .. card-1) sorted strictly ascending; the tail is scratch *)
    | Dense_row of int array

  module Rows = struct
    type t = {
      rows : int;
      len : int;
      nw : int; (* words of a dense row; also the promotion threshold *)
      force_dense : bool;
      data : row array;
    }

    let create ?(force_dense = false) ~rows ~len () =
      if rows < 0 || len < 0 then invalid_arg "Bitset.Hybrid.Rows.create";
      let nw = (len + bits - 1) / bits in
      let fresh _ =
        if force_dense then Dense_row (Array.make nw 0)
        else Sparse { elts = [||]; card = 0 }
      in
      { rows; len; nw; force_dense; data = Array.init rows fresh }

    let rows t = t.rows
    let length t = t.len
    let is_forced_dense t = t.force_dense

    let check t r i =
      if r < 0 || r >= t.rows || i < 0 || i >= t.len then
        invalid_arg "Bitset.Hybrid.Rows: out of range"

    (* position of [i] in the sorted prefix, or the insertion point *)
    let search elts card i =
      let lo = ref 0 and hi = ref card in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if elts.(mid) < i then lo := mid + 1 else hi := mid
      done;
      !lo

    let promoted t elts card =
      let words = Array.make t.nw 0 in
      for k = 0 to card - 1 do
        let i = elts.(k) in
        words.(i / bits) <- words.(i / bits) lor (1 lsl (i mod bits))
      done;
      words

    let add t r i =
      check t r i;
      match t.data.(r) with
      | Dense_row words -> words.(i / bits) <- words.(i / bits) lor (1 lsl (i mod bits))
      | Sparse s ->
        let pos = search s.elts s.card i in
        if not (pos < s.card && s.elts.(pos) = i) then
          if s.card + 1 > t.nw && t.len > 0 then begin
            let words = promoted t s.elts s.card in
            words.(i / bits) <- words.(i / bits) lor (1 lsl (i mod bits));
            t.data.(r) <- Dense_row words
          end
          else begin
            if s.card = Array.length s.elts then begin
              let grown = Array.make (max 4 (2 * s.card)) 0 in
              Array.blit s.elts 0 grown 0 s.card;
              s.elts <- grown
            end;
            Array.blit s.elts pos s.elts (pos + 1) (s.card - pos);
            s.elts.(pos) <- i;
            s.card <- s.card + 1
          end

    let mem t r i =
      check t r i;
      match t.data.(r) with
      | Dense_row words -> words.(i / bits) land (1 lsl (i mod bits)) <> 0
      | Sparse s ->
        let pos = search s.elts s.card i in
        pos < s.card && s.elts.(pos) = i

    (* merge two sorted prefixes into a fresh sorted array *)
    let merge_sorted a na b nb =
      let out = Array.make (na + nb) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < na && !j < nb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then begin out.(!k) <- x; incr i end
        else if y < x then begin out.(!k) <- y; incr j end
        else begin out.(!k) <- x; incr i; incr j end;
        incr k
      done;
      while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
      while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
      (out, !k)

    let union_rows t ~into ~src =
      if into < 0 || into >= t.rows || src < 0 || src >= t.rows then
        invalid_arg "Bitset.Hybrid.Rows.union_rows";
      if into <> src then
        match (t.data.(into), t.data.(src)) with
        | Dense_row a, Dense_row b ->
          for w = 0 to t.nw - 1 do
            a.(w) <- a.(w) lor b.(w)
          done
        | Dense_row a, Sparse s ->
          for k = 0 to s.card - 1 do
            let i = s.elts.(k) in
            a.(i / bits) <- a.(i / bits) lor (1 lsl (i mod bits))
          done
        | Sparse s, Dense_row b ->
          let a = promoted t s.elts s.card in
          for w = 0 to t.nw - 1 do
            a.(w) <- a.(w) lor b.(w)
          done;
          t.data.(into) <- Dense_row a
        | Sparse a, Sparse b ->
          let merged, card = merge_sorted a.elts a.card b.elts b.card in
          if card > t.nw && t.len > 0 then
            t.data.(into) <- Dense_row (promoted t merged card)
          else begin
            a.elts <- merged;
            a.card <- card
          end

    let iter_row f t r =
      if r < 0 || r >= t.rows then invalid_arg "Bitset.Hybrid.Rows.iter_row";
      match t.data.(r) with
      | Sparse s ->
        for k = 0 to s.card - 1 do
          f s.elts.(k)
        done
      | Dense_row words ->
        for w = 0 to t.nw - 1 do
          let mask = ref words.(w) in
          let base = w * bits in
          while !mask <> 0 do
            f (base + Dense.bit_index (!mask land - !mask));
            mask := !mask land (!mask - 1)
          done
        done

    let fold_row f t r init =
      let acc = ref init in
      iter_row (fun i -> acc := f i !acc) t r;
      !acc

    let cardinal_row t r =
      if r < 0 || r >= t.rows then invalid_arg "Bitset.Hybrid.Rows.cardinal_row";
      match t.data.(r) with
      | Sparse s -> s.card
      | Dense_row words ->
        let count x =
          let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
          go 0 x
        in
        Array.fold_left (fun acc w -> acc + count w) 0 words

    let is_dense_row t r =
      if r < 0 || r >= t.rows then invalid_arg "Bitset.Hybrid.Rows.is_dense_row";
      match t.data.(r) with Dense_row _ -> true | Sparse _ -> false

    let dense_rows t =
      let acc = ref 0 in
      for r = 0 to t.rows - 1 do
        if is_dense_row t r then incr acc
      done;
      !acc

    let storage_words t =
      let acc = ref 0 in
      for r = 0 to t.rows - 1 do
        acc :=
          !acc
          + (match t.data.(r) with
            | Sparse s -> Array.length s.elts
            | Dense_row words -> Array.length words)
      done;
      !acc
  end

  (* A standalone hybrid set is a one-row container; the differential
     test-suite drives this interface against {!Dense}. *)
  type t = Rows.t

  let create len = Rows.create ~rows:1 ~len ()
  let length t = Rows.length t
  let add t i = Rows.add t 0 i
  let mem t i = Rows.mem t 0 i

  let union_into ~into src =
    if Rows.length into <> Rows.length src then
      invalid_arg "Bitset.Hybrid.union_into: lengths differ";
    (* graft src's single row in as a second row of a scratch container
       sharing the payload, so the row-union logic is exercised as-is *)
    let pair =
      {
        Rows.rows = 2;
        len = into.Rows.len;
        nw = into.Rows.nw;
        force_dense = false;
        data = [| into.Rows.data.(0); src.Rows.data.(0) |];
      }
    in
    Rows.union_rows pair ~into:0 ~src:1;
    into.Rows.data.(0) <- pair.Rows.data.(0)

  let cardinal t = Rows.cardinal_row t 0
  let iter f t = Rows.iter_row f t 0
  let fold f t init = Rows.fold_row f t 0 init
  let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
  let is_dense t = Rows.is_dense_row t 0

  let of_list len l =
    let t = create len in
    List.iter (add t) l;
    t
end
