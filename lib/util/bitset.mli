(** Small integer sets represented as native-int bitmasks.

    Used pervasively for "set of dimensions still to be corrected" in the
    routing algorithms and the adaptiveness dynamic programs.  Elements must
    lie in [0, 61]. *)

type t = int

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int

val min_elt : t -> int
(** Smallest member. Raises [Not_found] on the empty set. *)

val max_elt : t -> int
(** Largest member. Raises [Not_found] on the empty set. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val iter : (int -> unit) -> t -> unit
val elements : t -> int list
val of_list : int list -> t
val full : int -> t
(** [full n] is the set [{0, ..., n-1}]. *)

val subsets : t -> t list
(** All subsets, the empty set first.  Cardinal must be at most 16. *)

val pp : Format.formatter -> t -> unit

(** Mutable fixed-length bitsets over [0, len), backed by an [int array]
    (62 bits per word).  The BWG builder uses one row per SCC of a
    per-destination move graph, so unioning a successor component's
    reachability closure into a predecessor's is one word-parallel [lor]
    sweep instead of a per-element set insertion. *)
module Dense : sig
  type t

  val create : int -> t
  (** All bits clear. *)

  val length : t -> int
  val mem : t -> int -> bool
  val add : t -> int -> unit

  val union_into : into:t -> t -> unit
  (** [union_into ~into src] sets [into := into ∪ src]; lengths must
      match. *)

  val cardinal : t -> int
  val iter : (int -> unit) -> t -> unit
  (** Ascending order. *)

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val elements : t -> int list

  (** Many same-width rows packed into one flat word array.  This is the
      allocation shape of the BWG builder's per-component closures: one
      [Matrix.create] per destination instead of one heap object per
      component. *)
  module Matrix : sig
    type t

    val create : rows:int -> len:int -> t
    (** All bits clear. *)

    val rows : t -> int
    val length : t -> int

    val add : t -> int -> int -> unit
    (** [add m r i] sets bit [i] of row [r]. *)

    val mem : t -> int -> int -> bool

    val union_rows : t -> into:int -> src:int -> unit
    (** Word-parallel [lor] of row [src] into row [into]. *)

    val iter_row : (int -> unit) -> t -> int -> unit
    (** Set bits of one row, ascending. *)
  end
end

(** Rows that pick their representation per row by density: a sorted int
    array while small, promoted to dense 62-bit words once the sorted form
    would occupy at least as many words as the bitmap.  This is what lets
    the BWG builder's per-destination reachability closures scale to
    10^4-10^5-buffer networks: sparse closures (full mesh, dragonfly,
    fat-tree traffic) stay O(cardinal) instead of O(V) bits per row, while
    dense move graphs keep the word-parallel union of {!Dense}.

    Iteration order is ascending in both representations, so consumers are
    bit-for-bit independent of which representation a row happens to be
    in. *)
module Hybrid : sig
  (** Many same-length rows, the closure-pass container (mirrors
      {!Dense.Matrix}). *)
  module Rows : sig
    type t

    val create : ?force_dense:bool -> rows:int -> len:int -> unit -> t
    (** All rows empty.  [force_dense] starts every row dense — the escape
        hatch the equivalence tests and the memory benches compare
        against. *)

    val rows : t -> int
    val length : t -> int
    val is_forced_dense : t -> bool

    val add : t -> int -> int -> unit
    (** [add t r i] inserts element [i] into row [r]. *)

    val mem : t -> int -> int -> bool

    val union_rows : t -> into:int -> src:int -> unit
    (** [into := into ∪ src]; promotes [into] when the union crosses the
        density threshold. *)

    val iter_row : (int -> unit) -> t -> int -> unit
    (** Elements of one row, ascending. *)

    val fold_row : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a
    val cardinal_row : t -> int -> int

    val is_dense_row : t -> int -> bool
    val dense_rows : t -> int
    (** How many rows have promoted to the dense representation. *)

    val storage_words : t -> int
    (** Total words currently backing all rows — the number the scale
        benches compare between hybrid and forced-dense builds. *)
  end

  type t
  (** A standalone single-row hybrid set, for the differential tests. *)

  val create : int -> t
  val length : t -> int
  val add : t -> int -> unit
  val mem : t -> int -> bool

  val union_into : into:t -> t -> unit
  (** Lengths must match. *)

  val cardinal : t -> int

  val iter : (int -> unit) -> t -> unit
  (** Ascending order. *)

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val elements : t -> int list

  val is_dense : t -> bool
  (** Whether the set has promoted to dense words. *)

  val of_list : int -> int list -> t
end
