(** Minimal JSON emitter and parser.

    The sealed build environment has no JSON library; this is just enough
    to export checker reports and experiment tables machine-readably, and
    to read them back for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single line. *)

val to_string_pretty : t -> string
(** Two-space indentation. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Accepts everything {!to_string} and
    {!to_string_pretty} emit (round-trip safe); [\u] escapes outside the
    ASCII range are decoded to UTF-8.  Errors carry the byte offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an
    object that has it. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
