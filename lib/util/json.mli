(** Minimal JSON emitter and parser.

    The sealed build environment has no JSON library; this is just enough
    to export checker reports and experiment tables machine-readably, and
    to read them back for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single line.

    Non-finite floats ([nan], [infinity], [neg_infinity]) are emitted as
    [null]: JSON has no representation for them, and a literal [nan]/[inf]
    token renders the whole document unparseable for every downstream
    consumer.  A [Float nan] therefore round-trips through {!of_string} as
    {!Null} — emit {!Null} (or guard upstream, as {!Dfr_sim.Stats} does)
    when the distinction matters. *)

val to_string_pretty : t -> string
(** Two-space indentation; same non-finite float policy as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Accepts everything {!to_string} and
    {!to_string_pretty} emit (round-trip safe); [\u] escapes outside the
    ASCII range are decoded to UTF-8, with UTF-16 surrogate pairs
    recombined into the encoded code point and lone surrogates rejected.
    Errors carry the byte offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an
    object that has it. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
