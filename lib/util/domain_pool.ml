(* Parked worker domains, reused across phases.

   Each worker owns a mailbox (mutex + condition + job slot) and loops
   forever: wait for a job, run it, wait again.  [parallel] pops free
   workers from a global stack, posts one job per index, runs index 0
   (and any indices it could not place) itself, then blocks on a
   completion latch.  A job reparks its worker on the free stack
   *before* signalling the latch, so by the time [parallel] returns its
   workers are visible to the next phase — this is what makes
   [spawned] stable across consecutive calls, the reuse guarantee the
   tests pin.

   The latch mutex also orders memory: every write a worker made is
   visible to the caller after the join, and the caller's writes are
   visible to workers through the job-submission mutex.  Callers can
   therefore fill disjoint slots of shared arrays from workers and read
   them after [parallel] returns without further synchronization. *)

type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
}

let max_workers = 64

(* Concurrency cap.  Running more domains than cores is not a harmless
   no-op in OCaml: every minor collection is a stop-the-world handshake
   across all running domains, and when they share one core each
   handshake pays scheduling latency — a [--domains 4] check on a
   1-core machine measures >2x slower than serial.  The pool therefore
   never keeps more than [cap ()] indices in flight; the rest run
   sequentially on the caller, which changes placement but (by the
   determinism contract) never output. *)
let cap_override : int option Atomic.t = Atomic.make None

let cap () =
  match Atomic.get cap_override with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

let set_cap o =
  (match o with
  | Some n when n < 1 -> invalid_arg "Domain_pool.set_cap: cap must be >= 1"
  | _ -> ());
  Atomic.set cap_override o

(* free workers; the same mutex guards the spawn counter so growth
   decisions and acquisitions are atomic *)
let pool_m = Mutex.create ()
let free : worker Stack.t = Stack.create ()
let spawned_n = ref 0

let spawned () =
  Mutex.lock pool_m;
  let n = !spawned_n in
  Mutex.unlock pool_m;
  n

let rec worker_loop w =
  Mutex.lock w.m;
  while w.job = None do
    Condition.wait w.cv w.m
  done;
  let job = Option.get w.job in
  w.job <- None;
  Mutex.unlock w.m;
  job ();
  worker_loop w

(* pop up to [need] free workers, spawning below the cap; fewer than
   [need] is a legal result the caller absorbs by running the leftover
   indices itself *)
let acquire need =
  Mutex.lock pool_m;
  let rec go acc need =
    if need = 0 then acc
    else
      match Stack.pop_opt free with
      | Some w -> go (w :: acc) (need - 1)
      | None ->
        if !spawned_n >= max_workers then acc
        else begin
          incr spawned_n;
          let w = { m = Mutex.create (); cv = Condition.create (); job = None } in
          ignore (Domain.spawn (fun () -> worker_loop w) : unit Domain.t);
          go (w :: acc) (need - 1)
        end
  in
  let ws = go [] need in
  Mutex.unlock pool_m;
  ws

let submit w job =
  Mutex.lock w.m;
  w.job <- Some job;
  Condition.signal w.cv;
  Mutex.unlock w.m

let parallel ~domains f =
  if domains <= 1 then f 0
  else begin
    let errors = Array.make domains None in
    let run k = try f k with e -> errors.(k) <- Some e in
    let workers = acquire (min (domains - 1) (cap () - 1)) in
    let placed = List.length workers in
    let latch_m = Mutex.create () in
    let latch_cv = Condition.create () in
    let pending = ref placed in
    List.iteri
      (fun i w ->
        let k = i + 1 in
        submit w (fun () ->
            run k;
            (* repark before signalling: a caller that has observed the
               completion must also observe the freed worker *)
            Mutex.lock pool_m;
            Stack.push w free;
            Mutex.unlock pool_m;
            Mutex.lock latch_m;
            decr pending;
            if !pending = 0 then Condition.signal latch_cv;
            Mutex.unlock latch_m))
      workers;
    run 0;
    (* indices the pool had no worker for run here, in order *)
    for k = placed + 1 to domains - 1 do
      run k
    done;
    Mutex.lock latch_m;
    while !pending > 0 do
      Condition.wait latch_cv latch_m
    done;
    Mutex.unlock latch_m;
    Array.iter (function Some e -> raise e | None -> ()) errors
  end

let chunk ~n ~domains k =
  let d = max 1 domains in
  if k < 0 || k >= d then (0, 0)
  else begin
    let base = n / d and extra = n mod d in
    let start = (k * base) + min k extra in
    (start, start + base + if k < extra then 1 else 0)
  end
