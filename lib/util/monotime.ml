external now_ns : unit -> int64 = "dfr_monotime_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed_ns ~since = Int64.sub (now_ns ()) since
