type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
    (* JSON has no non-finite numbers; a literal nan/inf token makes the
       whole document unparseable for every consumer, so degrade to null *)
    "null"
  | Float.FP_zero | Float.FP_normal | Float.FP_subnormal ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f

let rec emit buf ~indent ~level t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        if indent then Buffer.add_char buf ' ';
        emit buf ~indent ~level:(level + 1) v)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf ~indent:false ~level:0 t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  emit buf ~indent:true ~level:0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing, so checker reports can be consumed as well as emitted      *)

exception Parse_error of int * string
(* offset, message *)

type parser_state = { src : string; mutable off : int }

let parse_fail p fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (p.off, msg))) fmt

let peek p = if p.off < String.length p.src then Some p.src.[p.off] else None

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      p.off <- p.off + 1;
      true
    | _ -> false
  do
    ()
  done

let expect_char p c =
  match peek p with
  | Some d when d = c -> p.off <- p.off + 1
  | Some d -> parse_fail p "expected %C, found %C" c d
  | None -> parse_fail p "expected %C, found end of input" c

let parse_literal p lit value =
  if
    p.off + String.length lit <= String.length p.src
    && String.sub p.src p.off (String.length lit) = lit
  then begin
    p.off <- p.off + String.length lit;
    value
  end
  else parse_fail p "bad literal (expected %s)" lit

let hex_digit p c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> parse_fail p "bad \\u escape digit %C" c

let parse_string_body p =
  expect_char p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> parse_fail p "unterminated string"
    | Some '"' -> p.off <- p.off + 1
    | Some '\\' -> (
      p.off <- p.off + 1;
      match peek p with
      | None -> parse_fail p "unterminated escape"
      | Some c ->
        p.off <- p.off + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let hex4 () =
            if p.off + 4 > String.length p.src then
              parse_fail p "truncated \\u escape";
            let code =
              List.fold_left
                (fun acc i -> (acc * 16) + hex_digit p p.src.[p.off + i])
                0 [ 0; 1; 2; 3 ]
            in
            p.off <- p.off + 4;
            code
          in
          let code = hex4 () in
          (* \u escapes are UTF-16 code units: a code point above the BMP
             arrives as a surrogate pair that must be recombined into one
             scalar; an unpaired surrogate encodes no character at all *)
          let scalar =
            if code >= 0xd800 && code <= 0xdbff then
              if
                p.off + 2 <= String.length p.src
                && p.src.[p.off] = '\\'
                && p.src.[p.off + 1] = 'u'
              then begin
                p.off <- p.off + 2;
                let low = hex4 () in
                if low >= 0xdc00 && low <= 0xdfff then
                  0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00)
                else
                  parse_fail p
                    "\\u%04x after high surrogate \\u%04x is not a low \
                     surrogate"
                    low code
              end
              else parse_fail p "lone high surrogate \\u%04x" code
            else if code >= 0xdc00 && code <= 0xdfff then
              parse_fail p "lone low surrogate \\u%04x" code
            else code
          in
          if scalar < 0x80 then Buffer.add_char buf (Char.chr scalar)
          else if scalar < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (scalar lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3f)))
          end
          else if scalar < 0x10000 then begin
            Buffer.add_char buf (Char.chr (0xe0 lor (scalar lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((scalar lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xf0 lor (scalar lsr 18)));
            Buffer.add_char buf (Char.chr (0x80 lor ((scalar lsr 12) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor ((scalar lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3f)))
          end
        | c -> parse_fail p "unknown escape \\%c" c);
        loop ())
    | Some c ->
      p.off <- p.off + 1;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.off in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    p.off <- p.off + 1
  done;
  let tok = String.sub p.src start (p.off - start) in
  match int_of_string_opt tok with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt tok with
    | Some f -> Float f
    | None ->
      p.off <- start;
      parse_fail p "bad number %S" tok)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> parse_fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> String (parse_string_body p)
  | Some '[' ->
    p.off <- p.off + 1;
    skip_ws p;
    if peek p = Some ']' then begin
      p.off <- p.off + 1;
      List []
    end
    else
      let rec items acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          p.off <- p.off + 1;
          items (v :: acc)
        | Some ']' ->
          p.off <- p.off + 1;
          List (List.rev (v :: acc))
        | _ -> parse_fail p "expected ',' or ']' in list"
      in
      items []
  | Some '{' ->
    p.off <- p.off + 1;
    skip_ws p;
    if peek p = Some '}' then begin
      p.off <- p.off + 1;
      Obj []
    end
    else
      let field () =
        skip_ws p;
        let k = parse_string_body p in
        skip_ws p;
        expect_char p ':';
        let v = parse_value p in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws p;
        match peek p with
        | Some ',' ->
          p.off <- p.off + 1;
          fields (kv :: acc)
        | Some '}' ->
          p.off <- p.off + 1;
          Obj (List.rev (kv :: acc))
        | _ -> parse_fail p "expected ',' or '}' in object"
      in
      fields []
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number p
  | Some c -> parse_fail p "unexpected character %C" c

let of_string s =
  let p = { src = s; off = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.off <> String.length s then
      Error (Printf.sprintf "offset %d: trailing garbage after JSON value" p.off)
    else Ok v
  | exception Parse_error (off, msg) -> Error (Printf.sprintf "offset %d: %s" off msg)

(* ------------------------------------------------------------------ *)
(* accessors for consuming parsed documents                            *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
