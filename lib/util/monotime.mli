(** Monotonic clock readings for deadlines and latency measurement.

    Wall-clock time ([Unix.gettimeofday]) steps when NTP corrects the
    system clock, so deadlines computed from it can fire spuriously or
    never.  These readings come from [CLOCK_MONOTONIC]: the origin is
    arbitrary (boot time on Linux), only differences mean anything, and
    they never go backwards. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin. *)

val now : unit -> float
(** Seconds since the same origin, for deadline arithmetic in the units
    [Unix.gettimeofday] callers already use. *)

val elapsed_ns : since:int64 -> int64
(** [now_ns () - since], for latency measurements. *)
