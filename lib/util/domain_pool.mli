(** A process-wide pool of reusable worker domains.

    [Domain.spawn] costs roughly a thread creation plus a stop-the-world
    handshake with every running domain — cheap once, ruinous when paid
    per phase per check.  Before this pool existed the checker spawned
    fresh domains for every BWG build, every classification scan and
    every fuzz campaign, so a single [--domains 4] check on a large
    instance paid the spawn tax three times over.  The pool parks worker
    domains between phases instead: the first [parallel] call spawns
    what it needs, every later call reuses them.

    Determinism contract: the pool never decides {e what} work an index
    performs, only {e where} it runs.  Callers partition their work by
    index ([chunk], striding, or an atomic ticket whose results are
    merged in a fixed order), so outputs are identical whatever domain
    executed which index — including when the pool is saturated and
    indices fall back to the calling domain.  The flip side of the
    contract: the closures passed to [parallel] must never synchronize
    {e between} indices, because the pool is free to run several of
    them sequentially on one domain.

    The pool also clamps concurrency to the machine: at most {!cap}
    indices are ever in flight at once (default
    [Domain.recommended_domain_count ()]).  Oversubscribing cores with
    OCaml domains is actively harmful — every minor collection
    handshakes with all running domains, so extra domains on a shared
    core add latency instead of hiding it.  Requested indices beyond
    the cap still run, just sequentially on the caller. *)

val parallel : domains:int -> (int -> unit) -> unit
(** [parallel ~domains f] runs [f k] for every [k] in
    [0 .. domains - 1] and returns once all calls have finished.
    [f 0] always runs on the calling domain; the other indices run on
    parked pool workers, spawned on first use and reused afterwards.
    When fewer workers are free than requested — a concurrent or nested
    [parallel] call holds them, or the pool is at its size cap — the
    unassigned indices run sequentially on the calling domain after
    [f 0]; every index runs exactly once regardless.

    If one or more calls raise, the exception of the smallest index is
    re-raised after every call has completed, and the pool remains
    usable.  [domains <= 1] degenerates to [f 0] with no locking. *)

val chunk : n:int -> domains:int -> int -> int * int
(** [chunk ~n ~domains k] is the half-open index range [(start, stop)]
    of the [k]-th of [domains] contiguous chunks of [0 .. n - 1]: a
    deterministic, balanced partition (chunk sizes differ by at most
    one, earlier chunks take the remainder).  Chunks of out-of-range
    [k] are empty. *)

val cap : unit -> int
(** Maximum indices in flight per [parallel] call:
    [Domain.recommended_domain_count ()] unless overridden. *)

val set_cap : int option -> unit
(** [set_cap (Some n)] overrides the concurrency cap ([n >= 1], subject
    to [max_workers]); [set_cap None] restores the hardware default.
    Meant for tests that must exercise true concurrency on small
    machines, and for benchmarks that measure oversubscription on
    purpose. *)

val spawned : unit -> int
(** Worker domains spawned by the pool so far in this process.  Exposed
    so tests can pin the reuse guarantee: two consecutive
    [parallel ~domains:n] calls must not double it. *)

val max_workers : int
(** Size cap on the pool (the OCaml runtime tops out around 128
    domains; the cap leaves headroom for callers' own domains). *)
