(* Elaboration: lower a resolved spec to the engine's core types —
   [Net.custom] plus an [Algo.t] whose route/wait relations are
   precomputed (buffer, destination)-indexed tables.

   The whole-network semantic checks live here because they need those
   tables: wait sets must be subsets of the matched route sets, explicit
   outputs must be adjacent to the packet's head node, and every
   destination must be reachable from every source.  All errors carry the
   position of the offending rule (or of the size declaration for
   whole-spec properties). *)

open Dfr_topology
open Dfr_network
open Dfr_routing

exception Error of Ast.pos * string

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error (pos, msg))) fmt

type channel_info = {
  ch_name : string;
  ch_src : int;
  ch_dst : int;
  ch_vc : int;
  ch_buffer : int;  (* buffer id in the elaborated network *)
}

type t = {
  spec : Validate.t;
  net : Net.t;
  algo : Algo.t;
  channel_infos : channel_info list;  (* declaration order *)
}

let build_net (s : Validate.t) =
  Net.custom ~name:s.Validate.name ~switching:s.Validate.switching
    ~num_nodes:s.Validate.num_nodes
    ~channels:
      (Array.to_list s.Validate.channels
      |> List.map (fun c -> (c.Validate.csrc, c.Validate.cdst, c.Validate.cvc)))

(* buffer id of each declared channel *)
let buffer_ids (s : Validate.t) net =
  Array.map
    (fun (c : Validate.channel) ->
      match s.Validate.switching with
      | Net.Wormhole ->
        Buf.id (Net.find_custom_channel net ~src:c.Validate.csrc ~dst:c.Validate.cdst ~vc:c.Validate.cvc)
      | Net.Store_and_forward | Net.Virtual_cut_through ->
        Buf.id (Net.node_buffer net ~node:c.Validate.cdst ~cls:c.Validate.cvc))
    s.Validate.channels

let sel_matches buf_of_channel b = function
  | Validate.At_all -> true
  | Validate.At n -> Buf.head_node b = n
  | Validate.In ci -> Buf.id b = buf_of_channel.(ci)
  | Validate.Inj n -> ( match Buf.kind b with Buf.Injection m -> m = n | _ -> false)

let describe_state net b dest =
  Printf.sprintf "%s dest %d" (Net.describe_buffer net (Buf.id b)) dest

(* outputs of a matched rule at a concrete (buffer, dest) state *)
let rule_outputs (s : Validate.t) net buf_of_channel triple_index (r : Validate.rule) b dest =
  let head = Buf.head_node b in
  match r.Validate.outs with
  | Validate.Empty -> []
  | Validate.Explicit outs ->
    List.map
      (fun (ci, opos) ->
        let c = s.Validate.channels.(ci) in
        (match s.Validate.switching with
        | Net.Wormhole when c.Validate.csrc <> head ->
          error opos "channel %S starts at node %d, not at the packet's head node %d (state %s)"
            c.Validate.cname c.Validate.csrc head (describe_state net b dest)
        | _ -> ());
        buf_of_channel.(ci))
      outs
  | Validate.Min vc_filter ->
    let topo =
      match s.Validate.topology with
      | Some t -> t
      | None -> assert false (* ruled out in Validate *)
    in
    List.concat_map
      (fun (dim, dir) ->
        match Topology.neighbor topo head dim dir with
        | None -> []
        | Some v ->
          List.filter_map
            (fun k ->
              match vc_filter with
              | Some f when f <> k -> None
              | _ -> Some (Hashtbl.find triple_index (head, v, k)))
            (List.init s.Validate.vcs Fun.id))
      (Topology.minimal_moves topo ~src:head ~dst:dest)

let run (s : Validate.t) =
  let net = build_net s in
  let buf_of_channel = buffer_ids s net in
  let triple_index = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Validate.channel) ->
      let key = (c.Validate.csrc, c.Validate.cdst, c.Validate.cvc) in
      if not (Hashtbl.mem triple_index key) then Hashtbl.add triple_index key buf_of_channel.(i))
    s.Validate.channels;
  let num_buffers = Net.num_buffers net in
  let num_nodes = Net.num_nodes net in
  let route_tbl = Array.make_matrix num_buffers num_nodes [] in
  let wait_tbl = Array.make_matrix num_buffers num_nodes [] in
  let route_rules = List.filter (fun r -> r.Validate.kind = Ast.Route) s.Validate.rules in
  let wait_rules = List.filter (fun r -> r.Validate.kind = Ast.Wait) s.Validate.rules in
  let first_match rules b dest =
    List.find_opt
      (fun r ->
        sel_matches buf_of_channel b r.Validate.sel
        && match r.Validate.dst with None -> true | Some d -> d = dest)
      rules
  in
  Array.iter
    (fun b ->
      if not (Buf.is_delivery b) then
        for dest = 0 to num_nodes - 1 do
          if Buf.head_node b <> dest then begin
            let route =
              match first_match route_rules b dest with
              | Some r -> rule_outputs s net buf_of_channel triple_index r b dest
              | None -> []
            in
            route_tbl.(Buf.id b).(dest) <- route;
            match first_match wait_rules b dest with
            | None -> wait_tbl.(Buf.id b).(dest) <- route
            | Some r ->
              let waits = rule_outputs s net buf_of_channel triple_index r b dest in
              List.iter
                (fun w ->
                  if not (List.mem w route) then
                    error r.Validate.rpos
                      "wait buffer %s is not among the permitted outputs of state %s \
                       (wait sets must be subsets of route sets)"
                      (Net.describe_buffer net w) (describe_state net b dest))
                waits;
              wait_tbl.(Buf.id b).(dest) <- waits
          end
        done)
    (Net.buffers net);
  (* every destination must be reachable from every source *)
  let unreachable = ref [] in
  for d = num_nodes - 1 downto 0 do
    for src = num_nodes - 1 downto 0 do
      if src <> d then begin
        let seen = Array.make num_buffers false in
        let arrived = ref false in
        let rec visit id =
          if (not seen.(id)) && not !arrived then begin
            seen.(id) <- true;
            if Buf.head_node (Net.buffer net id) = d then arrived := true
            else List.iter visit route_tbl.(id).(d)
          end
        in
        visit (Buf.id (Net.injection net src));
        if not !arrived then unreachable := (src, d) :: !unreachable
      end
    done
  done;
  (match !unreachable with
  | [] -> ()
  | pairs ->
    let show (s', d) = Printf.sprintf "%d -> %d" s' d in
    let shown = List.filteri (fun i _ -> i < 5) pairs in
    error s.Validate.size_pos
      "routing cannot deliver %d source/destination pair%s: %s%s"
      (List.length pairs)
      (if List.length pairs = 1 then "" else "s")
      (String.concat ", " (List.map show shown))
      (if List.length pairs > 5 then ", ..." else ""));
  let algo =
    Algo.make ~name:s.Validate.name ~wait:s.Validate.waiting
      ~route:(fun _ b ~dest -> route_tbl.(Buf.id b).(dest))
      ~waits:(fun _ b ~dest -> wait_tbl.(Buf.id b).(dest))
      ()
  in
  (* belt and braces: the structural contract the engine would enforce
     anyway, surfaced as a positioned error instead of an exception *)
  (match Algo.validate algo net with
  | Ok () -> ()
  | Error msg -> error s.Validate.size_pos "internal elaboration error: %s" msg);
  let channel_infos =
    Array.to_list
      (Array.mapi
         (fun i (c : Validate.channel) ->
           {
             ch_name = c.Validate.cname;
             ch_src = c.Validate.csrc;
             ch_dst = c.Validate.cdst;
             ch_vc = c.Validate.cvc;
             ch_buffer = buf_of_channel.(i);
           })
         s.Validate.channels)
  in
  { spec = s; net; algo; channel_infos }

let check s = try Ok (run s) with Error (pos, msg) -> Error (pos, msg)
