(* Facade: parse + validate + elaborate a .dfr specification, with
   compiler-style error reporting. *)

open Dfr_network
open Dfr_routing

type error = { pos : Ast.pos; msg : string }

type t = {
  name : string;
  net : Net.t;
  algo : Algo.t;
  elaborated : Elaborate.t;
}

let error_to_string ?file { pos; msg } =
  match file with
  | Some f -> Printf.sprintf "%s:%d:%d: %s" f pos.Ast.line pos.Ast.col msg
  | None -> Printf.sprintf "%d:%d: %s" pos.Ast.line pos.Ast.col msg

let ( let* ) r f = match r with Ok v -> f v | Error (pos, msg) -> Error { pos; msg }

let compile_string src =
  let* ast = Parser.parse_string src in
  let* resolved = Validate.check ast in
  let* elaborated = Elaborate.check resolved in
  Ok
    {
      name = resolved.Validate.name;
      net = elaborated.Elaborate.net;
      algo = elaborated.Elaborate.algo;
      elaborated;
    }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path =
  match read_file path with
  | exception Sys_error msg -> Error { pos = { Ast.line = 1; col = 1 }; msg }
  | src -> compile_string src

(* The spec's network as Graphviz DOT: one node per processing node, one
   edge per declared channel, labeled with the (user-controlled) channel
   name — everything funneled through {!Dfr_graph.Dot.escape}. *)
let to_dot t =
  let esc = Dfr_graph.Dot.escape in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (esc t.name));
  for n = 0 to Net.num_nodes t.net - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d\"];\n" n n)
  done;
  List.iter
    (fun (c : Elaborate.channel_info) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" c.Elaborate.ch_src c.Elaborate.ch_dst
           (esc c.Elaborate.ch_name)))
    t.elaborated.Elaborate.channel_infos;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
