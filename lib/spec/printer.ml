(* Printing: render an in-memory network + routing relation back to .dfr
   text — the inverse of parse/validate/elaborate for every network
   expressible with explicit channels (which is all of them: topology
   networks are flattened to their channel lists).

   The differential fuzzer leans on this to persist minimized
   disagreements as regression specs, so the contract that matters is
   *checker-level* round-tripping: compiling the printed text yields a
   network whose buffers enumerate in the same order and whose
   route/wait tables agree with the input relation buffer-for-buffer,
   hence the same verdict.  (Wormhole physical-link multiplexing is the
   one thing not preserved: the reprint gives each virtual channel its
   own physical link, which the checker never looks at.)

   Channels are named deterministically — [c<src>_<dst>_<vc>] for
   wormhole virtual channels, [b<node>_<cls>] for SAF/VCT node buffers —
   matching the identifiers Validate generates for topology shorthands.
   Rules are emitted one per (buffer, destination) state with a nonempty
   route set, using the precise selectors [in NAME] / [inj N] so
   first-match resolution cannot shadow anything.  A [wait] rule is
   emitted only where the wait set differs from the route set, mirroring
   the elaborator's default. *)

open Dfr_network
open Dfr_routing

exception Unprintable of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Unprintable msg)) fmt

(* .dfr identifiers are [A-Za-z_][A-Za-z0-9_-]*; network names coming
   from the engine ("wormhole(mesh-4x4,2vc)") are free-form. *)
let sanitize_name s =
  let ok_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let ok c = ok_start c || (c >= '0' && c <= '9') || c = '-' in
  let b = Buffer.create (String.length s) in
  String.iter (fun c -> Buffer.add_char b (if ok c then c else '-')) s;
  let s = Buffer.contents b in
  if s = "" then "net"
  else if ok_start s.[0] then s
  else "n" ^ s

let channel_ident b =
  match Buf.kind b with
  | Buf.Channel { src; dst; vc; _ } -> Printf.sprintf "c%d_%d_%d" src dst vc
  | Buf.Node_buffer { node; cls } -> Printf.sprintf "b%d_%d" node cls
  | Buf.Injection _ | Buf.Delivery _ ->
    invalid_arg "Printer.channel_ident: not a transit buffer"

let to_string net algo =
  try
    let n = Net.num_nodes net in
    let out = Buffer.create 1024 in
    let pr fmt = Printf.ksprintf (Buffer.add_string out) fmt in
    pr "network %s\n" (sanitize_name (Net.name net));
    pr "switching %s\n"
      (match Net.switching net with
      | Net.Wormhole -> "wormhole"
      | Net.Store_and_forward -> "saf"
      | Net.Virtual_cut_through -> "vct");
    pr "waiting %s\n"
      (match algo.Algo.wait with
      | Algo.Specific_wait -> "specific"
      | Algo.Any_wait -> "any");
    pr "nodes %d\n" n;
    pr "\n";
    (* Transit buffers in id order become the channel declarations, so
       the recompiled network allocates identical buffer ids.  The spec
       language identifies channels by (src, dst, vc) for wormhole and
       (node, cls) for SAF/VCT; a network with duplicates cannot
       round-trip. *)
    let transit = Net.transit_buffers net in
    let seen = Hashtbl.create 64 in
    let ident_of_id = Hashtbl.create 64 in
    List.iter
      (fun b ->
        let ident = channel_ident b in
        if Hashtbl.mem seen ident then
          fail "duplicate channel identity %s (not expressible as a spec)" ident;
        Hashtbl.add seen ident ();
        Hashtbl.add ident_of_id (Buf.id b) ident;
        match Buf.kind b with
        | Buf.Channel { src; dst; vc; _ } ->
          pr "channel %s : %d -> %d vc %d\n" ident src dst vc
        | Buf.Node_buffer { node; cls } ->
          (* a node buffer is a self-channel in spec syntax: identity is
             (destination node, class), the source endpoint is ignored *)
          pr "channel %s : %d -> %d vc %d\n" ident node node cls
        | _ -> assert false)
      transit;
    let name_of id =
      match Hashtbl.find_opt ident_of_id id with
      | Some s -> s
      | None ->
        fail "route set references buffer %d, which is not a transit channel"
          id
    in
    let transit_only ids =
      List.filter (fun id -> Buf.is_transit (Net.buffer net id)) ids
    in
    let same_set a b =
      List.sort compare a = List.sort compare b
    in
    pr "\n";
    Array.iter
      (fun b ->
        if not (Buf.is_delivery b) then
          for dest = 0 to n - 1 do
            if Buf.head_node b <> dest then begin
              let route = transit_only (algo.Algo.route net b ~dest) in
              if route <> [] then begin
                let sel =
                  match Buf.kind b with
                  | Buf.Injection m -> Printf.sprintf "inj %d" m
                  | _ -> Printf.sprintf "in %s" (name_of (Buf.id b))
                in
                pr "route %s to %d : %s\n" sel dest
                  (String.concat " " (List.map name_of route));
                let waits = transit_only (algo.Algo.waits net b ~dest) in
                if not (same_set waits route) then
                  pr "wait %s to %d : %s\n" sel dest
                    (if waits = [] then "none"
                     else String.concat " " (List.map name_of waits))
              end
            end
          done)
      (Net.buffers net);
    Ok (Buffer.contents out)
  with Unprintable msg -> Error msg

(* Content address of an elaborated spec: the canonical reprint above is a
   pure function of the elaborated (net, algo) pair — identifiers, rule
   order and wait defaulting are all normalized — so its MD5 identifies
   the checking problem itself.  Two textually different .dfr sources, or
   a source and a compiled-in registry entry, that elaborate to the same
   relation share one digest; the serving layer keys its verdict cache on
   it.  The round-trip property this rests on (reprint -> recompile ->
   identical verdict and identical reprint) is asserted by the
   differential test suite. *)
let digest net algo =
  match to_string net algo with
  | Ok text -> Ok (Digest.to_hex (Digest.string text))
  | Error _ as e -> e
