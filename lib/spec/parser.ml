(* Recursive-descent parser for .dfr specifications.

   One declaration per line.  The grammar (see DESIGN.md for the full
   reference):

     spec     := { decl NEWLINE }
     decl     := "network" IDENT
               | "switching" ("wormhole" | "saf" | "vct")
               | "waiting"  ("specific" | "any")
               | "nodes" INT
               | "topology" REST-OF-LINE        (shared CLI shorthand)
               | "vcs" INT
               | "channel" IDENT ":" INT "->" INT [ "vc" INT ]
               | ("route" | "wait") selector "to" dest ":" outputs
     selector := "at" (INT | "*") | "in" IDENT | "inj" INT
     dest     := INT | "*"
     outputs  := "none" | "minimal" [ "vc" INT ] | IDENT+ *)

exception Error of Ast.pos * string

type t = {
  lx : Lexer.t;
  mutable tok : Lexer.token;
  mutable tok_pos : Ast.pos;
}

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error (pos, msg))) fmt

let advance p =
  let tok, pos = Lexer.next p.lx in
  p.tok <- tok;
  p.tok_pos <- pos

let make src =
  let lx = Lexer.create src in
  let p = { lx; tok = Lexer.EOF; tok_pos = { Ast.line = 1; col = 1 } } in
  advance p;
  p

let expect_int p ~what =
  match p.tok with
  | Lexer.INT n ->
    let pos = p.tok_pos in
    advance p;
    (n, pos)
  | tok -> error p.tok_pos "expected %s (an integer), found %s" what (Lexer.describe tok)

let expect_ident p ~what =
  match p.tok with
  | Lexer.IDENT s ->
    let pos = p.tok_pos in
    advance p;
    (s, pos)
  | tok -> error p.tok_pos "expected %s, found %s" what (Lexer.describe tok)

let expect_tok p want ~what =
  if p.tok = want then advance p
  else error p.tok_pos "expected %s, found %s" what (Lexer.describe p.tok)

let end_of_decl p =
  match p.tok with
  | Lexer.NEWLINE -> advance p
  | Lexer.EOF -> ()
  | tok -> error p.tok_pos "trailing %s at end of declaration" (Lexer.describe tok)

(* [vc N] suffix, defaulting *)
let opt_vc p =
  match p.tok with
  | Lexer.IDENT "vc" ->
    advance p;
    let n, _ = expect_int p ~what:"a virtual-channel index after 'vc'" in
    Some n
  | _ -> None

let parse_selector p =
  let pos = p.tok_pos in
  match p.tok with
  | Lexer.IDENT "at" -> (
    advance p;
    match p.tok with
    | Lexer.STAR ->
      advance p;
      { Ast.v = Ast.At_any; pos }
    | Lexer.INT n ->
      advance p;
      { Ast.v = Ast.At_node n; pos }
    | tok -> error p.tok_pos "expected a node number or '*' after 'at', found %s" (Lexer.describe tok))
  | Lexer.IDENT "in" ->
    advance p;
    let name, _ = expect_ident p ~what:"a channel name after 'in'" in
    { Ast.v = Ast.In_channel name; pos }
  | Lexer.IDENT "inj" ->
    advance p;
    let n, _ = expect_int p ~what:"a node number after 'inj'" in
    { Ast.v = Ast.Inj n; pos }
  | tok ->
    error pos "expected a selector ('at N', 'at *', 'in CHANNEL' or 'inj N'), found %s"
      (Lexer.describe tok)

let parse_dest p =
  let pos = p.tok_pos in
  match p.tok with
  | Lexer.STAR ->
    advance p;
    { Ast.v = Ast.Any_dest; pos }
  | Lexer.INT n ->
    advance p;
    { Ast.v = Ast.Dest n; pos }
  | tok -> error pos "expected a destination node or '*', found %s" (Lexer.describe tok)

let parse_outputs p =
  let pos = p.tok_pos in
  match p.tok with
  | Lexer.IDENT "none" ->
    advance p;
    { Ast.v = Ast.No_outputs; pos }
  | Lexer.IDENT "minimal" ->
    advance p;
    let vc = opt_vc p in
    { Ast.v = Ast.Minimal vc; pos }
  | Lexer.IDENT _ ->
    let rec names acc =
      match p.tok with
      | Lexer.IDENT s ->
        let npos = p.tok_pos in
        advance p;
        names ({ Ast.v = s; pos = npos } :: acc)
      | _ -> List.rev acc
    in
    { Ast.v = Ast.Chans (names []); pos }
  | tok ->
    error pos "expected output buffers ('none', 'minimal' or channel names), found %s"
      (Lexer.describe tok)

let parse_rule p kind pos =
  let sel = parse_selector p in
  (match p.tok with
  | Lexer.IDENT "to" -> advance p
  | tok -> error p.tok_pos "expected 'to' after the selector, found %s" (Lexer.describe tok));
  let dst = parse_dest p in
  expect_tok p Lexer.COLON ~what:"':' before the output list";
  let outs = parse_outputs p in
  { Ast.v = Ast.Rule { Ast.rule_kind = kind; sel; dst; outs }; Ast.pos }

let parse_decl p pos = function
  | "network" ->
    let name, _ = expect_ident p ~what:"a network name" in
    { Ast.v = Ast.Network name; pos }
  | "switching" -> (
    let kw, kpos = expect_ident p ~what:"a switching mode (wormhole, saf or vct)" in
    match kw with
    | "wormhole" -> { Ast.v = Ast.Switching Ast.Wormhole; pos }
    | "saf" | "store-and-forward" -> { Ast.v = Ast.Switching Ast.Saf; pos }
    | "vct" | "virtual-cut-through" -> { Ast.v = Ast.Switching Ast.Vct; pos }
    | other -> error kpos "unknown switching mode %S (expected wormhole, saf or vct)" other)
  | "waiting" -> (
    let kw, kpos = expect_ident p ~what:"a waiting discipline (specific or any)" in
    match kw with
    | "specific" -> { Ast.v = Ast.Waiting Ast.Specific; pos }
    | "any" -> { Ast.v = Ast.Waiting Ast.Any; pos }
    | other -> error kpos "unknown waiting discipline %S (expected specific or any)" other)
  | "nodes" ->
    let n, _ = expect_int p ~what:"the number of nodes" in
    { Ast.v = Ast.Nodes n; pos }
  | "vcs" ->
    let n, _ = expect_int p ~what:"the number of virtual channels" in
    { Ast.v = Ast.Vcs n; pos }
  | "topology" ->
    (* the lookahead already sits on the first clause token; recapture the
       raw line from there and re-lex the shorthand separately *)
    let rpos = p.tok_pos in
    let raw = Lexer.capture_line_from_last p.lx in
    advance p;
    (* the lookahead is now the NEWLINE (or EOF) ending the clause *)
    if raw = "" then error rpos "expected a topology shorthand, e.g. 'mesh 4 4' or 'mesh:4x4'";
    { Ast.v = Ast.Topology raw; pos }
  | "channel" ->
    let cname =
      let name, npos = expect_ident p ~what:"a channel name" in
      { Ast.v = name; Ast.pos = npos }
    in
    expect_tok p Lexer.COLON ~what:"':' after the channel name";
    let src, _ = expect_int p ~what:"the source node" in
    expect_tok p Lexer.ARROW ~what:"'->' between the channel endpoints";
    let dst, _ = expect_int p ~what:"the destination node" in
    let vc = Option.value (opt_vc p) ~default:0 in
    { Ast.v = Ast.Channel { cname; src; dst; vc }; pos }
  | "route" -> parse_rule p Ast.Route pos
  | "wait" -> parse_rule p Ast.Wait pos
  | other ->
    error pos
      "unknown declaration %S (expected network, switching, waiting, nodes, topology, vcs, \
       channel, route or wait)"
      other

let parse_string src =
  let p = make src in
  let rec loop acc =
    match p.tok with
    | Lexer.NEWLINE ->
      advance p;
      loop acc
    | Lexer.EOF -> List.rev acc
    | Lexer.IDENT kw ->
      let pos = p.tok_pos in
      advance p;
      let decl = parse_decl p pos kw in
      end_of_decl p;
      loop (decl :: acc)
    | tok -> error p.tok_pos "expected a declaration keyword, found %s" (Lexer.describe tok)
  in
  try Ok (loop []) with
  | Error (pos, msg) | Lexer.Error (pos, msg) -> (Error (pos, msg) : (Ast.t, _) result)
