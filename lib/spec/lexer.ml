(* Hand-rolled lexer for .dfr specifications.

   Tokens are produced on demand so the parser can switch to raw
   line-capture for the [topology] clause (whose shorthand grammar —
   [mesh:4x4] or [mesh 4 4] — is shared with the dfcheck CLI and lexes
   poorly as ordinary tokens). *)

type token =
  | IDENT of string
  | INT of int
  | COLON
  | ARROW
  | STAR
  | NEWLINE
  | EOF

exception Error of Ast.pos * string

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
  mutable last_start : int;  (* start offset of the last token returned *)
}

let create src = { src; off = 0; line = 1; bol = 0; last_start = 0 }

let pos_at t off = { Ast.line = t.line; Ast.col = off - t.bol + 1 }
let pos t = pos_at t t.off

let error t off fmt =
  Printf.ksprintf (fun msg -> raise (Error (pos_at t off, msg))) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek_char t = if t.off < String.length t.src then Some t.src.[t.off] else None
let peek_char2 t =
  if t.off + 1 < String.length t.src then Some t.src.[t.off + 1] else None

(* Skip spaces, tabs, carriage returns and [#] comments — but not
   newlines, which are tokens. *)
let rec skip_blanks t =
  match peek_char t with
  | Some (' ' | '\t' | '\r') ->
    t.off <- t.off + 1;
    skip_blanks t
  | Some '#' ->
    while peek_char t <> None && peek_char t <> Some '\n' do
      t.off <- t.off + 1
    done;
    skip_blanks t
  | _ -> ()

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | COLON -> "':'"
  | ARROW -> "'->'"
  | STAR -> "'*'"
  | NEWLINE -> "end of line"
  | EOF -> "end of file"

let next t =
  skip_blanks t;
  let start = t.off in
  t.last_start <- start;
  let p = pos_at t start in
  match peek_char t with
  | None -> (EOF, p)
  | Some '\n' ->
    t.off <- t.off + 1;
    t.line <- t.line + 1;
    t.bol <- t.off;
    (NEWLINE, p)
  | Some ':' ->
    t.off <- t.off + 1;
    (COLON, p)
  | Some '*' ->
    t.off <- t.off + 1;
    (STAR, p)
  | Some '-' when peek_char2 t = Some '>' ->
    t.off <- t.off + 2;
    (ARROW, p)
  | Some c when is_digit c ->
    while (match peek_char t with Some c -> is_digit c | None -> false) do
      t.off <- t.off + 1
    done;
    (match peek_char t with
    | Some c when is_ident_start c ->
      error t start "identifier may not start with a digit: %S"
        (String.sub t.src start (t.off - start + 1))
    | _ -> ());
    (INT (int_of_string (String.sub t.src start (t.off - start))), p)
  | Some c when is_ident_start c ->
    let continue_ident () =
      match peek_char t with
      | Some c when is_ident_char c -> true
      (* '-' belongs to the identifier unless it opens an '->' arrow *)
      | Some '-' when peek_char2 t <> Some '>' -> true
      | _ -> false
    in
    t.off <- t.off + 1;
    while continue_ident () do
      t.off <- t.off + 1
    done;
    (IDENT (String.sub t.src start (t.off - start)), p)
  | Some c -> error t start "unexpected character %C" c

(* Raw text of the rest of the line containing the last-returned token,
   starting at that token (comment stripped, trimmed) — for the
   [topology] clause, which re-lexes its shorthand itself.  Repositions
   the lexer at the terminating newline without consuming it; the caller
   must refresh its lookahead afterwards. *)
let capture_line_from_last t =
  let start = t.last_start in
  let stop =
    match String.index_from_opt t.src start '\n' with
    | Some i -> i
    | None -> String.length t.src
  in
  t.off <- stop;
  let raw = String.sub t.src start (stop - start) in
  let raw =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  String.trim raw
