(* Structural differ over validated specs: given a base and an edited
   spec, compute which destinations' routing could differ — the "dirty
   frontier" the incremental re-checker rebuilds, everything else being
   reused.

   Soundness rests on how {!Elaborate} resolves rules: the route (resp.
   wait) table entry of a state (buf, dest) is decided by first-match over
   the kind-filtered rule list restricted to rules whose [dst] is the
   wildcard or exactly [dest].  So destination [dest]'s entire table is a
   function of the *subsequence of applicable rules* (and of the shared
   skeleton: channels, topology, switching...).  If that subsequence —
   compared by position-stripped structural keys — is unchanged between
   base and edit, every table entry of [dest] is unchanged, and with it
   the destination's state-space slice, move graph and BWG emissions.

   The comparison is conservative in the other direction: a rule rewrite
   that happens to resolve to the same tables (say, replacing a wildcard
   with the equivalent per-destination rules) marks destinations dirty
   that did not semantically change.  That only costs reuse, never
   correctness. *)

open Dfr_topology

type frontier = { dirty : int list; total : int }
(** [dirty] ascending; [total] is the destination count (= nodes). *)

type t =
  | Incompatible of string
      (** the skeletons differ (named part); only a cold check is sound *)
  | Frontier of frontier

(* A rule's identity for table-resolution purposes: kind, selector and
   outputs, with source positions stripped (moving a rule to another line
   must not dirty anything) and [dst] excluded — applicability to the
   destination under comparison is what filtered the rule in, and beyond
   that the destination's tables do not depend on whether the rule was a
   wildcard or explicit. *)
let outs_key = function
  | Validate.Explicit l -> `Explicit (List.map fst l)
  | Validate.Empty -> `Empty
  | Validate.Min v -> `Min v

let rule_key (r : Validate.rule) =
  (r.Validate.kind, r.Validate.sel, outs_key r.Validate.outs)

let applicable ~dest rules =
  List.filter_map
    (fun r ->
      match r.Validate.dst with
      | Some d when d <> dest -> None
      | _ -> Some (rule_key r))
    rules

(* Everything a destination's tables depend on besides its applicable
   rules.  The name is included because it is embedded in every rendered
   report; channel names are not (buffers are described by their (src,
   dst, vc) triple, and the canonical reprint regenerates names). *)
let skeleton_mismatch (a : Validate.t) (b : Validate.t) =
  let chan_triple (c : Validate.channel) = (c.Validate.csrc, c.Validate.cdst, c.Validate.cvc) in
  if a.Validate.name <> b.Validate.name then Some "network name"
  else if a.Validate.switching <> b.Validate.switching then Some "switching mode"
  else if a.Validate.waiting <> b.Validate.waiting then Some "waiting discipline"
  else if a.Validate.num_nodes <> b.Validate.num_nodes then Some "node count"
  else if a.Validate.vcs <> b.Validate.vcs then Some "virtual channel count"
  else if
    Option.map Topology.name a.Validate.topology
    <> Option.map Topology.name b.Validate.topology
  then Some "topology"
  else if
    Array.length a.Validate.channels <> Array.length b.Validate.channels
    || not
         (Array.for_all2
            (fun c1 c2 -> chan_triple c1 = chan_triple c2)
            a.Validate.channels b.Validate.channels)
  then Some "channel table"
  else None

let diff (base : Validate.t) (edit : Validate.t) =
  match skeleton_mismatch base edit with
  | Some what -> Incompatible (what ^ " changed")
  | None ->
    let n = base.Validate.num_nodes in
    let dirty = ref [] in
    for dest = n - 1 downto 0 do
      if
        applicable ~dest base.Validate.rules
        <> applicable ~dest edit.Validate.rules
      then dirty := dest :: !dirty
    done;
    Frontier { dirty = !dirty; total = n }
