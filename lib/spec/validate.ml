(* Validation: from a located AST to a resolved spec, or the first error
   with its source position.

   Everything that can be checked without building the network happens
   here: declaration well-formedness, the topology shorthand, channel
   table construction (including the channels a topology clause
   generates), name resolution and range checks.  Whole-network semantic
   checks (wait ⊆ route, adjacency, destination reachability) live in
   {!Elaborate}, which owns the routing tables. *)

open Dfr_topology
open Dfr_network
open Dfr_routing

type channel = {
  cname : string;
  csrc : int;
  cdst : int;
  cvc : int;
  cpos : Ast.pos;
}

type sel = At of int | At_all | In of int | Inj of int

type outs =
  | Explicit of (int * Ast.pos) list  (* channel indices *)
  | Empty
  | Min of int option

type rule = {
  kind : Ast.rule_kind;
  sel : sel;
  dst : int option;  (* [None] is the wildcard *)
  outs : outs;
  rpos : Ast.pos;
}

type t = {
  name : string;
  switching : Net.switching;
  waiting : Algo.wait_discipline;
  num_nodes : int;
  topology : Topology.t option;
  vcs : int;
  channels : channel array;  (* declaration order = buffer creation order *)
  rules : rule list;
  size_pos : Ast.pos;  (* the nodes/topology clause, anchor for global errors *)
}

exception Error of Ast.pos * string

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error (pos, msg))) fmt

let generated_channel_name ~src ~dst ~vc = Printf.sprintf "c%d_%d_%d" src dst vc

(* `mesh 4 4' / `hypercube 3' -> the canonical CLI shorthand `mesh:4x4' /
   `hypercube:3'; single-word clauses pass through untouched. *)
let canonical_topology raw =
  match
    String.split_on_char ' ' raw
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  with
  | [] -> raw
  | [ w ] -> w
  | kind :: dims -> kind ^ ":" ^ String.concat "x" dims

let run (decls : Ast.t) =
  let name = ref None
  and switching = ref None
  and waiting = ref None
  and nodes = ref None
  and topo_raw = ref None
  and vcs = ref None in
  let channels = ref [] (* reversed *) in
  let rules_raw = ref [] (* reversed *) in
  let once what slot pos v =
    match !slot with
    | Some (_, first) ->
      error pos "duplicate %s declaration (first at %d:%d)" what first.Ast.line first.Ast.col
    | None -> slot := Some (v, pos)
  in
  List.iter
    (fun { Ast.v; pos } ->
      match v with
      | Ast.Network n -> once "network" name pos n
      | Ast.Switching s -> once "switching" switching pos s
      | Ast.Waiting w -> once "waiting" waiting pos w
      | Ast.Nodes n -> once "nodes" nodes pos n
      | Ast.Topology raw -> once "topology" topo_raw pos raw
      | Ast.Vcs n -> once "vcs" vcs pos n
      | Ast.Channel { cname; src; dst; vc } -> channels := ((cname, src, dst, vc), pos) :: !channels
      | Ast.Rule r -> rules_raw := (r, pos) :: !rules_raw)
    decls;
  let channels = List.rev !channels and rules_raw = List.rev !rules_raw in
  let switching =
    match !switching with
    | Some (Ast.Wormhole, _) | None -> Net.Wormhole
    | Some (Ast.Saf, _) -> Net.Store_and_forward
    | Some (Ast.Vct, _) -> Net.Virtual_cut_through
  in
  let waiting =
    match !waiting with
    | Some (Ast.Specific, _) -> Algo.Specific_wait
    | Some (Ast.Any, _) | None -> Algo.Any_wait
  in
  (* network size: exactly one of `nodes' and `topology' *)
  let num_nodes, topology, size_pos =
    match (!nodes, !topo_raw) with
    | Some (_, npos), Some (_, tpos) ->
      error (if npos.Ast.line > tpos.Ast.line then npos else tpos)
        "'nodes' and 'topology' cannot both be declared; a topology fixes the node count"
    | Some (n, pos), None ->
      if n < 1 then error pos "nodes must be >= 1, got %d" n;
      (n, None, pos)
    | None, Some (raw, pos) -> (
      match Topology.of_string (canonical_topology raw) with
      | Ok t -> (Topology.num_nodes t, Some t, pos)
      | Error msg -> error pos "bad topology shorthand: %s" msg)
    | None, None -> (
      match decls with
      | [] -> error { Ast.line = 1; col = 1 } "empty specification: declare 'nodes N' or 'topology ...'"
      | { Ast.pos; _ } :: _ -> error pos "missing 'nodes N' or 'topology ...' declaration")
  in
  let vcs =
    match (!vcs, topology) with
    | Some (_, pos), None ->
      error pos "'vcs' only applies to topology specs; explicit channels carry their own 'vc N'"
    | Some (n, pos), Some _ ->
      if n < 1 then error pos "vcs must be >= 1, got %d" n;
      n
    | None, _ -> 1
  in
  (match (topology, switching) with
  | Some _, (Net.Store_and_forward | Net.Virtual_cut_through) ->
    error size_pos
      "topology shorthands are wormhole-only; declare saf/vct networks with explicit channels"
  | _ -> ());
  (* channel table: topology-generated channels first, then explicit ones *)
  let generated =
    match topology with
    | None -> []
    | Some t ->
      List.concat_map
        (fun (u, v) ->
          List.init vcs (fun k ->
              {
                cname = generated_channel_name ~src:u ~dst:v ~vc:k;
                csrc = u;
                cdst = v;
                cvc = k;
                cpos = size_pos;
              }))
        (Topology.channels t)
  in
  let explicit =
    List.map
      (fun ((cname, src, dst, vc), pos) ->
        if src < 0 || src >= num_nodes then
          error pos "channel %S: source node %d out of range 0..%d" cname.Ast.v src (num_nodes - 1);
        if dst < 0 || dst >= num_nodes then
          error pos "channel %S: destination node %d out of range 0..%d" cname.Ast.v dst
            (num_nodes - 1);
        if vc < 0 then error pos "channel %S: vc must be >= 0, got %d" cname.Ast.v vc;
        { cname = cname.Ast.v; csrc = src; cdst = dst; cvc = vc; cpos = cname.Ast.pos })
      channels
  in
  let channels = Array.of_list (generated @ explicit) in
  (* duplicate names and duplicate physical keys *)
  let by_name = Hashtbl.create 64 in
  let by_key = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      (match Hashtbl.find_opt by_name c.cname with
      | Some j ->
        let first = channels.(j) in
        error c.cpos "duplicate channel name %S (first declared at %d:%d)" c.cname
          first.cpos.Ast.line first.cpos.Ast.col
      | None -> Hashtbl.add by_name c.cname i);
      let key =
        match switching with
        | Net.Wormhole -> (c.csrc, c.cdst, c.cvc)
        | Net.Store_and_forward | Net.Virtual_cut_through ->
          (* custom saf/vct channels elaborate to the whole-packet buffer
             (dst, vc); the source endpoint is not part of the identity *)
          (-1, c.cdst, c.cvc)
      in
      match Hashtbl.find_opt by_key key with
      | Some j ->
        let first = channels.(j) in
        (match switching with
        | Net.Wormhole ->
          error c.cpos "duplicate channel %d -> %d vc %d (first declared as %S at %d:%d)" c.csrc
            c.cdst c.cvc first.cname first.cpos.Ast.line first.cpos.Ast.col
        | _ ->
          error c.cpos
            "duplicate saf/vct buffer: node %d class %d already declared as %S at %d:%d \
             (under saf/vct a channel names the whole-packet buffer (dst, vc))"
            c.cdst c.cvc first.cname first.cpos.Ast.line first.cpos.Ast.col)
      | None -> Hashtbl.add by_key key i)
    channels;
  (* rules: name resolution and range checks *)
  let node_in_range pos what n =
    if n < 0 || n >= num_nodes then error pos "%s %d out of range 0..%d" what n (num_nodes - 1)
  in
  let resolve_channel { Ast.v = cname; pos } =
    match Hashtbl.find_opt by_name cname with
    | Some i -> i
    | None -> error pos "unknown channel %S" cname
  in
  let rules =
    List.map
      (fun ((r : Ast.rule), pos) ->
        let sel =
          match r.Ast.sel.Ast.v with
          | Ast.At_any -> At_all
          | Ast.At_node n ->
            node_in_range r.Ast.sel.Ast.pos "selector node" n;
            At n
          | Ast.In_channel cname -> In (resolve_channel { Ast.v = cname; pos = r.Ast.sel.Ast.pos })
          | Ast.Inj n ->
            node_in_range r.Ast.sel.Ast.pos "selector node" n;
            Inj n
        in
        let dst =
          match r.Ast.dst.Ast.v with
          | Ast.Any_dest -> None
          | Ast.Dest d ->
            node_in_range r.Ast.dst.Ast.pos "destination node" d;
            Some d
        in
        let outs =
          match r.Ast.outs.Ast.v with
          | Ast.No_outputs -> Empty
          | Ast.Minimal vcf -> (
            match topology with
            | None ->
              error r.Ast.outs.Ast.pos
                "'minimal' requires a topology clause (explicit-channel specs must list outputs)"
            | Some t ->
              if not (Topology.is_grid t) then
                error r.Ast.outs.Ast.pos
                  "'minimal' requires a grid topology (mesh/torus/hypercube); \
                   %s needs explicit output channels"
                  (Topology.name t);
              (match vcf with
              | Some k when k < 0 || k >= vcs ->
                error r.Ast.outs.Ast.pos "minimal vc %d out of range 0..%d" k (vcs - 1)
              | _ -> ());
              Min vcf)
          | Ast.Chans names ->
            let resolved = List.map (fun n -> (resolve_channel n, n.Ast.pos)) names in
            let seen = Hashtbl.create 8 in
            List.iter
              (fun (i, npos) ->
                if Hashtbl.mem seen i then
                  error npos "channel %S repeated in the output list" channels.(i).cname
                else Hashtbl.add seen i ())
              resolved;
            Explicit resolved
        in
        { kind = r.Ast.rule_kind; sel; dst; outs; rpos = pos })
      rules_raw
  in
  let name = match !name with Some (n, _) -> n | None -> "spec" in
  { name; switching; waiting; num_nodes; topology; vcs; channels; rules; size_pos }

let check decls = try Ok (run decls) with Error (pos, msg) -> Error (pos, msg)
