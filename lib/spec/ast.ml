(* Located abstract syntax of .dfr network/routing specifications.

   The concrete syntax is line-oriented: one declaration per line,
   [#] comments, free token spacing.  Every node of the tree carries the
   source position of its first token so that validation and elaboration
   can report errors the way a compiler does. *)

type pos = { line : int; col : int }

let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col

type 'a located = { v : 'a; pos : pos }

type switching = Wormhole | Saf | Vct
type waiting = Specific | Any

type selector =
  | At_node of int  (** any buffer whose head node is the given node *)
  | At_any  (** any buffer *)
  | In_channel of string  (** the named channel/buffer *)
  | Inj of int  (** the injection buffer of a node *)

type dest = Dest of int | Any_dest

type outputs =
  | Chans of string located list  (** explicit buffer names *)
  | No_outputs  (** the literal [none] *)
  | Minimal of int option
      (** all minimal next-hop channels (topology specs only), optionally
          restricted to one virtual channel *)

type rule_kind = Route | Wait

type rule = {
  rule_kind : rule_kind;
  sel : selector located;
  dst : dest located;
  outs : outputs located;
}

type decl =
  | Network of string
  | Switching of switching
  | Waiting of waiting
  | Nodes of int
  | Topology of string
      (** raw shorthand text, canonicalized and parsed during validation *)
  | Vcs of int
  | Channel of { cname : string located; src : int; dst : int; vc : int }
  | Rule of rule

type t = decl located list
