(* All algorithms run on the frozen CSR form; the [Digraph.t] entry points
   freeze once and delegate, so callers holding a mutable graph pay one
   O(V + E) packing instead of per-vertex [List.rev] allocation on every
   step of the walk. *)

let reachable_csr g sources =
  let n = Csr.num_vertices g in
  let seen = Array.make n false in
  let rec visit stack =
    match stack with
    | [] -> ()
    | u :: rest ->
      let push acc v = if seen.(v) then acc else (seen.(v) <- true; v :: acc) in
      visit (Csr.fold_succ (fun v acc -> push acc v) g u rest)
  in
  let init = List.filter (fun s -> not seen.(s) && (seen.(s) <- true; true)) sources in
  visit init;
  seen

let bfs_distances_csr g src =
  let n = Csr.num_vertices g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let du = dist.(u) in
    Csr.iter_succ
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- du + 1;
          Queue.add v q
        end)
      g u
  done;
  dist

let topological_sort_csr g =
  let n = Csr.num_vertices g in
  let indeg = Array.make n 0 in
  Csr.iter_edges (fun _ v -> indeg.(v) <- indeg.(v) + 1) g;
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr count;
    order := u :: !order;
    Csr.iter_succ
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      g u
  done;
  if !count = n then Some (List.rev !order) else None

let is_acyclic_csr g = topological_sort_csr g <> None

let find_cycle_csr g =
  let n = Csr.num_vertices g in
  (* colors: 0 unvisited, 1 on current DFS path, 2 done *)
  let color = Array.make n 0 in
  let parent = Array.make n (-1) in
  let result = ref None in
  let rec dfs u =
    color.(u) <- 1;
    Csr.iter_succ
      (fun v ->
        if !result = None then
          match color.(v) with
          | 0 ->
            parent.(v) <- u;
            dfs v
          | 1 ->
            (* walk the parent chain from u back to v *)
            let rec collect acc w =
              if w = v then w :: acc else collect (w :: acc) parent.(w)
            in
            result := Some (collect [] u)
          | _ -> ())
      g u;
    if !result = None then color.(u) <- 2
  in
  let rec scan v =
    if v >= n || !result <> None then ()
    else begin
      if color.(v) = 0 then dfs v;
      scan (v + 1)
    end
  in
  scan 0;
  !result

let path_csr g src dst =
  let n = Csr.num_vertices g in
  let prev = Array.make n (-1) in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Csr.iter_succ
      (fun v ->
        if (not !found) && not seen.(v) then begin
          seen.(v) <- true;
          prev.(v) <- u;
          if v = dst then found := true else Queue.add v q
        end)
      g u
  done;
  if not !found then None
  else begin
    let rec build acc v = if v = src then v :: acc else build (v :: acc) prev.(v) in
    Some (build [] dst)
  end

let reachable g sources = reachable_csr (Digraph.freeze g) sources
let bfs_distances g src = bfs_distances_csr (Digraph.freeze g) src
let topological_sort g = topological_sort_csr (Digraph.freeze g)
let is_acyclic g = is_acyclic_csr (Digraph.freeze g)
let find_cycle g = find_cycle_csr (Digraph.freeze g)
let path g src dst = path_csr (Digraph.freeze g) src dst
