type limits = { max_cycles : int; max_length : int }

let default_limits = { max_cycles = 10_000; max_length = 64 }

exception Done

(* Johnson's algorithm restricted to one SCC at a time, over an *implicit*
   edge relation: [row v] returns the successors of [v] as a strictly
   ascending array.  The enumeration never materializes the full graph —
   it Tarjan-scans the implicit relation once (holding only the rows on
   the DFS path), then builds a compact sub-CSR per cycle-capable SCC and
   runs the per-root rounds inside it.  Vertices in trivial SCCs are
   skipped entirely, which is what makes the scan affordable on
   10^4-10^5-vertex BWGs whose cyclic cores are tiny.

   Output order is identical to running the classic whole-graph algorithm
   on the frozen CSR: roots are visited in ascending global order, and a
   sub-CSR row restricted to the root's SCC enumerates the same allowed
   successors in the same ascending order as the full row did under the
   [allowed] mask. *)
let enumerate_with_rows ?(limits = default_limits) ~n ~row ~on_truncate () =
  (* --- pass 1: SCCs of the implicit graph (iterative Tarjan) --- *)
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let comp_count = ref 0 in
  let next_index = ref 0 in
  let stack = ref [] in
  (* frames: vertex, its row, cursor *)
  let frames = ref [] in
  let push_frame v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    frames := (v, row v, ref 0) :: !frames
  in
  let pop_component v =
    let c = !comp_count in
    incr comp_count;
    let rec pop () =
      match !stack with
      | [] -> ()
      | w :: tl ->
        stack := tl;
        on_stack.(w) <- false;
        comp.(w) <- c;
        if w <> v then pop ()
    in
    pop ()
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push_frame root;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, succs, cursor) :: rest ->
          if !cursor < Array.length succs then begin
            let w = succs.(!cursor) in
            incr cursor;
            if index.(w) < 0 then push_frame w
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            frames := rest;
            if lowlink.(v) = index.(v) then pop_component v
            else
              match rest with
              | (p, _, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
              | [] -> ()
          end
      done
    end
  done;
  (* --- pass 2: which components can host a cycle? --- *)
  let size = Array.make !comp_count 0 in
  for v = 0 to n - 1 do
    size.(comp.(v)) <- size.(comp.(v)) + 1
  done;
  let has_self_loop v =
    let r = row v in
    let lo = ref 0 and hi = ref (Array.length r) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let w = r.(mid) in
      if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
    done;
    !found
  in
  let live = Array.make n false in
  for v = 0 to n - 1 do
    live.(v) <- size.(comp.(v)) >= 2 || has_self_loop v
  done;
  (* --- pass 3: Johnson rounds, roots ascending, inside per-SCC sub-CSRs --- *)
  let result = ref [] in
  let found = ref 0 in
  (* memoized per-component machinery: (members, local csr, scratch) *)
  let sub = Array.make !comp_count None in
  let subgraph c =
    match sub.(c) with
    | Some s -> s
    | None ->
      let members = ref [] in
      for v = n - 1 downto 0 do
        if comp.(v) = c then members := v :: !members
      done;
      let members = Array.of_list !members in
      let m = Array.length members in
      let local = Array.make n (-1) in
      Array.iteri (fun i v -> local.(v) <- i) members;
      let degree = Array.make m 0 in
      let rows = Array.map row members in
      Array.iteri
        (fun i r ->
          Array.iter (fun w -> if comp.(w) = c then degree.(i) <- degree.(i) + 1) r)
        rows;
      let offsets = Array.make (m + 1) 0 in
      for i = 0 to m - 1 do
        offsets.(i + 1) <- offsets.(i) + degree.(i)
      done;
      let targets = Array.make offsets.(m) 0 in
      let next = Array.copy offsets in
      Array.iteri
        (fun i r ->
          Array.iter
            (fun w ->
              if comp.(w) = c then begin
                targets.(next.(i)) <- local.(w);
                next.(i) <- next.(i) + 1
              end)
            r)
        rows;
      (* members ascend, rows ascend, and local ids are order-preserving,
         so every sub-CSR row is strictly ascending as Csr.make requires *)
      let g = Csr.make ~n:m ~offsets ~targets in
      let s = (members, local, g) in
      sub.(c) <- Some s;
      s
  in
  let blocked = ref [||] and block_map = ref [||] and allowed = ref [||] in
  let round members g lv =
    let m = Csr.num_vertices g in
    if Array.length !blocked < m then begin
      blocked := Array.make m false;
      block_map := Array.make m [];
      allowed := Array.make m false
    end;
    let blocked = !blocked and block_map = !block_map and allowed = !allowed in
    let scc = Scc.compute_bounded g ~least:lv in
    let c = scc.Scc.component.(lv) in
    for v = 0 to m - 1 do
      allowed.(v) <- scc.Scc.component.(v) = c
    done;
    let live_root = Csr.fold_succ (fun w acc -> acc || allowed.(w)) g lv false in
    if live_root then begin
      for v = 0 to m - 1 do
        blocked.(v) <- false;
        block_map.(v) <- []
      done;
      let cstack = ref [] in
      let depth = ref 0 in
      let rec unblock v =
        if blocked.(v) then begin
          blocked.(v) <- false;
          let ws = block_map.(v) in
          block_map.(v) <- [];
          List.iter unblock ws
        end
      in
      let emit () =
        result := List.rev_map (fun v -> members.(v)) !cstack :: !result;
        incr found;
        if !found >= limits.max_cycles then begin
          on_truncate ();
          raise Done
        end
      in
      let rec circuit v =
        let closed = ref false in
        blocked.(v) <- true;
        cstack := v :: !cstack;
        incr depth;
        Csr.iter_succ
          (fun w ->
            if allowed.(w) then
              if w = lv then begin
                if !depth <= limits.max_length then emit ();
                closed := true
              end
              else if (not blocked.(w)) && !depth < limits.max_length then
                if circuit w then closed := true)
          g v;
        if !closed then unblock v
        else
          Csr.iter_succ
            (fun w ->
              if allowed.(w) && not (List.mem v block_map.(w)) then
                block_map.(w) <- v :: block_map.(w))
            g v;
        cstack := List.tl !cstack;
        decr depth;
        !closed
      in
      ignore (circuit lv)
    end
  in
  (try
     for least = 0 to n - 1 do
       if live.(least) then begin
         let members, local, g = subgraph comp.(least) in
         round members g local.(least)
       end
     done
   with Done -> ());
  List.rev !result

let csr_row g u =
  let start, stop = Csr.row g u in
  Array.init (stop - start) (fun i -> Csr.target g (start + i))

let enumerate_with_csr ?limits g ~on_truncate =
  enumerate_with_rows ?limits ~n:(Csr.num_vertices g) ~row:(csr_row g)
    ~on_truncate ()

let enumerate_with ?limits g ~on_truncate =
  enumerate_with_csr ?limits (Digraph.freeze g) ~on_truncate

let enumerate ?limits g =
  enumerate_with ?limits g ~on_truncate:(fun () -> ())

let enumerate_checked ?limits g =
  let hit = ref false in
  let cs = enumerate_with ?limits g ~on_truncate:(fun () -> hit := true) in
  (cs, not !hit)

let enumerate_csr ?limits g =
  enumerate_with_csr ?limits g ~on_truncate:(fun () -> ())

let enumerate_checked_csr ?limits g =
  let hit = ref false in
  let cs = enumerate_with_csr ?limits g ~on_truncate:(fun () -> hit := true) in
  (cs, not !hit)

let enumerate_checked_rows ?limits ~n ~row () =
  let hit = ref false in
  let cs =
    enumerate_with_rows ?limits ~n ~row ~on_truncate:(fun () -> hit := true) ()
  in
  (cs, not !hit)

let truncated ?limits g =
  let hit = ref false in
  ignore (enumerate_with ?limits g ~on_truncate:(fun () -> hit := true));
  !hit

let count_bounded ?limits g = List.length (enumerate ?limits g)
