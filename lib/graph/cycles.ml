type limits = { max_cycles : int; max_length : int }

let default_limits = { max_cycles = 10_000; max_length = 64 }

exception Done

(* Johnson's algorithm restricted to one SCC at a time.  [least] is the
   root vertex of the current round: only vertices >= least participate and
   every reported cycle starts at [least].  Runs on the frozen CSR form:
   the per-root subgraph is Scc.compute_bounded plus an [allowed] mask —
   no induced graph is ever materialized. *)
let enumerate_with_csr ?(limits = default_limits) g ~on_truncate =
  let n = Csr.num_vertices g in
  let result = ref [] in
  let found = ref 0 in
  let blocked = Array.make n false in
  let block_map = Array.make n [] in
  let allowed = Array.make n false in
  let stack = ref [] in
  let depth = ref 0 in
  let rec unblock v =
    if blocked.(v) then begin
      blocked.(v) <- false;
      let ws = block_map.(v) in
      block_map.(v) <- [];
      List.iter unblock ws
    end
  in
  let emit () =
    result := List.rev !stack :: !result;
    incr found;
    if !found >= limits.max_cycles then begin
      on_truncate ();
      raise Done
    end
  in
  let rec circuit least v =
    let closed = ref false in
    blocked.(v) <- true;
    stack := v :: !stack;
    incr depth;
    Csr.iter_succ
      (fun w ->
        if allowed.(w) then
          if w = least then begin
            if !depth <= limits.max_length then emit ();
            closed := true
          end
          else if (not blocked.(w)) && !depth < limits.max_length then
            if circuit least w then closed := true)
      g v;
    if !closed then unblock v
    else
      Csr.iter_succ
        (fun w ->
          if allowed.(w) && not (List.mem v block_map.(w)) then
            block_map.(w) <- v :: block_map.(w))
        g v;
    stack := List.tl !stack;
    decr depth;
    !closed
  in
  (try
     for least = 0 to n - 1 do
       (* SCC of the subgraph induced by vertices >= least that contains
          [least] *)
       let scc = Scc.compute_bounded g ~least in
       let c = scc.Scc.component.(least) in
       for v = 0 to n - 1 do
         allowed.(v) <- scc.Scc.component.(v) = c
       done;
       (* a round is worthwhile iff [least] has an in-SCC successor (a
          self loop counts: allowed.(least) holds) *)
       let live = Csr.fold_succ (fun w acc -> acc || allowed.(w)) g least false in
       if live then begin
         for v = 0 to n - 1 do
           blocked.(v) <- false;
           block_map.(v) <- []
         done;
         ignore (circuit least least)
       end
     done
   with Done -> ());
  List.rev !result

let enumerate_with ?limits g ~on_truncate =
  enumerate_with_csr ?limits (Digraph.freeze g) ~on_truncate

let enumerate ?limits g =
  enumerate_with ?limits g ~on_truncate:(fun () -> ())

let enumerate_checked ?limits g =
  let hit = ref false in
  let cs = enumerate_with ?limits g ~on_truncate:(fun () -> hit := true) in
  (cs, not !hit)

let enumerate_csr ?limits g =
  enumerate_with_csr ?limits g ~on_truncate:(fun () -> ())

let enumerate_checked_csr ?limits g =
  let hit = ref false in
  let cs = enumerate_with_csr ?limits g ~on_truncate:(fun () -> hit := true) in
  (cs, not !hit)

let truncated ?limits g =
  let hit = ref false in
  ignore (enumerate_with ?limits g ~on_truncate:(fun () -> hit := true));
  !hit

let count_bounded ?limits g = List.length (enumerate ?limits g)
