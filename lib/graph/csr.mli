(** Frozen digraphs in compressed sparse row form.

    The mutable {!Digraph} is the construction-time representation; once a
    graph stops changing, {!Digraph.freeze} packs it into two contiguous
    [int array]s — [offsets] (length [n + 1]) and [targets] (length [m]) —
    so every traversal reads successors as a zero-allocation array slice
    instead of reversing a cons list.  Rows are sorted ascending and
    duplicate-free, which makes [mem_edge] a binary search and [equal] a
    pair of array compares. *)

type t

val make : n:int -> offsets:int array -> targets:int array -> t
(** [make ~n ~offsets ~targets] validates the shape: [offsets] has length
    [n + 1], starts at [0], ends at [Array.length targets], is monotone,
    and every row is strictly ascending with in-range targets.  Raises
    [Invalid_argument] otherwise. *)

val of_edges : int -> (int * int) list -> t
(** Duplicate edges are collapsed. *)

val num_vertices : t -> int
val num_edges : t -> int
val out_degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** Binary search within the source row: O(log deg). *)

val succ : t -> int -> int list
(** Successors ascending.  Allocates; traversals should prefer
    {!iter_succ} / {!fold_succ}. *)

val nth_succ : t -> int -> int -> int
(** [nth_succ g u i] is the [i]-th successor of [u] (ascending, 0-based);
    O(1).  Lets traversals keep an integer cursor into a row instead of
    materializing it. *)

val row : t -> int -> int * int
(** [row g u] is the half-open [(start, stop)] range of [u]'s row in the
    flat target array; read entries with {!target}.  The cheapest way for
    a tight loop to keep a cursor into a row. *)

val target : t -> int -> int
(** Entry of the flat target array at a position obtained from {!row}. *)

val iter_succ : (int -> unit) -> t -> int -> unit
val fold_succ : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> (int * int) list

val transpose : t -> t
(** Also in CSR form (counting sort, O(V + E)). *)

val equal : t -> t -> bool
(** Same vertex count and edge set — O(V + E) array comparison thanks to
    the canonical row order. *)

val pp : Format.formatter -> t -> unit
