(** Mutable directed graphs over integer vertices [0, n).

    This is the graph substrate for the whole toolkit (the sealed build
    environment has no [ocamlgraph]).  Vertices are dense integers so the
    buffer-waiting-graph engine can use buffer identifiers directly. *)

type t

val create : int -> t
(** [create n] is a graph with vertices [0 .. n-1] and no edges. *)

val num_vertices : t -> int

val num_edges : t -> int
(** Number of distinct edges. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts edge [u -> v]; duplicate insertions are
    ignored (an O(out-degree) scan).  Self loops are allowed.  Raises
    [Invalid_argument] when a vertex is out of range. *)

val unsafe_add_edge : t -> int -> int -> unit
(** [add_edge] without the duplicate scan: the caller guarantees the edge
    is not already present (e.g. it deduplicates through its own side
    table).  Inserting a duplicate breaks the no-duplicate invariant that
    [num_edges], [equal] and [freeze] rely on. *)

val remove_edge : t -> int -> int -> unit
(** Removes the edge if present; no-op otherwise. *)

val mem_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors of a vertex, in insertion order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> (int * int) list

val of_edges : int -> (int * int) list -> t
val copy : t -> t
val transpose : t -> t

val induced : t -> keep:(int -> bool) -> t
(** [induced g ~keep] is a same-vertex-set graph retaining only edges whose
    endpoints both satisfy [keep]. *)

val out_degree : t -> int -> int

val freeze : t -> Csr.t
(** Pack into the frozen CSR form (O(V + E log deg)); the digraph stays
    usable and later mutations do not affect the frozen copy.  All the
    traversal algorithms run on the CSR form — freeze once per analysis,
    not per query. *)

val equal : t -> t -> bool
(** Same vertex count and same edge set (order-insensitive);
    O(E log deg) via canonical sorted adjacency rows. *)

val pp : Format.formatter -> t -> unit
