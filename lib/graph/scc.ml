type result = { count : int; component : int array }

(* Iterative Tarjan over the CSR form: the work stack holds (vertex,
   cursor into the flat target array) in two int arrays, so deep graphs
   cannot overflow the OCaml stack and a run allocates nothing beyond its
   fixed per-vertex arrays.  [least] restricts the walk to the subgraph
   induced by vertices >= least; excluded vertices keep component -1. *)
let compute_bounded g ~least =
  let n = Csr.num_vertices g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = Array.make (max n 1) 0 in
  let sp = ref 0 in
  let work_v = Array.make (max n 1) 0 in
  let work_c = Array.make (max n 1) 0 in
  let wp = ref 0 in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let enter v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true;
    work_v.(!wp) <- v;
    work_c.(!wp) <- fst (Csr.row g v);
    incr wp
  in
  for root = least to n - 1 do
    if index.(root) = -1 then begin
      enter root;
      while !wp > 0 do
        let v = work_v.(!wp - 1) in
        let stop = snd (Csr.row g v) in
        let cur = ref work_c.(!wp - 1) in
        let pushed = ref false in
        while (not !pushed) && !cur < stop do
          let w = Csr.target g !cur in
          incr cur;
          if w >= least then
            if index.(w) = -1 then begin
              work_c.(!wp - 1) <- !cur;
              enter w;
              pushed := true
            end
            else if on_stack.(w) && index.(w) < lowlink.(v) then
              lowlink.(v) <- index.(w)
        done;
        if not !pushed then begin
          (* row exhausted: retire the frame *)
          decr wp;
          if !wp > 0 then begin
            let parent = work_v.(!wp - 1) in
            if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
          end;
          if lowlink.(v) = index.(v) then begin
            let more = ref true in
            while !more do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              component.(w) <- !next_comp;
              if w = v then more := false
            done;
            incr next_comp
          end
        end
      done
    end
  done;
  { count = !next_comp; component }

let compute_csr g = compute_bounded g ~least:0
let compute g = compute_csr (Digraph.freeze g)

let members r =
  let buckets = Array.make (max r.count 1) [] in
  Array.iteri (fun v c -> if c >= 0 then buckets.(c) <- v :: buckets.(c)) r.component;
  Array.sub buckets 0 r.count

let condensation g r =
  let c = Digraph.create r.count in
  Digraph.iter_edges
    (fun u v ->
      let cu = r.component.(u) and cv = r.component.(v) in
      if cu >= 0 && cv >= 0 && cu <> cv then Digraph.add_edge c cu cv)
    g;
  c

let nontrivial g r =
  let size = Array.make (max r.count 1) 0 in
  Array.iter (fun c -> if c >= 0 then size.(c) <- size.(c) + 1) r.component;
  let has_self = Array.make (max r.count 1) false in
  Digraph.iter_edges
    (fun u v -> if u = v && r.component.(u) >= 0 then has_self.(r.component.(u)) <- true)
    g;
  let keep = ref [] in
  for c = r.count - 1 downto 0 do
    if size.(c) >= 2 || has_self.(c) then keep := c :: !keep
  done;
  !keep
