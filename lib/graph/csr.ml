(* Invariant: offsets.(0) = 0, offsets monotone, offsets.(n) = |targets|,
   and each row targets.(offsets.(u) .. offsets.(u+1)-1) is strictly
   ascending with every entry in [0, n). *)
type t = { n : int; offsets : int array; targets : int array }

let invalid msg = invalid_arg ("Csr.make: " ^ msg)

let make ~n ~offsets ~targets =
  if n < 0 then invalid "negative size";
  if Array.length offsets <> n + 1 then invalid "offsets length <> n + 1";
  if offsets.(0) <> 0 then invalid "offsets.(0) <> 0";
  if offsets.(n) <> Array.length targets then
    invalid "offsets.(n) <> length targets";
  for u = 0 to n - 1 do
    if offsets.(u) > offsets.(u + 1) then invalid "offsets not monotone";
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      let v = targets.(i) in
      if v < 0 || v >= n then invalid "target out of range";
      if i > offsets.(u) && targets.(i - 1) >= v then
        invalid "row not strictly ascending"
    done
  done;
  { n; offsets; targets }

let num_vertices g = g.n
let num_edges g = g.offsets.(g.n)

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Csr: vertex out of range"

let out_degree g u =
  check g u;
  g.offsets.(u + 1) - g.offsets.(u)

let mem_edge g u v =
  check g u;
  check g v;
  let lo = ref g.offsets.(u) and hi = ref g.offsets.(u + 1) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.targets.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let nth_succ g u i =
  check g u;
  let off = g.offsets.(u) in
  if i < 0 || off + i >= g.offsets.(u + 1) then
    invalid_arg "Csr.nth_succ: index out of row";
  g.targets.(off + i)

let row g u =
  check g u;
  (g.offsets.(u), g.offsets.(u + 1))

let target g i = g.targets.(i)

let iter_succ f g u =
  check g u;
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.targets.(i)
  done

let fold_succ f g u init =
  check g u;
  let acc = ref init in
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    acc := f g.targets.(i) !acc
  done;
  !acc

let succ g u = List.rev (fold_succ (fun v acc -> v :: acc) g u [])

let iter_edges f g =
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      f u g.targets.(i)
    done
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

(* Shared tail of of_edges/transpose: pack a degree histogram into offsets
   and scatter (sorted) edges into targets. *)
let pack n degree fill =
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + degree u
  done;
  let targets = Array.make offsets.(n) 0 in
  let next = Array.sub offsets 0 n in
  fill (fun u v ->
      targets.(next.(u)) <- v;
      next.(u) <- next.(u) + 1);
  { n; offsets; targets }

let of_edges n es =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr.of_edges: vertex out of range")
    es;
  let es = List.sort_uniq compare es in
  let deg = Array.make (max n 1) 0 in
  List.iter (fun (u, _) -> deg.(u) <- deg.(u) + 1) es;
  pack n
    (fun u -> deg.(u))
    (fun put -> List.iter (fun (u, v) -> put u v) es)

let transpose g =
  let deg = Array.make (max g.n 1) 0 in
  iter_edges (fun _ v -> deg.(v) <- deg.(v) + 1) g;
  (* scattering edges in (u ascending, row ascending) order lands each
     transposed row in ascending source order, preserving the invariant *)
  pack g.n
    (fun v -> deg.(v))
    (fun put -> iter_edges (fun u v -> put v u) g)

let equal a b =
  a.n = b.n && a.offsets = b.offsets && a.targets = b.targets

let pp fmt g =
  Format.fprintf fmt "@[<v>csr (%d vertices, %d edges)" g.n (num_edges g);
  iter_edges (fun u v -> Format.fprintf fmt "@,  %d -> %d" u v) g;
  Format.fprintf fmt "@]"
