(** Decremental/incremental reachability to a fixed sink set.

    The synthesis engine removes and restores edges of a fixed base graph
    (route moves toward one destination) and after every mutation needs to
    know whether a set of source vertices can still reach a sink.  A
    [Reach.t] wraps a frozen {!Csr.t} with a multiset of disabled edges
    and a lazily maintained "reaches some sink" bitmap:

    - [disable_edge] / [enable_edge] are O(1) amortized; they invalidate
      the bitmap only when the edge can actually change it (removing an
      edge whose source is already cut off, or restoring an edge into an
      unreached target, keeps the bitmap valid);
    - [enable_edge] of a fruitful edge grows the reached set in place by
      a reverse traversal from the newly reached vertex instead of a full
      recompute;
    - a full recompute is a reverse BFS from the sinks over the enabled
      subgraph, O(V + E), and runs at most once per batch of disables.

    Disables are counted, so disabling the same edge twice needs two
    enables — matching a backtracking search that removes the same wait
    entry at different depths.  Edges not present in the base graph are
    rejected with [Invalid_argument]. *)

type t

val create : Csr.t -> sinks:int list -> t
(** All edges start enabled.  Sink vertices out of range raise
    [Invalid_argument]. *)

val disable_edge : t -> int -> int -> unit
(** [disable_edge t u v] removes one instance of [u -> v] from the enabled
    subgraph.  Raises [Invalid_argument] if the base graph has no such
    edge. *)

val enable_edge : t -> int -> int -> unit
(** Reverts one [disable_edge].  Raises [Invalid_argument] when [u -> v]
    is not currently disabled. *)

val reaches : t -> int -> bool
(** [reaches t v]: can [v] reach some sink through enabled edges?  Sinks
    reach themselves. *)

val reaches_all : t -> sources:int list -> bool
(** All of [sources] reach a sink.  [true] on the empty list. *)

val disabled_count : t -> int
(** Number of currently disabled edge instances (with multiplicity). *)
