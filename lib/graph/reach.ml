type t = {
  graph : Csr.t;
  rev : Csr.t;
  sinks : int list;
  disabled : (int * int, int) Hashtbl.t; (* edge -> disable multiplicity *)
  mutable total_disabled : int;
  mutable reached : Bytes.t option; (* '\001' = reaches a sink; None = stale *)
}

let create graph ~sinks =
  let n = Csr.num_vertices graph in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Reach.create: sink out of range")
    sinks;
  {
    graph;
    rev = Csr.transpose graph;
    sinks;
    disabled = Hashtbl.create 64;
    total_disabled = 0;
    reached = None;
  }

let is_disabled t u v = Hashtbl.mem t.disabled (u, v)

(* Reverse BFS from the sinks over enabled edges.  [t.rev] successors of
   [v] are the sources [u] of base edges [u -> v]. *)
let recompute t =
  let n = Csr.num_vertices t.graph in
  let reached = Bytes.make n '\000' in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if Bytes.get reached s = '\000' then begin
        Bytes.set reached s '\001';
        Queue.add s queue
      end)
    t.sinks;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Csr.iter_succ
      (fun u ->
        if Bytes.get reached u = '\000' && not (is_disabled t u v) then begin
          Bytes.set reached u '\001';
          Queue.add u queue
        end)
      t.rev v
  done;
  t.reached <- Some reached;
  reached

let bitmap t = match t.reached with Some b -> b | None -> recompute t

let disable_edge t u v =
  if not (Csr.mem_edge t.graph u v) then
    invalid_arg "Reach.disable_edge: no such edge";
  let count = try Hashtbl.find t.disabled (u, v) with Not_found -> 0 in
  Hashtbl.replace t.disabled (u, v) (count + 1);
  t.total_disabled <- t.total_disabled + 1;
  (* The bitmap can only change if this edge was carrying reachability:
     its source reached a sink and its target still does.  If the source
     was already cut off, or this is a repeated disable, nothing moves. *)
  (if count = 0 then
     match t.reached with
     | Some reached
       when Bytes.get reached u = '\001' && Bytes.get reached v = '\001' ->
       t.reached <- None
     | _ -> ())

let enable_edge t u v =
  (match Hashtbl.find_opt t.disabled (u, v) with
  | None -> invalid_arg "Reach.enable_edge: edge not disabled"
  | Some 1 -> Hashtbl.remove t.disabled (u, v)
  | Some count -> Hashtbl.replace t.disabled (u, v) (count - 1));
  t.total_disabled <- t.total_disabled - 1;
  if not (is_disabled t u v) then
    match t.reached with
    | None -> ()
    | Some reached ->
      (* Re-adding [u -> v] can only add vertices, and only when it newly
         connects [u] to the reached region: grow in place by a reverse
         traversal from [u] over enabled edges. *)
      if Bytes.get reached u = '\000' && Bytes.get reached v = '\001' then begin
        let queue = Queue.create () in
        Bytes.set reached u '\001';
        Queue.add u queue;
        while not (Queue.is_empty queue) do
          let w = Queue.pop queue in
          Csr.iter_succ
            (fun p ->
              if Bytes.get reached p = '\000' && not (is_disabled t p w) then begin
                Bytes.set reached p '\001';
                Queue.add p queue
              end)
            t.rev w
        done
      end

let reaches t v =
  if v < 0 || v >= Csr.num_vertices t.graph then
    invalid_arg "Reach.reaches: vertex out of range";
  Bytes.get (bitmap t) v = '\001'

let reaches_all t ~sources = List.for_all (fun v -> reaches t v) sources
let disabled_count t = t.total_disabled
