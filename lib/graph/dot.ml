let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      (* line breaks become DOT's \n escape so a label can never split a
         quoted string across lines *)
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> ()
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string = function
  | [] -> ""
  | attrs ->
    let body =
      String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
    in
    Printf.sprintf " [%s]" body

let to_string ?(name = "g") ?(vertex_label = string_of_int)
    ?(vertex_attrs = fun _ -> []) ?(edge_attrs = fun _ _ -> []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  for v = 0 to Digraph.num_vertices g - 1 do
    let attrs = ("label", vertex_label v) :: vertex_attrs v in
    Buffer.add_string buf (Printf.sprintf "  n%d%s;\n" v (attrs_to_string attrs))
  done;
  Digraph.iter_edges
    (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d%s;\n" u v (attrs_to_string (edge_attrs u v))))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name ?vertex_label ?vertex_attrs ?edge_attrs file g =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?name ?vertex_label ?vertex_attrs ?edge_attrs g))
