(* Invariants: no duplicate entries within adj.(u); adj lists hold the most
   recently inserted successor first.  Membership is an O(deg) list scan —
   the mutable form is for construction; anything query-heavy should
   [freeze] to CSR first. *)
type t = {
  n : int;
  adj : int list array;
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n []; m = 0 }

let num_vertices g = g.n
let num_edges g = g.m

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: vertex out of range"

let mem_edge g u v =
  check g u;
  check g v;
  List.mem v g.adj.(u)

let unsafe_add_edge g u v =
  g.adj.(u) <- v :: g.adj.(u);
  g.m <- g.m + 1

let add_edge g u v =
  if not (mem_edge g u v) then unsafe_add_edge g u v

let remove_edge g u v =
  if mem_edge g u v then begin
    g.adj.(u) <- List.filter (fun w -> w <> v) g.adj.(u);
    g.m <- g.m - 1
  end

let succ g u =
  check g u;
  List.rev g.adj.(u)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.adj.(u))
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { n = g.n; adj = Array.copy g.adj; m = g.m }

let transpose g =
  let t = create g.n in
  iter_edges (fun u v -> add_edge t v u) g;
  t

let induced g ~keep =
  let h = create g.n in
  iter_edges (fun u v -> if keep u && keep v then add_edge h u v) g;
  h

let out_degree g u =
  check g u;
  List.length g.adj.(u)

let freeze g =
  let deg u = List.length g.adj.(u) in
  let offsets = Array.make (g.n + 1) 0 in
  for u = 0 to g.n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg u
  done;
  let targets = Array.make g.m 0 in
  for u = 0 to g.n - 1 do
    let row = List.sort compare g.adj.(u) in
    List.iteri (fun i v -> targets.(offsets.(u) + i) <- v) row
  done;
  Csr.make ~n:g.n ~offsets ~targets

let equal a b =
  a.n = b.n && a.m = b.m
  && begin
    let ok = ref true in
    (* rows are duplicate-free, so sorted rows are canonical *)
    for u = 0 to a.n - 1 do
      if !ok && List.sort compare a.adj.(u) <> List.sort compare b.adj.(u) then
        ok := false
    done;
    !ok
  end

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph (%d vertices, %d edges)" g.n g.m;
  iter_edges (fun u v -> Format.fprintf fmt "@,  %d -> %d" u v) g;
  Format.fprintf fmt "@]"
