(** Graphviz DOT export, for inspecting buffer waiting graphs by eye. *)

val escape : string -> string
(** Escape a string for use inside a double-quoted DOT attribute: quotes
    and backslashes are backslash-escaped, newlines become the [\n] label
    escape, carriage returns are dropped.  Safe on user-controlled names
    (spec-defined channel labels flow through here). *)

val to_string :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(int -> int -> (string * string) list) ->
  Digraph.t ->
  string

val to_file :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?edge_attrs:(int -> int -> (string * string) list) ->
  string ->
  Digraph.t ->
  unit
