(** Strongly connected components (Tarjan, iterative, over the CSR form). *)

type result = {
  count : int;  (** number of components *)
  component : int array;
      (** [component.(v)] is the component index of vertex [v]; indices are
          a reverse topological numbering of the condensation (every edge
          between distinct components goes from a higher index to a lower
          one).  Vertices excluded by a [least] bound hold -1. *)
}

val compute : Digraph.t -> result
(** Freezes and delegates to {!compute_csr}. *)

val compute_csr : Csr.t -> result

val compute_bounded : Csr.t -> least:int -> result
(** Components of the subgraph induced by vertices [>= least] — what
    Johnson's cycle enumeration needs per root, without materializing an
    induced graph.  Excluded vertices get component -1. *)

val members : result -> int list array
(** Vertices of each component. *)

val condensation : Digraph.t -> result -> Digraph.t
(** Component graph: one vertex per component, edges between distinct
    components only. *)

val nontrivial : Digraph.t -> result -> int list
(** Components that can host a cycle: size >= 2, or a single vertex with a
    self loop. *)
