(** Enumeration of elementary cycles (Johnson's algorithm) with caps.

    The BWG cycle classifier needs the actual cycles, not just their
    existence, and the paper notes that every general deadlock-freedom
    procedure is worst-case exponential; the caps keep enumeration bounded
    on adversarial inputs while remaining exhaustive on the networks the
    test-suite and benches exercise. *)

type limits = {
  max_cycles : int;  (** stop after this many cycles *)
  max_length : int;  (** ignore cycles longer than this many vertices *)
}

val default_limits : limits
(** 10_000 cycles, length 64. *)

val enumerate : ?limits:limits -> Digraph.t -> int list list
(** All elementary cycles up to the caps.  Each cycle is the vertex list
    [v1; ...; vk] with edges [vi -> vi+1] and [vk -> v1]; self loops give
    singletons.  Cycles are reported rooted at their smallest vertex. *)

val enumerate_checked : ?limits:limits -> Digraph.t -> int list list * bool
(** Like {!enumerate}, also reporting whether enumeration was exhaustive
    ([false] when the cycle cap stopped it early; length-capped cycles are
    silently skipped either way). *)

val enumerate_csr : ?limits:limits -> Csr.t -> int list list
(** CSR-native {!enumerate} — use when the caller already holds a frozen
    graph. *)

val enumerate_checked_csr : ?limits:limits -> Csr.t -> int list list * bool

val enumerate_checked_rows :
  ?limits:limits -> n:int -> row:(int -> int array) -> unit -> int list list * bool
(** Enumerate over an *implicit* graph: [row v] must return the successors
    of [v] as a strictly ascending, duplicate-free array, and must be
    deterministic (it is called more than once per vertex).  Equivalent to
    freezing the relation into a CSR and calling {!enumerate_checked_csr}
    — same cycles, same order — but only the strongly connected cores are
    ever materialized, so a BWG with 10^5 vertices and a tiny cyclic core
    scans in O(V + E) time and O(core) extra space. *)

val truncated : ?limits:limits -> Digraph.t -> bool
(** Whether [enumerate] with the same limits stopped early (so the returned
    list may be incomplete). *)

val count_bounded : ?limits:limits -> Digraph.t -> int
(** Number of cycles found under the caps. *)
