(** Reachability, breadth-first distances and topological sorting.

    Every algorithm has two entry points: a [Csr.t] one (the
    implementation) and a [Digraph.t] convenience wrapper that freezes
    first.  Hot paths that query the same graph repeatedly should freeze
    once and use the [_csr] variants. *)

val reachable : Digraph.t -> int list -> bool array
(** [reachable g sources] marks every vertex reachable from any source
    (sources themselves included). *)

val bfs_distances : Digraph.t -> int -> int array
(** Hop distances from a single source; [max_int] for unreachable
    vertices. *)

val topological_sort : Digraph.t -> int list option
(** Kahn's algorithm.  [Some order] lists all vertices with every edge
    pointing forward; [None] when the graph has a (possibly self-loop)
    cycle. *)

val is_acyclic : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** Some elementary cycle [v1; ...; vk] (edges [vi -> vi+1] and
    [vk -> v1]), or [None] for acyclic graphs.  A self loop yields a
    singleton list. *)

val path : Digraph.t -> int -> int -> int list option
(** A shortest path [src; ...; dst] if one exists. *)

(** {1 CSR-native variants} *)

val reachable_csr : Csr.t -> int list -> bool array
val bfs_distances_csr : Csr.t -> int -> int array
val topological_sort_csr : Csr.t -> int list option
val is_acyclic_csr : Csr.t -> bool
val find_cycle_csr : Csr.t -> int list option
val path_csr : Csr.t -> int -> int -> int list option
