(** Routing algorithms in the paper's two-part formulation.

    An algorithm is a {e routing relation} — the set of output buffers a
    packet may move to, given only local information (the buffer it
    occupies, hence the node its head is at and for wormhole the input
    channel, plus the destination) — together with a {e waiting rule}: the
    buffers the packet may block on when every permitted output is busy.

    The waiting rule is the paper's key refinement: a buffer may be {e
    usable} when free yet never {e waited on} (Duato's incoherent example
    uses exactly this freedom), and only waiting dependencies can deadlock.

    [wait] distinguishes the two cases of §4: [Specific_wait] algorithms
    commit a blocked packet to a single waiting buffer (Theorem 2);
    [Any_wait] algorithms let it take whichever waiting buffer frees first
    (Theorem 3). *)

open Dfr_network

type wait_discipline = Specific_wait | Any_wait

type t = {
  name : string;
  wait : wait_discipline;
  route : Net.t -> Buf.t -> dest:int -> int list;
      (** Permitted output buffer ids.  Never called when the head is at
          the destination (delivery is handled by the engine) and never
          with a delivery buffer. *)
  waits : Net.t -> Buf.t -> dest:int -> int list;
      (** Waiting buffers; must be a subset of [route].  For
          [Specific_wait] the packet commits to one member; for [Any_wait]
          it waits on all members simultaneously. *)
  reduced_waits : (Net.t -> Buf.t -> dest:int -> int list) option;
      (** Optional declarative BWG' hint for Theorem 3: a subset of [waits]
          that the designer claims is still wait-connected and
          cycle-free.  The checker verifies the claim, never trusts it. *)
}

val make :
  name:string ->
  wait:wait_discipline ->
  route:(Net.t -> Buf.t -> dest:int -> int list) ->
  ?waits:(Net.t -> Buf.t -> dest:int -> int list) ->
  ?reduced_waits:(Net.t -> Buf.t -> dest:int -> int list) ->
  unit ->
  t
(** [waits] defaults to the full [route] set (wait on any permitted
    output). *)

val with_waits :
  t -> ?name:string -> (Net.t -> Buf.t -> dest:int -> int list) -> t
(** Same routing relation with a replacement waiting rule (the BWG'
    injection point used by the synthesis engine: the new rule is
    typically a subset of the old waits).  The declarative hint is
    dropped — the replacement {e is} the reduction. *)

val with_relation :
  t -> ?name:string -> (Net.t -> Buf.t -> dest:int -> int list) -> t
(** Replacement routing relation; [waits] follows it (wait on every
    permitted output) and the hint is dropped.  Used by restriction
    repair, which edits the relation itself. *)

val wait_everywhere : t -> t
(** Same relation, but waiting on every permitted output ([Any_wait],
    hint discarded).  Used by ablation experiments. *)

val validate : ?domains:int -> t -> Net.t -> (unit, string) result
(** Checks the structural contract on every (transit or injection buffer,
    destination) pair: waits ⊆ route, reduced waits ⊆ waits, no output is a
    delivery buffer of another node, no output repeats, and every output
    buffer is adjacent (its source endpoint is the packet's head node).

    With [domains > 1] the sweep fans the buffer array out over the
    shared {!Dfr_util.Domain_pool}; the reported error string is
    byte-identical to the serial sweep's.  The algorithm's closures are
    then called from several domains concurrently, which is safe for
    every algorithm built from construction-time tables (all catalogue,
    spec-elaborated and fuzz algorithms). *)
