open Dfr_topology
open Dfr_network

type family =
  | Hypercube_family
  | Mesh_family of { vcs : int }
  | Torus_family of { vcs : int }
  | Mesh_saf_family of { classes : int }
  | Vct_family of { classes : int }
  | Fullmesh_family
  | Dragonfly_family
  | Fattree_family
  | Custom_family

type entry = {
  name : string;
  family : family;
  algo : Algo.t;
  expected_deadlock_free : bool option;
  description : string;
}

let entry name family algo expected description =
  { name; family; algo; expected_deadlock_free = expected; description }

let all =
  [
    entry "ecube" Hypercube_family Hypercube_wormhole.ecube (Some true)
      "nonadaptive dimension-order hypercube routing";
    entry "duato" Hypercube_family Hypercube_wormhole.duato (Some true)
      "fully adaptive hypercube routing with a dimension-order escape";
    entry "efa" Hypercube_family Hypercube_wormhole.efa (Some true)
      "the paper's Enhanced Fully Adaptive hypercube routing";
    entry "efa-relaxed" Hypercube_family Hypercube_wormhole.efa_relaxed
      (Some false) "Theorem 6's broken relaxation of EFA";
    entry "unrestricted-hypercube" Hypercube_family Hypercube_wormhole.unrestricted
      (Some false) "minimal adaptive with no restriction (control)";
    entry "dimension-order" (Mesh_family { vcs = 1 }) Mesh_wormhole.dimension_order
      (Some true) "XY routing generalized to n-dimensional meshes";
    entry "duato-mesh" (Mesh_family { vcs = 2 }) Mesh_wormhole.duato_mesh
      (Some true) "fully adaptive mesh routing with a dimension-order escape";
    entry "west-first" (Mesh_family { vcs = 1 }) Mesh_wormhole.west_first
      (Some true) "turn-model west-first on 2-D meshes";
    entry "north-last" (Mesh_family { vcs = 1 }) Mesh_wormhole.north_last
      (Some true) "turn-model north-last on 2-D meshes";
    entry "negative-first" (Mesh_family { vcs = 1 }) Mesh_wormhole.negative_first
      (Some true) "turn-model negative-first on n-dimensional meshes";
    entry "odd-even" (Mesh_family { vcs = 1 }) Mesh_wormhole.odd_even (Some true)
      "Chiu's odd-even turn model on 2-D meshes";
    entry "planar-adaptive" (Mesh_family { vcs = 3 }) Mesh_wormhole.planar_adaptive
      (Some true) "Chien-Kim planar-adaptive routing on n-dimensional meshes";
    entry "double-y" (Mesh_family { vcs = 2 }) Mesh_wormhole.double_y (Some true)
      "fully adaptive minimal mesh routing with two Y virtual channels";
    entry "unrestricted-mesh" (Mesh_family { vcs = 1 }) Mesh_wormhole.unrestricted
      (Some false) "minimal adaptive mesh routing with no restriction (control)";
    entry "dateline" (Torus_family { vcs = 2 }) Torus_wormhole.dateline (Some true)
      "Dally-Seitz-style dateline routing on k-ary n-cubes";
    entry "duato-torus" (Torus_family { vcs = 3 }) Torus_wormhole.duato_torus
      (Some true) "fully adaptive torus routing with a dateline escape";
    entry "unrestricted-torus" (Torus_family { vcs = 1 }) Torus_wormhole.unrestricted
      (Some false) "minimal adaptive torus routing (control; wrap cycles)";
    entry "two-buffer" (Mesh_saf_family { classes = 2 }) Mesh_saf.two_buffer
      (Some true) "Pifarre et al.'s Two-Buffer store-and-forward mesh routing";
    entry "single-buffer" (Mesh_saf_family { classes = 1 }) Mesh_saf.single_buffer
      (Some false) "one-buffer greedy store-and-forward routing (control)";
    entry "hop-class" (Mesh_saf_family { classes = 7 }) Mesh_saf.hop_class
      (Some true) "Gunther's hop-ordered store-and-forward buffer classes";
    entry "two-buffer-vct" (Vct_family { classes = 2 }) Mesh_saf.two_buffer
      (Some true) "Two-Buffer routing over virtual cut-through switching";
    entry "fullmesh-direct" Fullmesh_family Fullmesh_routing.direct (Some true)
      "single-hop routing on fully connected networks";
    entry "dragonfly-minimal" Dragonfly_family Dragonfly_routing.minimal
      (Some true) "minimal l-g-l dragonfly routing, post-global hops on vc1";
    entry "dragonfly-minimal-1vc" Dragonfly_family Dragonfly_routing.minimal_1vc
      (Some false) "minimal dragonfly routing on one vc (control; group cycles)";
    entry "kntree-updown" Fattree_family Kntree_routing.updown (Some true)
      "up*/down* fat-tree routing with a vc0 descent for off-cone sources";
    entry "duato-incoherent" Custom_family Incoherent_example.algo (Some false)
      "Duato's incoherent example (Figures 1-2)";
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names () = List.map (fun e -> e.name) all

let default_topology e =
  match e.family with
  | Hypercube_family -> Some (Topology.hypercube 3)
  | Mesh_family _ | Mesh_saf_family _ | Vct_family _ ->
    Some (Topology.mesh [| 4; 4 |])
  | Torus_family _ -> Some (Topology.torus [| 4; 4 |])
  | Fullmesh_family -> Some (Topology.fullmesh 5)
  | Dragonfly_family -> Some (Topology.dragonfly ~a:2 ~h:1 ())
  | Fattree_family -> Some (Topology.kary_ntree ~k:2 ~n:2)
  | Custom_family -> None

let network_for e topo =
  let topo = match topo with Some t -> Some t | None -> default_topology e in
  match (e.family, topo) with
  | Hypercube_family, Some t -> Net.wormhole t ~vcs:2
  | Mesh_family { vcs }, Some t -> Net.wormhole t ~vcs
  | Torus_family { vcs }, Some t -> Net.wormhole t ~vcs
  | Mesh_saf_family { classes }, Some t -> Net.store_and_forward t ~classes
  | Vct_family { classes }, Some t -> Net.virtual_cut_through t ~classes
  | Fullmesh_family, Some t -> Net.wormhole t ~vcs:1
  | (Dragonfly_family | Fattree_family), Some t -> Net.wormhole t ~vcs:2
  | Custom_family, _ -> Incoherent_example.network ()
  | _, None -> invalid_arg "Registry.network_for: topology required"
