(** Direct (single-hop) routing on {!Dfr_topology.Topology.fullmesh}
    networks: the channel to the destination, then delivery.  Deadlock-free
    with one virtual channel — the checker's Theorem 1 certificate is a
    two-layer order (channels below deliveries). *)

val direct : Algo.t
