open Dfr_topology
open Dfr_network

(* Full-mesh direct routing (HOTI'25 setting): every pair of nodes shares
   a dedicated channel, so the route is the single direct hop and the BWG
   is trivially acyclic — each channel waits only on the destination's
   delivery buffer.  One virtual channel suffices. *)

let check net =
  (match Net.switching net with
  | Net.Wormhole -> ()
  | _ -> invalid_arg "Fullmesh_routing: wormhole network required");
  match Topology.fullmesh_params (Net.topology_exn net) with
  | Some n -> n
  | None -> invalid_arg "Fullmesh_routing: fullmesh topology required"

let route net b ~dest =
  let _ = check net in
  let head = Buf.head_node b in
  (* port p of node u reaches the p-th other node in ascending order *)
  let port = if dest < head then dest else dest - 1 in
  [ Buf.id (Net.channel net ~src:head ~dim:port ~dir:Topology.Plus ~vc:0) ]

let direct =
  Algo.make ~name:"fullmesh-direct" ~wait:Algo.Specific_wait ~route ()
