open Dfr_topology
open Dfr_network

(* Minimal l-g-l dragonfly routing with two virtual channels.

   A minimal path is (local)? (global)? (local)? — at most one hop inside
   the source group to reach the router owning the right global link, the
   global hop, then at most one hop inside the destination group.  The
   classic hazard is the final local hop: local channels are reused both
   before and after the global hop, so a single virtual channel closes a
   cycle through three groups.  Bumping to vc1 for any local hop taken
   after a global link breaks it; the buffer layering

     vc0-local  <  global  <  vc1-local  <  delivery

   is strictly decreasing along every route, so the BWG is acyclic. *)

let check net =
  (match Net.switching net with
  | Net.Wormhole -> ()
  | _ -> invalid_arg "Dragonfly_routing: wormhole network required");
  if Net.vcs net < 2 then invalid_arg "Dragonfly_routing: 2 virtual channels required";
  match Topology.dragonfly_params (Net.topology_exn net) with
  | Some p -> p
  | None -> invalid_arg "Dragonfly_routing: dragonfly topology required"

let chan net head ~port ~vc =
  [ Buf.id (Net.channel net ~src:head ~dim:port ~dir:Topology.Plus ~vc) ]

let route net b ~dest =
  let a, h, g = check net in
  let head = Buf.head_node b in
  let gc = head / a and rc = head mod a in
  let gd = dest / a and rd = dest mod a in
  if gc = gd then
    (* final (or only) hop: one local link inside the group.  The hop is
       an "after the global link" hop exactly when the packet sits in a
       global channel or already escalated to vc1. *)
    let after_global =
      match Buf.kind b with
      | Buf.Channel { dim; vc; _ } -> dim >= a - 1 || vc = 1
      | _ -> false
    in
    let port = (rd - rc - 1 + a) mod a in
    chan net head ~port ~vc:(if after_global then 1 else 0)
  else
    (* palmtree wiring: the one global link between groups gc and gd is
       link number L = (gd - gc - 1) mod g out of gc, owned by router
       L/h at its port L mod h. *)
    let link = (gd - gc - 1 + g) mod g in
    let owner = link / h in
    if rc = owner then chan net head ~port:(a - 1 + (link mod h)) ~vc:0
    else chan net head ~port:((owner - rc - 1 + a) mod a) ~vc:0

let minimal =
  Algo.make ~name:"dragonfly-minimal" ~wait:Algo.Specific_wait ~route ()

(* The same minimal relation squeezed onto one virtual channel: the
   counterexample algorithm.  Local channels shared by the pre- and
   post-global phases let three groups wait in a ring, and the checker
   finds the True Cycle. *)
let route_1vc net b ~dest =
  let a, h, g = check net in
  let head = Buf.head_node b in
  let gc = head / a and rc = head mod a in
  let gd = dest / a and rd = dest mod a in
  if gc = gd then chan net head ~port:((rd - rc - 1 + a) mod a) ~vc:0
  else
    let link = (gd - gc - 1 + g) mod g in
    let owner = link / h in
    if rc = owner then chan net head ~port:(a - 1 + (link mod h)) ~vc:0
    else chan net head ~port:((owner - rc - 1 + a) mod a) ~vc:0

let minimal_1vc =
  Algo.make ~name:"dragonfly-minimal-1vc" ~wait:Algo.Specific_wait
    ~route:route_1vc ()
