(** Up*/down* routing on {!Dfr_topology.Topology.kary_ntree} fat trees
    with two virtual channels.

    Host-to-host traffic follows the classic up*-then-down* relation on
    vc1.  Because the checker seeds every (buffer, destination) pair —
    including switch destinations unreachable by pure up*/down* from some
    switches — sources outside the destination's subtree cone first
    descend toward a leaf on vc0, then run up*/down* on vc1.  vc0 edges
    strictly increase the tree level, vc1 edges are up*/down*, and the
    vc0 -> vc1 crossing is one-way, so the BWG is acyclic (Theorem 1). *)

val updown : Algo.t
(** Requires a wormhole network on a k-ary n-tree topology with >= 2 vcs. *)
