open Dfr_topology
open Dfr_network

(* Up*/down* routing on k-ary n-trees with two virtual channels.

   Hosts are nodes [0, k^n); switch (l, w) — level l in [0, n), root level
   0, index w in [0, k^(n-1)) — is node k^n + l*k^(n-1) + w.  Switch (l, w)
   and (l+1, w') are linked iff their indices agree on every digit except
   digit l (so each switch has k children, ports 0..k-1, and k parents,
   ports k..2k-1).

   For host-to-host traffic the classic up*/down* relation suffices:
   ascend until the current index agrees with the destination on every
   digit >= the current level, then descend choosing destination digits.
   But the checker seeds EVERY (buffer, destination) pair, and a pair of
   switches disagreeing on a digit above both their levels is not
   up*/down*-reachable — from switch (l, w), climbing only re-chooses
   digits < l.  Those sources first descend to a leaf (which can reach
   anything by climbing back up), so the full relation is two-phase:

     phase A (vc0): descend toward a leaf, until the destination becomes
       up*/down*-reachable from the current switch;
     phase B (vc1): ordinary up* then down* to the destination.

   Phase membership is a function of the current node alone — once the
   reachability predicate holds it keeps holding along the phase-B walk,
   so packets cross vc0 -> vc1 exactly once.  vc0 edges strictly increase
   the level (acyclic); vc1 edges follow up*/down* (acyclic by the usual
   two-layer argument: up channels ordered root-ward, down channels
   leaf-ward, and no down->up turn); the crossing is one-way, so the
   whole BWG is acyclic. *)

let check net =
  (match Net.switching net with
  | Net.Wormhole -> ()
  | _ -> invalid_arg "Kntree_routing: wormhole network required");
  if Net.vcs net < 2 then invalid_arg "Kntree_routing: 2 virtual channels required";
  match Topology.kntree_params (Net.topology_exn net) with
  | Some p -> p
  | None -> invalid_arg "Kntree_routing: k-ary n-tree topology required"

let chan net head ~port ~vc =
  [ Buf.id (Net.channel net ~src:head ~dim:port ~dir:Topology.Plus ~vc) ]

let route net b ~dest =
  let k, n = check net in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let hosts = pow k n in
  let per_level = hosts / k in
  let head = Buf.head_node b in
  if head < hosts then
    (* hosts have the single up port to their leaf switch; any
       destination is up*/down*-reachable from a leaf, so this is always
       a phase-B move *)
    chan net head ~port:0 ~vc:1
  else begin
    let s = head - hosts in
    let l = s / per_level and w = s mod per_level in
    (* destination as (level, low digits); hosts sit one level below the
       leaves, encoded as level n with their top digit kept aside *)
    let ld, dlow, host_digit =
      if dest < hosts then (n, dest mod per_level, dest / per_level)
      else
        let sd = dest - hosts in
        (sd / per_level, sd mod per_level, -1)
    in
    let digit x j = x / pow k j mod k in
    (* up*/down*-reachable from (l, w): every digit >= max(l, ld) of the
       current index already matches the destination's *)
    let m = max l ld in
    let phase_b = m >= n - 1 || w / pow k m = dlow / pow k m in
    if not phase_b then
      (* phase A: descend, pre-choosing the destination's digit *)
      chan net head ~port:(digit dlow l) ~vc:0
    else begin
      let descend = l < ld && w mod pow k l = dlow mod pow k l in
      if descend then
        if l = n - 1 && ld = n then
          (* leaf switch delivering downward to the host *)
          chan net head ~port:host_digit ~vc:1
        else chan net head ~port:(digit dlow l) ~vc:1
      else
        (* ascend: pick the parent carrying the destination's digit l-1;
           l >= 1 here — at a root, every digit matches and l < ld, so
           the descend branch was taken *)
        chan net head ~port:(k + digit dlow (l - 1)) ~vc:1
    end
  end

let updown =
  Algo.make ~name:"kntree-updown" ~wait:Algo.Specific_wait ~route ()
