(** Minimal routing on {!Dfr_topology.Topology.dragonfly} palmtree
    networks.

    Routes are minimal l-g-l paths: at most one local hop to the router
    owning the global link, the global hop, at most one local hop in the
    destination group.  {!minimal} escalates post-global local hops to a
    second virtual channel, which makes the buffer order

    [vc0-local < global < vc1-local < delivery]

    strictly decreasing along every route — a Theorem 1 certificate.
    {!minimal_1vc} is the same relation on a single virtual channel and
    deadlocks (local channels close a cycle through three groups); it
    exists as a negative control for the checker. *)

val minimal : Algo.t
(** Requires a wormhole network on a dragonfly topology with >= 2 vcs. *)

val minimal_1vc : Algo.t
(** Same relation, vc0 only; NOT deadlock-free. *)
