(** Name-indexed catalogue of every routing algorithm in the toolkit,
    with the network shape each one runs on.  Shared by the CLI, the test
    suite and the benchmark harness. *)

open Dfr_topology
open Dfr_network

type family =
  | Hypercube_family  (** wormhole, 2 VCs, binary cube *)
  | Mesh_family of { vcs : int }  (** wormhole mesh *)
  | Torus_family of { vcs : int }
  | Mesh_saf_family of { classes : int }
  | Vct_family of { classes : int }
  | Fullmesh_family  (** wormhole, 1 VC, fully connected *)
  | Dragonfly_family  (** wormhole, 2 VCs, palmtree dragonfly *)
  | Fattree_family  (** wormhole, 2 VCs, k-ary n-tree *)
  | Custom_family  (** fixed network, topology argument ignored *)

type entry = {
  name : string;
  family : family;
  algo : Algo.t;
  expected_deadlock_free : bool option;
      (** ground truth for tests and the verdict matrix; [None] when the
          literature gives no answer *)
  description : string;
}

val all : entry list
val find : string -> entry option
val names : unit -> string list

val network_for : entry -> Topology.t option -> Net.t
(** Builds the right network kind for the entry; [None] selects a small
    default topology.  Raises [Invalid_argument] when the topology does not
    fit the family. *)

val default_topology : entry -> Topology.t option
(** The default used by {!network_for}; [None] for custom-network entries. *)
