open Dfr_network

type wait_discipline = Specific_wait | Any_wait

type t = {
  name : string;
  wait : wait_discipline;
  route : Net.t -> Buf.t -> dest:int -> int list;
  waits : Net.t -> Buf.t -> dest:int -> int list;
  reduced_waits : (Net.t -> Buf.t -> dest:int -> int list) option;
}

let make ~name ~wait ~route ?waits ?reduced_waits () =
  let waits = Option.value waits ~default:route in
  { name; wait; route; waits; reduced_waits }

let wait_everywhere t =
  {
    t with
    name = t.name ^ "+wait-everywhere";
    wait = Any_wait;
    waits = t.route;
    reduced_waits = None;
  }

let with_waits t ?name waits =
  let name = Option.value name ~default:(t.name ^ "+bwg'") in
  { t with name; waits; reduced_waits = None }

let with_relation t ?name route =
  let name = Option.value name ~default:(t.name ^ "+repair") in
  { t with name; route; waits = route; reduced_waits = None }

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

(* Validation visits every (buffer, destination) state independently, so
   the sweep partitions cleanly across domains: each worker takes a
   contiguous chunk of the buffer array and accumulates its problems
   per buffer; the merge walks buffers in index order, which is exactly
   the order the serial sweep reports in — the error string is
   byte-identical whatever [domains] says.  The [route]/[waits]
   closures are called concurrently under [domains > 1]; every
   algorithm in this repository (catalogue, elaborated specs, fuzz
   cases) reads only tables frozen at construction, so the calls are
   safe from any domain. *)
let validate ?(domains = 1) t net =
  let check_state acc b dest =
    let report fmt = Printf.ksprintf (fun s -> acc := s :: !acc) fmt in
    let outputs = t.route net b ~dest in
    let waits = t.waits net b ~dest in
    let head = Buf.head_node b in
    if has_dup outputs then
      report "duplicate outputs for %s dest %d" (Net.describe_buffer net (Buf.id b)) dest;
    let check_out id =
      let out = Net.buffer net id in
      if Buf.is_injection out then
        report "output %s is an injection buffer" (Net.describe_buffer net id);
      if Buf.is_delivery out && Buf.head_node out <> dest then
        report "output %s is a foreign delivery buffer" (Net.describe_buffer net id);
      match Buf.kind out with
      | Buf.Channel { src; _ } when src <> head ->
        report "output %s not adjacent to head node %d" (Net.describe_buffer net id) head
      | _ -> ()
    in
    List.iter check_out outputs;
    List.iter
      (fun w ->
        if not (List.mem w outputs) then
          report "wait buffer %s not in outputs (%s dest %d)"
            (Net.describe_buffer net w)
            (Net.describe_buffer net (Buf.id b))
            dest)
      waits;
    match t.reduced_waits with
    | None -> ()
    | Some rw ->
      List.iter
        (fun w ->
          if not (List.mem w waits) then
            report "reduced wait %s not in waits (%s dest %d)"
              (Net.describe_buffer net w)
              (Net.describe_buffer net (Buf.id b))
              dest)
        (rw net b ~dest)
  in
  let consider acc b =
    match Buf.kind b with
    | Buf.Delivery _ -> ()
    | Buf.Injection n ->
      for dest = 0 to Net.num_nodes net - 1 do
        if dest <> n then check_state acc b dest
      done
    | Buf.Channel _ | Buf.Node_buffer _ ->
      for dest = 0 to Net.num_nodes net - 1 do
        if dest <> Buf.head_node b then check_state acc b dest
      done
  in
  let bufs = Net.buffers net in
  let n = Array.length bufs in
  (* per-buffer problem lists (each in reverse report order), filled by
     disjoint chunks; the ordered merge below is the serial sweep's
     report order *)
  let per_buf = Array.make n [] in
  let n_dom = max 1 (min domains n) in
  Dfr_util.Domain_pool.parallel ~domains:n_dom (fun k ->
      let start, stop = Dfr_util.Domain_pool.chunk ~n ~domains:n_dom k in
      for i = start to stop - 1 do
        let acc = ref [] in
        consider acc bufs.(i);
        per_buf.(i) <- !acc
      done);
  match Array.fold_right (fun ps acc -> List.rev_append ps acc) per_buf [] with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)
