(* The differential oracle: one routing problem, two independent
   answers.

   The checker decides deadlock freedom symbolically (Theorems 1-3); the
   simulators answer operationally.  Agreement means:

   - [Deadlock_free]     => no adversarial schedule may deadlock.  We run
     saturating uniform batches under deadlock-seeking configurations
     (tight buffer capacity, several seeds, random output selection) in
     the switching-matched simulator; any [Deadlocked] outcome refutes
     the certificate.
   - [Deadlock_possible] => the attached witness must be dynamically
     stuck.  {!Dfr_scenario.Dfr_scenario.Scenario.replay} seats it (True-Cycle chains plus
     Theorem 2's frozen fillers, or the knot configuration) and a drain
     refutes the witness.  Wait-connectivity and stuck-state failures
     carry no seatable configuration and are only counted.
   - [Unknown]           => accepted (the procedure is worst-case
     exponential), counted.

   The checking function is injectable so tests can confront the
   simulators with a deliberately lying checker and watch the harness
   catch it. *)

open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_sim

type checkfn = Net.t -> Algo.t -> Checker.report

type disagreement =
  | Certified_free_but_deadlocked of { sim_seed : int }
      (** the checker proved freedom; a simulator run deadlocked *)
  | Witness_refuted
      (** the checker produced a deadlock witness; the seated
          configuration drained *)

type replay_status = Confirmed | Refuted | Not_replayable | No_witness

type outcome = {
  verdict : Checker.verdict;
  replay : replay_status;
  disagreement : disagreement option;
}

let same_kind a b =
  match (a, b) with
  | Certified_free_but_deadlocked _, Certified_free_but_deadlocked _ -> true
  | Witness_refuted, Witness_refuted -> true
  | _ -> false

let describe = function
  | Certified_free_but_deadlocked { sim_seed } ->
    Printf.sprintf "checker certified freedom but the simulator deadlocked (sim seed %d)"
      sim_seed
  | Witness_refuted -> "checker's deadlock witness drained in the simulator"

let default_check net algo = Checker.check net algo

(* Deadlock-seeking stress: saturating closed batch, tight capacity. *)
let stress net algo ~sim_seed ~count =
  let nodes = Net.num_nodes net in
  match Net.switching net with
  | Net.Wormhole ->
    let traffic =
      Traffic.batch_uniform ~num_nodes:nodes ~count ~length:6 ~seed:sim_seed
    in
    Wormhole_sim.is_deadlocked
      (Wormhole_sim.run
         ~config:
           {
             Wormhole_sim.capacity = 2;
             max_cycles = 50_000;
             seed = sim_seed;
             selection = Wormhole_sim.Random_free;
           }
         net algo traffic)
  | Net.Store_and_forward | Net.Virtual_cut_through ->
    let traffic =
      Traffic.batch_uniform ~num_nodes:nodes ~count ~length:1 ~seed:sim_seed
    in
    Saf_sim.is_deadlocked
      (Saf_sim.run
         ~config:{ Saf_sim.max_cycles = 50_000; seed = sim_seed }
         net algo traffic)

let confront ?(check = default_check) ?(sim_seeds = [ 1; 2; 3 ]) ?(count = 8)
    net algo =
  let report = check net algo in
  match report.Checker.verdict with
  | Checker.Deadlock_free _ as verdict ->
    let offender =
      List.find_opt (fun sim_seed -> stress net algo ~sim_seed ~count) sim_seeds
    in
    {
      verdict;
      replay = No_witness;
      disagreement =
        Option.map (fun sim_seed -> Certified_free_but_deadlocked { sim_seed })
          offender;
    }
  | Checker.Deadlock_possible failure as verdict -> (
    match Dfr_scenario.Scenario.replay ~space:report.Checker.space net algo failure with
    | Some true -> { verdict; replay = Confirmed; disagreement = None }
    | Some false ->
      { verdict; replay = Refuted; disagreement = Some Witness_refuted }
    | None -> { verdict; replay = Not_replayable; disagreement = None })
  | Checker.Unknown _ as verdict ->
    { verdict; replay = No_witness; disagreement = None }
