(* The fuzzing campaign driver.

   A campaign is [trials] independent trials.  Trial [t] derives its own
   seed from the campaign seed by a fixed mix, so the generated case —
   and hence the whole campaign outcome — depends only on [(seed,
   trials, max_nodes)], never on how trials are spread across domains:
   [--domains 8] and [--domains 1] produce bit-for-bit identical
   summaries.

   A trial generates a case, confronts checker and simulator through the
   oracle and, on disagreement, greedily shrinks the case and renders it
   as a [.dfr] spec ready to be checked in as a regression. *)

open Dfr_util
open Dfr_core
open Dfr_obs

type config = {
  trials : int;
  seed : int;
  max_nodes : int;
  domains : int;
  shrink_budget : int;  (** oracle evaluations the shrinker may spend *)
}

let default_config =
  { trials = 100; seed = 1; max_nodes = 9; domains = 1; shrink_budget = 150 }

type finding = {
  trial : int;
  case_seed : int;
  kind : Oracle.disagreement;
  case : Case.t;  (** after shrinking *)
  spec : (string, string) result;  (** the shrunk case as .dfr text *)
  shrink_evals : int;
}

type verdict_class = Free | Deadlock | Unknown

type trial_result = {
  verdict_class : verdict_class;
  replay : Oracle.replay_status;
  finding : finding option;
}

type summary = {
  trials : int;
  free : int;
  deadlock : int;
  unknown : int;
  confirmed : int;
  refuted : int;
  not_replayable : int;
  findings : finding list;  (** in trial order *)
}

(* SplitMix-style mix so neighboring trials get unrelated streams. *)
let trial_seed ~seed ~trial =
  (* constants truncated to OCaml's 63-bit ints *)
  let z = seed lxor (trial * 0x9E3779B97F4A7C1) in
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let run_trial ?check (cfg : config) trial =
  Obs.span "fuzz.trial" @@ fun () ->
  let case_seed = trial_seed ~seed:cfg.seed ~trial in
  let rng = Prng.create case_seed in
  let case = Gen.case rng ~max_nodes:cfg.max_nodes in
  let net, algo = Case.to_net_algo case in
  let o = Oracle.confront ?check net algo in
  let verdict_class =
    match o.Oracle.verdict with
    | Checker.Deadlock_free _ -> Free
    | Checker.Deadlock_possible _ -> Deadlock
    | Checker.Unknown _ -> Unknown
  in
  let finding =
    Option.map
      (fun kind ->
        let interesting candidate =
          (* deliverability keeps the shrunk case printable: elaboration
             of the regression spec checks the same property *)
          Case.deliverable candidate
          &&
          try
            let net, algo = Case.to_net_algo candidate in
            match (Oracle.confront ?check net algo).Oracle.disagreement with
            | Some kind' -> Oracle.same_kind kind kind'
            | None -> false
          with _ -> false
        in
        let shrunk, shrink_evals =
          Obs.span "fuzz.shrink" @@ fun () ->
          Shrink.minimize ~interesting ~budget:cfg.shrink_budget case
        in
        {
          trial;
          case_seed;
          kind;
          case = shrunk;
          spec = Case.to_spec shrunk;
          shrink_evals;
        })
      o.Oracle.disagreement
  in
  { verdict_class; replay = o.Oracle.replay; finding }

let run ?check (cfg : config) =
  if cfg.trials < 0 then invalid_arg "Fuzz.run: trials must be >= 0";
  if cfg.domains < 1 then invalid_arg "Fuzz.run: domains must be >= 1";
  if cfg.max_nodes < 4 then invalid_arg "Fuzz.run: max-nodes must be >= 4";
  let results = Array.make (max cfg.trials 1) None in
  let worker k () =
    let t = ref k in
    while !t < cfg.trials do
      results.(!t) <- Some (run_trial ?check cfg !t);
      t := !t + cfg.domains
    done
  in
  (Obs.span "fuzz.run" @@ fun () ->
   (* trials stride across the shared domain pool; trial [t]'s outcome
      depends only on its derived seed, so the placement is irrelevant *)
   Domain_pool.parallel ~domains:cfg.domains (fun k -> worker k ()));
  let free = ref 0
  and deadlock = ref 0
  and unknown = ref 0
  and confirmed = ref 0
  and refuted = ref 0
  and not_replayable = ref 0
  and findings = ref [] in
  for t = cfg.trials - 1 downto 0 do
    match results.(t) with
    | None -> assert false
    | Some r ->
      (match r.verdict_class with
      | Free -> incr free
      | Deadlock -> incr deadlock
      | Unknown -> incr unknown);
      (match r.replay with
      | Oracle.Confirmed -> incr confirmed
      | Oracle.Refuted -> incr refuted
      | Oracle.Not_replayable -> incr not_replayable
      | Oracle.No_witness -> ());
      match r.finding with
      | Some f -> findings := f :: !findings
      | None -> ()
  done;
  Obs.count "fuzz.trials" cfg.trials;
  Obs.count "fuzz.disagreements" (List.length !findings);
  {
    trials = cfg.trials;
    free = !free;
    deadlock = !deadlock;
    unknown = !unknown;
    confirmed = !confirmed;
    refuted = !refuted;
    not_replayable = !not_replayable;
    findings = !findings;
  }

let pp_summary ppf s =
  Format.fprintf ppf "trials: %d@." s.trials;
  Format.fprintf ppf "verdicts: %d free, %d deadlock, %d unknown@." s.free
    s.deadlock s.unknown;
  Format.fprintf ppf "witnesses: %d confirmed, %d refuted, %d not replayable@."
    s.confirmed s.refuted s.not_replayable;
  Format.fprintf ppf "disagreements: %d@." (List.length s.findings);
  List.iter
    (fun f ->
      Format.fprintf ppf "@.trial %d (case seed %d): %s@." f.trial f.case_seed
        (Oracle.describe f.kind);
      Format.fprintf ppf "shrunk to %d nodes, %d channels (%d oracle evals)@."
        f.case.Case.num_nodes
        (Array.length f.case.Case.channels)
        f.shrink_evals;
      match f.spec with
      | Ok text -> Format.fprintf ppf "%s" text
      | Error msg -> Format.fprintf ppf "(unprintable: %s)@." msg)
    s.findings
