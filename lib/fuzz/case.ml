(* A fuzz case: a routing problem flattened to explicit channels and
   fully tabulated route/wait relations.

   Every generated network — regular topologies, irregular up*/down*
   graphs, SAF node-buffer fabrics — is reduced to this one shape so a
   single elaborator ({!to_net_algo}), a single printer (via
   {!Dfr_spec.Printer}) and a single shrinker serve them all.  States
   are symbolic ([S_inj] node / [S_chan] channel-list index), never raw
   buffer ids, so shrinking transformations can renumber nodes and
   channels without chasing the network's buffer layout.

   Channel triples are [(src, dst, vc)] exactly as {!Net.custom} takes
   them; for SAF/VCT networks a "channel" is the whole-packet buffer
   [(node, node, cls)] (the spec language's self-channel convention). *)

open Dfr_network
open Dfr_routing

type state = S_inj of int | S_chan of int

type t = {
  name : string;
  switching : Net.switching;
  wait : Algo.wait_discipline;
  num_nodes : int;
  channels : (int * int * int) array;
  route : (state * int, int list) Hashtbl.t;
      (* (state, dest) -> output channel indices; missing key = [] *)
  waits : (state * int, int list) Hashtbl.t;
      (* only keys where the wait set differs from the route set *)
}

let states c =
  List.init c.num_nodes (fun n -> S_inj n)
  @ List.init (Array.length c.channels) (fun i -> S_chan i)

let route_of c s dest =
  Option.value (Hashtbl.find_opt c.route (s, dest)) ~default:[]

let waits_of c s dest =
  match Hashtbl.find_opt c.waits (s, dest) with
  | Some w -> w
  | None -> route_of c s dest

(* ---------------- elaboration to engine types ---------------- *)

let to_net_algo c =
  let net =
    Net.custom ~name:c.name ~switching:c.switching ~num_nodes:c.num_nodes
      ~channels:(Array.to_list c.channels)
  in
  let buf_of_chan =
    Array.map
      (fun (src, dst, vc) ->
        match c.switching with
        | Net.Wormhole -> Buf.id (Net.find_custom_channel net ~src ~dst ~vc)
        | Net.Store_and_forward | Net.Virtual_cut_through ->
          Buf.id (Net.node_buffer net ~node:dst ~cls:vc))
      c.channels
  in
  let state_of = Array.make (Net.num_buffers net) None in
  for node = 0 to c.num_nodes - 1 do
    state_of.(Buf.id (Net.injection net node)) <- Some (S_inj node)
  done;
  Array.iteri (fun i id -> state_of.(id) <- Some (S_chan i)) buf_of_chan;
  let resolve outs = List.map (fun i -> buf_of_chan.(i)) outs in
  let route _net b ~dest =
    match state_of.(Buf.id b) with
    | None -> []
    | Some s -> resolve (route_of c s dest)
  in
  let waits _net b ~dest =
    match state_of.(Buf.id b) with
    | None -> []
    | Some s -> resolve (waits_of c s dest)
  in
  let algo = Algo.make ~name:c.name ~wait:c.wait ~route ~waits () in
  (net, algo)

let to_spec c =
  let net, algo = to_net_algo c in
  Dfr_spec.Printer.to_string net algo

(* ---------------- tabulation from engine types ---------------- *)

let same_set a b = List.sort compare a = List.sort compare b

(* Tabulate an arbitrary (net, algo) pair into a case.  Outputs that are
   not transit buffers (delivery shortcuts) are dropped — the simulators
   ignore them too. *)
let of_net_algo ~name ~wait net algo =
  let transit = Net.transit_buffers net in
  let channels =
    Array.of_list
      (List.map
         (fun b ->
           match Buf.kind b with
           | Buf.Channel { src; dst; vc; _ } -> (src, dst, vc)
           | Buf.Node_buffer { node; cls } -> (node, node, cls)
           | _ -> assert false)
         transit)
  in
  let chan_of_buf = Hashtbl.create 64 in
  List.iteri (fun i b -> Hashtbl.replace chan_of_buf (Buf.id b) i) transit;
  let num_nodes = Net.num_nodes net in
  let route = Hashtbl.create 64 in
  let waits = Hashtbl.create 64 in
  let tabulate s b =
    for dest = 0 to num_nodes - 1 do
      if Buf.head_node b <> dest then begin
        let to_chans ids =
          List.filter_map (fun id -> Hashtbl.find_opt chan_of_buf id) ids
        in
        let r = to_chans (algo.Algo.route net b ~dest) in
        if r <> [] then Hashtbl.replace route (s, dest) r;
        let w = to_chans (algo.Algo.waits net b ~dest) in
        if not (same_set w r) then Hashtbl.replace waits (s, dest) w
      end
    done
  in
  for node = 0 to num_nodes - 1 do
    tabulate (S_inj node) (Net.injection net node)
  done;
  List.iteri (fun i b -> tabulate (S_chan i) b) transit;
  { name; switching = Net.switching net; wait; num_nodes; channels; route; waits }

(* ---------------- shrinking transformations ----------------

   Each returns a structurally valid smaller case (tables remapped); the
   shrinker decides whether the result is still interesting. *)

let remap_tables c ~map_state ~map_dest ~map_out ~channels ~num_nodes =
  let remap tbl =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun (s, d) outs ->
        match (map_state s, map_dest d) with
        | Some s', Some d' ->
          Hashtbl.replace out (s', d') (List.filter_map map_out outs)
        | _ -> ())
      tbl;
    out
  in
  { c with num_nodes; channels; route = remap c.route; waits = remap c.waits }

let drop_channel c i =
  let channels =
    Array.of_list
      (List.filteri (fun j _ -> j <> i) (Array.to_list c.channels))
  in
  let map_chan j = if j = i then None else Some (if j > i then j - 1 else j) in
  remap_tables c ~channels ~num_nodes:c.num_nodes
    ~map_state:(function
      | S_inj n -> Some (S_inj n)
      | S_chan j -> Option.map (fun j' -> S_chan j') (map_chan j))
    ~map_dest:(fun d -> Some d)
    ~map_out:map_chan

let drop_node c v =
  if c.num_nodes <= 2 then invalid_arg "Case.drop_node: need > 2 nodes";
  let node n = if n > v then n - 1 else n in
  let keep = ref [] in
  Array.iteri
    (fun j (src, dst, vc) ->
      if src <> v && dst <> v then keep := (j, (node src, node dst, vc)) :: !keep)
    c.channels;
  let keep = List.rev !keep in
  let chan_map = Hashtbl.create 16 in
  List.iteri (fun j' (j, _) -> Hashtbl.replace chan_map j j') keep;
  let map_chan j = Hashtbl.find_opt chan_map j in
  remap_tables c
    ~channels:(Array.of_list (List.map snd keep))
    ~num_nodes:(c.num_nodes - 1)
    ~map_state:(function
      | S_inj n -> if n = v then None else Some (S_inj (node n))
      | S_chan j -> Option.map (fun j' -> S_chan j') (map_chan j))
    ~map_dest:(fun d -> if d = v then None else Some (node d))
    ~map_out:map_chan

let drop_route_output c s dest out =
  let key = (s, dest) in
  let without l = List.filter (fun o -> o <> out) l in
  let route = Hashtbl.copy c.route in
  let waits = Hashtbl.copy c.waits in
  (match Hashtbl.find_opt route key with
  | Some outs -> Hashtbl.replace route key (without outs)
  | None -> ());
  (match Hashtbl.find_opt waits key with
  | Some w ->
    let w = without w in
    (* a wait set shrunk to the route set is no restriction at all *)
    if same_set w (Option.value (Hashtbl.find_opt route key) ~default:[]) then
      Hashtbl.remove waits key
    else Hashtbl.replace waits key w
  | None -> ());
  { c with route; waits }

let relax_waits c s dest =
  let waits = Hashtbl.copy c.waits in
  Hashtbl.remove waits (s, dest);
  { c with waits }

let size c = Array.length c.channels + c.num_nodes

(* Every destination reachable from every injection under the route
   tables.  Generated cases are deliverable by construction (nonempty
   subsets of progressive relations); the shrinker uses this to refuse
   transformations that would strand traffic — a stranded case cannot be
   reprinted as a spec, since elaboration checks the same property. *)
let head_of c = function
  | S_inj n -> n
  | S_chan i ->
    let _, dst, _ = c.channels.(i) in
    dst

let deliverable c =
  let reaches src dest =
    let visited = Hashtbl.create 32 in
    let arrived = ref false in
    let rec walk s =
      if not (Hashtbl.mem visited s || !arrived) then begin
        Hashtbl.replace visited s ();
        if head_of c s = dest then arrived := true
        else List.iter (fun i -> walk (S_chan i)) (route_of c s dest)
      end
    in
    walk (S_inj src);
    !arrived
  in
  let ok = ref true in
  for src = 0 to c.num_nodes - 1 do
    for dest = 0 to c.num_nodes - 1 do
      if src <> dest && not (reaches src dest) then ok := false
    done
  done;
  !ok
