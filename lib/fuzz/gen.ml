(* Seeded generation of random routing problems.

   A trial draws a base network whose full relation is *progressive*
   (every permitted move strictly decreases a well-founded measure —
   minimal-adaptive distance on regular topologies, the up-then-down
   phase order on irregular graphs), then restricts it: a random
   nonempty subset of the route set at every (state, destination), a
   random wait restriction, a random waiting discipline.  Nonempty
   subsets of a progressive relation still deliver every packet, so
   generated cases are never trivially broken (no stuck states, no
   livelock) — the checker's verdict genuinely hinges on the blocking
   structure, which is where the bugs live.

   Everything is a pure function of the [Prng.t]: same seed, same case,
   regardless of which domain runs the trial. *)

open Dfr_topology
open Dfr_network
open Dfr_routing
open Dfr_util

type shape =
  | Worm_mesh of int array
  | Worm_hypercube of int
  | Worm_ring of int
  | Worm_torus of int array
  | Saf_mesh of int array
  | Vct_ring of int
  | Up_down

let shape_nodes = function
  | Worm_mesh dims | Worm_torus dims | Saf_mesh dims ->
    Array.fold_left ( * ) 1 dims
  | Worm_hypercube d -> 1 lsl d
  | Worm_ring n | Vct_ring n -> n
  | Up_down -> 4 (* minimum; actual size drawn later, capped by max_nodes *)

let all_shapes =
  [
    Worm_mesh [| 2; 2 |];
    Worm_mesh [| 2; 3 |];
    Worm_mesh [| 2; 4 |];
    Worm_mesh [| 3; 3 |];
    Worm_hypercube 2;
    Worm_hypercube 3;
    Worm_ring 3;
    Worm_ring 4;
    Worm_ring 5;
    Worm_torus [| 3; 3 |];
    Saf_mesh [| 2; 2 |];
    Saf_mesh [| 2; 3 |];
    Saf_mesh [| 3; 3 |];
    Vct_ring 3;
    Vct_ring 4;
    Up_down;
  ]

let shape_name = function
  | Worm_mesh d -> Printf.sprintf "mesh%dx%d" d.(0) d.(1)
  | Worm_hypercube d -> Printf.sprintf "cube%d" d
  | Worm_ring n -> Printf.sprintf "ring%d" n
  | Worm_torus d -> Printf.sprintf "torus%dx%d" d.(0) d.(1)
  | Saf_mesh d -> Printf.sprintf "saf%dx%d" d.(0) d.(1)
  | Vct_ring n -> Printf.sprintf "vct%d" n
  | Up_down -> "updown"

(* Full minimal-adaptive relation on a wormhole topology network: every
   (minimal move, vc) channel, for channel and injection states alike. *)
let minimal_wormhole topo vcs =
  let net = Net.wormhole topo ~vcs in
  let route net' b ~dest =
    let head = Buf.head_node b in
    List.concat_map
      (fun (dim, dir) ->
        List.init vcs (fun vc -> Buf.id (Net.channel net' ~src:head ~dim ~dir ~vc)))
      (Topology.minimal_moves topo ~src:head ~dst:dest)
  in
  (net, Algo.make ~name:"minimal" ~wait:Algo.Any_wait ~route ())

(* Full minimal relation on a packet-buffered network: injections enter
   any local class, transit moves claim any class at a minimal-move
   neighbor. *)
let minimal_saf ~vct topo classes =
  let net =
    if vct then Net.virtual_cut_through topo ~classes
    else Net.store_and_forward topo ~classes
  in
  let route net' b ~dest =
    let head = Buf.head_node b in
    match Buf.kind b with
    | Buf.Injection _ ->
      List.init classes (fun cls -> Buf.id (Net.node_buffer net' ~node:head ~cls))
    | _ ->
      List.concat_map
        (fun (dim, dir) ->
          match Topology.neighbor topo head dim dir with
          | None -> []
          | Some v ->
            List.init classes (fun cls -> Buf.id (Net.node_buffer net' ~node:v ~cls)))
        (Topology.minimal_moves topo ~src:head ~dst:dest)
  in
  (net, Algo.make ~name:"minimal-saf" ~wait:Algo.Any_wait ~route ())

let base_case rng ~max_nodes =
  let candidates =
    List.filter (fun s -> shape_nodes s <= max_nodes) all_shapes
  in
  let candidates = if candidates = [] then [ Worm_mesh [| 2; 2 |] ] else candidates in
  let shape = Prng.pick rng candidates in
  let name = shape_name shape in
  let tabulate net algo = Case.of_net_algo ~name ~wait:Algo.Any_wait net algo in
  match shape with
  | Worm_mesh dims ->
    let vcs = 1 + Prng.int rng 2 in
    let net, algo = minimal_wormhole (Topology.mesh dims) vcs in
    tabulate net algo
  | Worm_hypercube d ->
    let vcs = 1 + Prng.int rng 2 in
    let net, algo = minimal_wormhole (Topology.hypercube d) vcs in
    tabulate net algo
  | Worm_ring n ->
    let vcs = 1 + Prng.int rng 2 in
    let net, algo = minimal_wormhole (Topology.ring n) vcs in
    tabulate net algo
  | Worm_torus dims ->
    let net, algo = minimal_wormhole (Topology.torus dims) 1 in
    tabulate net algo
  | Saf_mesh dims ->
    let classes = 1 + Prng.int rng 2 in
    let net, algo = minimal_saf ~vct:false (Topology.mesh dims) classes in
    tabulate net algo
  | Vct_ring n ->
    let classes = 1 + Prng.int rng 2 in
    let net, algo = minimal_saf ~vct:true (Topology.ring n) classes in
    tabulate net algo
  | Up_down ->
    let num_nodes = 4 + Prng.int rng (max 1 (max_nodes - 3)) in
    let extra_edges = Prng.int rng 4 in
    let ud =
      Updown.random_connected ~seed:(Prng.int rng 1_000_000) ~num_nodes
        ~extra_edges
    in
    Case.of_net_algo ~name ~wait:Algo.Any_wait ud.Updown.net ud.Updown.algo

(* nonempty random subset, each element kept with probability 1/2 *)
let subset rng l =
  match l with
  | [] | [ _ ] -> l
  | _ ->
    let chosen = List.filter (fun _ -> Prng.bool rng) l in
    if chosen = [] then [ Prng.pick rng l ] else chosen

let restrict rng (c : Case.t) =
  let wait =
    if Prng.bernoulli rng 0.4 then Algo.Specific_wait else Algo.Any_wait
  in
  let route = Hashtbl.create (Hashtbl.length c.Case.route) in
  let waits = Hashtbl.create 16 in
  (* canonical order keeps the draw sequence independent of hash layout *)
  List.iter
    (fun s ->
      for dest = 0 to c.Case.num_nodes - 1 do
        match Case.route_of c s dest with
        | [] -> ()
        | outs ->
          let r = subset rng outs in
          Hashtbl.replace route (s, dest) r;
          let w =
            match wait with
            | Algo.Specific_wait -> [ Prng.pick rng r ]
            | Algo.Any_wait -> if Prng.bool rng then r else subset rng r
          in
          if not (Case.same_set w r) then Hashtbl.replace waits (s, dest) w
      done)
    (Case.states c);
  { c with Case.wait; route; waits }

let case rng ~max_nodes =
  let base = base_case rng ~max_nodes in
  let c = restrict rng base in
  { c with Case.name = Printf.sprintf "fuzz-%s" c.Case.name }
