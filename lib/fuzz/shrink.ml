(* Greedy witness minimization.

   When the oracle finds a disagreement, the raw case is noise: dozens of
   channels, most irrelevant.  The shrinker walks a deterministic
   candidate order — drop a node, drop a channel, drop one output of one
   route entry, lift one wait restriction — and keeps any candidate on
   which the caller's [interesting] predicate still holds (same
   disagreement kind, re-judged by the oracle).  First-improvement
   restarts until a full pass finds nothing or the evaluation budget is
   spent; the result is a local minimum: removing any single element
   makes the disagreement vanish.

   The predicate is the expensive part (a full checker + simulator
   confrontation per candidate), so the budget counts predicate calls,
   not candidates generated. *)

let candidates (c : Case.t) =
  let drop_nodes =
    if c.Case.num_nodes > 2 then
      List.init c.Case.num_nodes (fun v () -> Case.drop_node c v)
    else []
  in
  let drop_channels =
    List.init (Array.length c.Case.channels) (fun i () -> Case.drop_channel c i)
  in
  let route_outputs =
    List.concat_map
      (fun s ->
        List.concat
          (List.init c.Case.num_nodes (fun dest ->
               match Case.route_of c s dest with
               | [] | [ _ ] -> []
               | outs ->
                 List.map (fun out () -> Case.drop_route_output c s dest out) outs)))
      (Case.states c)
  in
  let wait_relaxations =
    List.concat_map
      (fun s ->
        List.concat
          (List.init c.Case.num_nodes (fun dest ->
               if Hashtbl.mem c.Case.waits (s, dest) then
                 [ (fun () -> Case.relax_waits c s dest) ]
               else [])))
      (Case.states c)
  in
  drop_nodes @ drop_channels @ route_outputs @ wait_relaxations

let minimize ~interesting ~budget c0 =
  let evals = ref 0 in
  let try_candidate c =
    if !evals >= budget then None
    else begin
      incr evals;
      if interesting c then Some c else None
    end
  in
  let rec pass c =
    let rec scan = function
      | [] -> None
      | mk :: rest -> (
        match try_candidate (mk ()) with
        | Some better -> Some better
        | None -> if !evals >= budget then None else scan rest)
    in
    match scan (candidates c) with Some better -> pass better | None -> c
  in
  let result = pass c0 in
  (result, !evals)
