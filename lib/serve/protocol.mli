(** The NDJSON checking protocol: one JSON object per line in, one per
    line out, responses in request order.

    Requests:
    {v
    {"id": <any>, "op": "check", "spec": "<.dfr text>"}
    {"id": <any>, "op": "check", "algo": "efa", "topology": "hypercube:3"}
    {"id": <any>, "op": "check_delta", "base": "<digest>", "spec": "<.dfr text>"}
    {"id": <any>, "op": "scenario", "spec": "<.dfr text>",
     "plan": "<.plan text>", "mode": "sweep"}
    {"op": "catalogue"} {"op": "stats"} {"op": "ping"}
    {"op": "sleep", "ms": 250}          (testing/latency probe)
    {"op": "shutdown"}
    v}

    ["id"] may be any JSON value; it is echoed verbatim on the response
    (and omitted when absent).  Responses always carry ["ok"]: [true]
    with op-specific fields, or [false] with an ["error"] object whose
    ["kind"] is one of [parse], [bad_request], [spec], [unprintable],
    [queue_full], [timeout], [check], [internal], [shutting_down]. *)

open Dfr_util

type request =
  | Check_spec of { spec : string }  (** inline .dfr source *)
  | Check_named of { algo : string; topology : string option }
      (** a registry algorithm, optionally on an explicit topology *)
  | Check_delta of { base : string; spec : string }
      (** re-check an edited spec against the incremental session for
          [base] (the digest a previous check/check_delta response
          reported); falls back to a cold build on a session miss *)
  | Scenario of {
      spec : string option;  (** inline .dfr source, or... *)
      algo : string option;  (** ...a registry algorithm *)
      topology : string option;
      plan : string;  (** inline fault-plan text ({!Dfr_scenario.Fault}) *)
      sweep : bool;  (** ["mode"]: [true] = "sweep" (default), "sequence" *)
    }  (** run a fault campaign; the response's ["campaign"] field is the
           {!Dfr_scenario.Scenario.campaign_to_json} envelope *)
  | Catalogue
  | Stats
  | Ping
  | Sleep of { ms : int }
  | Shutdown

type parsed = { id : Json.t option; req : request }

val max_sleep_ms : int
(** Upper bound accepted for [Sleep] (the probe must not be able to park
    a worker forever). *)

val parse : string -> (parsed, Json.t option * string) result
(** Parse one request line.  Errors carry whatever ["id"] could still be
    recovered, so even a malformed request gets an addressed reply. *)

(** {2 Response constructors} — compact single-line rendering is the
    caller's job ({!Json.to_string}). *)

val ok_response : id:Json.t option -> op:string -> (string * Json.t) list -> Json.t
val error_response : id:Json.t option -> kind:string -> string -> Json.t

val check_response :
  id:Json.t option -> cached:bool -> digest:string -> exit_code:int -> report:Json.t -> Json.t

val check_delta_response :
  id:Json.t option -> digest:string -> exit_code:int -> report:Json.t -> delta:Json.t -> Json.t
(** Same ["report"] bytes a plain check of the edited spec would emit,
    plus a ["delta"] object [{"base", "mode", "dirty_dests",
    "reused_dests"}] where ["mode"] is ["fast"], ["replay"] or
    ["cold"]. *)

val catalogue_json : unit -> Json.t
(** The machine-readable registry: name, expected verdict, description
    and default topology per algorithm.  Shared by [dfcheck list --json]
    and the serve [catalogue] response so the two cannot drift. *)
