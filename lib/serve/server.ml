open Dfr_util

let max_line_bytes = 16 * 1024 * 1024

(* One NDJSON session on (fd_in, oc).  The pending queue holds each
   request's slot in arrival order; responses leave from the head only.
   [`Eof] and [`Shutdown] both drain before returning; [`Overflow]
   answers with a parse error, drains, and has the caller drop the
   connection. *)
let session engine fd_in oc =
  let pending : Engine.slot Queue.t = Queue.create () in
  let acc = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let write_json j =
    output_string oc (Json.to_string j);
    output_char oc '\n';
    flush oc
  in
  let drain_ready () =
    let continue = ref true in
    while !continue && not (Queue.is_empty pending) do
      match Engine.poll engine (Queue.peek pending) with
      | Some j ->
        ignore (Queue.pop pending);
        write_json j
      | None -> continue := false
    done
  in
  let drain_all () =
    while not (Queue.is_empty pending) do
      write_json (Engine.await engine (Queue.pop pending))
    done
  in
  let feed_line line =
    let line =
      (* tolerate CRLF clients *)
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    if String.trim line <> "" then
      Queue.add (Engine.handle_line engine line) pending
  in
  (* split off every complete line in [acc], keep the partial tail *)
  let feed_buffer () =
    let s = Buffer.contents acc in
    Buffer.clear acc;
    let start = ref 0 in
    String.iteri
      (fun i c ->
        if c = '\n' then begin
          feed_line (String.sub s !start (i - !start));
          start := i + 1
        end)
      s;
    Buffer.add_substring acc s !start (String.length s - !start)
  in
  let readable timeout =
    match Unix.select [ fd_in ] [] [] timeout with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let rec loop () =
    drain_ready ();
    if Engine.shutdown_requested engine then begin
      drain_all ();
      `Shutdown
    end
    else begin
      (* block on input when idle; poll at 5 ms while responses are due *)
      let timeout = if Queue.is_empty pending then -1.0 else 0.005 in
      if readable timeout then begin
        match Unix.read fd_in chunk 0 (Bytes.length chunk) with
        | 0 | (exception Unix.Unix_error _) ->
          drain_all ();
          `Eof
        | n ->
          if Buffer.length acc + n > max_line_bytes then begin
            drain_all ();
            write_json
              (Protocol.error_response ~id:None ~kind:"parse"
                 (Printf.sprintf "request line exceeds %d bytes" max_line_bytes));
            `Overflow
          end
          else begin
            Buffer.add_subbytes acc chunk 0 n;
            feed_buffer ();
            loop ()
          end
      end
      else loop ()
    end
  in
  loop ()

let run_stdio engine =
  let oc = stdout in
  (match session engine Unix.stdin oc with
  | `Eof | `Shutdown | `Overflow -> ());
  (try flush oc with Sys_error _ -> ());
  0

let run_tcp engine ~port =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  match Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | exception Unix.Unix_error (err, _, _) ->
    Printf.eprintf "dfcheck serve: cannot bind 127.0.0.1:%d: %s\n%!" port
      (Unix.error_message err);
    (try Unix.close sock with Unix.Unix_error _ -> ());
    2
  | () ->
    Unix.listen sock 16;
    (match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) ->
      Printf.eprintf "dfcheck serve: listening on 127.0.0.1:%d\n%!" p
    | _ -> ());
    let rec accept_loop () =
      if Engine.shutdown_requested engine then ()
      else
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | fd, _ ->
          let oc = Unix.out_channel_of_descr fd in
          (* a dropped connection (write failure mid-session) only ends
             that session: log and accept the next one *)
          (match session engine fd oc with
          | `Eof | `Shutdown | `Overflow -> ()
          | exception Sys_error msg ->
            Printf.eprintf "dfcheck serve: connection lost: %s\n%!" msg
          | exception Unix.Unix_error (err, _, _) ->
            Printf.eprintf "dfcheck serve: connection lost: %s\n%!"
              (Unix.error_message err));
          (try close_out oc with Sys_error _ | Unix.Unix_error _ -> ());
          accept_loop ()
    in
    accept_loop ();
    (try Unix.close sock with Unix.Unix_error _ -> ());
    0
