(** The serving engine: request dispatch, the content-addressed verdict
    cache, the worker pool, per-request deadlines.

    The engine is the transport-independent half of [dfcheck serve]: the
    stdio/TCP loop ({!Server}), the benchmark harness and the test suite
    all drive the same [handle_line]/[poll]/[await] surface.

    Threading contract: {!handle_line}, {!poll}, {!await}, {!stats_json}
    and {!shutdown} must all be called from one orchestrator thread.
    Workers only ever run the pure checking job; the cache, the in-flight
    table and the digest memo belong to the orchestrator.  Together with
    in-order response draining this makes every response byte — including
    the [cached] flag — a function of the request sequence alone, which
    is what the smoke test's cross-[--domains] diff pins. *)

open Dfr_util

type config = {
  workers : int;  (** domain workers checking in parallel *)
  capacity : int;  (** max outstanding checks (queued or running) *)
  cache_capacity : int;  (** verdict-cache entries; 0 disables caching *)
  cache_entry_bytes : int;
      (** per-entry cap on the rendered report a cache entry may pin;
          0 = unlimited.  Oversized reports (giant deadlock witnesses)
          are served but not cached. *)
  timeout_ms : int;  (** per-request deadline; 0 disables *)
  domains : int;
      (** per-check BWG/classification parallelism; 0 = auto-size from
          {!Dfr_util.Domain_pool.cap} (the machine's core count, minus
          any [set_cap]/DFR_DOMAINS override) at {!create} time *)
  sessions : int;
      (** incremental sessions kept live for [check_delta]; 0 disables
          the delta path (every delta request re-checks cold) *)
}

val default_config : config
(** 1 worker, capacity 64, 256 cache entries of at most 1 MiB each, no
    timeout, auto-sized domains per check, 8 incremental sessions. *)

type t

val create : config -> t
(** Spawns the worker pool, resolving [domains = 0] to the pool cap.
    Raises [Invalid_argument] on non-positive workers/capacity, negative
    domains or negative cache capacity. *)

val domains : t -> int
(** The resolved per-check domain count (never 0). *)

type slot
(** One request's place in the response order: either already answered
    (errors, cache hits, control ops) or waiting on a pool promise. *)

val handle_line : t -> string -> slot
(** Parse and dispatch one request line.  Never raises and never blocks
    on checking work; a malformed or rejected request yields a slot that
    is already resolved to an error response. *)

val poll : t -> slot -> Json.t option
(** Non-blocking: the response if the slot has resolved (completing cache
    insertion and timeout bookkeeping as a side effect), else [None]. *)

val await : t -> slot -> Json.t
(** Block until the slot resolves (honouring its deadline). *)

val shutdown_requested : t -> bool
(** Set once a [shutdown] request has been dispatched. *)

val requests : t -> int
val stats_json : t -> Json.t

val shutdown : t -> unit
(** Drain and join the worker pool.  Idempotent. *)
