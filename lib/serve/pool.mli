(** A fixed pool of OCaml-5 domain workers behind a bounded job queue.

    The bound counts {e outstanding} jobs — accepted but not yet
    completed, whether queued or running — so admission decisions depend
    only on which earlier jobs have finished, never on how far a worker
    happens to have drained the queue.  That is what lets a serving smoke
    test provoke [queue_full] deterministically: occupy the workers with
    known-slow jobs and the (N+1)-th submission is refused every time.

    Results travel through single-assignment promises; a job that raises
    fulfils its promise with the exception instead of killing its worker,
    so one bad request can never take the pool down. *)

type t

type 'a promise

val create : workers:int -> capacity:int -> t
(** [workers] domains are spawned immediately and live until {!shutdown}.
    [capacity] is the maximum number of outstanding jobs ([>= workers] is
    sensible, [>= 1] required).  Raises [Invalid_argument] on
    non-positive arguments. *)

val try_submit : t -> (unit -> 'a) -> 'a promise option
(** [None] when the pool is at capacity (backpressure) or shutting
    down. *)

val poll : 'a promise -> ('a, exn) result option
(** Non-blocking completion test. *)

val await : 'a promise -> ('a, exn) result
(** Block until the job completes.  By the time [await] (or a successful
    {!poll}) returns, the job's capacity slot has been released, so a
    subsequent {!try_submit} observes the freed slot deterministically. *)

val outstanding : t -> int
(** Jobs accepted and not yet completed. *)

val capacity : t -> int
val workers : t -> int

val shutdown : t -> unit
(** Stop accepting work, let the workers drain every already-accepted
    job, then join them.  Idempotent. *)
