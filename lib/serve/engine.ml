open Dfr_util
open Dfr_routing
open Dfr_core
module Obs = Dfr_obs.Obs

type config = {
  workers : int;
  capacity : int;
  cache_capacity : int;
  cache_entry_bytes : int;
  timeout_ms : int;
  domains : int;
  sessions : int;
}

let default_config =
  {
    workers = 1;
    capacity = 64;
    cache_capacity = 256;
    cache_entry_bytes = 1 lsl 20;
    timeout_ms = 0;
    domains = 0;
    sessions = 8;
  }

(* What the cache stores per digest: the report object exactly as first
   rendered, plus its exit code.  A hit replays these bytes; only the
   envelope (id, cached flag) differs between the original miss and the
   hits. *)
type entry = { report : Json.t; exit_code : int }

(* An incremental session, addressed by the digest of the spec it
   currently answers for.  The record is mutable and the LRU has no
   remove, so after an update moves the session to the edit's digest the
   old binding still aliases it — [current] detects and ignores such
   stale bindings. *)
type session = {
  mutable incr : Incr.t;
  mutable validated : Dfr_spec.Validate.t;
  mutable current : string;
}

type outcome = Checked of entry | Slept of int

type pending = {
  digest : string option; (* Some for checks, None for sleeps *)
  promise : (outcome, string) result Pool.promise;
  deadline : float option;
  cached : bool; (* answered by an earlier in-flight request's work *)
}

type slot_state = Ready of Json.t | Waiting of pending
type slot = { id : Json.t option; mutable state : slot_state }

type t = {
  config : config;
  pool : Pool.t;
  cache : entry Cache.t;
  sessions : session Cache.t;
  inflight : (string, (outcome, string) result Pool.promise) Hashtbl.t;
      (* digest -> promise of the first, still-running request for it *)
  named_digests : (string, string) Hashtbl.t;
      (* "algo@topology" -> digest; registry contents are fixed for the
         process lifetime, so this memo never invalidates *)
  mutable requests : int;
  mutable stop : bool;
}

let create config =
  if config.domains < 0 then invalid_arg "Engine.create: domains >= 0";
  (* domains = 0 means "size from the machine": the shared pool's cap,
     which set_cap/DFR_DOMAINS already bound to the core count *)
  let config =
    if config.domains = 0 then
      { config with domains = Dfr_util.Domain_pool.cap () }
    else config
  in
  {
    config;
    pool = Pool.create ~workers:config.workers ~capacity:config.capacity;
    cache =
      Cache.create ~max_entry_bytes:config.cache_entry_bytes
        ~capacity:config.cache_capacity ();
    sessions = Cache.create ~capacity:config.sessions ();
    inflight = Hashtbl.create 64;
    named_digests = Hashtbl.create 64;
    requests = 0;
    stop = false;
  }

let shutdown_requested t = t.stop
let requests t = t.requests
let domains t = t.config.domains
let shutdown t = Pool.shutdown t.pool

let stats_json t =
  Json.Obj
    [
      ("requests", Json.Int t.requests);
      ("cache", Cache.stats_json t.cache);
      ("sessions", Cache.stats_json t.sessions);
      ( "pool",
        Json.Obj
          [
            ("workers", Json.Int (Pool.workers t.pool));
            ("capacity", Json.Int (Pool.capacity t.pool));
            ("outstanding", Json.Int (Pool.outstanding t.pool));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* dispatch                                                            *)

let ready j = Ready j
let gauge_depth t = Obs.gauge "serve.queue.depth" (float_of_int (Pool.outstanding t.pool))

(* Deadlines are monotonic-clock instants: an NTP step of the wall clock
   must neither spuriously expire an in-flight request nor extend it. *)
let deadline_of t =
  if t.config.timeout_ms <= 0 then None
  else Some (Monotime.now () +. (float_of_int t.config.timeout_ms /. 1000.))

(* Digest of an elaborated problem, with a safety net: the canonical
   reprint refuses networks whose channels are not identity-unique (none
   ship in the registry, but a custom entry could).  Falling back to a
   digest of the tagged source keeps the cache correct — it only costs
   cross-surface sharing for that request. *)
let digest_fallback tag = Digest.to_hex (Digest.string ("fallback:" ^ tag))

let digest_of_spec (spec : Dfr_spec.Spec.t) ~source =
  match Dfr_spec.Printer.digest spec.Dfr_spec.Spec.net spec.Dfr_spec.Spec.algo with
  | Ok d -> d
  | Error _ -> digest_fallback ("spec:" ^ source)

let digest_of_named t ~key net algo =
  match Hashtbl.find_opt t.named_digests key with
  | Some d -> d
  | None ->
    let d =
      match Dfr_spec.Printer.digest net algo with
      | Ok d -> d
      | Error _ -> digest_fallback ("registry:" ^ key)
    in
    Hashtbl.add t.named_digests key d;
    d

let submit_check t ~id ~digest net algo =
  match Cache.find t.cache digest with
  | Some entry ->
    Obs.count "serve.cache.hits" 1;
    ready
      (Protocol.check_response ~id ~cached:true ~digest ~exit_code:entry.exit_code
         ~report:entry.report)
  | None -> (
    Obs.count "serve.cache.misses" 1;
    match Hashtbl.find_opt t.inflight digest with
    | Some promise ->
      (* coalesce: same problem already being checked; share its result *)
      Waiting { digest = Some digest; promise; deadline = deadline_of t; cached = true }
    | None -> (
      let domains = t.config.domains in
      let job () =
        Obs.span "serve.check" @@ fun () ->
        match Checker.check_result ~domains net algo with
        | Ok report ->
          Ok
            (Checked
               {
                 report = Report_json.of_outcome net algo report;
                 exit_code = Report_json.exit_code report.Checker.verdict;
               })
        | Error msg -> Error msg
      in
      match Pool.try_submit t.pool job with
      | None ->
        Obs.count "serve.queue_full" 1;
        ready
          (Protocol.error_response ~id ~kind:"queue_full"
             (Printf.sprintf "server at capacity (%d outstanding checks)"
                (Pool.capacity t.pool)))
      | Some promise ->
        Hashtbl.replace t.inflight digest promise;
        gauge_depth t;
        Waiting
          { digest = Some digest; promise; deadline = deadline_of t; cached = false }))

(* Incremental re-checks run synchronously on the orchestrator: the whole
   point of the delta path is sub-millisecond latency, and a mutable
   session must not be shared with a worker anyway.  A session miss (or
   an incompatible edit) falls back to a cold [Incr.create] inline —
   costly, but it seeds the session later deltas reuse. *)
let check_delta t ~id ~base ~spec =
  Obs.span "serve.check_delta" @@ fun () ->
  match Dfr_spec.Spec.compile_string spec with
  | Error e ->
    Obs.count "serve.errors" 1;
    Protocol.error_response ~id ~kind:"spec" (Dfr_spec.Spec.error_to_string e)
  | Ok compiled -> (
    let digest = digest_of_spec compiled ~source:spec in
    let net = compiled.Dfr_spec.Spec.net in
    let algo = compiled.Dfr_spec.Spec.algo in
    let validated = compiled.Dfr_spec.Spec.elaborated.Dfr_spec.Elaborate.spec in
    let answer ~mode (res : Incr.result) =
      (* the delta verdict is the cold verdict, so plain checks of the
         edited spec may hit the cache on these bytes *)
      if not (Cache.mem t.cache digest) then begin
        let entry = { report = res.Incr.report; exit_code = res.Incr.exit_code } in
        let bytes = String.length (Json.to_string entry.report) in
        Cache.add ~bytes t.cache digest entry
      end;
      Obs.count ("serve.delta." ^ mode) 1;
      Protocol.check_delta_response ~id ~digest ~exit_code:res.Incr.exit_code
        ~report:res.Incr.report
        ~delta:
          (Json.Obj
             [
               ("base", Json.String base);
               ("mode", Json.String mode);
               ("dirty_dests", Json.Int res.Incr.dirty_dests);
               ("reused_dests", Json.Int res.Incr.reused_dests);
             ])
    in
    let cold () =
      match Incr.create ~domains:t.config.domains net algo with
      | exception Invalid_argument msg ->
        Obs.count "serve.errors" 1;
        Protocol.error_response ~id ~kind:"check" msg
      | incr, res ->
        Cache.add t.sessions digest { incr; validated; current = digest };
        answer ~mode:"cold" res
    in
    match Cache.find t.sessions base with
    | Some sess when sess.current = base -> (
      match Dfr_spec.Diff.diff sess.validated validated with
      | Dfr_spec.Diff.Incompatible _ -> cold ()
      | Dfr_spec.Diff.Frontier f -> (
        match Incr.update sess.incr algo ~dirty:f.Dfr_spec.Diff.dirty with
        | exception Invalid_argument _ ->
          (* e.g. the edit introduces a reduced-waits hint the session
             was built without; the session is untouched but easier to
             retire than to prove so *)
          sess.current <- "";
          cold ()
        | res ->
          sess.validated <- validated;
          sess.current <- digest;
          Cache.add t.sessions digest sess;
          answer
            ~mode:(match res.Incr.path with Incr.Fast -> "fast" | Incr.Replay -> "replay")
            res))
    | _ -> cold ())

(* Fault campaigns run synchronously on the orchestrator, like the delta
   path: the campaign drives its own incremental session, which must not
   be shared with a worker.  The response embeds the campaign envelope
   verbatim — byte-identical at any worker/domain configuration. *)
let scenario t ~id ~spec ~algo ~topology ~plan ~sweep =
  Obs.span "serve.scenario" @@ fun () ->
  let instance =
    match (spec, algo) with
    | Some spec, _ -> (
      match Dfr_spec.Spec.compile_string spec with
      | Error e -> Error ("spec", Dfr_spec.Spec.error_to_string e)
      | Ok c -> Ok (c.Dfr_spec.Spec.net, c.Dfr_spec.Spec.algo))
    | None, Some name -> (
      match Registry.find name with
      | None -> Error ("bad_request", Printf.sprintf "unknown algorithm %S" name)
      | Some e -> (
        match
          match topology with
          | None -> Ok None
          | Some s -> Result.map Option.some (Dfr_topology.Topology.of_string s)
        with
        | Error msg -> Error ("bad_request", msg)
        | Ok topo -> (
          match Registry.network_for e topo with
          | exception Invalid_argument msg -> Error ("bad_request", msg)
          | net -> Ok (net, e.Registry.algo))))
    | None, None -> Error ("bad_request", "scenario needs a spec or an algo")
  in
  match instance with
  | Error (kind, msg) ->
    Obs.count "serve.errors" 1;
    Protocol.error_response ~id ~kind msg
  | Ok (net, algo) -> (
    match Dfr_scenario.Fault.parse plan with
    | Error msg ->
      Obs.count "serve.errors" 1;
      Protocol.error_response ~id ~kind:"bad_request" ("plan: " ^ msg)
    | Ok plan -> (
      let mode = if sweep then `Sweep else `Sequence in
      match
        Dfr_scenario.Scenario.campaign ~domains:t.config.domains ~mode net algo
          plan
      with
      | exception Invalid_argument msg ->
        Obs.count "serve.errors" 1;
        Protocol.error_response ~id ~kind:"check" msg
      | Error msg ->
        Obs.count "serve.errors" 1;
        Protocol.error_response ~id ~kind:"bad_request" msg
      | Ok c ->
        Obs.count "serve.scenarios" 1;
        Protocol.ok_response ~id ~op:"scenario"
          [
            ("exit", Json.Int c.Dfr_scenario.Scenario.exit_code);
            ("campaign", Dfr_scenario.Scenario.campaign_to_json c);
          ]))

let dispatch t ~id (req : Protocol.request) =
  match req with
  | Protocol.Ping -> ready (Protocol.ok_response ~id ~op:"ping" [])
  | Protocol.Catalogue ->
    ready
      (Protocol.ok_response ~id ~op:"catalogue"
         [ ("algorithms", Protocol.catalogue_json ()) ])
  | Protocol.Stats ->
    ready (Protocol.ok_response ~id ~op:"stats" [ ("stats", stats_json t) ])
  | Protocol.Shutdown ->
    t.stop <- true;
    ready (Protocol.ok_response ~id ~op:"shutdown" [])
  | Protocol.Sleep { ms } -> (
    let job () =
      Obs.span "serve.sleep" @@ fun () ->
      Unix.sleepf (float_of_int ms /. 1000.);
      Ok (Slept ms)
    in
    match Pool.try_submit t.pool job with
    | None ->
      Obs.count "serve.queue_full" 1;
      ready
        (Protocol.error_response ~id ~kind:"queue_full"
           (Printf.sprintf "server at capacity (%d outstanding checks)"
              (Pool.capacity t.pool)))
    | Some promise ->
      gauge_depth t;
      Waiting { digest = None; promise; deadline = deadline_of t; cached = false })
  | Protocol.Check_named { algo; topology } -> (
    match Registry.find algo with
    | None ->
      ready
        (Protocol.error_response ~id ~kind:"bad_request"
           (Printf.sprintf "unknown algorithm %S; try op \"catalogue\"" algo))
    | Some e -> (
      let topo_result =
        match topology with
        | None -> Ok None
        | Some s -> (
          match Dfr_topology.Topology.of_string s with
          | Ok topo -> Ok (Some topo)
          | Error msg -> Error msg)
      in
      match topo_result with
      | Error msg -> ready (Protocol.error_response ~id ~kind:"bad_request" msg)
      | Ok topo -> (
        match Registry.network_for e topo with
        | exception Invalid_argument msg ->
          ready (Protocol.error_response ~id ~kind:"bad_request" msg)
        | net ->
          let key = algo ^ "@" ^ Option.value topology ~default:"" in
          let digest = digest_of_named t ~key net e.Registry.algo in
          submit_check t ~id ~digest net e.Registry.algo)))
  | Protocol.Check_delta { base; spec } -> ready (check_delta t ~id ~base ~spec)
  | Protocol.Scenario { spec; algo; topology; plan; sweep } ->
    ready (scenario t ~id ~spec ~algo ~topology ~plan ~sweep)
  | Protocol.Check_spec { spec } -> (
    match Dfr_spec.Spec.compile_string spec with
    | Error e ->
      ready
        (Protocol.error_response ~id ~kind:"spec" (Dfr_spec.Spec.error_to_string e))
    | Ok compiled ->
      let digest = digest_of_spec compiled ~source:spec in
      submit_check t ~id ~digest
        compiled.Dfr_spec.Spec.net compiled.Dfr_spec.Spec.algo)

let handle_line t line =
  Obs.span "serve.request" @@ fun () ->
  t.requests <- t.requests + 1;
  Obs.count "serve.requests" 1;
  if t.stop then
    {
      id = None;
      state =
        ready
          (Protocol.error_response ~id:None ~kind:"shutting_down"
             "server is shutting down");
    }
  else
    match Protocol.parse line with
    | Error (id, msg) ->
      Obs.count "serve.errors" 1;
      { id; state = ready (Protocol.error_response ~id ~kind:"parse" msg) }
    | Ok { Protocol.id; req } -> { id; state = dispatch t ~id req }

(* ------------------------------------------------------------------ *)
(* settlement                                                          *)

let settle t ~id (p : pending) result =
  (match p.digest with
  | Some d -> Hashtbl.remove t.inflight d
  | None -> ());
  gauge_depth t;
  match result with
  | Ok (Ok (Checked entry)) ->
    let digest = Option.get p.digest in
    if not (Cache.mem t.cache digest) then begin
      (* the entry's weight is what a hit replays: the rendered report *)
      let bytes = String.length (Json.to_string entry.report) in
      Cache.add ~bytes t.cache digest entry
    end;
    Protocol.check_response ~id ~cached:p.cached ~digest ~exit_code:entry.exit_code
      ~report:entry.report
  | Ok (Ok (Slept ms)) ->
    Protocol.ok_response ~id ~op:"sleep" [ ("ms", Json.Int ms) ]
  | Ok (Error msg) ->
    Obs.count "serve.errors" 1;
    Protocol.error_response ~id ~kind:"check" msg
  | Error exn ->
    Obs.count "serve.errors" 1;
    Protocol.error_response ~id ~kind:"internal" (Printexc.to_string exn)

let timed_out t ~id (p : pending) =
  (* the worker cannot be interrupted; its eventual result is discarded
     and, the in-flight entry being gone, a retry recomputes *)
  (match p.digest with
  | Some d -> Hashtbl.remove t.inflight d
  | None -> ());
  Obs.count "serve.timeouts" 1;
  Protocol.error_response ~id ~kind:"timeout"
    (Printf.sprintf "request exceeded the %d ms deadline" t.config.timeout_ms)

let poll t slot =
  match slot.state with
  | Ready j -> Some j
  | Waiting p -> (
    match Pool.poll p.promise with
    | Some result ->
      let j = settle t ~id:slot.id p result in
      slot.state <- Ready j;
      Some j
    | None -> (
      match p.deadline with
      | Some d when Monotime.now () > d ->
        let j = timed_out t ~id:slot.id p in
        slot.state <- Ready j;
        Some j
      | _ -> None))

let await t slot =
  match slot.state with
  | Ready j -> j
  | Waiting p -> (
    match p.deadline with
    | None ->
      let j = settle t ~id:slot.id p (Pool.await p.promise) in
      slot.state <- Ready j;
      j
    | Some _ ->
      let rec spin () =
        match poll t slot with
        | Some j -> j
        | None ->
          Unix.sleepf 0.001;
          spin ()
      in
      spin ())
