(* Bounded work queue + fixed domain workers.

   One mutex/condition pair guards the queue and the outstanding count;
   each promise carries its own pair so waiters never contend with the
   queue.  Order of operations at completion matters: the capacity slot
   is released *before* the promise is fulfilled, so any thread that has
   observed a completion also observes the freed slot — the determinism
   contract of the .mli. *)

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable result : ('a, exn) result option;
}

type core = {
  m : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  cap : int;
  nworkers : int;
  mutable outstanding : int;
  mutable stopping : bool;
}

type t = { core : core; domains : unit Domain.t array; mutable joined : bool }

let worker_loop c =
  let rec loop () =
    Mutex.lock c.m;
    while Queue.is_empty c.jobs && not c.stopping do
      Condition.wait c.nonempty c.m
    done;
    if Queue.is_empty c.jobs then Mutex.unlock c.m (* stopping and drained *)
    else begin
      let job = Queue.pop c.jobs in
      Mutex.unlock c.m;
      job ();
      loop ()
    end
  in
  loop ()

let create ~workers ~capacity =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  if capacity < 1 then invalid_arg "Pool.create: need capacity >= 1";
  let core =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      cap = capacity;
      nworkers = workers;
      outstanding = 0;
      stopping = false;
    }
  in
  let domains = Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop core)) in
  { core; domains; joined = false }

let try_submit t f =
  let c = t.core in
  Mutex.lock c.m;
  if c.stopping || c.outstanding >= c.cap then begin
    Mutex.unlock c.m;
    None
  end
  else begin
    c.outstanding <- c.outstanding + 1;
    let p = { pm = Mutex.create (); pc = Condition.create (); result = None } in
    let job () =
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock c.m;
      c.outstanding <- c.outstanding - 1;
      Mutex.unlock c.m;
      Mutex.lock p.pm;
      p.result <- Some r;
      Condition.broadcast p.pc;
      Mutex.unlock p.pm
    in
    Queue.add job c.jobs;
    Condition.signal c.nonempty;
    Mutex.unlock c.m;
    Some p
  end

let poll p =
  Mutex.lock p.pm;
  let r = p.result in
  Mutex.unlock p.pm;
  r

let await p =
  Mutex.lock p.pm;
  while Option.is_none p.result do
    Condition.wait p.pc p.pm
  done;
  let r = Option.get p.result in
  Mutex.unlock p.pm;
  r

let outstanding t =
  Mutex.lock t.core.m;
  let n = t.core.outstanding in
  Mutex.unlock t.core.m;
  n

let capacity t = t.core.cap
let workers t = t.core.nworkers

let shutdown t =
  let c = t.core in
  Mutex.lock c.m;
  c.stopping <- true;
  Condition.broadcast c.nonempty;
  Mutex.unlock c.m;
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.domains
  end
