(* LRU map: hash table into an intrusive doubly-linked recency list,
   most recent at the front.  Everything is O(1); the node type is the
   classic option-linked record rather than a sentinel ring because the
   empty case stays readable that way. *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option; (* towards the front (more recent) *)
  mutable next : 'a node option; (* towards the back (less recent) *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t key = Hashtbl.mem t.table key

let evict_back t =
  match t.back with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1

let add t key value =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.table key with
    | Some old -> unlink t old; Hashtbl.remove t.table key
    | None -> ());
    if Hashtbl.length t.table >= t.cap then evict_back t;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n
  end

let length t = Hashtbl.length t.table
let capacity t = t.cap
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let stats_json t =
  let module J = Dfr_util.Json in
  let lookups = t.hits + t.misses in
  J.Obj
    [
      ("capacity", J.Int t.cap);
      ("size", J.Int (Hashtbl.length t.table));
      ("hits", J.Int t.hits);
      ("misses", J.Int t.misses);
      ("evictions", J.Int t.evictions);
      ( "hit_rate",
        if lookups = 0 then J.Null
        else J.Float (float_of_int t.hits /. float_of_int lookups) );
    ]
