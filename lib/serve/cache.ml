(* LRU map: hash table into an intrusive doubly-linked recency list,
   most recent at the front.  Everything is O(1); the node type is the
   classic option-linked record rather than a sentinel ring because the
   empty case stays readable that way.

   Entries carry a byte weight (the size of the payload they pin, e.g. a
   rendered report).  The capacity is still counted in entries, but a
   per-entry byte cap keeps a single huge payload — a deadlock witness
   over a 10^5-buffer instance renders to megabytes — from squatting in
   the table until 255 further problems push it out. *)

type 'a node = {
  key : string;
  value : 'a;
  bytes : int;
  mutable prev : 'a node option; (* towards the front (more recent) *)
  mutable next : 'a node option; (* towards the back (less recent) *)
}

type 'a t = {
  cap : int;
  max_entry_bytes : int; (* 0 = unlimited *)
  table : (string, 'a node) Hashtbl.t;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable oversize : int;
}

let create ?(max_entry_bytes = 0) ~capacity () =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  if max_entry_bytes < 0 then invalid_arg "Cache.create: negative max_entry_bytes";
  {
    cap = capacity;
    max_entry_bytes;
    table = Hashtbl.create (max 16 capacity);
    front = None;
    back = None;
    total_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    oversize = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

(* capacity 0 disables storage: every lookup would be a structural miss,
   and counting those would report a 0% hit rate for a cache that was
   never asked to store anything — so a disabled cache counts nothing *)
let find t key =
  if t.cap = 0 then None
  else
    match Hashtbl.find_opt t.table key with
    | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
    | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.table key

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.total_bytes <- t.total_bytes - n.bytes

let evict_back t =
  match t.back with
  | None -> ()
  | Some n ->
    drop t n;
    t.evictions <- t.evictions + 1

let add ?(bytes = 0) t key value =
  if t.cap > 0 then
    if t.max_entry_bytes > 0 && bytes > t.max_entry_bytes then
      t.oversize <- t.oversize + 1
    else begin
      (match Hashtbl.find_opt t.table key with
      | Some old -> drop t old
      | None -> ());
      if Hashtbl.length t.table >= t.cap then evict_back t;
      let n = { key; value; bytes; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      t.total_bytes <- t.total_bytes + bytes;
      push_front t n
    end

let length t = Hashtbl.length t.table
let capacity t = t.cap
let max_entry_bytes t = t.max_entry_bytes
let total_bytes t = t.total_bytes
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let oversize_rejects t = t.oversize

let stats_json t =
  let module J = Dfr_util.Json in
  let lookups = t.hits + t.misses in
  J.Obj
    [
      ("capacity", J.Int t.cap);
      ("size", J.Int (Hashtbl.length t.table));
      ("bytes", J.Int t.total_bytes);
      ("max_entry_bytes", J.Int t.max_entry_bytes);
      ("hits", J.Int t.hits);
      ("misses", J.Int t.misses);
      ("evictions", J.Int t.evictions);
      ("oversize_rejects", J.Int t.oversize);
      ( "hit_rate",
        if lookups = 0 then J.Null
        else J.Float (float_of_int t.hits /. float_of_int lookups) );
    ]
