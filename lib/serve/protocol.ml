open Dfr_util
open Dfr_topology
open Dfr_routing

type request =
  | Check_spec of { spec : string }
  | Check_named of { algo : string; topology : string option }
  | Check_delta of { base : string; spec : string }
  | Scenario of {
      spec : string option;
      algo : string option;
      topology : string option;
      plan : string;
      sweep : bool;
    }
  | Catalogue
  | Stats
  | Ping
  | Sleep of { ms : int }
  | Shutdown

type parsed = { id : Json.t option; req : request }

let max_sleep_ms = 60_000

let parse line =
  match Json.of_string line with
  | Error msg -> Error (None, "invalid JSON: " ^ msg)
  | Ok doc -> (
    let id = Json.member "id" doc in
    let err msg = Error (id, msg) in
    match doc with
    | Json.Obj _ -> (
      match Option.bind (Json.member "op" doc) Json.to_str with
      | None -> err "missing or non-string \"op\""
      | Some "check" -> (
        match Option.bind (Json.member "spec" doc) Json.to_str with
        | Some spec -> Ok { id; req = Check_spec { spec } }
        | None -> (
          match Option.bind (Json.member "algo" doc) Json.to_str with
          | Some algo ->
            let topology = Option.bind (Json.member "topology" doc) Json.to_str in
            Ok { id; req = Check_named { algo; topology } }
          | None -> err "op \"check\" needs a \"spec\" or an \"algo\" field"))
      | Some "check_delta" -> (
        match
          ( Option.bind (Json.member "base" doc) Json.to_str,
            Option.bind (Json.member "spec" doc) Json.to_str )
        with
        | Some base, Some spec -> Ok { id; req = Check_delta { base; spec } }
        | None, _ -> err "op \"check_delta\" needs a string \"base\" digest"
        | _, None -> err "op \"check_delta\" needs a \"spec\" field")
      | Some "scenario" -> (
        match Option.bind (Json.member "plan" doc) Json.to_str with
        | None -> err "op \"scenario\" needs a \"plan\" field (plan-file text)"
        | Some plan -> (
          let sweep =
            match Option.bind (Json.member "mode" doc) Json.to_str with
            | Some "sequence" -> Ok false
            | Some "sweep" | None -> Ok true
            | Some m ->
              Error (Printf.sprintf "unknown scenario mode %S (sweep|sequence)" m)
          in
          match sweep with
          | Error msg -> err msg
          | Ok sweep -> (
            let spec = Option.bind (Json.member "spec" doc) Json.to_str in
            let algo = Option.bind (Json.member "algo" doc) Json.to_str in
            let topology = Option.bind (Json.member "topology" doc) Json.to_str in
            match (spec, algo) with
            | None, None ->
              err "op \"scenario\" needs a \"spec\" or an \"algo\" field"
            | _ -> Ok { id; req = Scenario { spec; algo; topology; plan; sweep } })))
      | Some "catalogue" -> Ok { id; req = Catalogue }
      | Some "stats" -> Ok { id; req = Stats }
      | Some "ping" -> Ok { id; req = Ping }
      | Some "sleep" -> (
        match Option.bind (Json.member "ms" doc) Json.to_int with
        | Some ms when ms >= 0 && ms <= max_sleep_ms -> Ok { id; req = Sleep { ms } }
        | _ ->
          err (Printf.sprintf "op \"sleep\" needs \"ms\" in 0..%d" max_sleep_ms))
      | Some "shutdown" -> Ok { id; req = Shutdown }
      | Some op -> err (Printf.sprintf "unknown op %S" op))
    | _ -> err "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* responses                                                           *)

let with_id ~id fields =
  match id with Some v -> ("id", v) :: fields | None -> fields

let ok_response ~id ~op fields =
  Json.Obj (with_id ~id (("ok", Json.Bool true) :: ("op", Json.String op) :: fields))

let error_response ~id ~kind msg =
  Json.Obj
    (with_id ~id
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [ ("kind", Json.String kind); ("message", Json.String msg) ] );
       ])

let check_response ~id ~cached ~digest ~exit_code ~report =
  ok_response ~id ~op:"check"
    [
      ("cached", Json.Bool cached);
      ("digest", Json.String digest);
      ("exit", Json.Int exit_code);
      ("report", report);
    ]

let check_delta_response ~id ~digest ~exit_code ~report ~delta =
  ok_response ~id ~op:"check_delta"
    [
      ("digest", Json.String digest);
      ("exit", Json.Int exit_code);
      ("report", report);
      ("delta", delta);
    ]

let catalogue_json () =
  Json.List
    (List.map
       (fun (e : Registry.entry) ->
         Json.Obj
           [
             ("name", Json.String e.Registry.name);
             ( "expected_deadlock_free",
               match e.Registry.expected_deadlock_free with
               | Some b -> Json.Bool b
               | None -> Json.Null );
             ("description", Json.String e.Registry.description);
             ( "default_topology",
               match Registry.default_topology e with
               | Some t -> Json.String (Topology.name t)
               | None -> Json.Null );
           ])
       Registry.all)
