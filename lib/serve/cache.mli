(** Content-addressed verdict cache: a fixed-capacity LRU map from spec
    digest to cached payload, with hit/miss/eviction counters.

    The cache is deliberately {e not} synchronized: in the serving design
    only the orchestrator thread (the one that parses requests and orders
    responses) ever touches it, which is what makes cache behaviour — and
    therefore the [cached] flag of every response — a pure function of the
    request order, independent of worker timing.  See DESIGN.md "Serving
    architecture". *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is the maximum number of entries; [0] disables storage
    (every {!find} is a miss, {!add} is a no-op).  Raises
    [Invalid_argument] when negative. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency and increments the hit
    counter, a miss increments the miss counter. *)

val mem : 'a t -> string -> bool
(** Counter-neutral membership test (does not touch recency). *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) a binding, evicting the least recently used entry
    when the cache is full. *)

val length : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val stats_json : 'a t -> Dfr_util.Json.t
(** [{"capacity", "size", "hits", "misses", "evictions", "hit_rate"}];
    [hit_rate] is [null] before the first lookup. *)
