(** Content-addressed verdict cache: a fixed-capacity LRU map from spec
    digest to cached payload, with hit/miss/eviction counters and a
    per-entry byte cap.

    The cache is deliberately {e not} synchronized: in the serving design
    only the orchestrator thread (the one that parses requests and orders
    responses) ever touches it, which is what makes cache behaviour — and
    therefore the [cached] flag of every response — a pure function of the
    request order, independent of worker timing.  See DESIGN.md "Serving
    architecture". *)

type 'a t

val create : ?max_entry_bytes:int -> capacity:int -> unit -> 'a t
(** [capacity] is the maximum number of entries; [0] disables storage:
    {!add} is a no-op, every {!find} returns [None], and — because a
    disabled cache was never asked to store anything — neither counter
    moves, so {!stats_json}'s [hit_rate] stays [null] instead of
    reporting a meaningless 0%.  [max_entry_bytes]
    (default [0] = unlimited) rejects entries whose declared byte weight
    exceeds it — a multi-megabyte deadlock witness passes through
    uncached instead of pinning its rendering until [capacity] further
    entries evict it.  Raises [Invalid_argument] when either is
    negative. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency and increments the hit
    counter, a miss increments the miss counter.  On a disabled cache
    (capacity 0) always [None], with neither counter incremented. *)

val mem : 'a t -> string -> bool
(** Counter-neutral membership test (does not touch recency). *)

val add : ?bytes:int -> 'a t -> string -> 'a -> unit
(** Insert (or refresh) a binding, evicting the least recently used entry
    when the cache is full.  [bytes] (default 0) is the entry's weight:
    entries above [max_entry_bytes] are dropped (counted by
    {!oversize_rejects}), and stored weights aggregate into
    {!total_bytes}. *)

val length : 'a t -> int
val capacity : 'a t -> int

val max_entry_bytes : 'a t -> int
(** The per-entry cap; [0] when unlimited. *)

val total_bytes : 'a t -> int
(** Sum of the weights of the currently stored entries. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val oversize_rejects : 'a t -> int
(** How many {!add}s were refused for exceeding [max_entry_bytes]. *)

val stats_json : 'a t -> Dfr_util.Json.t
(** [{"capacity", "size", "bytes", "max_entry_bytes", "hits", "misses",
    "evictions", "oversize_rejects", "hit_rate"}]; [hit_rate] is [null]
    before the first lookup. *)
