(** Transport loop for the NDJSON checking service: stdio for pipelines,
    a loopback TCP socket for long-lived sessions.

    Responses are written strictly in request order (the ["id"] field is
    client bookkeeping, never a reordering license): draining is what
    makes the output byte stream deterministic, so a cache hit queued
    behind a slow miss waits for it.  Reading and draining interleave —
    the loop multiplexes between new input and completed work, so a
    client that waits for each response before sending the next request
    never deadlocks, while a client that streams requests gets pipelined
    execution across the worker pool.

    Robustness: a malformed line is answered with an error object and the
    session continues; a line longer than {!max_line_bytes} terminates
    the session (there is no way to resync inside an unbounded token); a
    dropped TCP connection is logged and the next one accepted.  EOF (or
    an accepted [shutdown] request) stops intake, drains every in-flight
    response deterministically, then returns. *)

val max_line_bytes : int
(** 16 MiB: larger requests are refused to bound memory. *)

val run_stdio : Engine.t -> int
(** Serve one session on stdin/stdout; returns the process exit code
    (0 — a session that merely contained failing requests is still a
    successful serve). *)

val run_tcp : Engine.t -> port:int -> int
(** Bind 127.0.0.1:[port] ([port] 0 picks a free port), announce
    ["listening on 127.0.0.1:PORT"] on stderr, then serve connections
    one at a time until a [shutdown] request arrives.  Returns the exit
    code (2 when the socket cannot be bound). *)
