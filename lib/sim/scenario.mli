(** Bridging the checker's symbolic witnesses and the simulators.

    A deadlock verdict from {!Dfr_core.Checker} comes with a configuration
    (a knot of mutually blocking packets, or a True Cycle's packet set).
    These helpers seat that configuration in the matching simulator and
    report whether the network is dynamically stuck — the executable
    counterpart of the paper's necessity proofs. *)

open Dfr_network
open Dfr_routing
open Dfr_core

val preloads_of_knot : Deadlock_config.t -> Wormhole_sim.preload list
(** One single-buffer packet per knot state; no fillers needed (the knot is
    already saturated). *)

val preloads_of_true_cycle :
  State_space.t -> Cycle_class.packet list -> Wormhole_sim.preload list
(** The True Cycle's packets on their occupied chains, plus frozen filler
    packets holding every other free output of each blocked header — the
    "previous packet occupying this output indefinitely" of Theorem 2's
    proof. *)

val replay :
  ?wormhole_config:Wormhole_sim.config ->
  ?saf_config:Saf_sim.config ->
  ?space:State_space.t ->
  Net.t ->
  Algo.t ->
  Checker.failure ->
  bool option
(** Replays a checker failure in the appropriate simulator.
    [Some true] = deadlock confirmed dynamically; [Some false] = the
    configuration drained; [None] = this failure kind has nothing to
    replay (wait-connectivity and stuck-state failures).

    [space] lets callers holding a {!Checker.report} reuse its state
    space instead of rebuilding it (the True-Cycle filler construction
    needs the per-state output sets). *)
