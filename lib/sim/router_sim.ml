open Dfr_network
open Dfr_routing

type config = { fifo_depth : int; max_cycles : int; seed : int }

let default_config = { fifo_depth = 4; max_cycles = 200_000; seed = 1 }

type outcome =
  | Completed of Stats.t
  | Deadlocked of { cycle : int; in_flight : int; stats : Stats.t }
  | Timeout of Stats.t

type flit = { pkt : int; is_head : bool; is_tail : bool }

(* Per-virtual-channel state machine; [Routing] and [Waiting] hold the
   packet whose header sits at the FIFO head — the split models the
   one-cycle route-computation stage. *)
type vc_state =
  | Idle
  | Routing of int
  | Waiting of int
  | Active of { pkt : int; out : int }

type pkt = {
  id : int;
  dst : int;
  length : int;
  inject_at : int;
  mutable injected : int;
  mutable delivered : int;
  mutable finished : bool;
  mutable finish_cycle : int;
}

type sim = {
  net : Net.t;
  algo : Algo.t;
  cfg : config;
  packets : pkt array;
  fifo : flit Queue.t array; (* per buffer *)
  state : vc_state array;
  owner : int array; (* buffer -> packet (VC allocation to tail departure) *)
  free_slots : int array;
  credit_queue : (int, int) Hashtbl.t; (* credits applied next cycle *)
  source_queue : int list array; (* per node, FIFO of packets to inject *)
  injecting : (int, int) Hashtbl.t; (* packet -> buffer it streams into *)
  rr_out : int array; (* VC-allocation round-robin pointer per buffer *)
  rr_link : (int * int * int, int) Hashtbl.t; (* SA round-robin per link *)
  used_links : (int * int * int, unit) Hashtbl.t; (* per-cycle *)
  delivery_used : bool array; (* per-node consumption port, per-cycle *)
  mutable events : int;
}

let link_key net b =
  match Buf.kind (Net.buffer net b) with
  | Buf.Channel { src; dim; dir; _ } ->
    Some (src, dim, if dir = Dfr_topology.Topology.Plus then 1 else 0)
  | _ -> None

let link_free sim b =
  match link_key sim.net b with
  | None -> true
  | Some key -> not (Hashtbl.mem sim.used_links key)

let use_link sim b =
  match link_key sim.net b with
  | None -> ()
  | Some key -> Hashtbl.replace sim.used_links key ()

let is_transit sim b = Buf.is_transit (Net.buffer sim.net b)

let transit_route sim b ~dest =
  sim.algo.Algo.route sim.net (Net.buffer sim.net b) ~dest
  |> List.filter (fun o -> is_transit sim o)

(* ---------- pipeline stages ------------------------------------------ *)

let apply_credits sim =
  let pending = Hashtbl.fold (fun b n acc -> (b, n) :: acc) sim.credit_queue [] in
  Hashtbl.reset sim.credit_queue;
  List.iter (fun (b, n) -> sim.free_slots.(b) <- sim.free_slots.(b) + n) pending

let schedule_credit sim b =
  Hashtbl.replace sim.credit_queue b
    (1 + Option.value (Hashtbl.find_opt sim.credit_queue b) ~default:0)

(* Consume one flit per node per cycle from delivery-bound VCs. *)
let consumption sim cycle =
  Array.iteri
    (fun b st ->
      match st with
      | Active { pkt; out } when not (is_transit sim out) ->
        let p = sim.packets.(pkt) in
        if (not (Queue.is_empty sim.fifo.(b))) && not sim.delivery_used.(p.dst)
        then begin
          sim.delivery_used.(p.dst) <- true;
          let flit = Queue.pop sim.fifo.(b) in
          schedule_credit sim b;
          p.delivered <- p.delivered + 1;
          sim.events <- sim.events + 1;
          if flit.is_tail then begin
            sim.owner.(b) <- -1;
            sim.state.(b) <- Idle
          end;
          if p.delivered >= p.length then begin
            p.finished <- true;
            p.finish_cycle <- cycle
          end
        end
      | Idle | Routing _ | Waiting _ | Active _ -> ())
    sim.state

(* Switch allocation + traversal: one flit per physical link per cycle,
   round-robin among the competing active VCs. *)
let switch_traversal sim =
  let candidates = Hashtbl.create 32 in
  Array.iteri
    (fun b st ->
      match st with
      | Active { out; _ }
        when is_transit sim out
             && (not (Queue.is_empty sim.fifo.(b)))
             && sim.free_slots.(out) > 0 -> (
        match link_key sim.net out with
        | Some key ->
          let l = Option.value (Hashtbl.find_opt candidates key) ~default:[] in
          Hashtbl.replace candidates key ((b, out) :: l)
        | None -> ())
      | _ -> ())
    sim.state;
  Hashtbl.iter
    (fun key reqs ->
      let reqs = List.rev reqs in
      let n = List.length reqs in
      let ptr = Option.value (Hashtbl.find_opt sim.rr_link key) ~default:0 in
      let b, out = List.nth reqs (ptr mod n) in
      Hashtbl.replace sim.rr_link key (ptr + 1);
      let flit = Queue.pop sim.fifo.(b) in
      Queue.push flit sim.fifo.(out);
      sim.free_slots.(out) <- sim.free_slots.(out) - 1;
      use_link sim out;
      schedule_credit sim b;
      sim.events <- sim.events + 1;
      if flit.is_head then sim.state.(out) <- Routing flit.pkt;
      if flit.is_tail then begin
        sim.owner.(b) <- -1;
        sim.state.(b) <- Idle
      end)
    candidates

(* Source streaming: packets granted a first VC push one flit per cycle. *)
let injection sim =
  let done_ = ref [] in
  Hashtbl.iter
    (fun pkt target ->
      let p = sim.packets.(pkt) in
      if p.injected < p.length && sim.free_slots.(target) > 0 && link_free sim target
      then begin
        let flit =
          { pkt; is_head = p.injected = 0; is_tail = p.injected = p.length - 1 }
        in
        Queue.push flit sim.fifo.(target);
        sim.free_slots.(target) <- sim.free_slots.(target) - 1;
        use_link sim target;
        p.injected <- p.injected + 1;
        sim.events <- sim.events + 1;
        if flit.is_head then sim.state.(target) <- Routing pkt;
        if flit.is_tail then done_ := pkt :: !done_
      end)
    sim.injecting;
  List.iter (Hashtbl.remove sim.injecting) !done_

(* Route computation: one cycle after the header arrives. *)
let route_computation sim =
  Array.iteri
    (fun b st ->
      match st with
      | Routing pkt ->
        sim.state.(b) <- Waiting pkt;
        sim.events <- sim.events + 1
      | Idle | Waiting _ | Active _ -> ())
    sim.state

(* Virtual-channel allocation with per-output round-robin arbitration. *)
let vc_allocation sim cycle =
  let requests = Hashtbl.create 32 in
  let add_request out_b requester =
    let l = Option.value (Hashtbl.find_opt requests out_b) ~default:[] in
    Hashtbl.replace requests out_b (requester :: l)
  in
  Array.iteri
    (fun b st ->
      match st with
      | Waiting pkt ->
        let p = sim.packets.(pkt) in
        if Buf.head_node (Net.buffer sim.net b) = p.dst then begin
          sim.state.(b) <- Active { pkt; out = Buf.id (Net.delivery sim.net p.dst) };
          sim.events <- sim.events + 1
        end
        else
          List.iter
            (fun o -> if sim.owner.(o) = -1 then add_request o (`Vc (b, pkt)))
            (transit_route sim b ~dest:p.dst)
      | Idle | Routing _ | Active _ -> ())
    sim.state;
  Array.iteri
    (fun node queue ->
      match queue with
      | pkt :: _ ->
        let p = sim.packets.(pkt) in
        if cycle >= p.inject_at then begin
          let inj = Buf.id (Net.injection sim.net node) in
          List.iter
            (fun o -> if sim.owner.(o) = -1 then add_request o (`Source (node, pkt)))
            (transit_route sim inj ~dest:p.dst)
        end
      | [] -> ())
    sim.source_queue;
  (* a requester may appear at several outputs; it must win at most one
     per cycle or the extra grants leak buffer ownership forever *)
  let granted = Hashtbl.create 16 in
  let requester_key = function
    | `Vc (b, _) -> `B b
    | `Source (node, _) -> `S node
  in
  Hashtbl.iter
    (fun out_b reqs ->
      let reqs = List.rev reqs in
      let n = List.length reqs in
      let start = sim.rr_out.(out_b) in
      sim.rr_out.(out_b) <- sim.rr_out.(out_b) + 1;
      let rec pick i =
        if i >= n then None
        else
          let cand = List.nth reqs ((start + i) mod n) in
          if Hashtbl.mem granted (requester_key cand) then pick (i + 1)
          else Some cand
      in
      match pick 0 with
      | None -> ()
      | Some grant ->
        Hashtbl.replace granted (requester_key grant) ();
        sim.events <- sim.events + 1;
        (match grant with
        | `Vc (b, pkt) ->
          sim.owner.(out_b) <- pkt;
          sim.state.(b) <- Active { pkt; out = out_b }
        | `Source (node, pkt) ->
          sim.owner.(out_b) <- pkt;
          (match sim.source_queue.(node) with
          | p :: rest when p = pkt -> sim.source_queue.(node) <- rest
          | _ -> ());
          Hashtbl.replace sim.injecting pkt out_b))
    requests

(* ---------- driver ---------------------------------------------------- *)

let collect_stats sim cycle =
  let injected = ref 0 and delivered = ref 0 and flits = ref 0 in
  let latencies = ref [] in
  Array.iter
    (fun p ->
      if p.injected > 0 then incr injected;
      flits := !flits + p.delivered;
      if p.finished then begin
        incr delivered;
        latencies := (p.finish_cycle - p.inject_at + 1) :: !latencies
      end)
    sim.packets;
  {
    Stats.cycles = cycle;
    injected = !injected;
    delivered = !delivered;
    flits_delivered = !flits;
    latencies = !latencies;
  }

let run ?(config = default_config) net algo traffic =
  Dfr_obs.Obs.span "sim.router.run" @@ fun () ->
  let packets =
    Array.of_list
      (List.mapi
         (fun id (t : Traffic.packet) ->
           {
             id;
             dst = t.Traffic.dst;
             length = max 1 t.Traffic.length;
             inject_at = t.Traffic.inject_at;
             injected = 0;
             delivered = 0;
             finished = false;
             finish_cycle = 0;
           })
         traffic)
  in
  let nb = Net.num_buffers net in
  let source_queue = Array.make (Net.num_nodes net) [] in
  List.iteri
    (fun id (t : Traffic.packet) ->
      source_queue.(t.Traffic.src) <- id :: source_queue.(t.Traffic.src))
    traffic;
  Array.iteri (fun n q -> source_queue.(n) <- List.rev q) source_queue;
  let sim =
    {
      net;
      algo;
      cfg = config;
      packets;
      fifo = Array.init nb (fun _ -> Queue.create ());
      state = Array.make nb Idle;
      owner = Array.make nb (-1);
      free_slots = Array.make nb config.fifo_depth;
      credit_queue = Hashtbl.create 64;
      source_queue;
      injecting = Hashtbl.create 16;
      rr_out = Array.make nb 0;
      rr_link = Hashtbl.create 64;
      used_links = Hashtbl.create 64;
      delivery_used = Array.make (Net.num_nodes net) false;
      events = 0;
    }
  in
  let silent = ref 0 in
  let total_events = ref 0 and stalls = ref 0 in
  let result = ref None in
  let cycle = ref 0 in
  while !result = None && !cycle < config.max_cycles do
    sim.events <- 0;
    Hashtbl.reset sim.used_links;
    Array.fill sim.delivery_used 0 (Array.length sim.delivery_used) false;
    apply_credits sim;
    vc_allocation sim !cycle;
    route_computation sim;
    consumption sim !cycle;
    switch_traversal sim;
    injection sim;
    let unfinished = Array.exists (fun p -> not p.finished) sim.packets in
    let pending_future =
      Array.exists
        (fun p -> (not p.finished) && p.injected = 0 && p.inject_at > !cycle)
        sim.packets
    in
    let in_flight =
      Array.fold_left
        (fun acc p ->
          if (not p.finished) && p.injected > 0 then acc + 1 else acc)
        0 sim.packets
    in
    if not unfinished then result := Some (`Done !cycle)
    else if sim.events = 0 && not pending_future then begin
      incr silent;
      if !silent >= 3 then result := Some (`Deadlock (!cycle, in_flight))
    end
    else silent := 0;
    total_events := !total_events + sim.events;
    if sim.events = 0 then incr stalls;
    incr cycle
  done;
  let finish stats =
    Stats.observe stats ~sim:"router" ~events:!total_events ~stalls:!stalls
  in
  match !result with
  | Some (`Done c) -> Completed (finish (collect_stats sim c))
  | Some (`Deadlock (c, in_flight)) ->
    Deadlocked { cycle = c; in_flight; stats = finish (collect_stats sim c) }
  | None -> Timeout (finish (collect_stats sim config.max_cycles))

let is_deadlocked = function
  | Deadlocked _ -> true
  | Completed _ | Timeout _ -> false

let stats = function
  | Completed s | Timeout s -> s
  | Deadlocked { stats; _ } -> stats

let pp_outcome fmt = function
  | Completed s -> Format.fprintf fmt "completed (%a)" Stats.pp s
  | Deadlocked { cycle; in_flight; stats } ->
    Format.fprintf fmt "DEADLOCK at cycle %d with %d packets in flight (%a)" cycle
      in_flight Stats.pp stats
  | Timeout s -> Format.fprintf fmt "timeout (%a)" Stats.pp s
