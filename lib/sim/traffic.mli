(** Workload generation for the simulators.

    A workload is a finite list of packet descriptions with injection
    times.  Open-loop generators draw Bernoulli arrivals per node per cycle
    at a given rate; the classical spatial patterns of the wormhole
    literature are provided.  All generators are deterministic in the
    seed. *)

type mode =
  | Adaptive  (** route with the algorithm's relation and the selector *)
  | Scripted of int list
      (** follow this exact buffer chain, then continue adaptively *)

type packet = {
  src : int;
  dst : int;
  length : int;  (** flits (wormhole) — SAF ignores it *)
  inject_at : int;
  mode : mode;
}

type t = packet list
(** Sorted by [inject_at]. *)

type pattern =
  | Uniform  (** uniform-random destinations *)
  | Transpose  (** coordinate rotation: (x, y, ...) -> (y, ..., x) *)
  | Bit_complement  (** destination = complement of the source node id *)
  | Hotspot of int  (** all traffic converges on one node *)
  | Shuffle  (** perfect shuffle on the node id bits *)

val pattern_dest :
  Dfr_topology.Topology.t -> pattern -> Dfr_util.Prng.t -> int -> int option
(** Destination for a source under a pattern ([None] when it maps to
    itself).  Raises [Invalid_argument] when a [Hotspot] node is outside
    [0, num_nodes) — callers with user-supplied hotspots must validate
    first. *)

val generate :
  Dfr_topology.Topology.t ->
  pattern:pattern ->
  rate:float ->
  length:int ->
  horizon:int ->
  seed:int ->
  t
(** Bernoulli([rate]) arrival per node per cycle over [horizon] cycles. *)

val batch :
  Dfr_topology.Topology.t ->
  pattern:pattern ->
  count:int ->
  length:int ->
  seed:int ->
  t
(** [count] packets per node, all injected at cycle 0 (closed batch —
    the saturation workload used by the deadlock stress tests). *)

val batch_uniform : num_nodes:int -> count:int -> length:int -> seed:int -> t
(** Like {!batch} with [pattern = Uniform], but needing only the node
    count — the entry point for custom (topology-less) networks, e.g. the
    differential fuzzer's generated cases. *)

val scripted : ?inject_at:int -> src:int -> dst:int -> length:int -> int list -> t
(** One packet that follows the given buffer chain exactly before
    continuing adaptively — the scripted-schedule entry point used to
    steer a simulator into a prescribed configuration. *)

(** {2 Bursty and adversarial generators}

    The scenario layer's workloads.  Every generator validates its
    arguments up front and raises [Invalid_argument] on a packet length
    below one flit, an empty destination set, or an out-of-range
    destination — the CLI maps these to usage errors (exit 2) instead of
    letting a simulator spin on an undrainable packet or a generator
    loop hunting for a destination that does not exist. *)

val bursty :
  Dfr_topology.Topology.t ->
  pattern:pattern ->
  burst:int ->
  rate:float ->
  length:int ->
  horizon:int ->
  seed:int ->
  t
(** Leaky-bucket arrivals: each node earns [rate] tokens per cycle into a
    bucket of depth [burst] and drains a full bucket as one back-to-back
    burst of [burst] packets.  Same long-run rate as {!generate}, maximally
    clumped arrivals. *)

val storm :
  Dfr_topology.Topology.t ->
  dests:int list ->
  rate:float ->
  length:int ->
  horizon:int ->
  seed:int ->
  t
(** Multi-hotspot storm: Bernoulli([rate]) arrivals per node per cycle,
    each aimed at a uniform pick from the explicit destination set.
    Raises [Invalid_argument] on an empty or out-of-range set — the
    "every hotspot faulted away" case must fail loudly. *)

val permutation : Dfr_topology.Topology.t -> count:int -> length:int -> seed:int -> t
(** Permutation adversary: a seeded random permutation [pi], [count]
    packets from every node to [pi(node)], all injected at cycle 0 (fixed
    points send nothing). *)

val count : t -> int
