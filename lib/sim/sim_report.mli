(** Machine-readable simulation reports (JSON), the simulator-side
    counterpart of {!Dfr_core.Report_json}.

    The emitted document is always valid JSON even for an idle run that
    delivered nothing: the mean latency field degrades to [null] rather
    than a literal [nan] token (see {!Stats.to_json}). *)

val wormhole : Wormhole_sim.outcome -> nodes:int -> Dfr_util.Json.t
val saf : Saf_sim.outcome -> nodes:int -> Dfr_util.Json.t
val router : Router_sim.outcome -> nodes:int -> Dfr_util.Json.t
