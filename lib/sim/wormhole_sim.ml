open Dfr_network
open Dfr_routing
open Dfr_util

type selection = First_free | Random_free

type config = {
  capacity : int;
  max_cycles : int;
  seed : int;
  selection : selection;
}

let default_config =
  { capacity = 4; max_cycles = 100_000; seed = 1; selection = Random_free }

type outcome =
  | Completed of Stats.t
  | Deadlocked of {
      cycle : int;
      in_flight : int;
      stats : Stats.t;
      wait_for : (int * int) list;
    }
  | Timeout of Stats.t

type pkt = {
  id : int;
  src : int;
  dst : int;
  length : int;
  inject_at : int;
  mutable script : int list;
  mutable route : int list; (* owned buffers, oldest (tail) first *)
  mutable injected : int; (* flits that have left the source *)
  mutable delivered : int;
  mutable finished : bool;
  mutable finish_cycle : int;
  frozen : bool;
}

type sim = {
  net : Net.t;
  algo : Algo.t;
  cfg : config;
  rng : Prng.t;
  owner : int array; (* buffer id -> packet id, -1 when free *)
  flits : int array; (* buffer id -> flits currently stored *)
  packets : pkt array;
  mutable events : int; (* events fired in the current cycle *)
  used_links : (int * int * int, unit) Hashtbl.t; (* per-cycle link usage *)
  delivery_used : bool array; (* per-node per-cycle consumption port *)
}

(* The physical link a flit crosses when it enters this channel buffer:
   virtual channels of one link share it; node buffers (SAF emulation) and
   endpoint buffers are not link-constrained. *)
let link_key net b =
  match Buf.kind (Net.buffer net b) with
  | Buf.Channel { src; dim; dir; _ } ->
    Some (src, dim, if dir = Dfr_topology.Topology.Plus then 1 else 0)
  | _ -> None

let link_free sim b =
  match link_key sim.net b with
  | None -> true
  | Some key -> not (Hashtbl.mem sim.used_links key)

let use_link sim b =
  match link_key sim.net b with
  | None -> ()
  | Some key -> Hashtbl.replace sim.used_links key ()

let rec last = function
  | [] -> invalid_arg "Wormhole_sim.last"
  | [ x ] -> x
  | _ :: rest -> last rest

let free_candidates sim candidates =
  List.filter (fun b -> sim.owner.(b) = -1) candidates

let select sim = function
  | [] -> None
  | [ b ] -> Some b
  | bs -> (
    match sim.cfg.selection with
    | First_free -> Some (List.hd bs)
    | Random_free -> Some (Prng.pick sim.rng bs))

let transit_route sim b ~dest =
  sim.algo.Algo.route sim.net b ~dest
  |> List.filter (fun o -> Buf.is_transit (Net.buffer sim.net o))

(* Acquire [b] for packet [p], moving one flit out of [from_flits] (the
   head buffer, or the source if the packet is just entering). *)
let acquire sim p b ~drain =
  sim.owner.(b) <- p.id;
  drain ();
  sim.flits.(b) <- sim.flits.(b) + 1;
  use_link sim b;
  p.route <- p.route @ [ b ];
  (match p.script with _ :: rest -> p.script <- rest | [] -> ());
  sim.events <- sim.events + 1

(* Header progress: either first injection or route extension. *)
let try_head sim p cycle =
  match p.route with
  | [] ->
    if cycle >= p.inject_at && p.injected = 0 then begin
      let candidates =
        match p.script with
        | b :: _ -> [ b ]
        | [] ->
          transit_route sim (Net.injection sim.net p.src) ~dest:p.dst
      in
      match select sim (free_candidates sim candidates) with
      | Some b when sim.flits.(b) < sim.cfg.capacity && link_free sim b ->
        acquire sim p b ~drain:(fun () -> p.injected <- 1)
      | _ -> ()
    end
  | route ->
    let h = last route in
    if Buf.head_node (Net.buffer sim.net h) <> p.dst && sim.flits.(h) > 0 then begin
      let candidates =
        match p.script with
        | b :: _ -> [ b ]
        | [] -> transit_route sim (Net.buffer sim.net h) ~dest:p.dst
      in
      match select sim (free_candidates sim candidates) with
      | Some b when sim.flits.(b) < sim.cfg.capacity && link_free sim b ->
        acquire sim p b ~drain:(fun () -> sim.flits.(h) <- sim.flits.(h) - 1)
      | _ -> ()
    end

(* Consume one flit at the destination. *)
let try_deliver sim p =
  match p.route with
  | [] -> ()
  | route ->
    let h = last route in
    if
      Buf.head_node (Net.buffer sim.net h) = p.dst
      && sim.flits.(h) > 0
      && not sim.delivery_used.(p.dst)
    then begin
      sim.delivery_used.(p.dst) <- true;
      sim.flits.(h) <- sim.flits.(h) - 1;
      p.delivered <- p.delivered + 1;
      sim.events <- sim.events + 1
    end

(* Body flits flow forward, head side first so a flit moves at most once
   per cycle. *)
let try_body sim p =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  let hops = List.rev (pairs p.route) in
  List.iter
    (fun (cur, next) ->
      if
        sim.flits.(cur) > 0
        && sim.flits.(next) < sim.cfg.capacity
        && link_free sim next
      then begin
        sim.flits.(cur) <- sim.flits.(cur) - 1;
        sim.flits.(next) <- sim.flits.(next) + 1;
        use_link sim next;
        sim.events <- sim.events + 1
      end)
    hops

(* Feed the worm from the source. *)
let try_inject_body sim p cycle =
  match p.route with
  | first :: _ ->
    if
      p.injected > 0 && p.injected < p.length
      && cycle >= p.inject_at
      && sim.flits.(first) < sim.cfg.capacity
      && link_free sim first
    then begin
      sim.flits.(first) <- sim.flits.(first) + 1;
      use_link sim first;
      p.injected <- p.injected + 1;
      sim.events <- sim.events + 1
    end
  | [] -> ()

(* Release drained tail buffers once the source has nothing more to send,
   and the whole route once the packet is consumed. *)
let release sim p cycle =
  if (not p.finished) && p.delivered >= p.length then begin
    List.iter
      (fun b ->
        sim.owner.(b) <- -1;
        assert (sim.flits.(b) = 0))
      p.route;
    p.route <- [];
    p.finished <- true;
    p.finish_cycle <- cycle
  end
  else if p.injected >= p.length then begin
    let rec drop = function
      | b :: (_ :: _ as rest) when sim.flits.(b) = 0 ->
        sim.owner.(b) <- -1;
        drop rest
      | route -> route
    in
    p.route <- drop p.route
  end

let make_sim ?(config = default_config) net algo packets =
  {
    net;
    algo;
    cfg = config;
    rng = Prng.create config.seed;
    owner = Array.make (Net.num_buffers net) (-1);
    flits = Array.make (Net.num_buffers net) 0;
    packets;
    events = 0;
    used_links = Hashtbl.create 64;
    delivery_used = Array.make (Net.num_nodes net) false;
  }

let collect_stats sim cycle =
  let injected = ref 0 and delivered = ref 0 and flits = ref 0 in
  let latencies = ref [] in
  Array.iter
    (fun p ->
      if p.injected > 0 then incr injected;
      flits := !flits + p.delivered;
      if p.finished then begin
        incr delivered;
        latencies := (p.finish_cycle - p.inject_at + 1) :: !latencies
      end)
    sim.packets;
  {
    Stats.cycles = cycle;
    injected = !injected;
    delivered = !delivered;
    flits_delivered = !flits;
    latencies = !latencies;
  }

(* The packet wait-for graph at stall time: which packet each blocked
   packet is waiting on (via the owners of its candidate buffers). *)
let wait_for_edges sim cycle =
  let edges = ref [] in
  Array.iter
    (fun p ->
      if (not p.finished) && not p.frozen then begin
        let candidates =
          match p.route with
          | [] ->
            if cycle >= p.inject_at && p.injected = 0 then
              match p.script with
              | b :: _ -> [ b ]
              | [] -> transit_route sim (Net.injection sim.net p.src) ~dest:p.dst
            else []
          | route ->
            let h = last route in
            if Buf.head_node (Net.buffer sim.net h) <> p.dst then
              match p.script with
              | b :: _ -> [ b ]
              | [] -> transit_route sim (Net.buffer sim.net h) ~dest:p.dst
            else []
        in
        List.iter
          (fun b ->
            let o = sim.owner.(b) in
            if o >= 0 && o <> p.id && not (List.mem (p.id, o) !edges) then
              edges := (p.id, o) :: !edges)
          candidates
      end)
    sim.packets;
  List.rev !edges

let run_loop sim =
  Dfr_obs.Obs.span "sim.wormhole.run" @@ fun () ->
  let n = Array.length sim.packets in
  let silent = ref 0 in
  let total_events = ref 0 and stalls = ref 0 in
  let outcome = ref None in
  let cycle = ref 0 in
  while !outcome = None && !cycle < sim.cfg.max_cycles do
    sim.events <- 0;
    Hashtbl.reset sim.used_links;
    Array.fill sim.delivery_used 0 (Array.length sim.delivery_used) false;
    (* rotate processing order for fairness *)
    let offset = if n = 0 then 0 else !cycle mod n in
    for k = 0 to n - 1 do
      let p = sim.packets.((k + offset) mod n) in
      if (not p.finished) && not p.frozen then begin
        try_deliver sim p;
        try_head sim p !cycle;
        try_body sim p;
        try_inject_body sim p !cycle;
        release sim p !cycle
      end
    done;
    let unfinished =
      Array.exists (fun p -> (not p.finished) && not p.frozen) sim.packets
    in
    let in_flight =
      Array.fold_left
        (fun acc p ->
          if (not p.finished) && (not p.frozen) && p.route <> [] then acc + 1
          else acc)
        0 sim.packets
    in
    let pending_future =
      Array.exists
        (fun p ->
          (not p.finished) && (not p.frozen) && p.route = [] && p.inject_at > !cycle)
        sim.packets
    in
    if not unfinished then outcome := Some (`Done !cycle)
    else if sim.events = 0 && not pending_future then begin
      incr silent;
      if !silent >= 3 then
        outcome := Some (`Deadlock (!cycle, in_flight, wait_for_edges sim !cycle))
    end
    else silent := 0;
    total_events := !total_events + sim.events;
    if sim.events = 0 then incr stalls;
    incr cycle
  done;
  let finish stats =
    Stats.observe stats ~sim:"wormhole" ~events:!total_events ~stalls:!stalls
  in
  match !outcome with
  | Some (`Done c) -> Completed (finish (collect_stats sim c))
  | Some (`Deadlock (c, in_flight, wait_for)) ->
    Deadlocked
      { cycle = c; in_flight; stats = finish (collect_stats sim c); wait_for }
  | None -> Timeout (finish (collect_stats sim sim.cfg.max_cycles))

let packets_of_traffic traffic =
  Array.of_list
    (List.mapi
       (fun id (t : Traffic.packet) ->
         {
           id;
           src = t.Traffic.src;
           dst = t.Traffic.dst;
           length = max 1 t.Traffic.length;
           inject_at = t.Traffic.inject_at;
           script =
             (match t.Traffic.mode with
             | Traffic.Adaptive -> []
             | Traffic.Scripted s -> s);
           route = [];
           injected = 0;
           delivered = 0;
           finished = false;
           finish_cycle = 0;
           frozen = false;
         })
       traffic)

let run ?config net algo traffic =
  let sim = make_sim ?config net algo (packets_of_traffic traffic) in
  run_loop sim

type preload = { chain : int list; dest : int; frozen : bool }

let run_preloaded ?(config = default_config) net algo preloads =
  let packets =
    Array.of_list
      (List.mapi
         (fun id p ->
           (match p.chain with
           | [] -> invalid_arg "Wormhole_sim.run_preloaded: empty chain"
           | _ -> ());
           {
             id;
             src = Buf.source_node (Net.buffer net (List.hd p.chain));
             dst = p.dest;
             length = config.capacity * List.length p.chain;
             inject_at = 0;
             script = [];
             route = p.chain;
             injected = config.capacity * List.length p.chain;
             delivered = 0;
             finished = false;
             finish_cycle = 0;
             frozen = p.frozen;
           })
         preloads)
  in
  let sim = make_sim ~config net algo packets in
  (* seat the packets: every chained buffer filled with the owner's flits *)
  Array.iter
    (fun p ->
      List.iter
        (fun b ->
          if sim.owner.(b) <> -1 then
            invalid_arg "Wormhole_sim.run_preloaded: duplicate buffer";
          sim.owner.(b) <- p.id;
          sim.flits.(b) <- config.capacity)
        p.route)
    packets;
  run_loop sim

let is_deadlocked = function
  | Deadlocked _ -> true
  | Completed _ | Timeout _ -> false

let stats = function
  | Completed s | Timeout s -> s
  | Deadlocked { stats; _ } -> stats

let pp_outcome fmt = function
  | Completed s -> Format.fprintf fmt "completed (%a)" Stats.pp s
  | Deadlocked { cycle; in_flight; stats; wait_for } ->
    Format.fprintf fmt
      "DEADLOCK at cycle %d with %d packets in flight, %d wait-for edges (%a)"
      cycle in_flight (List.length wait_for) Stats.pp stats
  | Timeout s -> Format.fprintf fmt "timeout (%a)" Stats.pp s
