type t = {
  cycles : int;
  injected : int;
  delivered : int;
  flits_delivered : int;
  latencies : int list;
}

let empty =
  { cycles = 0; injected = 0; delivered = 0; flits_delivered = 0; latencies = [] }

let mean_latency t =
  match t.latencies with
  | [] -> None
  | ls ->
    Some
      (float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (List.length ls))

let max_latency t =
  match t.latencies with
  | [] -> None
  | l :: ls -> Some (List.fold_left max l ls)

(* Nearest-rank: the p-th percentile of n sorted samples is the one at
   rank ceil(p*n), 1-based.  The previous truncating [int_of_float
   (p *. n)] was off by one rank: p50 of [1;2] returned 2, and p95 over
   exactly 20 samples returned the max. *)
let percentile_latency t p =
  match t.latencies with
  | [] -> 0
  | ls ->
    let sorted = Array.of_list ls in
    Array.sort Int.compare sorted;
    let n = Array.length sorted in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let throughput t ~nodes =
  if t.cycles = 0 then 0.0
  else float_of_int t.flits_delivered /. float_of_int t.cycles /. float_of_int nodes

let pp fmt t =
  Format.fprintf fmt "cycles=%d injected=%d delivered=%d flits=%d mean-latency=%s"
    t.cycles t.injected t.delivered t.flits_delivered
    (match mean_latency t with
    | None -> "n/a"
    | Some m -> Printf.sprintf "%.1f" m)

let observe t ~sim ~events ~stalls =
  let module Obs = Dfr_obs.Obs in
  let name k = "sim." ^ sim ^ "." ^ k in
  Obs.count (name "cycles") t.cycles;
  Obs.count (name "events") events;
  Obs.count (name "stalls") stalls;
  if t.cycles > 0 then
    Obs.gauge (name "flits-per-kcycle")
      (1000.0 *. float_of_int t.flits_delivered /. float_of_int t.cycles);
  t

let to_json t ~nodes =
  let module J = Dfr_util.Json in
  J.Obj
    [
      ("cycles", J.Int t.cycles);
      ("injected", J.Int t.injected);
      ("delivered", J.Int t.delivered);
      ("flits_delivered", J.Int t.flits_delivered);
      ( "mean_latency",
        match mean_latency t with None -> J.Null | Some m -> J.Float m );
      ( "max_latency",
        match max_latency t with None -> J.Null | Some m -> J.Int m );
      ("p50_latency", J.Int (percentile_latency t 0.5));
      ("p95_latency", J.Int (percentile_latency t 0.95));
      ("throughput", J.Float (throughput t ~nodes));
    ]
