open Dfr_network
open Dfr_routing
open Dfr_util

type config = { max_cycles : int; seed : int }

let default_config = { max_cycles = 100_000; seed = 1 }

type outcome =
  | Completed of Stats.t
  | Deadlocked of { cycle : int; in_flight : int; stats : Stats.t }
  | Timeout of Stats.t

type pkt = {
  id : int;
  src : int;
  dst : int;
  inject_at : int;
  mutable script : int list;
  mutable at : int option; (* current buffer *)
  mutable injected : bool;
  mutable finished : bool;
  mutable finish_cycle : int;
  mutable hops : int;
  frozen : bool;
}

let run_generic ?(config = default_config) net algo packets =
  Dfr_obs.Obs.span "sim.saf.run" @@ fun () ->
  let owner = Array.make (Net.num_buffers net) (-1) in
  let rng = Prng.create config.seed in
  Array.iter
    (fun p ->
      match p.at with
      | Some b ->
        if owner.(b) <> -1 then invalid_arg "Saf_sim: duplicate preload buffer";
        owner.(b) <- p.id
      | None -> ())
    packets;
  let n = Array.length packets in
  let events = ref 0 in
  let transit_route b ~dest =
    algo.Algo.route net b ~dest
    |> List.filter (fun o -> Buf.is_transit (Net.buffer net o))
  in
  let select = function
    | [] -> None
    | [ b ] -> Some b
    | bs -> Some (Prng.pick rng bs)
  in
  let step p cycle =
    match p.at with
    | None ->
      if (not p.injected) && cycle >= p.inject_at then begin
        let candidates =
          match p.script with
          | b :: _ -> [ b ]
          | [] -> transit_route (Net.injection net p.src) ~dest:p.dst
        in
        match select (List.filter (fun b -> owner.(b) = -1) candidates) with
        | Some b ->
          owner.(b) <- p.id;
          p.at <- Some b;
          p.injected <- true;
          (match p.script with _ :: rest -> p.script <- rest | [] -> ());
          incr events
        | None -> ()
      end
    | Some b ->
      let head = Buf.head_node (Net.buffer net b) in
      if head = p.dst then begin
        (* consumption *)
        owner.(b) <- -1;
        p.at <- None;
        p.finished <- true;
        p.finish_cycle <- cycle;
        incr events
      end
      else begin
        let candidates =
          match p.script with
          | nb :: _ -> [ nb ]
          | [] -> transit_route (Net.buffer net b) ~dest:p.dst
        in
        match select (List.filter (fun nb -> owner.(nb) = -1) candidates) with
        | Some nb ->
          owner.(nb) <- p.id;
          owner.(b) <- -1;
          p.at <- Some nb;
          p.hops <- p.hops + 1;
          (match p.script with _ :: rest -> p.script <- rest | [] -> ());
          incr events
        | None -> ()
      end
  in
  let silent = ref 0 in
  let total_events = ref 0 and stalls = ref 0 in
  let result = ref None in
  let cycle = ref 0 in
  while !result = None && !cycle < config.max_cycles do
    events := 0;
    let offset = if n = 0 then 0 else !cycle mod n in
    for k = 0 to n - 1 do
      let p = packets.((k + offset) mod n) in
      if (not p.finished) && not p.frozen then step p !cycle
    done;
    let unfinished =
      Array.exists (fun p -> (not p.finished) && not p.frozen) packets
    in
    let pending_future =
      Array.exists
        (fun p ->
          (not p.finished) && (not p.frozen) && p.at = None && p.inject_at > !cycle)
        packets
    in
    let in_flight =
      Array.fold_left
        (fun acc p -> if p.at <> None then acc + 1 else acc)
        0 packets
    in
    if not unfinished then result := Some (`Done !cycle)
    else if !events = 0 && not pending_future then begin
      incr silent;
      if !silent >= 3 then result := Some (`Deadlock (!cycle, in_flight))
    end
    else silent := 0;
    total_events := !total_events + !events;
    if !events = 0 then incr stalls;
    incr cycle
  done;
  let collect c =
    let injected = ref 0 and delivered = ref 0 in
    let latencies = ref [] in
    Array.iter
      (fun p ->
        if p.injected then incr injected;
        if p.finished then begin
          incr delivered;
          latencies := (p.finish_cycle - p.inject_at + 1) :: !latencies
        end)
      packets;
    {
      Stats.cycles = c;
      injected = !injected;
      delivered = !delivered;
      flits_delivered = !delivered;
      latencies = !latencies;
    }
  in
  let finish stats =
    Stats.observe stats ~sim:"saf" ~events:!total_events ~stalls:!stalls
  in
  match !result with
  | Some (`Done c) -> Completed (finish (collect c))
  | Some (`Deadlock (c, in_flight)) ->
    Deadlocked { cycle = c; in_flight; stats = finish (collect c) }
  | None -> Timeout (finish (collect config.max_cycles))

let run ?config net algo traffic =
  let packets =
    Array.of_list
      (List.mapi
         (fun id (t : Traffic.packet) ->
           {
             id;
             src = t.Traffic.src;
             dst = t.Traffic.dst;
             inject_at = t.Traffic.inject_at;
             script =
               (match t.Traffic.mode with
               | Traffic.Adaptive -> []
               | Traffic.Scripted s -> s);
             at = None;
             injected = false;
             finished = false;
             finish_cycle = 0;
             hops = 0;
             frozen = false;
           })
         traffic)
  in
  run_generic ?config net algo packets

type preload = { buffer : int; dest : int; frozen : bool }

let run_preloaded ?config net algo preloads =
  let packets =
    Array.of_list
      (List.mapi
         (fun id p ->
           {
             id;
             src = Buf.source_node (Net.buffer net p.buffer);
             dst = p.dest;
             inject_at = 0;
             script = [];
             at = Some p.buffer;
             injected = true;
             finished = false;
             finish_cycle = 0;
             hops = 0;
             frozen = p.frozen;
           })
         preloads)
  in
  run_generic ?config net algo packets

let is_deadlocked = function
  | Deadlocked _ -> true
  | Completed _ | Timeout _ -> false

let stats = function
  | Completed s | Timeout s -> s
  | Deadlocked { stats; _ } -> stats

let pp_outcome fmt = function
  | Completed s -> Format.fprintf fmt "completed (%a)" Stats.pp s
  | Deadlocked { cycle; in_flight; stats } ->
    Format.fprintf fmt "DEADLOCK at cycle %d with %d packets in flight (%a)" cycle
      in_flight Stats.pp stats
  | Timeout s -> Format.fprintf fmt "timeout (%a)" Stats.pp s
