(** Latency/throughput accounting shared by the simulators. *)

type t = {
  cycles : int;  (** cycles simulated *)
  injected : int;  (** packets that entered the network *)
  delivered : int;  (** packets fully consumed *)
  flits_delivered : int;
  latencies : int list;  (** per delivered packet, injection to consumption *)
}

val empty : t

val mean_latency : t -> float option
(** [None] when nothing was delivered — an idle-node run has no mean
    latency, and the former [nan] result leaked into printed tables and
    JSON reports as an unparseable token. *)

val max_latency : t -> int option
(** [None] when nothing was delivered, like {!mean_latency} — the former
    0 was indistinguishable from a genuine zero-latency delivery. *)

val percentile_latency : t -> float -> int
(** Nearest-rank percentile (rank [ceil(p*n)], 1-based) over the sorted
    latencies, e.g. [percentile_latency t 0.95]; 0 when nothing was
    delivered. *)

val throughput : t -> nodes:int -> float
(** Flits delivered per node per cycle. *)

val pp : Format.formatter -> t -> unit

val observe : t -> sim:string -> events:int -> stalls:int -> t
(** Record a finished run under the [sim.<name>.*] observability names —
    cycle/event/stall counters plus a flits-per-1k-cycles gauge — and
    return [t] unchanged.  No-op while {!Dfr_obs.Obs} is disabled. *)

val to_json : t -> nodes:int -> Dfr_util.Json.t
(** All of the above as one object; [mean_latency] is [null] when nothing
    was delivered, so the emitted document is always valid JSON. *)
