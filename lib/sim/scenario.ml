open Dfr_network
open Dfr_core

let preloads_of_knot config =
  List.map
    (fun (buf, dest) ->
      { Wormhole_sim.chain = [ buf ]; dest; frozen = false })
    config

let preloads_of_true_cycle space packets =
  let occupied = Hashtbl.create 64 in
  List.iter
    (fun (p : Cycle_class.packet) ->
      List.iter (fun b -> Hashtbl.replace occupied b ()) p.Cycle_class.path)
    packets;
  let cycle_preloads =
    List.map
      (fun (p : Cycle_class.packet) ->
        {
          Wormhole_sim.chain = p.Cycle_class.path;
          dest = p.Cycle_class.dest;
          frozen = false;
        })
      packets
  in
  (* Freeze a filler into every still-free output of each blocked header,
     so the cycle packets genuinely cannot sidestep (Theorem 2's previous
     packets of tuned length). *)
  let fillers = ref [] in
  let add_filler b =
    if not (Hashtbl.mem occupied b) then begin
      Hashtbl.replace occupied b ();
      (* any destination gives the filler a consistent identity; frozen
         packets never consult the routing relation *)
      let dest =
        let head = Buf.head_node (Net.buffer (State_space.net space) b) in
        (head + 1) mod State_space.num_nodes space
      in
      fillers := { Wormhole_sim.chain = [ b ]; dest; frozen = true } :: !fillers
    end
  in
  List.iter
    (fun (p : Cycle_class.packet) ->
      match List.rev p.Cycle_class.path with
      | [] -> ()
      | head :: _ ->
        List.iter add_filler
          (State_space.outputs space ~buf:head ~dest:p.Cycle_class.dest))
    packets;
  cycle_preloads @ !fillers

(* SAF packets occupy single buffers; fillers freeze the remaining free
   outputs of each blocked packet, as in the wormhole case. *)
let saf_preloads_of_packets space packets =
  let occupied = Hashtbl.create 64 in
  List.iter
    (fun (p : Cycle_class.packet) ->
      Hashtbl.replace occupied (List.hd p.Cycle_class.path) ())
    packets;
  let main =
    List.map
      (fun (p : Cycle_class.packet) ->
        {
          Saf_sim.buffer = List.hd p.Cycle_class.path;
          dest = p.Cycle_class.dest;
          frozen = false;
        })
      packets
  in
  let fillers = ref [] in
  List.iter
    (fun (p : Cycle_class.packet) ->
      let b = List.hd p.Cycle_class.path in
      List.iter
        (fun o ->
          if not (Hashtbl.mem occupied o) then begin
            Hashtbl.replace occupied o ();
            fillers := { Saf_sim.buffer = o; dest = 0; frozen = true } :: !fillers
          end)
        (State_space.outputs space ~buf:b ~dest:p.Cycle_class.dest))
    packets;
  main @ !fillers

let replay ?wormhole_config ?saf_config ?space net algo failure =
  let wormhole = Net.switching net = Net.Wormhole in
  let knot_replay states =
    if wormhole then
      Some
        (Wormhole_sim.is_deadlocked
           (Wormhole_sim.run_preloaded ?config:wormhole_config net algo
              (preloads_of_knot states)))
    else
      Some
        (Saf_sim.is_deadlocked
           (Saf_sim.run_preloaded ?config:saf_config net algo
              (List.map
                 (fun (buffer, dest) -> { Saf_sim.buffer; dest; frozen = false })
                 states)))
  in
  match failure with
  | Checker.Knot config -> knot_replay config
  | Checker.True_cycle { packets; _ } | Checker.No_reduction { packets; _ } ->
    let space =
      match space with Some s -> s | None -> State_space.build net algo
    in
    if wormhole then
      Some
        (Wormhole_sim.is_deadlocked
           (Wormhole_sim.run_preloaded ?config:wormhole_config net algo
              (preloads_of_true_cycle space packets)))
    else
      Some
        (Saf_sim.is_deadlocked
           (Saf_sim.run_preloaded ?config:saf_config net algo
              (saf_preloads_of_packets space packets)))
  | Checker.Stuck_states _ | Checker.Not_wait_connected _ -> None
