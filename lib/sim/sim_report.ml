open Dfr_util

let make ~simulator ~outcome ~stats ~nodes extra =
  Json.Obj
    (("simulator", Json.String simulator)
    :: ("outcome", Json.String outcome)
    :: (extra @ [ ("stats", Stats.to_json stats ~nodes) ]))

let wormhole outcome ~nodes =
  let make = make ~simulator:"wormhole" ~nodes in
  match outcome with
  | Wormhole_sim.Completed s -> make ~outcome:"completed" ~stats:s []
  | Wormhole_sim.Timeout s -> make ~outcome:"timeout" ~stats:s []
  | Wormhole_sim.Deadlocked { cycle; in_flight; stats; wait_for } ->
    make ~outcome:"deadlock" ~stats
      [
        ("deadlock_cycle", Json.Int cycle);
        ("in_flight", Json.Int in_flight);
        ( "wait_for",
          Json.List
            (List.map
               (fun (p, q) -> Json.List [ Json.Int p; Json.Int q ])
               wait_for) );
      ]

let saf outcome ~nodes =
  let make = make ~simulator:"saf" ~nodes in
  match outcome with
  | Saf_sim.Completed s -> make ~outcome:"completed" ~stats:s []
  | Saf_sim.Timeout s -> make ~outcome:"timeout" ~stats:s []
  | Saf_sim.Deadlocked { cycle; in_flight; stats } ->
    make ~outcome:"deadlock" ~stats
      [ ("deadlock_cycle", Json.Int cycle); ("in_flight", Json.Int in_flight) ]

let router outcome ~nodes =
  let make = make ~simulator:"router" ~nodes in
  match outcome with
  | Router_sim.Completed s -> make ~outcome:"completed" ~stats:s []
  | Router_sim.Timeout s -> make ~outcome:"timeout" ~stats:s []
  | Router_sim.Deadlocked { cycle; in_flight; stats } ->
    make ~outcome:"deadlock" ~stats
      [ ("deadlock_cycle", Json.Int cycle); ("in_flight", Json.Int in_flight) ]
