open Dfr_topology
open Dfr_util

type mode = Adaptive | Scripted of int list

type packet = {
  src : int;
  dst : int;
  length : int;
  inject_at : int;
  mode : mode;
}

type t = packet list

type pattern =
  | Uniform
  | Transpose
  | Bit_complement
  | Hotspot of int
  | Shuffle

(* Node id reinterpreted through coordinates for the spatial patterns;
   patterns needing a power-of-two id space fall back to id arithmetic
   modulo the node count. *)
let pattern_dest topo pattern rng src =
  let n = Topology.num_nodes topo in
  let dest =
    match pattern with
    | Uniform ->
      (* uniform over the n-1 other nodes *)
      let d = Prng.int rng (n - 1) in
      if d >= src then d + 1 else d
    | Transpose ->
      let coord = Topology.coord_of_node topo src in
      let dims = Array.length coord in
      let rotated =
        Array.init dims (fun i ->
            let c = coord.((i + 1) mod dims) in
            min c (Topology.radix topo i - 1))
      in
      Topology.node_of_coord topo rotated
    | Bit_complement -> n - 1 - src
    | Hotspot h ->
      (* OCaml's [mod] keeps the sign of its argument, so a negative
         hotspot used to leak a negative node id (an out-of-bounds
         injection downstream); reject out-of-range nodes outright *)
      if h < 0 || h >= n then
        invalid_arg
          (Printf.sprintf "Traffic: hotspot node %d out of range 0..%d" h (n - 1));
      h
    | Shuffle ->
      let bits =
        let rec count b acc = if 1 lsl acc >= b then acc else count b (acc + 1) in
        count n 0
      in
      if bits = 0 then src
      else ((src lsl 1) lor (src lsr (bits - 1))) land ((1 lsl bits) - 1) mod n
  in
  if dest = src then None else Some dest

let generate topo ~pattern ~rate ~length ~horizon ~seed =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Traffic.generate: rate";
  let rng = Prng.create seed in
  let acc = ref [] in
  for cycle = 0 to horizon - 1 do
    for src = 0 to Topology.num_nodes topo - 1 do
      if Prng.bernoulli rng rate then
        match pattern_dest topo pattern rng src with
        | Some dst ->
          acc := { src; dst; length; inject_at = cycle; mode = Adaptive } :: !acc
        | None -> ()
    done
  done;
  List.rev !acc

let batch topo ~pattern ~count ~length ~seed =
  let rng = Prng.create seed in
  let acc = ref [] in
  for src = 0 to Topology.num_nodes topo - 1 do
    for _ = 1 to count do
      match pattern_dest topo pattern rng src with
      | Some dst -> acc := { src; dst; length; inject_at = 0; mode = Adaptive } :: !acc
      | None -> ()
    done
  done;
  List.rev !acc

(* Topology-free saturation batch: the differential fuzzer drives custom
   networks, which carry no [Topology.t] to draw spatial patterns from. *)
let batch_uniform ~num_nodes ~count ~length ~seed =
  if num_nodes < 2 then invalid_arg "Traffic.batch_uniform: need >= 2 nodes";
  let rng = Prng.create seed in
  let acc = ref [] in
  for src = 0 to num_nodes - 1 do
    for _ = 1 to count do
      let d = Prng.int rng (num_nodes - 1) in
      let dst = if d >= src then d + 1 else d in
      acc := { src; dst; length; inject_at = 0; mode = Adaptive } :: !acc
    done
  done;
  List.rev !acc

let scripted ?(inject_at = 0) ~src ~dst ~length chain =
  [ { src; dst; length; inject_at; mode = Scripted chain } ]

let count t = List.length t
