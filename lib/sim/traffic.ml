open Dfr_topology
open Dfr_util

type mode = Adaptive | Scripted of int list

type packet = {
  src : int;
  dst : int;
  length : int;
  inject_at : int;
  mode : mode;
}

type t = packet list

type pattern =
  | Uniform
  | Transpose
  | Bit_complement
  | Hotspot of int
  | Shuffle

(* Node id reinterpreted through coordinates for the spatial patterns;
   patterns needing a power-of-two id space fall back to id arithmetic
   modulo the node count. *)
let pattern_dest topo pattern rng src =
  let n = Topology.num_nodes topo in
  let dest =
    match pattern with
    | Uniform ->
      (* uniform over the n-1 other nodes *)
      let d = Prng.int rng (n - 1) in
      if d >= src then d + 1 else d
    | Transpose ->
      let coord = Topology.coord_of_node topo src in
      let dims = Array.length coord in
      let rotated =
        Array.init dims (fun i ->
            let c = coord.((i + 1) mod dims) in
            min c (Topology.radix topo i - 1))
      in
      Topology.node_of_coord topo rotated
    | Bit_complement -> n - 1 - src
    | Hotspot h ->
      (* OCaml's [mod] keeps the sign of its argument, so a negative
         hotspot used to leak a negative node id (an out-of-bounds
         injection downstream); reject out-of-range nodes outright *)
      if h < 0 || h >= n then
        invalid_arg
          (Printf.sprintf "Traffic: hotspot node %d out of range 0..%d" h (n - 1));
      h
    | Shuffle ->
      let bits =
        let rec count b acc = if 1 lsl acc >= b then acc else count b (acc + 1) in
        count n 0
      in
      if bits = 0 then src
      else ((src lsl 1) lor (src lsr (bits - 1))) land ((1 lsl bits) - 1) mod n
  in
  if dest = src then None else Some dest

(* A zero- or negative-length packet never drains in the wormhole model
   (there is no flit to move), so the simulators would spin on it forever;
   every generator rejects it up front and the CLI maps the rejection to a
   usage error (exit 2). *)
let check_length length =
  if length < 1 then
    invalid_arg
      (Printf.sprintf "Traffic: packet length must be >= 1 flit (got %d)" length)

let generate topo ~pattern ~rate ~length ~horizon ~seed =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Traffic.generate: rate";
  check_length length;
  let rng = Prng.create seed in
  let acc = ref [] in
  for cycle = 0 to horizon - 1 do
    for src = 0 to Topology.num_nodes topo - 1 do
      if Prng.bernoulli rng rate then
        match pattern_dest topo pattern rng src with
        | Some dst ->
          acc := { src; dst; length; inject_at = cycle; mode = Adaptive } :: !acc
        | None -> ()
    done
  done;
  List.rev !acc

let batch topo ~pattern ~count ~length ~seed =
  check_length length;
  let rng = Prng.create seed in
  let acc = ref [] in
  for src = 0 to Topology.num_nodes topo - 1 do
    for _ = 1 to count do
      match pattern_dest topo pattern rng src with
      | Some dst -> acc := { src; dst; length; inject_at = 0; mode = Adaptive } :: !acc
      | None -> ()
    done
  done;
  List.rev !acc

(* Topology-free saturation batch: the differential fuzzer drives custom
   networks, which carry no [Topology.t] to draw spatial patterns from. *)
let batch_uniform ~num_nodes ~count ~length ~seed =
  if num_nodes < 2 then invalid_arg "Traffic.batch_uniform: need >= 2 nodes";
  check_length length;
  let rng = Prng.create seed in
  let acc = ref [] in
  for src = 0 to num_nodes - 1 do
    for _ = 1 to count do
      let d = Prng.int rng (num_nodes - 1) in
      let dst = if d >= src then d + 1 else d in
      acc := { src; dst; length; inject_at = 0; mode = Adaptive } :: !acc
    done
  done;
  List.rev !acc

let scripted ?(inject_at = 0) ~src ~dst ~length chain =
  check_length length;
  [ { src; dst; length; inject_at; mode = Scripted chain } ]

(* ------------------------------------------------------------------ *)
(* bursty and adversarial generators (the scenario layer's workloads)  *)

(* Leaky-bucket arrivals: each node accumulates [rate] tokens per cycle
   into a bucket of depth [burst]; a full bucket drains as one
   back-to-back burst.  Long-run rate matches the Bernoulli generator at
   the same [rate], but the arrivals are maximally clumped — the bursty
   regime of the buffer-aware timing literature.  Buckets start at a
   seeded random fill so the nodes' bursts are not phase-locked. *)
let bursty topo ~pattern ~burst ~rate ~length ~horizon ~seed =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Traffic.bursty: rate";
  if burst < 1 then invalid_arg "Traffic.bursty: burst must be >= 1";
  check_length length;
  let n = Topology.num_nodes topo in
  let rng = Prng.create seed in
  let bucket = Array.init n (fun _ -> Prng.float rng (float_of_int burst)) in
  let acc = ref [] in
  for cycle = 0 to horizon - 1 do
    for src = 0 to n - 1 do
      bucket.(src) <- bucket.(src) +. rate;
      if bucket.(src) >= float_of_int burst then begin
        bucket.(src) <- bucket.(src) -. float_of_int burst;
        for _ = 1 to burst do
          match pattern_dest topo pattern rng src with
          | Some dst ->
            acc := { src; dst; length; inject_at = cycle; mode = Adaptive } :: !acc
          | None -> ()
        done
      end
    done
  done;
  List.rev !acc

(* Every node aims Bernoulli([rate]) traffic at an explicit destination
   set — the multi-hotspot storm.  The set is validated up front: an
   empty set (every candidate destination faulted away) or an
   out-of-range node must be a hard error, not a generator that loops
   hunting for a destination that does not exist. *)
let storm topo ~dests ~rate ~length ~horizon ~seed =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Traffic.storm: rate";
  check_length length;
  let n = Topology.num_nodes topo in
  if dests = [] then
    invalid_arg "Traffic.storm: empty destination set (all destinations faulted?)";
  List.iter
    (fun d ->
      if d < 0 || d >= n then
        invalid_arg
          (Printf.sprintf "Traffic.storm: destination %d out of range 0..%d" d
             (n - 1)))
    dests;
  let dests = Array.of_list dests in
  let rng = Prng.create seed in
  let acc = ref [] in
  for cycle = 0 to horizon - 1 do
    for src = 0 to n - 1 do
      if Prng.bernoulli rng rate then begin
        let dst = dests.(Prng.int rng (Array.length dests)) in
        if dst <> src then
          acc := { src; dst; length; inject_at = cycle; mode = Adaptive } :: !acc
      end
    done
  done;
  List.rev !acc

(* Permutation adversary: a seeded random permutation pi, [count] packets
   from every node to pi(node), all injected at cycle 0.  Fixed points
   send nothing.  Worst-case single-path load: no destination spreading
   at all. *)
let permutation topo ~count ~length ~seed =
  if count < 1 then invalid_arg "Traffic.permutation: count must be >= 1";
  check_length length;
  let n = Topology.num_nodes topo in
  let pi = Array.init n (fun i -> i) in
  let rng = Prng.create seed in
  Prng.shuffle rng pi;
  let acc = ref [] in
  for src = 0 to n - 1 do
    if pi.(src) <> src then
      for _ = 1 to count do
        acc :=
          { src; dst = pi.(src); length; inject_at = 0; mode = Adaptive } :: !acc
      done
  done;
  List.rev !acc

let count t = List.length t
