(* Tests for dfr_routing: the routing relations and waiting rules. *)

open Dfr_topology
open Dfr_network
open Dfr_routing

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let sorted = List.sort compare

let cube3 = Net.wormhole (Topology.hypercube 3) ~vcs:2
let mesh33_1 = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:1
let mesh33_2 = Net.wormhole (Topology.mesh [| 3; 3 |]) ~vcs:2
let ring6 = Net.wormhole (Topology.ring 6) ~vcs:2
let saf33 = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2

let chan net src dim dir vc = Buf.id (Net.channel net ~src ~dim ~dir ~vc)
let inj net n = Net.injection net n

(* every catalogue algorithm passes structural validation on its network *)
let test_validate_all () =
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      match Algo.validate e.Registry.algo net with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (e.Registry.name ^ ": " ^ msg))
    Registry.all

let test_wrong_network_rejected () =
  Alcotest.check_raises "efa on mesh"
    (Invalid_argument "Hypercube_wormhole: hypercube topology required") (fun () ->
      ignore (Hypercube_wormhole.efa.Algo.route mesh33_2 (inj mesh33_2 0) ~dest:5));
  Alcotest.check_raises "efa on 1 vc"
    (Invalid_argument "Hypercube_wormhole: two virtual channels required") (fun () ->
      let net1 = Net.wormhole (Topology.hypercube 2) ~vcs:1 in
      ignore (Hypercube_wormhole.efa.Algo.route net1 (inj net1 0) ~dest:3));
  Alcotest.check_raises "dateline on mesh"
    (Invalid_argument "Torus_wormhole: torus topology required") (fun () ->
      ignore (Torus_wormhole.dateline.Algo.route mesh33_2 (inj mesh33_2 0) ~dest:5));
  Alcotest.check_raises "two-buffer on wormhole"
    (Invalid_argument "Mesh_saf: packet-buffered network required") (fun () ->
      ignore (Mesh_saf.two_buffer.Algo.route mesh33_2 (inj mesh33_2 0) ~dest:5))

(* ---------------- hypercube: ecube ---------------- *)

let test_ecube_single_path () =
  (* 000 -> 011 routes dim 0 then dim 1 on B1 *)
  let r = Hypercube_wormhole.ecube.Algo.route cube3 (inj cube3 0) ~dest:3 in
  check (Alcotest.list Alcotest.int) "first hop dim0+"
    [ chan cube3 0 0 Topology.Plus 0 ]
    r;
  let b = Net.channel cube3 ~src:0 ~dim:0 ~dir:Topology.Plus ~vc:0 in
  let r2 = Hypercube_wormhole.ecube.Algo.route cube3 b ~dest:3 in
  check (Alcotest.list Alcotest.int) "second hop dim1+"
    [ chan cube3 1 1 Topology.Plus 0 ]
    r2

(* ---------------- hypercube: duato ---------------- *)

let test_duato_routes () =
  (* 000 -> 110: needs dims 1, 2; escape = B1 of dim 1; adaptive = B2 of both *)
  let r = sorted (Hypercube_wormhole.duato.Algo.route cube3 (inj cube3 0) ~dest:6) in
  let expected =
    sorted
      [
        chan cube3 0 1 Topology.Plus 0;
        chan cube3 0 1 Topology.Plus 1;
        chan cube3 0 2 Topology.Plus 1;
      ]
  in
  check (Alcotest.list Alcotest.int) "duato outputs" expected r;
  let w = Hypercube_wormhole.duato.Algo.waits cube3 (inj cube3 0) ~dest:6 in
  check (Alcotest.list Alcotest.int) "waits on escape"
    [ chan cube3 0 1 Topology.Plus 0 ]
    w

(* ---------------- hypercube: efa ---------------- *)

let test_efa_positive_lowest () =
  (* node 000 -> 011: needs 0+, 1+; lowest positive => B1 only on dim 0 *)
  let r = sorted (Hypercube_wormhole.efa.Algo.route cube3 (inj cube3 0) ~dest:3) in
  let expected =
    sorted
      [
        chan cube3 0 0 Topology.Plus 0;
        chan cube3 0 0 Topology.Plus 1;
        chan cube3 0 1 Topology.Plus 1;
      ]
  in
  check (Alcotest.list Alcotest.int) "restricted B1" expected r

let test_efa_negative_lowest () =
  (* node 011 -> 100: needs 0-, 1-, 2+; lowest negative => B1 on all needed dims *)
  let src = 3 in
  let r = sorted (Hypercube_wormhole.efa.Algo.route cube3 (inj cube3 src) ~dest:4) in
  let expected =
    sorted
      [
        chan cube3 src 0 Topology.Minus 0;
        chan cube3 src 1 Topology.Minus 0;
        chan cube3 src 2 Topology.Plus 0;
        chan cube3 src 0 Topology.Minus 1;
        chan cube3 src 1 Topology.Minus 1;
        chan cube3 src 2 Topology.Plus 1;
      ]
  in
  check (Alcotest.list Alcotest.int) "all six buffers" expected r

let test_efa_waits_lowest_dim () =
  let w = Hypercube_wormhole.efa.Algo.waits cube3 (inj cube3 3) ~dest:4 in
  check (Alcotest.list Alcotest.int) "waits B1 lowest"
    [ chan cube3 3 0 Topology.Minus 0 ]
    w;
  let w2 = Hypercube_wormhole.efa.Algo.waits cube3 (inj cube3 0) ~dest:6 in
  check (Alcotest.list Alcotest.int) "waits B1 dim1"
    [ chan cube3 0 1 Topology.Plus 0 ]
    w2

let test_efa_relaxed_is_superset () =
  let ok = ref true in
  for src = 0 to 7 do
    for dest = 0 to 7 do
      if src <> dest then begin
        let r = Hypercube_wormhole.efa.Algo.route cube3 (inj cube3 src) ~dest in
        let rr = Hypercube_wormhole.efa_relaxed.Algo.route cube3 (inj cube3 src) ~dest in
        if not (List.for_all (fun b -> List.mem b rr) r) then ok := false
      end
    done
  done;
  check Alcotest.bool "relaxed permits everything efa does" true !ok

let prop_efa_waits_subset_route =
  QCheck.Test.make ~name:"efa waits ⊆ route everywhere" ~count:200
    QCheck.(pair (int_range 0 7) (int_range 0 7))
    (fun (src, dest) ->
      src = dest
      ||
      let r = Hypercube_wormhole.efa.Algo.route cube3 (inj cube3 src) ~dest in
      let w = Hypercube_wormhole.efa.Algo.waits cube3 (inj cube3 src) ~dest in
      List.for_all (fun b -> List.mem b r) w)

let prop_hypercube_routes_minimal =
  QCheck.Test.make ~name:"efa/duato moves are minimal" ~count:200
    QCheck.(pair (int_range 0 7) (int_range 0 7))
    (fun (src, dest) ->
      src = dest
      ||
      let topo = Net.topology_exn cube3 in
      let d0 = Topology.distance topo src dest in
      List.for_all
        (fun (algo : Algo.t) ->
          List.for_all
            (fun b ->
              Topology.distance topo (Buf.head_node (Net.buffer cube3 b)) dest
              = d0 - 1)
            (algo.Algo.route cube3 (inj cube3 src) ~dest))
        [ Hypercube_wormhole.efa; Hypercube_wormhole.duato; Hypercube_wormhole.ecube ])

(* ---------------- mesh wormhole ---------------- *)

let node33 x y = Topology.node_of_coord (Net.topology_exn mesh33_1) [| x; y |]

let test_dimension_order_mesh () =
  let src = node33 0 0 and dst = node33 2 2 in
  let r = Mesh_wormhole.dimension_order.Algo.route mesh33_1 (inj mesh33_1 src) ~dest:dst in
  check (Alcotest.list Alcotest.int) "x first"
    [ chan mesh33_1 src 0 Topology.Plus 0 ]
    r

let test_west_first_restriction () =
  (* needs west: only west allowed *)
  let src = node33 2 0 and dst = node33 0 2 in
  let r = Mesh_wormhole.west_first.Algo.route mesh33_1 (inj mesh33_1 src) ~dest:dst in
  check (Alcotest.list Alcotest.int) "west only"
    [ chan mesh33_1 src 0 Topology.Minus 0 ]
    r;
  (* no west needed: fully adaptive among east and north *)
  let src2 = node33 0 0 and dst2 = node33 2 2 in
  let r2 = Mesh_wormhole.west_first.Algo.route mesh33_1 (inj mesh33_1 src2) ~dest:dst2 in
  check Alcotest.int "two adaptive choices" 2 (List.length r2)

let test_north_last_restriction () =
  (* north = dim1 plus; while east remains, go east *)
  let src = node33 0 0 and dst = node33 2 2 in
  let r = Mesh_wormhole.north_last.Algo.route mesh33_1 (inj mesh33_1 src) ~dest:dst in
  check (Alcotest.list Alcotest.int) "east before north"
    [ chan mesh33_1 src 0 Topology.Plus 0 ]
    r;
  let src2 = node33 2 0 in
  let r2 = Mesh_wormhole.north_last.Algo.route mesh33_1 (inj mesh33_1 src2) ~dest:dst in
  check (Alcotest.list Alcotest.int) "north when alone"
    [ chan mesh33_1 src2 1 Topology.Plus 0 ]
    r2

let test_negative_first_restriction () =
  let src = node33 2 0 and dst = node33 0 2 in
  (* needs 0-, 1+: negative first *)
  let r = Mesh_wormhole.negative_first.Algo.route mesh33_1 (inj mesh33_1 src) ~dest:dst in
  check (Alcotest.list Alcotest.int) "negative first"
    [ chan mesh33_1 src 0 Topology.Minus 0 ]
    r

let test_duato_mesh_routes () =
  let src = node33 0 0 and dst = node33 1 1 in
  let r = sorted (Mesh_wormhole.duato_mesh.Algo.route mesh33_2 (inj mesh33_2 src) ~dest:dst) in
  let expected =
    sorted
      [
        chan mesh33_2 src 0 Topology.Plus 0;
        chan mesh33_2 src 0 Topology.Plus 1;
        chan mesh33_2 src 1 Topology.Plus 1;
      ]
  in
  check (Alcotest.list Alcotest.int) "escape + adaptive" expected r

(* ---------------- torus dateline ---------------- *)

let test_dateline_vc_choice () =
  (* ring 0..5; from 0 to 2: travelling plus, no wrap ahead: vc1 *)
  let r = Torus_wormhole.dateline.Algo.route ring6 (inj ring6 0) ~dest:2 in
  check (Alcotest.list Alcotest.int) "vc1 before wrap"
    [ chan ring6 0 0 Topology.Plus 1 ]
    r;
  (* from 4 to 1: travelling plus, wrap ahead: vc0 *)
  let r2 = Torus_wormhole.dateline.Algo.route ring6 (inj ring6 4) ~dest:1 in
  check (Alcotest.list Alcotest.int) "vc0 when crossing"
    [ chan ring6 4 0 Topology.Plus 0 ]
    r2;
  (* from 5, dest 1: after the wrap hop the packet is at 0 < 1: vc1 again *)
  let b = Net.channel ring6 ~src:5 ~dim:0 ~dir:Topology.Plus ~vc:0 in
  let r3 = Torus_wormhole.dateline.Algo.route ring6 b ~dest:1 in
  check (Alcotest.list Alcotest.int) "vc1 after crossing"
    [ chan ring6 0 0 Topology.Plus 1 ]
    r3

let test_dateline_minus_direction () =
  (* from 1 to 5: shorter minus way (2 hops), wrap ahead: vc0 *)
  let r = Torus_wormhole.dateline.Algo.route ring6 (inj ring6 1) ~dest:5 in
  check (Alcotest.list Alcotest.int) "minus vc0"
    [ chan ring6 1 0 Topology.Minus 0 ]
    r

(* ---------------- SAF two-buffer ---------------- *)

let nbuf net node cls = Buf.id (Net.node_buffer net ~node ~cls)

let test_two_buffer_phases () =
  let src = node33 0 2 and dst = node33 2 0 in
  (* needs 0+, 1-: injection enters local A *)
  let r = Mesh_saf.two_buffer.Algo.route saf33 (inj saf33 src) ~dest:dst in
  check (Alcotest.list Alcotest.int) "enter A" [ nbuf saf33 src 0 ] r;
  (* in A with positive remaining: all minimal A neighbours *)
  let a = Net.node_buffer saf33 ~node:src ~cls:0 in
  let r2 = sorted (Mesh_saf.two_buffer.Algo.route saf33 a ~dest:dst) in
  check (Alcotest.list Alcotest.int) "A to minimal A"
    (sorted [ nbuf saf33 (node33 1 2) 0; nbuf saf33 (node33 0 1) 0 ])
    r2;
  (* in A with only negative hops left: move to B of minimal neighbours *)
  let a_done = Net.node_buffer saf33 ~node:(node33 2 2) ~cls:0 in
  let r3 = Mesh_saf.two_buffer.Algo.route saf33 a_done ~dest:dst in
  check (Alcotest.list Alcotest.int) "A to B" [ nbuf saf33 (node33 2 1) 1 ] r3;
  (* in B: stay in B *)
  let b = Net.node_buffer saf33 ~node:(node33 2 1) ~cls:1 in
  let r4 = Mesh_saf.two_buffer.Algo.route saf33 b ~dest:dst in
  check (Alcotest.list Alcotest.int) "B to B" [ nbuf saf33 (node33 2 0) 1 ] r4

let test_two_buffer_negative_only_injection () =
  let src = node33 2 2 and dst = node33 0 0 in
  let r = Mesh_saf.two_buffer.Algo.route saf33 (inj saf33 src) ~dest:dst in
  check (Alcotest.list Alcotest.int) "enter B directly" [ nbuf saf33 src 1 ] r

let test_two_buffer_reduced_waits () =
  match Mesh_saf.two_buffer.Algo.reduced_waits with
  | None -> Alcotest.fail "two-buffer carries a BWG' hint"
  | Some rw ->
    let src = node33 0 2 and dst = node33 2 0 in
    let a = Net.node_buffer saf33 ~node:src ~cls:0 in
    let w = rw saf33 a ~dest:dst in
    (* waits only on the positive-direction A neighbour *)
    check (Alcotest.list Alcotest.int) "positive A only"
      [ nbuf saf33 (node33 1 2) 0 ]
      w

let test_wait_everywhere () =
  let w = Algo.wait_everywhere Hypercube_wormhole.efa in
  check Alcotest.bool "any wait" true (w.Algo.wait = Algo.Any_wait);
  let r = w.Algo.route cube3 (inj cube3 0) ~dest:3 in
  let ws = w.Algo.waits cube3 (inj cube3 0) ~dest:3 in
  check (Alcotest.list Alcotest.int) "waits = route" (sorted r) (sorted ws)

(* ---------------- registry ---------------- *)

let test_registry_lookup () =
  check Alcotest.bool "finds efa" true (Registry.find "efa" <> None);
  check Alcotest.bool "unknown" true (Registry.find "bogus" = None);
  check Alcotest.int "catalogue size" 26 (List.length Registry.all);
  check Alcotest.bool "names match" true
    (List.for_all
       (fun (e : Registry.entry) ->
         match Registry.find e.Registry.name with
         | Some found -> found.Registry.name = e.Registry.name
         | None -> false)
       Registry.all)

let test_registry_networks_fit () =
  List.iter
    (fun (e : Registry.entry) ->
      let net = Registry.network_for e None in
      check Alcotest.bool (e.Registry.name ^ " nonempty") true (Net.num_buffers net > 0))
    Registry.all

let suite =
  [
    Alcotest.test_case "validate all catalogue algorithms" `Quick test_validate_all;
    Alcotest.test_case "wrong networks rejected" `Quick test_wrong_network_rejected;
    Alcotest.test_case "ecube single path" `Quick test_ecube_single_path;
    Alcotest.test_case "duato routes" `Quick test_duato_routes;
    Alcotest.test_case "efa positive lowest" `Quick test_efa_positive_lowest;
    Alcotest.test_case "efa negative lowest" `Quick test_efa_negative_lowest;
    Alcotest.test_case "efa waits lowest dim" `Quick test_efa_waits_lowest_dim;
    Alcotest.test_case "efa relaxed superset" `Quick test_efa_relaxed_is_superset;
    Alcotest.test_case "dimension order mesh" `Quick test_dimension_order_mesh;
    Alcotest.test_case "west-first restriction" `Quick test_west_first_restriction;
    Alcotest.test_case "north-last restriction" `Quick test_north_last_restriction;
    Alcotest.test_case "negative-first restriction" `Quick test_negative_first_restriction;
    Alcotest.test_case "duato mesh routes" `Quick test_duato_mesh_routes;
    Alcotest.test_case "dateline vc choice" `Quick test_dateline_vc_choice;
    Alcotest.test_case "dateline minus" `Quick test_dateline_minus_direction;
    Alcotest.test_case "two-buffer phases" `Quick test_two_buffer_phases;
    Alcotest.test_case "two-buffer negative-only injection" `Quick
      test_two_buffer_negative_only_injection;
    Alcotest.test_case "two-buffer reduced waits" `Quick test_two_buffer_reduced_waits;
    Alcotest.test_case "wait_everywhere" `Quick test_wait_everywhere;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "registry networks fit" `Quick test_registry_networks_fit;
    qtest prop_efa_waits_subset_route;
    qtest prop_hypercube_routes_minimal;
  ]

(* ---------------- extensions: double-y, hop-class, pair relaxation ---- *)

let test_double_y_fully_adaptive () =
  (* every minimal move is always permitted *)
  let topo = Net.topology_exn mesh33_2 in
  let ok = ref true in
  for src = 0 to 8 do
    for dest = 0 to 8 do
      if src <> dest then begin
        let r = Mesh_wormhole.double_y.Algo.route mesh33_2 (inj mesh33_2 src) ~dest in
        let moves = Topology.minimal_moves topo ~src ~dst:dest in
        if List.length r <> List.length moves then ok := false
      end
    done
  done;
  check Alcotest.bool "one channel per minimal move" true !ok

let test_double_y_class_split () =
  (* westbound packets ride y vc 0, others y vc 1 *)
  let src = node33 2 0 and dst = node33 0 2 in
  let r = Mesh_wormhole.double_y.Algo.route mesh33_2 (inj mesh33_2 src) ~dest:dst in
  check Alcotest.bool "westbound y on vc0" true
    (List.mem (chan mesh33_2 src 1 Topology.Plus 0) r);
  let src2 = node33 0 0 and dst2 = node33 2 2 in
  let r2 = Mesh_wormhole.double_y.Algo.route mesh33_2 (inj mesh33_2 src2) ~dest:dst2 in
  check Alcotest.bool "eastbound y on vc1" true
    (List.mem (chan mesh33_2 src2 1 Topology.Plus 1) r2);
  check Alcotest.bool "x always vc0" true
    (List.mem (chan mesh33_2 src2 0 Topology.Plus 0) r2)

let test_hop_class_increments () =
  let net = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:5 in
  let r = Mesh_saf.hop_class.Algo.route net (inj net (node33 0 0)) ~dest:(node33 2 2) in
  check (Alcotest.list Alcotest.int) "inject to class 0"
    [ Buf.id (Net.node_buffer net ~node:(node33 0 0) ~cls:0) ]
    r;
  let b0 = Net.node_buffer net ~node:(node33 0 0) ~cls:0 in
  let r1 = Mesh_saf.hop_class.Algo.route net b0 ~dest:(node33 2 2) in
  List.iter
    (fun id ->
      check (Alcotest.option Alcotest.int) "next class" (Some 1)
        (Buf.cls (Net.buffer net id)))
    r1;
  (* saturated class on an unreachable state: relation is empty, not an error *)
  let b4 = Net.node_buffer net ~node:(node33 0 0) ~cls:4 in
  check (Alcotest.list Alcotest.int) "saturated class" []
    (Mesh_saf.hop_class.Algo.route net b4 ~dest:(node33 2 2))

let test_hop_class_needs_enough_classes () =
  let net = Net.store_and_forward (Topology.mesh [| 3; 3 |]) ~classes:2 in
  Alcotest.check_raises "diameter check"
    (Invalid_argument "Mesh_saf.hop_class: classes must exceed the mesh diameter")
    (fun () -> ignore (Mesh_saf.hop_class.Algo.route net (inj net 0) ~dest:8))

let test_diameter () =
  check Alcotest.int "3x3" 4 (Mesh_saf.diameter (Topology.mesh [| 3; 3 |]));
  check Alcotest.int "4x4" 6 (Mesh_saf.diameter (Topology.mesh [| 4; 4 |]));
  check Alcotest.int "2x3x4" 6 (Mesh_saf.diameter (Topology.mesh [| 2; 3; 4 |]))

let test_efa_relaxed_pair_shape () =
  Alcotest.check_raises "l < i required"
    (Invalid_argument "Hypercube_wormhole.efa_relaxed_pair: need l < i") (fun () ->
      ignore (Hypercube_wormhole.efa_relaxed_pair ~l:1 ~i:1));
  let algo = Hypercube_wormhole.efa_relaxed_pair ~l:0 ~i:1 in
  (* packet at 000 for 011: lowest 0 positive, dim1 needed: B1 of dim 1 now allowed *)
  let r = algo.Algo.route cube3 (inj cube3 0) ~dest:3 in
  check Alcotest.bool "extra B1 channel" true
    (List.mem (chan cube3 0 1 Topology.Plus 0) r);
  (* but dim 2 stays forbidden for packets needing 0+ *)
  let r2 = algo.Algo.route cube3 (inj cube3 0) ~dest:5 in
  check Alcotest.bool "dim 2 B1 still forbidden" false
    (List.mem (chan cube3 0 2 Topology.Plus 0) r2)

let test_duato_torus_routes () =
  let net = Net.wormhole (Topology.ring 6) ~vcs:3 in
  let r = Torus_wormhole.duato_torus.Algo.route net (Net.injection net 0) ~dest:2 in
  check Alcotest.bool "escape present" true
    (List.mem (Buf.id (Net.channel net ~src:0 ~dim:0 ~dir:Topology.Plus ~vc:1)) r);
  check Alcotest.bool "adaptive present" true
    (List.mem (Buf.id (Net.channel net ~src:0 ~dim:0 ~dir:Topology.Plus ~vc:2)) r);
  let w = Torus_wormhole.duato_torus.Algo.waits net (Net.injection net 0) ~dest:2 in
  check Alcotest.int "waits only escape" 1 (List.length w)

let suite =
  suite
  @ [
      Alcotest.test_case "double-y fully adaptive" `Quick test_double_y_fully_adaptive;
      Alcotest.test_case "double-y class split" `Quick test_double_y_class_split;
      Alcotest.test_case "hop-class increments" `Quick test_hop_class_increments;
      Alcotest.test_case "hop-class class check" `Quick test_hop_class_needs_enough_classes;
      Alcotest.test_case "mesh diameter" `Quick test_diameter;
      Alcotest.test_case "efa relaxed pair shape" `Quick test_efa_relaxed_pair_shape;
      Alcotest.test_case "duato-torus routes" `Quick test_duato_torus_routes;
    ]

(* ---------------- catalogue golden test ----------------

   Every registry entry must resolve by name, build its default network,
   and run the full checker to the verdict the literature predicts (when
   it predicts one).  This is the CLI `audit` command as a test. *)

let test_registry_golden () =
  List.iter
    (fun (e : Registry.entry) ->
      (match Registry.find e.Registry.name with
      | Some found when found.Registry.name = e.Registry.name -> ()
      | _ -> Alcotest.failf "%s: not found by its own name" e.Registry.name);
      let net = Registry.network_for e None in
      let report = Dfr_core.Checker.check net e.Registry.algo in
      match (report.Dfr_core.Checker.verdict, e.Registry.expected_deadlock_free) with
      | Dfr_core.Checker.Unknown reason, _ ->
        Alcotest.failf "%s: checker gave up: %s" e.Registry.name reason
      | Dfr_core.Checker.Deadlock_free _, Some false ->
        Alcotest.failf "%s: expected deadlock, proved free" e.Registry.name
      | Dfr_core.Checker.Deadlock_possible _, Some true ->
        Alcotest.failf "%s: expected deadlock-free, found deadlock" e.Registry.name
      | _, _ -> ())
    Registry.all

let suite =
  suite @ [ Alcotest.test_case "registry golden" `Quick test_registry_golden ]
