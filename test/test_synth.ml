(* dfr_synth: the synthesized artifacts must stand on their own.  Every
   test here closes the loop through machinery the synthesizer does NOT
   control: a BWG' is accepted only if the checker re-derives freedom
   from the synthesized algorithm, a repair only if its printed .dfr
   compiles and re-checks free, a maximality certificate only if replay
   rebuilds the relaxed BWG from scratch and re-finds the cycle. *)

open Dfr_routing
open Dfr_core
module Synth = Dfr_synth.Synth

let check = Alcotest.check

let space_of (e : Registry.entry) =
  let net = Registry.network_for e None in
  (net, State_space.build net e.Registry.algo)

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry entry %s disappeared" name

let synthesized = function
  | Synth.Synthesized s -> s
  | Synth.Already_free _ -> Alcotest.fail "unexpected Already_free"
  | Synth.Unsat why -> Alcotest.failf "unexpected Unsat: %s" why
  | Synth.Gave_up why -> Alcotest.failf "unexpected Gave_up: %s" why

let is_free = function
  | Checker.Deadlock_free _ -> true
  | Checker.Deadlock_possible _ | Checker.Unknown _ -> false

(* The synthesized rule, wired into the algorithm, must satisfy the
   checker end to end — and its printed spec must compile and re-check
   free, so the artifact survives a round trip through the parser. *)
let recheck_success name net (s : Synth.success) =
  check Alcotest.bool (name ^ ": synthesized algo re-checks free") true
    (is_free (Checker.verdict net s.Synth.algo));
  match s.Synth.spec with
  | Error e -> Alcotest.failf "%s: spec printing failed: %s" name e
  | Ok src -> (
    match Dfr_spec.Spec.compile_string src with
    | Error e ->
      Alcotest.failf "%s: emitted spec does not compile: %s" name
        (Dfr_spec.Spec.error_to_string e)
    | Ok spec ->
      check Alcotest.bool
        (name ^ ": emitted spec re-checks free")
        true
        (is_free
           (Checker.verdict spec.Dfr_spec.Spec.net spec.Dfr_spec.Spec.algo)))

let test_two_buffer_bwg () =
  let net, space = space_of (entry "two-buffer") in
  let s = synthesized (Synth.synthesize ~minimize:true space) in
  check Alcotest.bool "some waits were removed" true (s.Synth.removed <> []);
  check Alcotest.int "synthesize widens nothing" 0 s.Synth.widened;
  recheck_success "two-buffer" net s

(* Theorem-4 agreement across the registry: synthesis must reach the
   same verdict as the catalogue's ground truth.  Expected-free designs
   synthesize a BWG' (hint or no hint); expected-deadlocking designs are
   refuted — an honest Unsat from Theorem 3's necessity direction. *)
let test_registry_agreement () =
  List.iter
    (fun (e : Registry.entry) ->
      let name = e.Registry.name in
      let _, space = space_of e in
      match (e.Registry.expected_deadlock_free, Synth.synthesize space) with
      | Some true, Synth.Synthesized s ->
        recheck_success name (State_space.net space) s
      | Some true, outcome ->
        Alcotest.failf "%s: expected a BWG', got %s" name
          (match outcome with
          | Synth.Unsat why -> "Unsat: " ^ why
          | Synth.Gave_up why -> "Gave_up: " ^ why
          | _ -> "Already_free")
      | Some false, Synth.Unsat _ -> ()
      | Some false, outcome ->
        Alcotest.failf "%s: expected Unsat, got %s" name
          (match outcome with
          | Synth.Synthesized _ -> "a synthesized BWG'"
          | Synth.Gave_up why -> "Gave_up: " ^ why
          | _ -> "Already_free")
      | None, _ -> ())
    Registry.all

let removed_key (s : Synth.success) =
  List.map (fun e -> (e.Synth.head, e.Synth.dest, e.Synth.target)) s.Synth.removed

let spec_key (s : Synth.success) =
  match s.Synth.spec with Ok src -> src | Error e -> "ERR:" ^ e

(* Bit-for-bit determinism: reruns and ~domains must not change the
   removed set or a byte of the emitted spec. *)
let test_determinism_bwg () =
  let _, space = space_of (entry "two-buffer") in
  let runs =
    List.map
      (fun domains -> synthesized (Synth.synthesize ~minimize:true ~domains space))
      [ 1; 1; 2; 4 ]
  in
  match runs with
  | first :: rest ->
    List.iteri
      (fun i s ->
        check Alcotest.bool
          (Printf.sprintf "run %d: same removed set" (i + 1))
          true
          (removed_key s = removed_key first);
        check Alcotest.string
          (Printf.sprintf "run %d: identical spec bytes" (i + 1))
          (spec_key first) (spec_key s))
      rest
  | [] -> assert false

let test_determinism_repair () =
  let e = entry "dragonfly-minimal-1vc" in
  let net = Registry.network_for e None in
  let runs =
    List.map
      (fun domains ->
        synthesized (Synth.repair ~domains net e.Registry.algo))
      [ 1; 1; 2 ]
  in
  match runs with
  | first :: rest ->
    List.iter
      (fun s ->
        check Alcotest.bool "same removed set" true
          (removed_key s = removed_key first);
        check Alcotest.string "identical spec bytes" (spec_key first)
          (spec_key s))
      rest
  | [] -> assert false

(* Repair of the deadlocking dragonfly control: widens across virtual
   channels, restricts, and the result must survive the checker and the
   spec round trip.  This is the README's quickstart example. *)
let test_repair_dragonfly () =
  let e = entry "dragonfly-minimal-1vc" in
  let net = Registry.network_for e None in
  check Alcotest.bool "control really deadlocks" false
    (is_free (Checker.verdict net e.Registry.algo));
  let s = synthesized (Synth.repair net e.Registry.algo) in
  check Alcotest.bool "widening opened copies" true (s.Synth.widened > 0);
  check Alcotest.bool "some copies were removed" true (s.Synth.removed <> []);
  check Alcotest.bool "removal is a subset of the widening" true
    (List.length s.Synth.removed <= s.Synth.widened);
  recheck_success "dragonfly repair" net s

(* A free input needs no repair. *)
let test_repair_already_free () =
  let e = entry "two-buffer" in
  let net = Registry.network_for e None in
  match Synth.repair net e.Registry.algo with
  | Synth.Already_free proof ->
    check Alcotest.bool "proof is a real proof" true
      (is_free (Checker.Deadlock_free proof))
  | _ -> Alcotest.fail "expected Already_free"

(* Theorem-6-style maximality on a minimized result: every removed wait
   gets a True-Cycle witness, and every witness replays through a
   from-scratch BWG rebuild. *)
let test_certify_and_replay () =
  let _, space = space_of (entry "two-buffer") in
  let s = synthesized (Synth.synthesize ~minimize:true space) in
  let removed = s.Synth.removed in
  match Synth.certify space ~removed with
  | Synth.Maximal items ->
    check Alcotest.int "one witness per removed entry" (List.length removed)
      (List.length items);
    List.iter
      (fun item ->
        check Alcotest.bool "witness replays" true
          (Synth.replay space ~removed item))
      items
  | Synth.Relaxable es ->
    Alcotest.failf "minimized result certified relaxable (%d entries)"
      (List.length es)
  | Synth.Cert_unknown why -> Alcotest.failf "certification gave up: %s" why

let suite =
  [
    Alcotest.test_case "two-buffer BWG' re-checks free" `Quick
      test_two_buffer_bwg;
    Alcotest.test_case "registry agreement (Theorem 4 ground truth)" `Slow
      test_registry_agreement;
    Alcotest.test_case "determinism: synthesize across domains" `Quick
      test_determinism_bwg;
    Alcotest.test_case "determinism: repair across domains" `Quick
      test_determinism_repair;
    Alcotest.test_case "repair dragonfly-minimal-1vc" `Quick
      test_repair_dragonfly;
    Alcotest.test_case "repair of a free design is Already_free" `Quick
      test_repair_already_free;
    Alcotest.test_case "certify maximal + replay witnesses" `Quick
      test_certify_and_replay;
  ]
