(* Golden corpus for the .dfr specification language: the shipped specs
   must re-derive the verdicts of their compiled-in counterparts —
   bit-for-bit for the incoherent example — and malformed input must fail
   with line/column-positioned errors. *)

open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_spec

let check = Alcotest.check

(* tests run from _build/default/test; the dune deps clause copies the
   corpus next to it *)
let spec_dir = Filename.concat ".." "examples/specs"
let spec_path name = Filename.concat spec_dir name

let load name =
  match Spec.load_file (spec_path name) with
  | Ok s -> s
  | Error e -> Alcotest.fail (name ^ ": " ^ Spec.error_to_string e)

let compile_err src =
  match Spec.compile_string src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> e

let expect_err src ~line ~col ~substr =
  let e = Spec.error_to_string (compile_err src) in
  let prefix = Printf.sprintf "%d:%d:" line col in
  if not (String.length e >= String.length prefix
          && String.sub e 0 (String.length prefix) = prefix) then
    Alcotest.failf "expected error at %s got %S" prefix e;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  if not (contains e substr) then
    Alcotest.failf "error %S does not mention %S" e substr

(* ---------------- golden corpus ---------------- *)

(* the spec re-derives Duato's incoherent example bit-for-bit: same
   buffers, same verdict, same cycle inventory, same JSON report *)
let test_incoherent_bit_for_bit () =
  let s = load "incoherent.dfr" in
  let compiled_net = Incoherent_example.network () in
  let compiled = Checker.check compiled_net Incoherent_example.algo in
  let from_spec = Checker.check s.Spec.net s.Spec.algo in
  check Alcotest.int "num buffers" (Net.num_buffers compiled_net)
    (Net.num_buffers s.Spec.net);
  for b = 0 to Net.num_buffers compiled_net - 1 do
    check Alcotest.string
      (Printf.sprintf "buffer %d name" b)
      (Net.describe_buffer compiled_net b)
      (Net.describe_buffer s.Spec.net b)
  done;
  check Alcotest.bool "BWG equal" true
    (Dfr_graph.Digraph.equal
       (Bwg.graph compiled.Checker.bwg)
       (Bwg.graph from_spec.Checker.bwg));
  check Alcotest.string "JSON report identical"
    (Report_json.to_string compiled_net Incoherent_example.algo compiled)
    (Report_json.to_string s.Spec.net s.Spec.algo from_spec)

(* the incoherent verdict itself: a True Cycle under specific waiting *)
let test_incoherent_verdict () =
  let s = load "incoherent.dfr" in
  match (Checker.check s.Spec.net s.Spec.algo).Checker.verdict with
  | Checker.Deadlock_possible (Checker.True_cycle _) -> ()
  | _ -> Alcotest.fail "expected a True Cycle deadlock"

(* up*/down* spec matches the compiled relation exactly: same BWG, and
   both deadlock-free *)
let test_updown_matches_compiled () =
  let s = load "updown.dfr" in
  let ud =
    Updown.make ~num_nodes:4 ~edges:[ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ] ~root:0
  in
  check Alcotest.int "num buffers" (Net.num_buffers ud.Updown.net)
    (Net.num_buffers s.Spec.net);
  let compiled = Checker.check ud.Updown.net ud.Updown.algo in
  let from_spec = Checker.check s.Spec.net s.Spec.algo in
  check Alcotest.bool "BWG equal" true
    (Dfr_graph.Digraph.equal
       (Bwg.graph compiled.Checker.bwg)
       (Bwg.graph from_spec.Checker.bwg));
  let free r =
    match r.Checker.verdict with Checker.Deadlock_free _ -> true | _ -> false
  in
  check Alcotest.bool "compiled deadlock-free" true (free compiled);
  check Alcotest.bool "spec deadlock-free" true (free from_spec)

(* unrestricted minimal adaptive routing on a 1-VC mesh deadlocks, from
   spec and catalogue alike *)
let test_mesh_minimal_deadlocks () =
  let s = load "mesh-minimal.dfr" in
  let entry =
    match Registry.find "unrestricted-mesh" with
    | Some e -> e
    | None -> Alcotest.fail "catalogue entry missing"
  in
  let net =
    Registry.network_for entry (Some (Dfr_topology.Topology.mesh [| 4; 4 |]))
  in
  let deadlocks n a =
    match (Checker.check n a).Checker.verdict with
    | Checker.Deadlock_possible _ -> true
    | _ -> false
  in
  check Alcotest.bool "compiled deadlocks" true (deadlocks net entry.Registry.algo);
  check Alcotest.bool "spec deadlocks" true (deadlocks s.Spec.net s.Spec.algo)

(* the irregular-topology goldens: the explicit-rule specs must agree
   with their compiled-in catalogue counterparts *)

let test_fullmesh_matches_compiled () =
  let s = load "fullmesh.dfr" in
  let net = Net.wormhole (Dfr_topology.Topology.fullmesh 4) ~vcs:1 in
  check Alcotest.int "num buffers" (Net.num_buffers net)
    (Net.num_buffers s.Spec.net);
  let free n a =
    match (Checker.check n a).Checker.verdict with
    | Checker.Deadlock_free _ -> true
    | _ -> false
  in
  check Alcotest.bool "compiled deadlock-free" true
    (free net Fullmesh_routing.direct);
  check Alcotest.bool "spec deadlock-free" true (free s.Spec.net s.Spec.algo)

let test_dragonfly_matches_compiled () =
  let s = load "dragonfly-small.dfr" in
  let net =
    Net.wormhole (Dfr_topology.Topology.dragonfly ~a:2 ~h:1 ()) ~vcs:2
  in
  check Alcotest.int "num buffers" (Net.num_buffers net)
    (Net.num_buffers s.Spec.net);
  let free n a =
    match (Checker.check n a).Checker.verdict with
    | Checker.Deadlock_free _ -> true
    | _ -> false
  in
  check Alcotest.bool "compiled deadlock-free" true
    (free net Dragonfly_routing.minimal);
  check Alcotest.bool "spec deadlock-free" true (free s.Spec.net s.Spec.algo)

(* the topology clause shares Topology.of_string's grammar *)
let test_topology_clause_forms () =
  let compile src =
    match Spec.compile_string src with
    | Ok s -> s
    | Error e -> Alcotest.fail (Spec.error_to_string e)
  in
  let a = compile "topology mesh 3 3\nroute at * to * : minimal\n" in
  let b = compile "topology mesh:3x3\nroute at * to * : minimal\n" in
  check Alcotest.int "same node count" (Net.num_nodes a.Spec.net)
    (Net.num_nodes b.Spec.net);
  check Alcotest.int "same buffer count" (Net.num_buffers a.Spec.net)
    (Net.num_buffers b.Spec.net);
  check Alcotest.int "matches Net.wormhole"
    (Net.num_buffers
       (Net.wormhole (Dfr_topology.Topology.mesh [| 3; 3 |]) ~vcs:1))
    (Net.num_buffers a.Spec.net)

let test_spec_dot_escapes () =
  let s = load "incoherent.dfr" in
  let dot = Spec.to_dot s in
  check Alcotest.bool "mentions a channel" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
       go 0
     in
     contains dot "qA1")

(* ---------------- positioned errors ---------------- *)

let test_error_unknown_channel () =
  expect_err "nodes 2\nchannel a : 0 -> 1\nroute at 0 to * : b\n" ~line:3 ~col:19
    ~substr:"unknown channel"

let test_error_wait_not_subset () =
  expect_err
    "nodes 2\nwaiting specific\nchannel a : 0 -> 1\nchannel b : 0 -> 1 vc 1\n\
     route at 0 to * : a\nwait at 0 to * : b\n"
    ~line:6 ~col:1 ~substr:"subset"

let test_error_duplicate_channel_name () =
  expect_err "nodes 2\nchannel a : 0 -> 1\nchannel a : 1 -> 0\n" ~line:3 ~col:9
    ~substr:"duplicate channel"

let test_error_duplicate_channel_key () =
  expect_err "nodes 2\nchannel a : 0 -> 1\nchannel b : 0 -> 1\n" ~line:3 ~col:9
    ~substr:"first declared"

let test_error_bad_topology () =
  expect_err "topology mesh 0 4\nroute at * to * : minimal\n" ~line:1 ~col:1
    ~substr:"radix"

let test_error_non_adjacent_output () =
  expect_err
    "nodes 3\nchannel a : 0 -> 1\nchannel b : 1 -> 2\nroute at 0 to * : b\n"
    ~line:4 ~col:19 ~substr:"head node"

let test_error_unreachable_destination () =
  let e = compile_err "nodes 2\nchannel a : 0 -> 1\nroute at 0 to * : a\n" in
  let msg = Spec.error_to_string e in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions undeliverable pairs" true
    (contains msg "cannot deliver")

let test_error_lexer_position () =
  let e = compile_err "nodes 2\nchannel ? : 0 -> 1\n" in
  check Alcotest.int "line" 2 e.Spec.pos.Ast.line;
  check Alcotest.int "col" 9 e.Spec.pos.Ast.col

let suite =
  [
    Alcotest.test_case "incoherent bit-for-bit" `Quick test_incoherent_bit_for_bit;
    Alcotest.test_case "incoherent verdict" `Quick test_incoherent_verdict;
    Alcotest.test_case "updown matches compiled" `Quick test_updown_matches_compiled;
    Alcotest.test_case "mesh-minimal deadlocks" `Quick test_mesh_minimal_deadlocks;
    Alcotest.test_case "fullmesh matches compiled" `Quick test_fullmesh_matches_compiled;
    Alcotest.test_case "dragonfly matches compiled" `Quick
      test_dragonfly_matches_compiled;
    Alcotest.test_case "topology clause forms" `Quick test_topology_clause_forms;
    Alcotest.test_case "spec dot output" `Quick test_spec_dot_escapes;
    Alcotest.test_case "error: unknown channel" `Quick test_error_unknown_channel;
    Alcotest.test_case "error: wait not subset" `Quick test_error_wait_not_subset;
    Alcotest.test_case "error: duplicate name" `Quick test_error_duplicate_channel_name;
    Alcotest.test_case "error: duplicate key" `Quick test_error_duplicate_channel_key;
    Alcotest.test_case "error: bad topology" `Quick test_error_bad_topology;
    Alcotest.test_case "error: non-adjacent output" `Quick
      test_error_non_adjacent_output;
    Alcotest.test_case "error: unreachable destination" `Quick
      test_error_unreachable_destination;
    Alcotest.test_case "error: lexer position" `Quick test_error_lexer_position;
  ]
