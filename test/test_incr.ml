(* Incremental re-checking (Incr + Diff): the acceptance bar is byte
   equality — every incremental verdict must render to exactly the bytes a
   cold check of the edited spec produces, across both the fast
   (counts-rendered Theorem 1) and replay paths.

   The core property test drives randomized chains of line-level edits of
   the canonical reprint (the same per-(buffer, dest) clauses a user would
   edit), recompiles, diffs against the session's current spec, applies
   the delta, and confronts the incremental report with a cold one. *)

open Dfr_network
open Dfr_routing
open Dfr_core
open Dfr_spec

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let spec_dir = Filename.concat ".." "examples/specs"

let load name =
  match Spec.load_file (Filename.concat spec_dir name) with
  | Ok s -> s
  | Error e -> Alcotest.fail (name ^ ": " ^ Spec.error_to_string e)

(* cold reference: full pipeline on the edited instance *)
let cold net algo =
  let report = Checker.check net algo in
  ( Dfr_util.Json.to_string (Report_json.of_outcome net algo report),
    Report_json.exit_code report.Checker.verdict )

let print_spec net algo =
  match Printer.to_string net algo with
  | Ok txt -> txt
  | Error msg -> Alcotest.fail ("unprintable: " ^ msg)

let validated (s : Spec.t) = s.Spec.elaborated.Elaborate.spec

(* ---------------- line-level edit generator ---------------- *)

(* "wait in c0_1_0 to 3 : a b" -> ("wait in c0_1_0 to 3", ["a"; "b"]) *)
let split_rule_line l =
  match String.index_opt l ':' with
  | None -> None
  | Some i ->
    let lhs = String.trim (String.sub l 0 i) in
    let rhs = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
    let targets = List.filter (fun s -> s <> "") (String.split_on_char ' ' rhs) in
    Some (lhs, targets)

let starts_with prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

(* One random edit of the reprint, or None when no clause is editable:
   drop one target from a multi-target wait, drop a whole wait clause
   (reverting to the route default), empty a wait to `none' (driving the
   instance wait-unconnected), or tighten a defaulted wait to a single
   route target.  All stay inside wait ⊆ route, so they recompile; edits
   of the route structure itself are exercised by [`Add_wait]/[`Drop_wait]
   changing which rules exist. *)
let try_edit rng lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let candidates = ref [] in
  for i = 0 to n - 1 do
    let l = arr.(i) in
    if starts_with "wait " l then (
      match split_rule_line l with
      | Some (_, targets) when targets <> [ "none" ] ->
        if List.length targets >= 2 then
          candidates := `Drop_target i :: !candidates;
        candidates := `Drop_wait i :: `Set_none i :: !candidates
      | Some _ -> candidates := `Drop_wait i :: !candidates
      | None -> ())
    else if starts_with "route " l then
      match split_rule_line l with
      | Some (lhs, (_ :: _ as targets)) ->
        let wait_lhs = "wait" ^ String.sub lhs 5 (String.length lhs - 5) in
        let has_wait =
          i + 1 < n
          &&
          match split_rule_line arr.(i + 1) with
          | Some (lhs2, _) -> lhs2 = wait_lhs
          | None -> false
        in
        if not has_wait then
          candidates := `Add_wait (i, wait_lhs, targets) :: !candidates
      | _ -> ()
  done;
  match !candidates with
  | [] -> None
  | cs ->
    Some
      (match Dfr_util.Prng.pick rng cs with
      | `Drop_target i ->
        let lhs, targets = Option.get (split_rule_line arr.(i)) in
        let k = Dfr_util.Prng.int rng (List.length targets) in
        let targets' = List.filteri (fun j _ -> j <> k) targets in
        Array.to_list
          (Array.mapi
             (fun j l ->
               if j = i then lhs ^ " : " ^ String.concat " " targets' else l)
             arr)
      | `Set_none i ->
        let lhs, _ = Option.get (split_rule_line arr.(i)) in
        Array.to_list
          (Array.mapi (fun j l -> if j = i then lhs ^ " : none" else l) arr)
      | `Drop_wait i -> List.filteri (fun j _ -> j <> i) (Array.to_list arr)
      | `Add_wait (i, wait_lhs, targets) ->
        let t = Dfr_util.Prng.pick rng targets in
        List.concat
          (Array.to_list
             (Array.mapi
                (fun j l ->
                  if j = i then [ l; wait_lhs ^ " : " ^ t ] else [ l ])
                arr)))

let corpus =
  [
    "mesh-minimal.dfr";
    "dragonfly-small.dfr";
    "updown.dfr";
    "fullmesh.dfr";
    "incoherent.dfr";
  ]

(* A corpus spec re-anchored in canonical-reprint space: corpus files may
   declare `topology`/`vcs` shorthands the reprint normalizes away into
   explicit channels, and the chain's diffs must compare specs in one
   form.  The reprint round-trip preserves the elaborated relation (pinned
   by the differential suite). *)
let load_canonical name =
  let s = load name in
  match Spec.compile_string (print_spec s.Spec.net s.Spec.algo) with
  | Ok s' -> s'
  | Error e -> Alcotest.fail (name ^ " reprint: " ^ Spec.error_to_string e)

(* One property case: a session over a random corpus spec, three chained
   random edits (each possibly multi-line), byte-compared against cold at
   every step. *)
let edit_replay_case seed =
  let rng = Dfr_util.Prng.create seed in
  let base = load_canonical (Dfr_util.Prng.pick rng corpus) in
  let session, r0 = Incr.create base.Spec.net base.Spec.algo in
  let cold0, code0 = cold base.Spec.net base.Spec.algo in
  check Alcotest.string "create report = cold" cold0
    (Dfr_util.Json.to_string r0.Incr.report);
  check Alcotest.int "create exit = cold" code0 r0.Incr.exit_code;
  let cur = ref base in
  for _step = 1 to 3 do
    let lines =
      String.split_on_char '\n'
        (print_spec (Incr.net session) (Incr.algo session))
    in
    let lines =
      match try_edit rng lines with None -> lines | Some ls -> ls
    in
    let lines =
      if Dfr_util.Prng.bool rng then
        match try_edit rng lines with None -> lines | Some ls -> ls
      else lines
    in
    match Spec.compile_string (String.concat "\n" lines) with
    | Error _ -> () (* an edit collided into an invalid spec; skip the step *)
    | Ok edited -> (
      match Diff.diff (validated !cur) (validated edited) with
      | Diff.Incompatible what ->
        Alcotest.failf "unexpected incompatibility after a clause edit: %s" what
      | Diff.Frontier { dirty; _ } ->
        let res = Incr.update session edited.Spec.algo ~dirty in
        let cold_s, cold_c = cold edited.Spec.net edited.Spec.algo in
        check Alcotest.string "incremental report = cold" cold_s
          (Dfr_util.Json.to_string res.Incr.report);
        check Alcotest.int "incremental exit = cold" cold_c res.Incr.exit_code;
        cur := edited)
  done

let edit_replay =
  QCheck.Test.make ~name:"edit replay is bit-for-bit cold" ~count:25
    QCheck.small_nat
    (fun seed ->
      edit_replay_case seed;
      true)

(* ---------------- diff frontier ---------------- *)

let test_diff_identity () =
  let s = load "mesh-minimal.dfr" in
  match Diff.diff (validated s) (validated s) with
  | Diff.Frontier { dirty = []; total } ->
    check Alcotest.int "total = nodes" (Net.num_nodes s.Spec.net) total
  | Diff.Frontier { dirty; _ } ->
    Alcotest.failf "identity diff dirtied %d destinations" (List.length dirty)
  | Diff.Incompatible what -> Alcotest.fail ("identity diff incompatible: " ^ what)

(* a single explicit-destination clause edit must dirty exactly that
   destination: pin an explicit wait clause under the first route line *)
let test_diff_single_dest () =
  let s = load_canonical "dragonfly-small.dfr" in
  let lines =
    String.split_on_char '\n' (print_spec s.Spec.net s.Spec.algo)
  in
  let target =
    List.find_map
      (fun l ->
        if starts_with "route " l then
          match split_rule_line l with
          | Some (lhs, t :: _) -> (
            match List.rev (String.split_on_char ' ' lhs) with
            | dest :: _ ->
              Some (l, "wait" ^ String.sub lhs 5 (String.length lhs - 5), t,
                    int_of_string dest)
            | [] -> None)
          | _ -> None
        else None)
      lines
  in
  match target with
  | None -> Alcotest.fail "corpus has no route clause"
  | Some (line, wait_lhs, t, dest) -> (
    let lines' =
      List.concat_map
        (fun l -> if l = line then [ l; wait_lhs ^ " : " ^ t ] else [ l ])
        lines
    in
    let edited =
      match Spec.compile_string (String.concat "\n" lines') with
      | Ok e -> e
      | Error e -> Alcotest.fail (Spec.error_to_string e)
    in
    match Diff.diff (validated s) (validated edited) with
    | Diff.Frontier { dirty; _ } ->
      check (Alcotest.list Alcotest.int) "dirty frontier" [ dest ] dirty
    | Diff.Incompatible what -> Alcotest.fail ("incompatible: " ^ what))

let test_diff_incompatible () =
  let a = load_canonical "mesh-minimal.dfr" in
  let b = load "dragonfly-small.dfr" in
  (match Diff.diff (validated a) (validated b) with
  | Diff.Incompatible _ -> ()
  | Diff.Frontier _ -> Alcotest.fail "different networks must be incompatible");
  (* same spec with the switching mode flipped *)
  let flipped =
    String.split_on_char '\n' (print_spec a.Spec.net a.Spec.algo)
    |> List.map (fun l ->
           if starts_with "switching " l then
             if l = "switching wormhole" then "switching saf"
             else "switching wormhole"
           else l)
    |> String.concat "\n"
  in
  match Spec.compile_string flipped with
  | Error _ -> () (* rejected outright is fine too *)
  | Ok b' -> (
    match Diff.diff (validated a) (validated b') with
    | Diff.Incompatible _ -> ()
    | Diff.Frontier _ -> Alcotest.fail "switching change must be incompatible")

(* ---------------- paths ---------------- *)

(* a wait-narrowing edit on an acyclic-BWG instance stays on the fast
   path: no BWG is rebuilt, and the report still matches cold bytes.
   Scan the registry for a Theorem-1 instance that still has a
   multi-target wait set to narrow (escape-channel designs like duato
   wait on a single channel everywhere, so this is not every free
   instance). *)
let multi_wait_state session =
  let found = ref None in
  let nn = State_space.num_nodes (Incr.space session) in
  for dest = 0 to nn - 1 do
    if !found = None then
      let v = State_space.dest_view (Incr.space session) ~dest in
      Array.iteri
        (fun i buf ->
          if !found = None && List.length v.State_space.view_wts.(i) >= 2 then
            found := Some (buf, dest))
        v.State_space.view_bufs
  done;
  !found

let test_fast_path_wait_edit () =
  let candidates =
    [ "double-y"; "hop-class"; "kntree-updown"; "dragonfly-minimal"; "duato" ]
  in
  let picked =
    List.find_map
      (fun name ->
        let e = Option.get (Registry.find name) in
        let net = Registry.network_for e (Registry.default_topology e) in
        let algo = { e.Registry.algo with Algo.reduced_waits = None } in
        let session, r0 = Incr.create net algo in
        if r0.Incr.path = Incr.Fast then
          Option.map
            (fun (buf, dest) -> (net, algo, session, buf, dest))
            (multi_wait_state session)
        else None)
      candidates
  in
  match picked with
  | None -> Alcotest.fail "no Theorem-1 registry instance with adaptive waits"
  | Some (net, algo, session, ebuf, edest) ->
    let nn = State_space.num_nodes (Incr.space session) in
    let algo' =
      Algo.with_waits algo ~name:algo.Algo.name (fun net b ~dest ->
          let ws = algo.Algo.waits net b ~dest in
          if Buf.id b = ebuf && dest = edest then [ List.hd ws ] else ws)
    in
    let res = Incr.update session algo' ~dirty:[ edest ] in
    check Alcotest.bool "edit is fast" true (res.Incr.path = Incr.Fast);
    check Alcotest.int "one dirty dest" 1 res.Incr.dirty_dests;
    check Alcotest.int "rest reused" (nn - 1) res.Incr.reused_dests;
    let cold_s, cold_c = cold net algo' in
    check Alcotest.string "fast report = cold" cold_s
      (Dfr_util.Json.to_string res.Incr.report);
    check Alcotest.int "fast exit = cold" cold_c res.Incr.exit_code;
    let c = Incr.counters session in
    check Alcotest.int "wait-only edit was patched" 1 c.Incr.patched_dests

(* a deadlocked instance takes the replay path and still matches cold *)
let test_replay_path_deadlock () =
  let e = Option.get (Registry.find "efa-relaxed") in
  let net = Registry.network_for e (Registry.default_topology e) in
  let algo = { e.Registry.algo with Algo.reduced_waits = None } in
  let session, r0 = Incr.create net algo in
  check Alcotest.bool "efa-relaxed base is replay" true
    (r0.Incr.path = Incr.Replay);
  let cold_s, cold_c = cold net algo in
  check Alcotest.string "replay report = cold" cold_s
    (Dfr_util.Json.to_string r0.Incr.report);
  check Alcotest.int "replay exit = cold" cold_c r0.Incr.exit_code;
  (* identity update: still cold bytes, no destinations dirty *)
  let res = Incr.update session algo ~dirty:[] in
  check Alcotest.string "identity update = cold" cold_s
    (Dfr_util.Json.to_string res.Incr.report);
  check Alcotest.int "no dirty dests" 0 res.Incr.dirty_dests

(* out-of-range dirty destinations are rejected *)
let test_update_bad_dest () =
  let e = Option.get (Registry.find "ecube") in
  let net = Registry.network_for e (Registry.default_topology e) in
  let algo = { e.Registry.algo with Algo.reduced_waits = None } in
  let session, _ = Incr.create net algo in
  Alcotest.check_raises "negative dest"
    (Invalid_argument "Incr.update: destination out of range") (fun () ->
      ignore (Incr.update session algo ~dirty:[ -1 ]))

let suite =
  [
    Alcotest.test_case "diff identity" `Quick test_diff_identity;
    Alcotest.test_case "diff single dest" `Quick test_diff_single_dest;
    Alcotest.test_case "diff incompatible" `Quick test_diff_incompatible;
    Alcotest.test_case "fast path wait edit" `Quick test_fast_path_wait_edit;
    Alcotest.test_case "replay path deadlock" `Quick test_replay_path_deadlock;
    Alcotest.test_case "update bad dest" `Quick test_update_bad_dest;
    qtest edit_replay;
  ]
