(* The serving subsystem: LRU verdict cache, bounded worker pool,
   protocol parsing, and the engine's end-to-end behaviour — cache
   hits bit-for-bit identical to the original response, deterministic
   queue_full backpressure, malformed-request isolation, timeouts,
   and byte-determinism across --domains settings. *)

open Dfr_serve
module J = Dfr_util.Json

let check = Alcotest.check

(* ---------------- cache ---------------- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check Alcotest.(option int) "a present" (Some 1) (Cache.find c "a");
  (* the find refreshed "a", so "b" is now least recently used *)
  Cache.add c "c" 3;
  check Alcotest.bool "b evicted" false (Cache.mem c "b");
  check Alcotest.bool "a survives" true (Cache.mem c "a");
  check Alcotest.bool "c present" true (Cache.mem c "c");
  check Alcotest.(option int) "b gone" None (Cache.find c "b");
  check Alcotest.int "hits" 1 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c);
  check Alcotest.int "evictions" 1 (Cache.evictions c);
  check Alcotest.int "length" 2 (Cache.length c)

let test_cache_refresh_existing () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* re-adding an existing key refreshes, never evicts *)
  Cache.add c "a" 10;
  check Alcotest.int "no eviction" 0 (Cache.evictions c);
  Cache.add c "c" 3;
  check Alcotest.bool "b was LRU" false (Cache.mem c "b");
  check Alcotest.(option int) "a rebound" (Some 10) (Cache.find c "a")

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 () in
  Cache.add c "a" 1;
  check Alcotest.(option int) "never stores" None (Cache.find c "a");
  check Alcotest.int "empty" 0 (Cache.length c);
  (* regression: a disabled cache used to count every find as a miss,
     reporting a 0% hit rate for a cache never asked to store anything *)
  check Alcotest.int "disabled counts no misses" 0 (Cache.misses c);
  check Alcotest.int "disabled counts no hits" 0 (Cache.hits c);
  check Alcotest.bool "hit_rate stays null" true
    (match Dfr_util.Json.member "hit_rate" (Cache.stats_json c) with
    | Some Dfr_util.Json.Null -> true
    | _ -> false);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Cache.create: negative capacity") (fun () ->
      ignore (Cache.create ~capacity:(-1) ()))

let test_cache_entry_byte_cap () =
  let c = Cache.create ~max_entry_bytes:100 ~capacity:2 () in
  Cache.add ~bytes:60 c "small" 1;
  Cache.add ~bytes:101 c "huge" 2;
  check Alcotest.bool "over the cap never stored" false (Cache.mem c "huge");
  check Alcotest.int "reject counted" 1 (Cache.oversize_rejects c);
  check Alcotest.int "reject leaves weights alone" 60 (Cache.total_bytes c);
  Cache.add ~bytes:100 c "edge" 3;
  check Alcotest.bool "exactly at the cap stored" true (Cache.mem c "edge");
  check Alcotest.int "weights aggregate" 160 (Cache.total_bytes c);
  (* entry-count eviction releases the evictee's weight *)
  Cache.add ~bytes:40 c "third" 4;
  check Alcotest.bool "LRU evicted" false (Cache.mem c "small");
  check Alcotest.int "evictee's bytes released" 140 (Cache.total_bytes c);
  (* re-adding replaces the old weight, not accumulates it *)
  Cache.add ~bytes:10 c "edge" 5;
  check Alcotest.int "rebind swaps the weight" 50 (Cache.total_bytes c);
  check Alcotest.int "rebind is not an eviction" 1 (Cache.evictions c);
  (* unlimited by default: huge weights pass *)
  let u = Cache.create ~capacity:1 () in
  Cache.add ~bytes:max_int u "big" 1;
  check Alcotest.bool "no cap by default" true (Cache.mem u "big")

(* ---------------- pool ---------------- *)

let test_pool_backpressure () =
  let p = Pool.create ~workers:1 ~capacity:1 in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let j1 =
    match
      Pool.try_submit p (fun () ->
          Mutex.lock gate;
          Mutex.unlock gate;
          42)
    with
    | Some pr -> pr
    | None -> Alcotest.fail "first job refused"
  in
  (* the slot is held until completion, so the second submit is refused
     no matter how far the worker has got *)
  (match Pool.try_submit p (fun () -> 0) with
  | Some _ -> Alcotest.fail "admission above capacity"
  | None -> ());
  check Alcotest.int "outstanding" 1 (Pool.outstanding p);
  Mutex.unlock gate;
  (match Pool.await j1 with
  | Ok n -> check Alcotest.int "result" 42 n
  | Error e -> Alcotest.failf "job failed: %s" (Printexc.to_string e));
  (* await returning implies the slot is free again *)
  (match Pool.try_submit p (fun () -> 7) with
  | Some pr -> (
    match Pool.await pr with
    | Ok n -> check Alcotest.int "freed slot" 7 n
    | Error _ -> Alcotest.fail "second job failed")
  | None -> Alcotest.fail "slot not released");
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_pool_exception () =
  let p = Pool.create ~workers:1 ~capacity:2 in
  (match Pool.try_submit p (fun () -> failwith "boom") with
  | None -> Alcotest.fail "refused"
  | Some pr -> (
    match Pool.await pr with
    | Error (Failure msg) when msg = "boom" -> ()
    | Error e -> Alcotest.failf "wrong exn: %s" (Printexc.to_string e)
    | Ok () -> Alcotest.fail "exception swallowed"));
  (* the worker survived: it can still run work *)
  (match Pool.try_submit p (fun () -> "alive") with
  | Some pr ->
    check Alcotest.(result string reject) "worker survives" (Ok "alive")
      (match Pool.await pr with Ok s -> Ok s | Error _ -> Error ())
  | None -> Alcotest.fail "refused after exception");
  Pool.shutdown p

(* ---------------- protocol ---------------- *)

let test_protocol_parse () =
  (match Protocol.parse "{\"op\":\"ping\",\"id\":3}" with
  | Ok { Protocol.id = Some (J.Int 3); req = Protocol.Ping } -> ()
  | _ -> Alcotest.fail "ping with id");
  (* the id is recovered even when the request is rejected *)
  (match Protocol.parse "{\"id\":7,\"op\":\"bogus\"}" with
  | Error (Some (J.Int 7), _) -> ()
  | _ -> Alcotest.fail "id lost on unknown op");
  (match Protocol.parse "{\"op\":\"check\"}" with
  | Error (None, msg) ->
    check Alcotest.bool "names the missing fields" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "check without spec/algo accepted");
  (match Protocol.parse "[1,2]" with
  | Error (None, _) -> ()
  | _ -> Alcotest.fail "non-object accepted");
  (match Protocol.parse "{\"op\":\"sleep\",\"ms\":-1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative sleep accepted");
  match
    Protocol.parse
      (Printf.sprintf "{\"op\":\"sleep\",\"ms\":%d}" (Protocol.max_sleep_ms + 1))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized sleep accepted"

(* ---------------- engine ---------------- *)

let member name doc =
  match J.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (J.to_string doc)

let is_ok doc = match member "ok" doc with J.Bool b -> b | _ -> false
let is_cached doc = match member "cached" doc with J.Bool b -> b | _ -> false

let error_kind doc =
  match J.member "kind" (member "error" doc) with
  | Some (J.String k) -> k
  | _ -> Alcotest.failf "no error kind in %s" (J.to_string doc)

let with_engine ?(config = Engine.default_config) f =
  let e = Engine.create config in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

(* handle+await one line at a time: the request-response client *)
let run_seq e lines = List.map (fun l -> Engine.await e (Engine.handle_line e l)) lines

(* handle every line first, then drain: the streaming client *)
let run_pipelined e lines =
  let slots = List.map (Engine.handle_line e) lines in
  List.map (Engine.await e) slots

let named ?id algo topo =
  let fields =
    [ ("op", J.String "check"); ("algo", J.String algo);
      ("topology", J.String topo) ]
  in
  let fields = match id with Some i -> ("id", J.Int i) :: fields | None -> fields in
  J.to_string (J.Obj fields)

let test_engine_cache_hit_bit_for_bit () =
  with_engine (fun e ->
      match run_seq e [ named "efa" "hypercube:2"; named "efa" "hypercube:2" ] with
      | [ cold; warm ] ->
        check Alcotest.bool "cold ok" true (is_ok cold);
        check Alcotest.bool "cold is a miss" false (is_cached cold);
        check Alcotest.bool "warm is a hit" true (is_cached warm);
        check Alcotest.string "same digest"
          (J.to_string (member "digest" cold))
          (J.to_string (member "digest" warm));
        check Alcotest.string "same exit code"
          (J.to_string (member "exit" cold))
          (J.to_string (member "exit" warm));
        (* the hit replays the first response's report verbatim *)
        check Alcotest.string "bit-for-bit report"
          (J.to_string (member "report" cold))
          (J.to_string (member "report" warm))
      | _ -> Alcotest.fail "two responses expected")

let test_engine_cross_surface_digest () =
  (* a named problem and the inline spec printed from the very same
     network share one digest, hence one cache entry *)
  let entry =
    match Dfr_routing.Registry.find "efa" with
    | Some e -> e
    | None -> Alcotest.fail "efa not registered"
  in
  let topo =
    match Dfr_topology.Topology.of_string "hypercube:2" with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  let net = Dfr_routing.Registry.network_for entry (Some topo) in
  let spec_text =
    match Dfr_spec.Printer.to_string net entry.Dfr_routing.Registry.algo with
    | Ok t -> t
    | Error m -> Alcotest.failf "unprintable: %s" m
  in
  let inline =
    J.to_string (J.Obj [ ("op", J.String "check"); ("spec", J.String spec_text) ])
  in
  with_engine (fun e ->
      match run_seq e [ named "efa" "hypercube:2"; inline ] with
      | [ by_name; by_spec ] ->
        check Alcotest.bool "inline answered from cache" true (is_cached by_spec);
        check Alcotest.string "one digest for both surfaces"
          (J.to_string (member "digest" by_name))
          (J.to_string (member "digest" by_spec))
      | _ -> Alcotest.fail "two responses expected")

let stats_cache e =
  let resp = Engine.await e (Engine.handle_line e "{\"op\":\"stats\"}") in
  member "cache" (member "stats" resp)

let test_engine_lru_and_counters () =
  let config = { Engine.default_config with Engine.cache_capacity = 1 } in
  with_engine ~config (fun e ->
      match
        run_seq e
          [
            named "efa" "hypercube:2" (* miss *);
            named "efa" "hypercube:2" (* hit *);
            named "ecube" "hypercube:2" (* miss, evicts efa *);
            named "efa" "hypercube:2" (* miss again: was evicted *);
          ]
      with
      | [ _; r2; r3; r4 ] ->
        check Alcotest.bool "second is a hit" true (is_cached r2);
        check Alcotest.bool "other problem misses" false (is_cached r3);
        check Alcotest.bool "evicted problem misses" false (is_cached r4);
        let cache = stats_cache e in
        check Alcotest.string "hits" "1" (J.to_string (member "hits" cache));
        check Alcotest.string "misses" "3" (J.to_string (member "misses" cache));
        check Alcotest.string "evictions" "2"
          (J.to_string (member "evictions" cache));
        check Alcotest.string "size" "1" (J.to_string (member "size" cache))
      | _ -> Alcotest.fail "four responses expected")

let test_engine_entry_byte_cap () =
  (* a report bigger than the per-entry cap is served but never cached,
     so an identical re-request recomputes instead of hitting *)
  let config = { Engine.default_config with Engine.cache_entry_bytes = 64 } in
  with_engine ~config (fun e ->
      match run_seq e [ named "efa" "hypercube:2"; named "efa" "hypercube:2" ] with
      | [ r1; r2 ] ->
        check Alcotest.bool "first ok" true (is_ok r1);
        check Alcotest.bool "second ok" true (is_ok r2);
        check Alcotest.bool "re-request recomputes" false (is_cached r2);
        let cache = stats_cache e in
        check Alcotest.string "rejects counted" "2"
          (J.to_string (member "oversize_rejects" cache));
        check Alcotest.string "nothing stored" "0"
          (J.to_string (member "size" cache))
      | _ -> Alcotest.fail "two responses expected")

let test_engine_coalescing () =
  (* identical checks submitted before the first settles share one
     computation; the follower is marked cached *)
  with_engine (fun e ->
      match
        run_pipelined e [ named "efa" "hypercube:2"; named "efa" "hypercube:2" ]
      with
      | [ first; second ] ->
        check Alcotest.bool "leader computes" false (is_cached first);
        check Alcotest.bool "follower coalesces" true (is_cached second);
        check Alcotest.string "same report"
          (J.to_string (member "report" first))
          (J.to_string (member "report" second));
        let cache = stats_cache e in
        (* both lookups happened before anything was cached *)
        check Alcotest.string "both were misses" "2"
          (J.to_string (member "misses" cache));
        check Alcotest.string "one entry stored" "1"
          (J.to_string (member "size" cache))
      | _ -> Alcotest.fail "two responses expected")

let test_engine_malformed_isolated () =
  with_engine (fun e ->
      match
        run_seq e
          [
            "this is not json";
            "{\"op\":\"nope\",\"id\":9}";
            "{\"op\":\"check\",\"spec\":\"network bad {\"}";
            "{\"op\":\"check\",\"algo\":\"no-such-algorithm\"}";
            "{\"op\":\"ping\",\"id\":10}";
          ]
      with
      | [ r1; r2; r3; r4; r5 ] ->
        check Alcotest.string "garbage -> parse" "parse" (error_kind r1);
        check Alcotest.string "unknown op -> parse" "parse" (error_kind r2);
        check Alcotest.string "id recovered" "9" (J.to_string (member "id" r2));
        check Alcotest.string "bad spec -> spec" "spec" (error_kind r3);
        check Alcotest.string "unknown algo -> bad_request" "bad_request"
          (error_kind r4);
        check Alcotest.bool "server survives it all" true (is_ok r5)
      | _ -> Alcotest.fail "five responses expected")

let test_engine_queue_full () =
  let config =
    { Engine.default_config with Engine.workers = 1; capacity = 1 }
  in
  with_engine ~config (fun e ->
      let slow = Engine.handle_line e "{\"op\":\"sleep\",\"ms\":200}" in
      (* the single slot is taken: the next request is refused at once *)
      let refused = Engine.handle_line e "{\"op\":\"sleep\",\"ms\":0}" in
      (match Engine.poll e refused with
      | Some resp ->
        check Alcotest.string "refused deterministically" "queue_full"
          (error_kind resp)
      | None -> Alcotest.fail "queue_full response must be immediate");
      let resp = Engine.await e slow in
      check Alcotest.bool "slow job still completes" true (is_ok resp);
      (* the freed slot admits again *)
      let again = Engine.await e (Engine.handle_line e "{\"op\":\"sleep\",\"ms\":0}") in
      check Alcotest.bool "slot released" true (is_ok again))

let test_engine_timeout () =
  let config = { Engine.default_config with Engine.timeout_ms = 30 } in
  with_engine ~config (fun e ->
      let resp = Engine.await e (Engine.handle_line e "{\"op\":\"sleep\",\"ms\":300}") in
      check Alcotest.string "deadline enforced" "timeout" (error_kind resp))

let test_engine_shutdown_guard () =
  with_engine (fun e ->
      let bye = Engine.await e (Engine.handle_line e "{\"op\":\"shutdown\"}") in
      check Alcotest.bool "shutdown acknowledged" true (is_ok bye);
      check Alcotest.bool "flagged" true (Engine.shutdown_requested e);
      let late = Engine.await e (Engine.handle_line e "{\"op\":\"ping\"}") in
      check Alcotest.string "late arrivals refused" "shutting_down"
        (error_kind late))

(* ---------------- check_delta ---------------- *)

let fullmesh_spec ~adaptive =
  String.concat "\n"
    ([
       "network fullmesh-direct-4";
       "topology fullmesh 4";
       "switching wormhole";
       "vcs 1";
       "waiting any";
       (if adaptive then "route at 0 to 1 : c0_1_0 c0_2_0"
        else "route at 0 to 1 : c0_1_0");
       "route at 0 to 2 : c0_2_0";
       "route at 0 to 3 : c0_3_0";
       "route at 1 to 0 : c1_0_0";
       "route at 1 to 2 : c1_2_0";
       "route at 1 to 3 : c1_3_0";
       "route at 2 to 0 : c2_0_0";
       "route at 2 to 1 : c2_1_0";
       "route at 2 to 3 : c2_3_0";
       "route at 3 to 0 : c3_0_0";
       "route at 3 to 1 : c3_1_0";
       "route at 3 to 2 : c3_2_0";
     ])

let delta_req ~base spec =
  J.to_string
    (J.Obj
       [
         ("op", J.String "check_delta");
         ("base", J.String base);
         ("spec", J.String spec);
       ])

let spec_req spec =
  J.to_string (J.Obj [ ("op", J.String "check"); ("spec", J.String spec) ])

let delta_field name doc =
  match J.member name (member "delta" doc) with
  | Some v -> v
  | None -> Alcotest.failf "delta lacks %S: %s" name (J.to_string doc)

let delta_mode doc =
  match delta_field "mode" doc with
  | J.String m -> m
  | _ -> Alcotest.fail "non-string delta mode"

let test_protocol_parse_delta () =
  (match Protocol.parse "{\"op\":\"check_delta\",\"base\":\"abc\",\"spec\":\"x\"}" with
  | Ok { Protocol.req = Protocol.Check_delta { base; spec }; _ } ->
    check Alcotest.string "base" "abc" base;
    check Alcotest.string "spec" "x" spec
  | _ -> Alcotest.fail "check_delta not parsed");
  match Protocol.parse "{\"op\":\"check_delta\",\"spec\":\"x\"}" with
  | Error (_, msg) ->
    check Alcotest.bool "missing base diagnosed" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "check_delta without base accepted"

let test_engine_delta_cold_then_fast () =
  with_engine (fun e ->
      let base_spec = fullmesh_spec ~adaptive:false in
      let edit_spec = fullmesh_spec ~adaptive:true in
      (* unknown base digest: cold fallback that seeds the session *)
      let cold = Engine.await e (Engine.handle_line e (delta_req ~base:"nope" base_spec)) in
      check Alcotest.bool "cold ok" true (is_ok cold);
      check Alcotest.string "session miss is cold" "cold" (delta_mode cold);
      let digest =
        match member "digest" cold with
        | J.String d -> d
        | _ -> Alcotest.fail "no digest"
      in
      (* the delta verdict equals a plain check's report bytes — and the
         plain check hits the verdict cache the delta populated *)
      let plain = Engine.await e (Engine.handle_line e (spec_req base_spec)) in
      check Alcotest.bool "delta seeded the verdict cache" true (is_cached plain);
      check Alcotest.string "cold delta report = plain report"
        (J.to_string (member "report" plain))
        (J.to_string (member "report" cold));
      (* now the edit, against the session the cold call parked *)
      let fast = Engine.await e (Engine.handle_line e (delta_req ~base:digest edit_spec)) in
      check Alcotest.bool "fast ok" true (is_ok fast);
      check Alcotest.string "session hit is fast" "fast" (delta_mode fast);
      check Alcotest.int "one dirty dest" 1
        (match delta_field "dirty_dests" fast with J.Int n -> n | _ -> -1);
      check Alcotest.int "rest reused" 3
        (match delta_field "reused_dests" fast with J.Int n -> n | _ -> -1);
      let plain_edit = Engine.await e (Engine.handle_line e (spec_req edit_spec)) in
      check Alcotest.string "fast delta report = plain report"
        (J.to_string (member "report" plain_edit))
        (J.to_string (member "report" fast));
      (* chaining: the session moved to the edit's digest *)
      let edit_digest =
        match member "digest" fast with
        | J.String d -> d
        | _ -> Alcotest.fail "no digest"
      in
      let back = Engine.await e (Engine.handle_line e (delta_req ~base:edit_digest base_spec)) in
      check Alcotest.string "chained edit stays incremental" "fast" (delta_mode back))

let test_engine_delta_sessions_disabled () =
  let config = { Engine.default_config with Engine.sessions = 0 } in
  with_engine ~config (fun e ->
      let spec = fullmesh_spec ~adaptive:false in
      let r1 = Engine.await e (Engine.handle_line e (delta_req ~base:"x" spec)) in
      check Alcotest.string "first is cold" "cold" (delta_mode r1);
      let digest =
        match member "digest" r1 with J.String d -> d | _ -> Alcotest.fail "no digest"
      in
      (* no session store: even a well-addressed delta re-checks cold *)
      let r2 = Engine.await e (Engine.handle_line e (delta_req ~base:digest spec)) in
      check Alcotest.string "still cold" "cold" (delta_mode r2);
      check Alcotest.string "verdict bytes unaffected"
        (J.to_string (member "report" r1))
        (J.to_string (member "report" r2)))

let test_engine_delta_bad_spec () =
  with_engine (fun e ->
      let resp = Engine.await e (Engine.handle_line e (delta_req ~base:"x" "not a spec")) in
      check Alcotest.bool "rejected" false (is_ok resp);
      check Alcotest.string "spec error kind" "spec" (error_kind resp))

let test_engine_deterministic_across_domains () =
  (* every response byte must be a function of the request sequence
     alone, whatever the parallelism knobs say *)
  let script =
    [
      "{\"op\":\"ping\",\"id\":1}";
      named ~id:2 "efa" "hypercube:2";
      "not json";
      named ~id:4 "efa" "hypercube:2";
      named ~id:5 "ecube" "hypercube:2";
      "{\"op\":\"check\",\"algo\":\"no-such-algorithm\",\"id\":6}";
    ]
  in
  let run config =
    with_engine ~config (fun e ->
        String.concat "\n" (List.map J.to_string (run_seq e script)))
  in
  let base = run Engine.default_config in
  let parallel =
    run { Engine.default_config with Engine.workers = 2; domains = 2 }
  in
  check Alcotest.string "byte-identical transcript" base parallel

(* satellite: an unspecified --domains (config 0) auto-sizes from the
   machine at create time; the stored value is the pool cap, never 0 *)
let test_engine_default_domains_auto () =
  check Alcotest.int "config default is auto" 0
    Engine.default_config.Engine.domains;
  with_engine (fun e ->
      check Alcotest.int "resolved to the pool cap"
        (Dfr_util.Domain_pool.cap ())
        (Engine.domains e));
  with_engine
    ~config:{ Engine.default_config with Engine.domains = 3 }
    (fun e -> check Alcotest.int "explicit setting wins" 3 (Engine.domains e));
  Alcotest.check_raises "negative domains rejected"
    (Invalid_argument "Engine.create: domains >= 0") (fun () ->
      ignore (Engine.create { Engine.default_config with Engine.domains = -1 }))

let test_engine_scenario_op () =
  let plan = "plan \"t\"\nseed 1\nat 0 kill link 0 -> 1\n" in
  let req mode =
    J.to_string
      (J.Obj
         [
           ("id", J.Int 9);
           ("op", J.String "scenario");
           ("algo", J.String "dimension-order");
           ("topology", J.String "mesh:3x3");
           ("plan", J.String plan);
           ("mode", J.String mode);
         ])
  in
  with_engine (fun e ->
      match run_seq e [ req "sweep"; req "sequence" ] with
      | [ sweep; seq ] ->
        check Alcotest.bool "sweep ok" true (is_ok sweep);
        check Alcotest.bool "sequence ok" true (is_ok seq);
        (* one XY link cut strands sources: a deadlock exit *)
        check Alcotest.string "exit 1" "1" (J.to_string (member "exit" sweep));
        let faults doc =
          match J.member "faults" (member "campaign" doc) with
          | Some (J.List l) -> List.length l
          | _ -> Alcotest.fail "campaign lacks faults"
        in
        check Alcotest.int "one fault outcome" 1 (faults sweep);
        check Alcotest.int "sequence agrees" 1 (faults seq)
      | _ -> Alcotest.fail "two responses expected");
  (* a broken plan is a client error, not a crash *)
  with_engine (fun e ->
      let bad =
        J.to_string
          (J.Obj
             [
               ("op", J.String "scenario");
               ("algo", J.String "dimension-order");
               ("plan", J.String "nonsense directive\n");
             ])
      in
      match run_seq e [ bad ] with
      | [ doc ] ->
        check Alcotest.bool "rejected" false (is_ok doc);
        check Alcotest.string "kind" "bad_request" (error_kind doc)
      | _ -> Alcotest.fail "one response expected")

let suite =
  [
    Alcotest.test_case "cache: LRU eviction and counters" `Quick test_cache_lru;
    Alcotest.test_case "cache: re-add refreshes without evicting" `Quick
      test_cache_refresh_existing;
    Alcotest.test_case "cache: per-entry byte cap and weights" `Quick
      test_cache_entry_byte_cap;
    Alcotest.test_case "cache: capacity 0 disables storage" `Quick
      test_cache_disabled;
    Alcotest.test_case "pool: deterministic bounded admission" `Quick
      test_pool_backpressure;
    Alcotest.test_case "pool: a raising job spares the worker" `Quick
      test_pool_exception;
    Alcotest.test_case "protocol: parse and id recovery" `Quick
      test_protocol_parse;
    Alcotest.test_case "engine: cache hit replays the report bit-for-bit"
      `Quick test_engine_cache_hit_bit_for_bit;
    Alcotest.test_case "engine: named and inline specs share a digest" `Quick
      test_engine_cross_surface_digest;
    Alcotest.test_case "engine: LRU eviction and hit/miss counters" `Quick
      test_engine_lru_and_counters;
    Alcotest.test_case "engine: oversized reports are served uncached" `Quick
      test_engine_entry_byte_cap;
    Alcotest.test_case "engine: identical in-flight checks coalesce" `Quick
      test_engine_coalescing;
    Alcotest.test_case "engine: malformed requests never kill the server"
      `Quick test_engine_malformed_isolated;
    Alcotest.test_case "engine: queue_full backpressure is deterministic"
      `Quick test_engine_queue_full;
    Alcotest.test_case "engine: per-request deadline" `Quick test_engine_timeout;
    Alcotest.test_case "engine: shutdown refuses late arrivals" `Quick
      test_engine_shutdown_guard;
    Alcotest.test_case "engine: transcript is domain-count independent" `Quick
      test_engine_deterministic_across_domains;
    Alcotest.test_case "protocol: check_delta parse" `Quick
      test_protocol_parse_delta;
    Alcotest.test_case "engine: delta cold seed then fast re-check" `Quick
      test_engine_delta_cold_then_fast;
    Alcotest.test_case "engine: sessions 0 disables the delta path" `Quick
      test_engine_delta_sessions_disabled;
    Alcotest.test_case "engine: delta of a broken spec errors cleanly" `Quick
      test_engine_delta_bad_spec;
    Alcotest.test_case "engine: default domains auto-size from the machine"
      `Quick test_engine_default_domains_auto;
    Alcotest.test_case "engine: scenario op runs a campaign" `Quick
      test_engine_scenario_op;
  ]
